#!/usr/bin/env python
"""Quickstart: one kernel, two FPGA execution flows.

Builds the OpenCL-style ``vecadd`` kernel once and runs it on:

1. the reference interpreter (the correctness oracle),
2. the Intel-HLS model (the kernel becomes a pipelined datapath; you get
   a synthesis area report and a pipeline cycle estimate),
3. the Vortex soft-GPU model (the kernel compiles to RISC-V+SIMT machine
   code and executes on a cycle-level simulator).

This is the paper's Figure 1 in ~60 lines: same source, two routes to
the FPGA.
"""

import numpy as np

from repro.ocl import Context, GLOBAL_FLOAT32, INT32, KernelBuilder, \
    ReferenceBackend
from repro.hls import HLSBackend, format_utilization
from repro.vortex import VortexBackend, VortexConfig


def build_vecadd():
    b = KernelBuilder("vecadd")
    a = b.param("a", GLOBAL_FLOAT32)
    bb = b.param("b", GLOBAL_FLOAT32)
    c = b.param("c", GLOBAL_FLOAT32)
    n = b.param("n", INT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, n)):
        b.store(c, gid, b.add(b.load(a, gid), b.load(bb, gid)))
    return b.finish()


def main():
    kernel = build_vecadd()
    n = 1024
    rng = np.random.default_rng(0)
    a_host = rng.random(n, dtype=np.float32)
    b_host = rng.random(n, dtype=np.float32)
    expected = a_host + b_host

    backends = [
        ReferenceBackend(),
        HLSBackend(),
        VortexBackend(VortexConfig(cores=4, warps=4, threads=4)),
    ]
    for backend in backends:
        ctx = Context(backend)
        prog = ctx.program([kernel])
        a = ctx.buffer(a_host)
        b = ctx.buffer(b_host)
        c = ctx.alloc(n)
        stats = prog.launch("vecadd", [a, b, c, n],
                            global_size=n, local_size=16)
        ok = np.allclose(c.read(), expected)
        cycles = f"{stats.cycles:,}" if stats.cycles else "n/a"
        print(f"[{backend.name:>10}] correct={ok}  cycles={cycles}  "
              f"dyn-instrs={stats.dynamic_instructions:,}")
        if backend.name == "intel_hls":
            from repro.hls import estimate
            print(format_utilization(estimate(kernel), backend.device,
                                     title="  HLS area on " +
                                     backend.device.name))
        if backend.name == "vortex":
            print(f"  lsu stalls: {stats.extra['lsu_stalls']:,}, "
                  f"dcache hit rate: {stats.extra['dcache_hit_rate']:.1%}, "
                  f"dram row hit rate: "
                  f"{stats.extra['dram_row_hit_rate']:.1%}")


if __name__ == "__main__":
    main()
