#!/usr/bin/env python
"""HLS parallelism modes: single work item vs NDRange (paper §II-B).

"Intel advises that the device kernel operate as a single work item with
a size of (1,1,1). Under this configuration, the AOC compiler seeks to
implement pipelined parallelism on loops... Nevertheless, users may
still execute multi-work-item kernels [NDRange]."

The same vector scaling is written both ways and pushed through the HLS
model. The NDRange form streams work items through the datapath; the
single-work-item form streams *loop iterations* — same pipeline, a
different unit of parallelism, which is why the paper runs GPU-friendly
NDRange code unmodified (§II-B) while Intel's guide favours loops. The
paper's §IV-B challenge 1 lives exactly in this gap.
"""

import numpy as np

from repro.hls import HLSBackend, estimate
from repro.ocl import Context, FLOAT32, GLOBAL_FLOAT32, INT32, KernelBuilder


def ndrange_kernel():
    """GPU-friendly form: one work item per element."""
    b = KernelBuilder("scale_ndrange")
    x = b.param("x", GLOBAL_FLOAT32)
    y = b.param("y", GLOBAL_FLOAT32)
    n = b.param("n", INT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, n)):
        b.store(y, gid, b.mul(b.load(x, gid), 2.0))
    return b.finish()


def single_work_item_kernel():
    """Intel's recommended form: one work item, a pipelined loop."""
    b = KernelBuilder("scale_swi")
    x = b.param("x", GLOBAL_FLOAT32)
    y = b.param("y", GLOBAL_FLOAT32)
    n = b.param("n", INT32)
    with b.for_range(0, n) as i:
        b.store(y, i, b.mul(b.load(x, i), 2.0))
    return b.finish()


def main():
    n = 1024
    rng = np.random.default_rng(0)
    x_host = rng.random(n, dtype=np.float32)

    for kernel, launch in [
        (ndrange_kernel(), dict(global_size=n, local_size=16)),
        (single_work_item_kernel(), dict(global_size=1)),  # (1,1,1)
    ]:
        ctx = Context(HLSBackend())
        prog = ctx.program([kernel])
        x = ctx.buffer(x_host)
        y = ctx.alloc(n)
        stats = prog.launch(kernel.name, [x, y, n], **launch)
        assert np.allclose(y.read(), x_host * 2.0)
        area = estimate(kernel)
        print(f"{kernel.name:14s}: cycles={stats.cycles:>6,}  "
              f"II={stats.extra['initiation_interval']}  "
              f"BRAMs={area.brams:,}  ALUTs={area.aluts:,}")

    print("\nBoth forms compute the same result; the single-work-item "
          "loop\npipelines iterations instead of work items. The paper "
          "adopts the\nNDRange path to keep GPU source unmodified "
          "(§II-B) — at the cost of\nthe §IV-B parallelism-mismatch "
          "challenges.")


if __name__ == "__main__":
    main()
