#!/usr/bin/env python
"""The paper's §IV-A research direction, implemented: pick a Vortex
configuration analytically instead of sweeping the simulator.

"Testing all the hardware combinations in the hardware needs
resynthesizing and effort. ... a valuable opportunity exists for
research aimed at minimizing or circumventing the exploration space by
leveraging the application's characteristics and proposing an analytical
model for Vortex's performance."

This script profiles vecadd **once** with the functional interpreter
(configuration-independent), predicts cycles for all sixteen
(warps, threads) configurations from closed-form bounds, then checks the
recommendation against the full cycle-level sweep.
"""

import time

import numpy as np

from repro.benchmarks import get_benchmark
from repro.harness import run_sweep
from repro.harness.tables import render_table
from repro.ocl import NDRange
from repro.vortex import KernelProfile, explore, recommend


def main():
    bench = get_benchmark("vecadd")
    kernel = bench.build()[0]
    rng = np.random.default_rng(0)
    n = 4096
    args = [rng.random(n, dtype=np.float32),
            rng.random(n, dtype=np.float32),
            np.zeros(n, dtype=np.float32), n]

    t0 = time.perf_counter()
    profile = KernelProfile.collect(kernel, args, NDRange.create(n, 16))
    predictions = explore(profile)
    t_model = time.perf_counter() - t0
    picks = recommend(predictions, top=3)

    print(f"profile: {profile}")
    print(f"model evaluated 16 configurations in {t_model:.2f}s")
    print(f"recommended configurations: {picks}\n")

    t0 = time.perf_counter()
    sweep = run_sweep("vecadd")
    t_sim = time.perf_counter() - t0
    print(f"cycle-level sweep of the same grid took {t_sim:.1f}s "
          f"({t_sim / max(t_model, 1e-9):.0f}x the model)\n")

    rows = []
    for key in sorted(predictions):
        pred = predictions[key]
        rows.append([
            f"{key[0]}w{key[1]}t",
            f"{pred.cycles:,.0f}",
            pred.bottleneck,
            f"{sweep.cycles[key]:,}",
        ])
    print(render_table(
        ["config", "predicted cycles", "bottleneck", "simulated cycles"],
        rows, title="analytical model vs SimX (vecadd, 4 cores)"))

    best = sweep.best
    pick = picks[0]
    regret = sweep.cycles[pick] / sweep.cycles[best] - 1
    print(f"\ntrue optimum: {best}; model's pick: {pick}; "
          f"regret: {regret:.1%}")


if __name__ == "__main__":
    main()
