#!/usr/bin/env python
"""Regenerate the paper's Table I: benchmark coverage of both flows.

Runs all 28 benchmarks through the Vortex backend and the Intel-HLS
model, validating outputs against each benchmark's numpy reference, and
prints the coverage table with failure reasons. Expected result (and the
paper's): Vortex 28/28; HLS fails lbm, backprop, B+tree, dwt2d and LUD
on BRAM and hybridsort on atomics.
"""

from repro.harness import run_coverage


def main():
    report = run_coverage()
    print(report.render())
    print()
    print(f"Vortex passes:    {report.vortex_passes}/28")
    print(f"Intel SDK passes: {report.hls_passes}/28")
    print(f"Matches the paper's Table I: {report.matches_paper()}")


if __name__ == "__main__":
    main()
