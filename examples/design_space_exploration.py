#!/usr/bin/env python
"""Constrained design-space exploration — the paper's conclusion,
automated.

Question: *which Vortex configuration should I synthesize on the SX2800
for my workload?* The paper answers "it depends on the application, so
explore" (§III-C, §IV-A). This script runs the whole loop:

1. profile vecadd once on the functional interpreter,
2. enumerate 64 (cores, warps, threads) points, dropping the ones whose
   synthesis area exceeds the SX2800 (area model — no Quartus),
3. rank the survivors with the analytical model (no simulation),
4. verify the top three on the SimX cycle simulator.
"""

import numpy as np

from repro.benchmarks import get_benchmark
from repro.harness.dse import explore_design_space
from repro.hls import STRATIX10_SX2800
from repro.ocl import Context, NDRange
from repro.vortex import KernelProfile, VortexBackend


def simulate_vecadd(config, n=4096):
    bench = get_benchmark("vecadd")
    ctx = Context(VortexBackend(config))
    prog = ctx.program(bench.build())
    rng = np.random.default_rng(0)
    a = ctx.buffer(rng.random(n, dtype=np.float32))
    b = ctx.buffer(rng.random(n, dtype=np.float32))
    c = ctx.alloc(n)
    return prog.launch("vecadd", [a, b, c, n], n,
                       min(16, config.warps * config.threads)).cycles


def main():
    bench = get_benchmark("vecadd")
    kernel = bench.build()[0]
    rng = np.random.default_rng(0)
    n = 4096
    args = [rng.random(n, dtype=np.float32),
            rng.random(n, dtype=np.float32),
            np.zeros(n, dtype=np.float32), n]
    profile = KernelProfile.collect(kernel, args, NDRange.create(n, 16))

    result = explore_design_space(
        profile,
        device=STRATIX10_SX2800,
        core_counts=(1, 2, 4, 8, 16),  # 16-core points exceed the part
        simulate_top=3,
        simulate=simulate_vecadd,
    )
    print(result.render())
    best = result.best
    print(f"\nrecommended configuration: {best.config.label()} "
          f"({best.area.aluts:,} ALUTs, {best.area.brams:,} BRAMs)")
    if result.rejected:
        biggest = max(result.rejected)
        print(f"example rejected point: {biggest[0]} ({biggest[1]})")


if __name__ == "__main__":
    main()
