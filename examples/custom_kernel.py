#!/usr/bin/env python
"""Tutorial: write your own kernel and inspect both compilation flows.

Builds a fused multiply-add-with-clamp kernel with the builder DSL, then:

* prints the SSA IR,
* prints the HLS load/store-unit classification and area breakdown,
* prints the Vortex RISC-V disassembly (note the SPLIT/JOIN pair around
  the divergent bounds check),
* runs it on both backends and cross-checks the results.
"""

import numpy as np

from repro.hls import HLSBackend, classify_kernel, estimate, format_breakdown
from repro.ocl import Context, FLOAT32, GLOBAL_FLOAT32, INT32, KernelBuilder
from repro.ocl.ndrange import NDRange
from repro.vortex import VortexBackend, VortexConfig, compile_kernel


def build_kernel():
    b = KernelBuilder("fma_clamp")
    x = b.param("x", GLOBAL_FLOAT32)
    y = b.param("y", GLOBAL_FLOAT32)
    out = b.param("out", GLOBAL_FLOAT32)
    n = b.param("n", INT32)
    alpha = b.param("alpha", FLOAT32)
    lo = b.param("lo", FLOAT32)
    hi = b.param("hi", FLOAT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, n)):
        v = b.add(b.mul(alpha, b.load(x, gid)), b.load(y, gid))
        v = b.min(b.max(v, lo), hi)  # clamp
        b.store(out, gid, v)
    return b.finish()


def main():
    kernel = build_kernel()
    print("=== SSA IR ===")
    print(kernel.format())
    print()

    print("=== HLS view ===")
    for site in classify_kernel(kernel):
        kind = "store" if site.is_store else "load"
        print(f"  {kind:5s} -> {site.kind.value} LSU")
    print(format_breakdown(estimate(kernel), title="area breakdown:"))
    print()

    print("=== Vortex view ===")
    image = compile_kernel(kernel, NDRange.create(256, 16))
    print(image.disassembly())
    print()

    n = 256
    rng = np.random.default_rng(1)
    x_host = rng.random(n, dtype=np.float32) * 4 - 2
    y_host = rng.random(n, dtype=np.float32)
    args_tail = [n, 1.5, -0.5, 1.5]
    outputs = {}
    for backend in (HLSBackend(),
                    VortexBackend(VortexConfig(cores=2, warps=4, threads=8))):
        ctx = Context(backend)
        prog = ctx.program([kernel])
        x = ctx.buffer(x_host)
        y = ctx.buffer(y_host)
        out = ctx.alloc(n)
        stats = prog.launch("fma_clamp", [x, y, out] + args_tail,
                            global_size=n, local_size=16)
        outputs[backend.name] = out.read()
        print(f"[{backend.name}] cycles={stats.cycles:,}")
    expected = np.clip(np.float32(1.5) * x_host + y_host, -0.5, 1.5)
    for name, got in outputs.items():
        print(f"  {name}: max |err| = "
              f"{np.max(np.abs(got - expected)):.2e}")


if __name__ == "__main__":
    main()
