#!/usr/bin/env python
"""The paper's §III-B case study: shrinking backprop's HLS footprint.

Walks the three source variants of ``bpnn_adjust_weights`` (the paper's
Fig. 6 listings) through the HLS area model:

* original code      — ~188% of the MX2100's BRAM: synthesis fails;
* O1 variable reuse  — ~144%: still fails;
* O2 pipelined load  — ~83%: first variant that fits.

Also prints the per-component area breakdown (showing the
burst-coalesced load units dominating, "over 1,000 BRAM blocks per
line") and an ablation: how much of O1 the compiler's automatic CSE pass
recovers without touching the source.
"""

from repro.benchmarks import backprop
from repro.harness import run_auto_cse_ablation, run_case_study
from repro.hls import aoc, format_breakdown


def main():
    report = run_case_study()
    print(report.render())
    print()

    area = aoc(backprop.build_original(), enforce_capacity=False)
    print(format_breakdown(
        area, title="Original-code component breakdown:"))
    print()

    ablation = run_auto_cse_ablation()
    print("Automatic-CSE ablation (BRAM blocks):")
    print(f"  original source   : {ablation['original']:,}")
    print(f"  + automatic CSE   : {ablation['auto_cse']:,}")
    print(f"  manual O1 source  : {ablation['manual_o1']:,}")
    print()
    print("The automatic pass merges the duplicated loads in *both*")
    print("halves of the kernel, so it recovers more than the paper's")
    print("manual O1 rewrite (which only touched the main half) — but")
    print("neither fits the board without the O2 pipelined-load trade.")


if __name__ == "__main__":
    main()
