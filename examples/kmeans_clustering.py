#!/usr/bin/env python
"""End-to-end k-means clustering on the soft GPU.

A full iterative application (not a single kernel launch): the
assignment kernel from the Rodinia-style benchmark runs on the Vortex
backend every iteration, the host recomputes centroids (as Rodinia's
host code does), and the loop runs to convergence. Demonstrates the
soft-GPU value proposition from the paper's Table IV discussion: one
synthesized configuration serves a whole application, launch after
launch, with no resynthesis.
"""

import numpy as np

from repro.benchmarks import kmeans
from repro.ocl import Context
from repro.vortex import VortexBackend, VortexConfig


def make_blobs(npoints, nclusters, nfeatures, seed=0):
    rng = np.random.default_rng(seed)
    centres = rng.random((nclusters, nfeatures), dtype=np.float32)
    assignment = rng.integers(0, nclusters, npoints)
    pts = centres[assignment] + rng.normal(
        0, 0.05, (npoints, nfeatures)).astype(np.float32)
    return pts.astype(np.float32), assignment


def main():
    npoints, nclusters, nfeatures = 128, 4, 4
    points, truth = make_blobs(npoints, nclusters, nfeatures)

    ctx = Context(VortexBackend(VortexConfig(cores=2, warps=8, threads=8)))
    prog = ctx.program(kmeans.build())
    features = ctx.buffer(points.reshape(-1))
    membership = ctx.alloc(npoints, np.int32)

    rng = np.random.default_rng(7)
    centres = points[rng.choice(npoints, nclusters, replace=False)].copy()
    total_cycles = 0
    for iteration in range(20):
        clusters = ctx.buffer(centres.reshape(-1))
        stats = prog.launch(
            "kmeans",
            [features, clusters, membership, npoints, nclusters, nfeatures],
            global_size=npoints, local_size=16,
        )
        total_cycles += stats.cycles
        labels = membership.read()
        new_centres = centres.copy()
        for c in range(nclusters):
            mask = labels == c
            if mask.any():
                new_centres[c] = points[mask].mean(axis=0)
        moved = float(np.abs(new_centres - centres).max())
        centres = new_centres
        print(f"iter {iteration:2d}: {stats.cycles:,} cycles, "
              f"max centroid move {moved:.4f}")
        if moved < 1e-4:
            break

    labels = membership.read()
    # Clustering quality: points sharing a true blob should share a label.
    agree = 0
    pairs = 0
    rng = np.random.default_rng(11)
    for _ in range(2000):
        i, j = rng.integers(0, npoints, 2)
        if truth[i] == truth[j]:
            pairs += 1
            agree += labels[i] == labels[j]
    print(f"\nconverged after {iteration + 1} iterations, "
          f"{total_cycles:,} device cycles total")
    print(f"same-blob pair agreement: {agree / max(pairs, 1):.0%}")


if __name__ == "__main__":
    main()
