#!/usr/bin/env python
"""The paper's Figure 7: Vortex hardware-configuration exploration.

Sweeps vecadd and transpose over warps x threads in {2,4,8,16}^2 on the
4-core SimX model and prints normalized-cycle heatmaps (light = fast,
like the paper's figure), plus the measured-vs-paper ratio table for the
configurations the paper quotes.

This is the §IV-A "challenge 1" in action: the optimal configuration is
application-dependent, so per-application design-space exploration on
the simulator (rather than resynthesis) is essential.
"""

from repro.harness import render_comparison, run_sweep


def main():
    results = []
    for benchmark in ("vecadd", "transpose"):
        result = run_sweep(benchmark)
        results.append(result)
        print(result.render())
        print(f"  LSU stalls at best {result.best}: "
              f"{result.lsu_stalls[result.best]:,}")
        worst = max(result.cycles, key=result.cycles.get)
        print(f"  LSU stalls at worst {worst}: "
              f"{result.lsu_stalls[worst]:,}")
        print()
    print(render_comparison(results))


if __name__ == "__main__":
    main()
