#!/usr/bin/env python
"""A backprop weight-update loop on the soft GPU — the application the
paper's §III-B case study kernel comes from.

Repeatedly applies the Rodinia-style ``bpnn_adjust_weights`` kernel (the
Table II subject) with momentum, on the Vortex backend. The same source
would need the O2 rewrite before the HLS flow could even synthesize it;
on the soft GPU it runs as-is — the coverage asymmetry of Table I shown
as a working application.
"""

import numpy as np

from repro.benchmarks import backprop
from repro.hls import HLSBackend
from repro.errors import SynthesisError
from repro.ocl import Context
from repro.vortex import VortexBackend, VortexConfig


def main():
    wl = backprop.workload(scale=1, seed=0)

    # The HLS flow rejects the original source (Table I / Table II):
    try:
        Context(HLSBackend()).program(backprop.build())
    except SynthesisError as exc:
        print(f"Intel HLS model: {exc}\n")

    # The soft GPU runs it unmodified, iteration after iteration:
    ctx = Context(VortexBackend(VortexConfig(cores=2, warps=8, threads=8)))
    prog = ctx.program(backprop.build())
    delta = ctx.buffer(wl["delta"])
    ly = ctx.buffer(wl["ly"])
    w = ctx.buffer(wl["w"])
    oldw = ctx.buffer(wl["oldw"])
    w0 = w.read()
    for epoch in range(5):
        stats = prog.launch(
            "bpnn_adjust_weights",
            [delta, ly, w, oldw, wl["hid"]],
            global_size=(backprop.HEIGHT, backprop.LOCAL_Y * wl["nby"]),
            local_size=(backprop.HEIGHT, backprop.LOCAL_Y),
        )
        drift = float(np.abs(w.read() - w0).mean())
        print(f"epoch {epoch}: {stats.cycles:,} cycles, "
              f"mean |w - w0| = {drift:.4f}")

    print("\nweights updated on-device for 5 epochs; the momentum term "
          "(oldw)\nwas carried between launches entirely in device "
          "buffers.")


if __name__ == "__main__":
    main()
