#!/usr/bin/env python
"""Run the whole benchmark suite through both flows and tabulate the
outcome — coverage plus the cycle estimates each model reports.

The paper deliberately centres on *coverage* ("the performance of both
platforms heavily relies on the quality of HLS compiler optimizations
and the GPU softcore", §I), so treat the cycle columns as model
estimates for relative exploration, not as a benchmarked comparison of
the real systems.
"""

from repro.benchmarks import all_benchmarks, run_benchmark
from repro.harness.tables import render_table
from repro.hls import HLSBackend
from repro.vortex import VortexBackend, VortexConfig


def main():
    rows = []
    vortex_backend_cfg = VortexConfig()  # 4c8w8t on DDR4 (SX2800-like)
    for bench in all_benchmarks():
        vortex = run_benchmark(bench, VortexBackend(vortex_backend_cfg))
        hls = run_benchmark(bench, HLSBackend())
        v_cycles = f"{vortex.total_cycles:,}" if vortex.ok else "-"
        if hls.ok:
            h_cycles = f"{hls.total_cycles:,}"
        else:
            h_cycles = f"fail: {hls.fail_reason}"
        rows.append([
            bench.table_name,
            "O" if vortex.ok else "X",
            v_cycles,
            "O" if hls.ok else "X",
            h_cycles,
        ])
    print(render_table(
        ["Benchmark", "Vortex", "Vortex cycles", "Intel HLS", "HLS cycles"],
        rows,
        title="Both flows across the Table I suite (model estimates)",
    ))


if __name__ == "__main__":
    main()
