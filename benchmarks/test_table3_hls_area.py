"""Benchmark E4 — regenerates Table III (HLS areas for vecadd, matmul,
gauss, BFS).

The vecadd row is calibrated exactly; the remaining rows must hold the
published *shape*: the complexity ordering by BRAM (vecadd < matmul <
BFS < gauss), each within 35% of the published absolute count, every
benchmark fitting the device, and DSP usage "relatively low across
benchmarks" (the paper's §III-D observation).
"""

import pytest

from repro.harness import PAPER_TABLE3, run_table3
from repro.hls import STRATIX10_MX2100


@pytest.fixture(scope="module")
def report():
    return run_table3()


def test_table3_generation(benchmark):
    rep = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    print()
    print(rep.render())
    assert set(rep.rows) == set(PAPER_TABLE3)


def test_vecadd_row_exact(report):
    assert report.rows["Vecadd"].brams == 1_065
    assert report.rows["Vecadd"].dsps == 1


def test_bram_complexity_ordering(report):
    brams = {k: v.brams for k, v in report.rows.items()}
    assert brams["Vecadd"] < brams["Matmul"] < brams["BFS"] < brams["Gauss"]


def test_absolute_brams_within_tolerance(report):
    for name, area in report.rows.items():
        paper = PAPER_TABLE3[name][2]
        assert abs(area.brams - paper) / paper < 0.35, (
            f"{name}: {area.brams} vs paper {paper}")


def test_all_fit_the_device(report):
    for name, area in report.rows.items():
        assert area.brams <= STRATIX10_MX2100.brams, name


def test_dsps_relatively_low(report):
    for name, area in report.rows.items():
        assert area.dsps <= 16, name
