"""Benchmark E1 — regenerates the paper's Table I and checks every cell.

Expected: Vortex supports all 28 benchmarks; the Intel HLS model fails
lbm / backprop / B+tree / dwt2d / LUD with "Not enough BRAM" and
hybridsort with "Atomics" — cell-for-cell the published table.
"""

from repro.harness import PAPER_TABLE1, run_coverage


def test_table1_coverage(benchmark):
    report = benchmark.pedantic(run_coverage, rounds=1, iterations=1)
    print()
    print(report.render())
    assert set(report.rows) == set(PAPER_TABLE1)
    assert report.vortex_passes == 28
    assert report.hls_passes == 22
    mismatches = []
    for name, (vortex, hls) in report.rows.items():
        want_v, want_h, want_reason = PAPER_TABLE1[name]
        if vortex.passed != want_v:
            mismatches.append(f"{name}: vortex {vortex.passed} != {want_v}")
        if hls.passed != want_h:
            mismatches.append(f"{name}: hls {hls.passed} != {want_h}")
        if not want_h and hls.reason != want_reason:
            mismatches.append(
                f"{name}: reason {hls.reason!r} != {want_reason!r}")
    assert not mismatches, mismatches
    assert report.matches_paper()
