"""SimX throughput benchmark: simulated-cycles per wall-clock second.

Measures the Fig. 7 benchmarks (vecadd, transpose) on the default SimX
configuration and writes ``BENCH_simx.json`` at the repository root —
the perf-trajectory artifact ROADMAP item 1 asks for. Only the time
spent inside ``Machine.launch`` counts (compilation, buffer marshalling
and validation are host-side and excluded); each benchmark takes the
best of ``REPEATS`` runs to damp machine noise.

The committed ``BENCH_simx.json`` doubles as the regression baseline:
a fresh measurement more than ``ALLOWED_REGRESSION`` below the
committed cycles/sec fails the run. Regenerate the baseline with
``REPRO_BENCH_UPDATE=1`` after an intentional change (and call the
perf delta out in review). Cycle counts are also pinned exactly — a
throughput change must never be a behaviour change in disguise (the
golden-trace layer guards that too).
"""

import json
import os
import platform
import sys
import time
from pathlib import Path

import pytest

from repro.benchmarks.suite import run_benchmark
from repro.vortex import VortexBackend
from repro.vortex.simx.machine import Machine

#: The Fig. 7 benchmark pair, at scales large enough that per-launch
#: fixed costs (dispatch ramp, compile cache) don't dominate timing.
FIG7_BENCHES = (("vecadd", 32), ("transpose", 8))
REPEATS = 3
ALLOWED_REGRESSION = 0.30

#: snapshot cadence for the enabled-path overhead measurement — small
#: enough that a ~34k-cycle run writes several snapshots, so the
#: recorded overhead includes capture+serialise+fsync, not just the
#: boundary polling.
CHECKPOINT_EVERY = 8_192

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_simx.json"


def _measure(bench: str, scale: int) -> dict:
    """Best-of-``REPEATS`` simulated-cycles/sec for one benchmark."""
    sim_wall = 0.0
    original = Machine.launch

    def timed(self, *args, **kwargs):
        nonlocal sim_wall
        start = time.perf_counter()
        result = original(self, *args, **kwargs)
        sim_wall += time.perf_counter() - start
        return result

    best = None
    cycles = None
    Machine.launch = timed
    try:
        for _ in range(REPEATS):
            sim_wall = 0.0
            result = run_benchmark(bench, VortexBackend(), scale=scale)
            assert result.ok, f"{bench} failed: {result.status}"
            cycles = result.total_cycles
            if best is None or sim_wall < best:
                best = sim_wall
    finally:
        Machine.launch = original
    return {
        "scale": scale,
        "cycles": cycles,
        "sim_seconds": round(best, 4),
        "cycles_per_sec": round(cycles / best),
    }


def _measure_checkpointed(bench: str, scale: int, ckpt_dir) -> dict:
    """Like :func:`_measure`, but with snapshotting enabled on every
    launch — the *enabled-path* cost (the disabled path is what the
    committed baseline gates; it must stay free)."""
    from repro.vortex.simx.checkpoint import CheckpointPlan, CheckpointStore

    store = CheckpointStore(ckpt_dir)
    saves = 0
    real_save = store.save

    def counting_save(*args, **kwargs):
        nonlocal saves
        saves += 1
        return real_save(*args, **kwargs)

    store.save = counting_save
    sim_wall = 0.0
    original = Machine.launch

    def timed(self, *args, **kwargs):
        nonlocal sim_wall
        start = time.perf_counter()
        result = original(self, *args, **kwargs)
        sim_wall += time.perf_counter() - start
        return result

    best = None
    cycles = None
    Machine.launch = timed
    try:
        for rep in range(REPEATS):
            sim_wall = 0.0
            saves = 0
            plan = CheckpointPlan(store, f"bench-{bench}-r{rep}",
                                  every_cycles=CHECKPOINT_EVERY)
            result = run_benchmark(bench, VortexBackend(checkpoint=plan),
                                   scale=scale)
            assert result.ok, f"{bench} failed: {result.status}"
            cycles = result.total_cycles
            if best is None or sim_wall < best:
                best = sim_wall
    finally:
        Machine.launch = original
    return {
        "cycles": cycles,
        "sim_seconds": round(best, 4),
        "cycles_per_sec": round(cycles / best),
        "snapshot_every_cycles": CHECKPOINT_EVERY,
        "snapshots_per_run": saves,
    }


@pytest.fixture(scope="module")
def measurements():
    return {bench: _measure(bench, scale) for bench, scale in FIG7_BENCHES}


@pytest.fixture(scope="module")
def checkpoint_overhead(measurements, tmp_path_factory):
    base = measurements["vecadd"]
    ckpt = _measure_checkpointed("vecadd", base["scale"],
                                 tmp_path_factory.mktemp("bench-ckpt"))
    # checkpointing must be invisible to the simulation itself.
    assert ckpt["cycles"] == base["cycles"], (
        f"checkpointing changed simulated work: {ckpt['cycles']} vs "
        f"{base['cycles']} cycles")
    slowdown = (base["cycles_per_sec"] / ckpt["cycles_per_sec"]) - 1.0
    ckpt["overhead_pct"] = round(max(0.0, slowdown) * 100, 1)
    extra = max(0.0, ckpt["sim_seconds"] - base["sim_seconds"])
    ckpt["ms_per_snapshot"] = round(
        extra * 1000 / max(1, ckpt["snapshots_per_run"]), 1)
    return ckpt


def _aggregate(measured: dict) -> int:
    total_cycles = sum(m["cycles"] for m in measured.values())
    total_seconds = sum(m["sim_seconds"] for m in measured.values())
    return round(total_cycles / total_seconds)


def test_speed_vs_committed_baseline(measurements):
    if not BENCH_PATH.exists() or os.environ.get("REPRO_BENCH_UPDATE"):
        pytest.skip("no committed BENCH_simx.json baseline")
    committed = json.loads(BENCH_PATH.read_text())
    floor = 1.0 - ALLOWED_REGRESSION
    for bench, measured in measurements.items():
        ref = committed["fig7_benchmarks"][bench]
        # identical simulated work first: cycle counts are exact
        assert measured["cycles"] == ref["cycles"], (
            f"{bench}: simulated {measured['cycles']} cycles, baseline "
            f"simulated {ref['cycles']} — behaviour changed, not speed"
        )
        assert measured["cycles_per_sec"] >= floor * ref["cycles_per_sec"], (
            f"{bench}: {measured['cycles_per_sec']:,} cycles/sec is more "
            f"than {ALLOWED_REGRESSION:.0%} below the committed "
            f"{ref['cycles_per_sec']:,} — perf regression "
            f"(REPRO_BENCH_UPDATE=1 regenerates the baseline if this "
            f"slowdown is intentional)"
        )
    agg = _aggregate(measurements)
    assert agg >= floor * committed["aggregate_cycles_per_sec"]


def test_checkpoint_enabled_path_overhead(checkpoint_overhead):
    """Snapshotting never changes simulated work (asserted in the
    fixture) and a single snapshot stays cheap. The cadence here is
    deliberately ~250x shorter than the production default (2M cycles),
    so the *ratio* is dominated by snapshot count and not gated — the
    per-snapshot wall cost is, with a loose sanity ceiling that still
    catches an accidental uncompressed or quadratic capture."""
    assert checkpoint_overhead["snapshots_per_run"] >= 2, (
        "overhead measurement took too few snapshots to mean anything")
    assert checkpoint_overhead["ms_per_snapshot"] <= 500.0, (
        f"one snapshot costs {checkpoint_overhead['ms_per_snapshot']}ms "
        f"of wall time — snapshot capture has regressed badly")


def test_writes_bench_json(measurements, checkpoint_overhead):
    payload = {
        "schema": 1,
        "fig7_benchmarks": measurements,
        "aggregate_cycles_per_sec": _aggregate(measurements),
        "checkpoint_enabled_path": checkpoint_overhead,
        "meta": {
            "python": sys.version.split()[0],
            "machine": platform.machine(),
            "repeats": REPEATS,
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True)
                          + "\n")
    print(f"\nwrote {BENCH_PATH}")
    for bench, m in measurements.items():
        print(f"  {bench} (scale {m['scale']}): {m['cycles']:,} cycles "
              f"in {m['sim_seconds']}s = {m['cycles_per_sec']:,} cyc/s")
    co = checkpoint_overhead
    print(f"  checkpointed vecadd (every {co['snapshot_every_cycles']:,} "
          f"cycles, {co['snapshots_per_run']} snapshots): "
          f"{co['cycles_per_sec']:,} cyc/s ({co['overhead_pct']}% overhead)")
