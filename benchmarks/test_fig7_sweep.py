"""Benchmark E3 — regenerates Figure 7: the Vortex warp/thread sweep.

The paper's §III-C observations, reproduced on the SimX model:

* the two benchmarks reach their optima at *different* configurations —
  the core point motivating per-application design-space exploration;
* **vecadd** (load-dense) peaks at 4 warps / 4 threads; larger
  configurations lose to LSU stalls (the paper quotes ~27% at 8/8 and
  ~11% at 8 warps / 4 threads — we land within a few points of both);
* **transpose** peaks at 8 warps / 8 threads (more parallelism keeps
  paying because its load pressure is half of vecadd's); smaller and
  bigger configurations are worse. The paper's quoted 44%/17% penalties
  are steeper than our model's (see EXPERIMENTS.md), but the ordering
  and the optimum cell agree;
* LSU stalls grow with warps x threads for vecadd, the paper's stated
  mechanism.
"""

import pytest

from repro.harness import run_sweep
from repro.harness.sweep import render_comparison


@pytest.fixture(scope="module")
def vecadd_sweep():
    return run_sweep("vecadd")


@pytest.fixture(scope="module")
def transpose_sweep():
    return run_sweep("transpose")


def test_fig7_vecadd(benchmark, vecadd_sweep):
    result = benchmark.pedantic(lambda: vecadd_sweep, rounds=1, iterations=1)
    print()
    print(result.render())
    assert result.best == (4, 4)
    assert 1.10 <= result.ratio(8, 8) <= 1.45  # paper: 1.27
    assert 1.02 <= result.ratio(8, 4) <= 1.35  # paper: 1.11
    # Both smaller and larger configurations lose.
    assert result.ratio(2, 2) > 1.5
    assert result.ratio(16, 16) > result.ratio(8, 8)


def test_fig7_transpose(benchmark, transpose_sweep):
    result = benchmark.pedantic(lambda: transpose_sweep, rounds=1,
                                iterations=1)
    print()
    print(result.render())
    assert result.best == (8, 8)
    assert result.ratio(4, 4) > 1.0  # paper: 1.44
    assert result.ratio(8, 4) >= 1.0  # paper: 1.17
    assert result.ratio(2, 2) > 1.4


def test_fig7_optima_differ(vecadd_sweep, transpose_sweep):
    """The paper's §IV-A challenge 1: optima are application-dependent."""
    assert vecadd_sweep.best != transpose_sweep.best
    print()
    print(render_comparison([vecadd_sweep, transpose_sweep]))


def test_fig7_lsu_stall_mechanism(vecadd_sweep):
    """vecadd's degradation is driven by LSU stalls: the stall *density*
    (bounced loads per executed cycle) grows from the optimum to the
    8-warp/8-thread configuration the paper calls out (§III-C)."""
    density_best = (vecadd_sweep.lsu_stalls[(4, 4)]
                    / vecadd_sweep.cycles[(4, 4)])
    density_88 = (vecadd_sweep.lsu_stalls[(8, 8)]
                  / vecadd_sweep.cycles[(8, 8)])
    assert density_88 > density_best


def test_fig7_vecadd_more_load_sensitive(vecadd_sweep, transpose_sweep):
    """'vector addition, which involves more loads, incurs more LSU
    stalls': at the largest configuration its stall count exceeds
    transpose's."""
    assert (vecadd_sweep.lsu_stalls[(16, 16)]
            > transpose_sweep.lsu_stalls[(16, 16)])
