"""Hierarchical-DSE benchmark: end-to-end wall clock vs the flat
baseline, and analytical screen throughput.

Measures one cold-cache design-space exploration on a 648-point
(C, W, T) grid of the vecadd workload two ways:

* **hierarchical** — calibrated analytical screen, Pareto-frontier
  extraction, SimX confirmation of the pruned frontier only;
* **flat** — the retained ``simulate_top=K`` baseline: same screen,
  then SimX on the K best-predicted points.

Both modes run with ``cache=None`` (no result-cache hits: every
confirmation simulates), so the recorded speedup is the real
simulations-avoided win, not cache warmth. The calibration artifact is
fitted once outside both timed regions — it is a reusable input (the
CLI persists it), not a per-exploration cost.

The committed ``BENCH_dse.json`` doubles as the regression baseline:
screen throughput more than ``ALLOWED_REGRESSION`` below the committed
value fails the run (wall-clock speedup is also recorded but gated only
against its hard floor — it is a ratio of two measured times and noisy
on loaded machines). Regenerate with ``REPRO_BENCH_UPDATE=1``.
"""

import json
import os
import platform
import sys
import time
from pathlib import Path

import pytest

from repro.calibrate import run_calibration
from repro.harness.dse import run_dse

BENCH = "vecadd"
N = 1024

#: 8 x 9 x 9 = 648 enumerated design points — comfortably past the
#: >= 500-point floor the acceptance criteria name, and deliberately
#: including non-power-of-two geometries the screens must reject.
CORES = (1, 2, 3, 4, 6, 8, 12, 16)
WARPS = (1, 2, 4, 6, 8, 12, 16, 24, 32)
THREADS = (1, 2, 4, 6, 8, 12, 16, 24, 32)

#: flat-baseline confirmation count ("rank the grid, simulate the
#: top K" — the pre-hierarchical default).
FLAT_TOP_K = 64

#: hierarchical confirmation ceiling (the pruned frontier is usually
#: smaller still).
FRONTIER_CAP = 6

#: hard floors from the acceptance criteria.
MIN_SPEEDUP = 10.0
MIN_SCREEN_POINTS_PER_SEC = 1_000.0

ALLOWED_REGRESSION = 0.30

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_dse.json"


def _grid_kwargs():
    return dict(core_counts=CORES, warp_sizes=WARPS, thread_sizes=THREADS)


@pytest.fixture(scope="module")
def measurements():
    calibration = run_calibration(benchmarks=(BENCH,), n=N)

    start = time.perf_counter()
    hier = run_dse(BENCH, n=N, calibration=calibration,
                   confirm="frontier", frontier_cap=FRONTIER_CAP,
                   cache=None, **_grid_kwargs())
    hier_wall = time.perf_counter() - start

    start = time.perf_counter()
    flat = run_dse(BENCH, n=N, calibration=calibration,
                   confirm="top", simulate_top=FLAT_TOP_K,
                   cache=None, **_grid_kwargs())
    flat_wall = time.perf_counter() - start

    def confirmed(result):
        return sum(1 for c in result.candidates
                   if c.simulated_cycles is not None)

    return {
        "benchmark": BENCH,
        "n": N,
        "grid": {"cores": list(CORES), "warps": list(WARPS),
                 "threads": list(THREADS),
                 "points": len(CORES) * len(WARPS) * len(THREADS)},
        "hierarchical": {
            "wall_seconds": round(hier_wall, 4),
            "confirmations": confirmed(hier),
            "frontier_size": len(hier.frontier),
            "screen_points_per_sec": round(hier.screen_points_per_sec),
            "best_config": hier.best.config.label(),
            "best_cycles": hier.best.simulated_cycles,
        },
        "flat": {
            "wall_seconds": round(flat_wall, 4),
            "confirmations": confirmed(flat),
            "top_k": FLAT_TOP_K,
            "best_config": flat.best.config.label(),
            "best_cycles": flat.best.simulated_cycles,
        },
        "speedup": round(flat_wall / hier_wall, 1),
        "_results": (hier, flat),
    }


def test_same_winner_as_flat_baseline(measurements):
    """The whole point of the hierarchy: orders of magnitude fewer
    simulations must not change the answer. Simulation is
    deterministic, so this is exact, not statistical."""
    hier, flat = measurements["_results"]
    assert hier.best.config.label() == flat.best.config.label()
    assert hier.best.simulated_cycles == flat.best.simulated_cycles


def test_hierarchical_speedup_floor(measurements):
    h = measurements["hierarchical"]
    f = measurements["flat"]
    assert h["confirmations"] <= FRONTIER_CAP
    assert f["confirmations"] == FLAT_TOP_K
    assert measurements["speedup"] >= MIN_SPEEDUP, (
        f"hierarchical DSE is only {measurements['speedup']}x faster "
        f"than the flat top-{FLAT_TOP_K} baseline "
        f"({h['wall_seconds']}s vs {f['wall_seconds']}s) — the "
        f"acceptance floor is {MIN_SPEEDUP}x")


def test_screen_throughput_floor(measurements):
    pps = measurements["hierarchical"]["screen_points_per_sec"]
    assert pps >= MIN_SCREEN_POINTS_PER_SEC, (
        f"analytical screen ran at {pps:,.0f} points/sec — below the "
        f"{MIN_SCREEN_POINTS_PER_SEC:,.0f}/sec acceptance floor")


def test_screen_throughput_vs_committed_baseline(measurements):
    if not BENCH_PATH.exists() or os.environ.get("REPRO_BENCH_UPDATE"):
        pytest.skip("no committed BENCH_dse.json baseline")
    committed = json.loads(BENCH_PATH.read_text())
    ref = committed["hierarchical"]["screen_points_per_sec"]
    measured = measurements["hierarchical"]["screen_points_per_sec"]
    floor = (1.0 - ALLOWED_REGRESSION) * ref
    assert measured >= floor, (
        f"screen throughput {measured:,.0f} points/sec is more than "
        f"{ALLOWED_REGRESSION:.0%} below the committed {ref:,.0f} — "
        f"perf regression (REPRO_BENCH_UPDATE=1 regenerates the "
        f"baseline if this slowdown is intentional)")


def test_writes_bench_json(measurements):
    payload = {k: v for k, v in measurements.items()
               if not k.startswith("_")}
    payload["schema"] = 1
    payload["meta"] = {
        "python": sys.version.split()[0],
        "machine": platform.machine(),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True)
                          + "\n")
    h, f = payload["hierarchical"], payload["flat"]
    print(f"\nwrote {BENCH_PATH}")
    print(f"  grid: {payload['grid']['points']} points, "
          f"screen {h['screen_points_per_sec']:,} points/sec")
    print(f"  hierarchical: {h['confirmations']} sims in "
          f"{h['wall_seconds']}s; flat: {f['confirmations']} sims in "
          f"{f['wall_seconds']}s -> {payload['speedup']}x")
