"""Ablation benchmarks for the design choices DESIGN.md §5 calls out.

These go beyond the paper's published artifacts: each isolates one
mechanism in a flow and confirms the trade-off the paper discusses
qualitatively.
"""

import numpy as np
import pytest

from repro.benchmarks import get_benchmark
from repro.hls import HLSBackend, aoc, estimate
from repro.ocl import (
    Context,
    FLOAT32,
    GLOBAL_FLOAT32,
    GLOBAL_INT32,
    INT32,
    KernelBuilder,
)
from repro.vortex import VortexBackend, VortexConfig


def _strided_kernel(pipelined: bool):
    """A kernel whose load is strided (lid-based): the paper's O2 trade."""
    b = KernelBuilder("k")
    src = b.param("src", GLOBAL_FLOAT32)
    dst = b.param("dst", GLOBAL_FLOAT32)
    idx = b.add(b.mul(b.local_id(0), 4), b.group_id(0))
    v = b.load(src, idx, pipelined=pipelined)
    b.store(dst, b.global_id(0), v)
    return b.finish()


class TestLSUKindTradeoff:
    """O2's trade: pipelined LSUs shrink area but serialise accesses
    ("area efficiency at the expense of performance", §III-B)."""

    def _run(self, pipelined):
        kernel = _strided_kernel(pipelined)
        area = estimate(kernel)
        ctx = Context(HLSBackend())
        prog = ctx.program([kernel])
        src = ctx.buffer(np.arange(256, dtype=np.float32))
        dst = ctx.alloc(256)
        stats = prog.launch("k", [src, dst], 256, 16)
        return area, stats

    def test_area_down_cycles_up(self, benchmark):
        (burst_area, burst_stats), (pipe_area, pipe_stats) = \
            benchmark.pedantic(
                lambda: (self._run(False), self._run(True)),
                rounds=1, iterations=1,
            )
        assert pipe_area.brams < burst_area.brams
        assert pipe_area.aluts < burst_area.aluts
        assert pipe_stats.cycles > burst_stats.cycles
        ratio_area = burst_area.brams / pipe_area.brams
        ratio_time = pipe_stats.cycles / burst_stats.cycles
        print(f"\npipelined load: {ratio_area:.1f}x fewer BRAMs, "
              f"{ratio_time:.1f}x more cycles")


class TestMemorySystemAblation:
    """The paper's two boards differ exactly in the memory system (DDR4
    on the SX2800 vs HBM2 on the MX2100); sweep vecadd on both."""

    def _cycles(self, config):
        bench = get_benchmark("vecadd")
        ctx = Context(VortexBackend(config))
        prog = ctx.program(bench.build())
        rng = np.random.default_rng(0)
        n = 4096
        a = ctx.buffer(rng.random(n, dtype=np.float32))
        b = ctx.buffer(rng.random(n, dtype=np.float32))
        c = ctx.alloc(n)
        return prog.launch("vecadd", [a, b, c, n], n, 16).cycles

    def test_hbm_beats_ddr4_at_scale(self, benchmark):
        base = VortexConfig(cores=4, warps=16, threads=16)
        ddr4, hbm = benchmark.pedantic(
            lambda: (self._cycles(base), self._cycles(base.hbm())),
            rounds=1, iterations=1,
        )
        print(f"\n16w16t vecadd: DDR4 {ddr4:,} cycles, HBM2 {hbm:,}")
        assert hbm < ddr4  # more banks/rows absorb the big config's streams


class TestDispatchPolicy:
    """§IV-A challenge 4: work-distribution strategy matters. Chunked
    (vx_spawn) vs interleaved group hand-out changes DRAM row behaviour."""

    def _run(self, chunked):
        config = VortexConfig(cores=4, warps=8, threads=8,
                              chunked_dispatch=chunked)
        bench = get_benchmark("vecadd")
        ctx = Context(VortexBackend(config))
        prog = ctx.program(bench.build())
        rng = np.random.default_rng(0)
        n = 4096
        a = ctx.buffer(rng.random(n, dtype=np.float32))
        b = ctx.buffer(rng.random(n, dtype=np.float32))
        c = ctx.alloc(n)
        stats = prog.launch("vecadd", [a, b, c, n], n, 16)
        return stats.cycles, stats.extra["dram_row_hit_rate"]

    def test_policies_differ_measurably(self, benchmark):
        (ck_cycles, ck_rows), (il_cycles, il_rows) = benchmark.pedantic(
            lambda: (self._run(True), self._run(False)),
            rounds=1, iterations=1,
        )
        print(f"\nchunked: {ck_cycles:,} cycles (row hit {ck_rows:.0%}); "
              f"interleaved: {il_cycles:,} ({il_rows:.0%})")
        assert ck_cycles != il_cycles  # mapping visibly shifts behaviour


def _abs_kernels():
    """Same computation (|x|), three lowerings — §IV-A challenge 3:
    divergent branches (SPLIT/JOIN hardware), branch-free selects, and
    straight arithmetic (what a divergence-aware compiler would emit)."""

    def with_branches():
        b = KernelBuilder("abs_br")
        x = b.param("x", GLOBAL_INT32)
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        v = b.load(x, gid)
        r = b.var("r", INT32, init=0)
        with b.if_else(b.lt(v, 0)) as (t, e):
            with t:
                r.set(b.neg(v))
            with e:
                r.set(v)
        b.store(out, gid, r.get())
        return b.finish()

    def with_selects():
        b = KernelBuilder("abs_sel")
        x = b.param("x", GLOBAL_INT32)
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        v = b.load(x, gid)
        b.store(out, gid, b.select(b.lt(v, 0), b.neg(v), v))
        return b.finish()

    def with_arithmetic():
        b = KernelBuilder("abs_arith")
        x = b.param("x", GLOBAL_INT32)
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        b.store(out, gid, b.abs(b.load(x, gid)))
        return b.finish()

    return with_branches(), with_selects(), with_arithmetic()


class TestDivergenceLowering:
    """SPLIT/JOIN makes complex control flow *possible* but "these
    operations require additional computation cycles" (§IV-A): a
    compiler that recognises the arithmetic identity avoids the
    divergence machinery entirely and wins."""

    def _run(self, kernel):
        config = VortexConfig(cores=2, warps=4, threads=8)
        ctx = Context(VortexBackend(config))
        prog = ctx.program([kernel])
        rng = np.random.default_rng(3)
        n = 1024
        x = ctx.buffer(rng.integers(-200, 200, n).astype(np.int32))
        out = ctx.alloc(n, np.int32)
        stats = prog.launch(kernel.name, [x, out], n, 16)
        return stats, out.read()

    def test_divergence_cost_hierarchy(self, benchmark):
        branchy, selecty, arith = _abs_kernels()
        (b_stats, b_out), (s_stats, s_out), (a_stats, a_out) = \
            benchmark.pedantic(
                lambda: (self._run(branchy), self._run(selecty),
                         self._run(arith)),
                rounds=1, iterations=1,
            )
        np.testing.assert_array_equal(b_out, s_out)
        np.testing.assert_array_equal(b_out, a_out)
        print(f"\nSPLIT/JOIN branches: {b_stats.cycles:,} cycles; "
              f"selects: {s_stats.cycles:,}; arithmetic: {a_stats.cycles:,}")
        # The divergence-free arithmetic form beats the branchy one.
        assert a_stats.cycles < b_stats.cycles
        # Measured, documented reality of this model: the hardware
        # divergence path is competitive with generic if-conversion —
        # the win requires *recognising the idiom*, not just removing
        # branches (the §IV-A compiler-research opportunity).
        assert min(s_stats.cycles, b_stats.cycles) > a_stats.cycles


class TestHLSAutoCSE:
    """How much of the paper's manual O1 the compiler recovers (also
    reported in EXPERIMENTS.md)."""

    def test_auto_cse_bram_reduction(self, benchmark):
        from repro.harness import run_auto_cse_ablation

        result = benchmark.pedantic(run_auto_cse_ablation, rounds=1,
                                    iterations=1)
        assert result["auto_cse"] < result["original"]
        reduction = 1 - result["auto_cse"] / result["original"]
        print(f"\nautomatic CSE removes {reduction:.0%} of backprop's BRAMs")
