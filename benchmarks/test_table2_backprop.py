"""Benchmark E2 — regenerates Table II (the backprop case study).

Checks the optimization staircase against the published numbers: BRAMs
within 0.1% per row (the model is calibrated on exactly this mechanism),
the published utilisation percentages (188% / 144% / 83%), and the
fits-on-device flags (fail / fail / fit). Also checks the qualitative
ALUT/FF/DSP shape: monotone ALUT/FF decrease, DSP dip at O1 and rise at
O2 (the pipelined-load address engines).
"""

import pytest

from repro.harness import PAPER_TABLE2, run_auto_cse_ablation, run_case_study
from repro.hls import STRATIX10_MX2100


@pytest.fixture(scope="module")
def report():
    return run_case_study()


def test_table2_bram_sequence(benchmark):
    rep = benchmark.pedantic(run_case_study, rounds=1, iterations=1)
    print()
    print(rep.render())
    for row in rep.rows:
        paper_bram = PAPER_TABLE2[row.label][2]
        assert abs(row.area.brams - paper_bram) / paper_bram < 1e-3, row.label


def test_utilization_percentages(report):
    utils = [round(row.bram_utilization * 100) for row in report.rows]
    assert utils == [188, 144, 83]


def test_only_o2_fits(report):
    fits = [row.fits for row in report.rows]
    assert fits == [False, False, True]


def test_alut_ff_monotone_decrease(report):
    aluts = [row.area.aluts for row in report.rows]
    ffs = [row.area.ffs for row in report.rows]
    assert aluts[0] > aluts[1] > aluts[2]
    assert ffs[0] > ffs[1] > ffs[2]


def test_dsp_dips_then_rises(report):
    dsps = [row.area.dsps for row in report.rows]
    assert dsps[1] < dsps[0]  # O1 removes duplicated multipliers
    assert dsps[2] > dsps[1]  # O2's pipelined loads add address engines


def test_auto_cse_recovers_o1(benchmark):
    ablation = benchmark.pedantic(run_auto_cse_ablation, rounds=1,
                                  iterations=1)
    # The automatic pass must at least match the manual O1 rewrite.
    assert ablation["auto_cse"] <= ablation["manual_o1"]
    assert ablation["auto_cse"] < ablation["original"]
    # But without the pipelined-load trade it still must not fit.
    assert ablation["auto_cse"] > STRATIX10_MX2100.brams
