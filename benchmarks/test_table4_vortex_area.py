"""Benchmark E5 — regenerates Table IV (Vortex synthesis areas).

The component model (uncore + cores + warp tables + lanes + register
file) must reproduce every published cell within 2%, give exactly the
published DSP counts (896 / 1,792 — the FPU lanes), and preserve the
monotonicity the paper highlights: more cores/warps/threads, more area.
"""

import pytest

from repro.harness import PAPER_TABLE4, run_table4
from repro.vortex import VortexConfig
from repro.vortex.area import estimate, synthesize
from repro.errors import SynthesisError
from repro.hls import STRATIX10_SX2800


@pytest.fixture(scope="module")
def report():
    return run_table4()


def test_table4_generation(benchmark):
    rep = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    print()
    print(rep.render())
    assert rep.max_relative_error() < 0.02


def test_dsps_exact(report):
    for (c, w, t), row in report.rows.items():
        assert row.dsps == PAPER_TABLE4[(c, w, t)][3]


def test_area_monotone_in_geometry(report):
    assert report.rows[(2, 4, 16)].aluts < report.rows[(2, 8, 16)].aluts \
        < report.rows[(2, 16, 16)].aluts
    assert report.rows[(2, 8, 16)].aluts < report.rows[(4, 8, 16)].aluts
    assert report.rows[(4, 8, 16)].aluts < report.rows[(4, 16, 16)].aluts


def test_paper_configs_fit_sx2800(report):
    for (c, w, t) in PAPER_TABLE4:
        synthesize(VortexConfig(cores=c, warps=w, threads=t),
                   STRATIX10_SX2800)


def test_oversized_config_rejected():
    with pytest.raises(SynthesisError):
        synthesize(VortexConfig(cores=32, warps=16, threads=16),
                   STRATIX10_SX2800)


def test_hls_vs_softgpu_range_contrast(report):
    """§III-D: the soft GPU offers a broad range of areas from one
    source-independent design; vecadd-on-HLS is smaller than any
    Vortex configuration in the table."""
    from repro.harness import run_table3

    vecadd_hls = run_table3().rows["Vecadd"]
    smallest_vortex = min(r.brams for r in report.rows.values())
    assert vecadd_hls.brams < smallest_vortex
