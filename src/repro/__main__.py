"""Command-line entry point: regenerate the paper's artifacts.

Usage::

    python -m repro table1      # coverage
    python -m repro table2      # backprop case study
    python -m repro table3      # HLS areas
    python -m repro table4      # Vortex areas
    python -m repro fig7        # warp/thread sweep (slowest, ~1 min)
    python -m repro all
"""

from __future__ import annotations

import argparse
import sys


def _table1() -> None:
    from .harness import run_coverage

    report = run_coverage()
    print(report.render())
    print(f"\nVortex {report.vortex_passes}/28, "
          f"Intel SDK {report.hls_passes}/28; "
          f"matches paper: {report.matches_paper()}")


def _table2() -> None:
    from .harness import run_auto_cse_ablation, run_case_study

    print(run_case_study().render())
    ablation = run_auto_cse_ablation()
    print(f"\nauto-CSE ablation (BRAMs): {ablation}")


def _table3() -> None:
    from .harness import run_table3

    print(run_table3().render())


def _table4() -> None:
    from .harness import run_table4

    report = run_table4()
    print(report.render())
    print(f"\nmax relative error vs paper: "
          f"{report.max_relative_error():.2%}")


def _fig7() -> None:
    from .harness import render_comparison, run_sweep

    results = []
    for benchmark in ("vecadd", "transpose"):
        result = run_sweep(benchmark)
        results.append(result)
        print(result.render())
        print()
    print(render_comparison(results))


_COMMANDS = {
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "table4": _table4,
    "fig7": _fig7,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("artifact", choices=sorted(_COMMANDS) + ["all"])
    args = parser.parse_args(argv)
    if args.artifact == "all":
        for name in ("table1", "table2", "table3", "table4", "fig7"):
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
            _COMMANDS[name]()
    else:
        _COMMANDS[args.artifact]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
