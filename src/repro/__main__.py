"""Command-line entry point: regenerate the paper's artifacts.

Usage::

    python -m repro table1      # coverage
    python -m repro table2      # backprop case study
    python -m repro table3      # HLS areas
    python -m repro table4      # Vortex areas
    python -m repro fig7        # warp/thread sweep (slowest, ~1 min)
    python -m repro all

    # unified profiling of one benchmark on one executor:
    python -m repro profile vecadd --backend simx
    python -m repro profile bfs --backend hls --trace-out bfs.trace.json

    # calibrated analytical models + hierarchical DSE:
    python -m repro calibrate --out .repro-calibration.json
    python -m repro dse vecadd --calibration .repro-calibration.json \\
        --cores 1,2,4,8,16 --warps 1,2,4,8,16,32 --threads 1,2,4,8,16
    python -m repro dse vecadd --confirm none   # screen only (ms)

    # experiment service (crash-safe job queue over the engine):
    python -m repro serve --state-dir .repro-service --jobs 4
    python -m repro submit '{"kind": "fig7-cell", "benchmark": "vecadd",
                             "warps": 4, "threads": 4}' --wait
    python -m repro status            # daemon health
    python -m repro results j000001-ab12cd34ef
    python -m repro drain             # finish queued work, then exit
    python -m repro serve --resume    # pick up after a crash
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys


def _make_cache(args: argparse.Namespace | None):
    """Build the result cache the flags (or REPRO_CACHE_DIR) ask for."""
    if args is None or getattr(args, "no_cache", False):
        return None
    cache_dir = (getattr(args, "cache_dir", "")
                 or os.environ.get("REPRO_CACHE_DIR", ""))
    if not cache_dir:
        return None
    from .harness import ResultCache

    return ResultCache(cache_dir)


def _jobs(args: argparse.Namespace | None) -> int:
    from .harness import resolve_jobs

    return resolve_jobs(getattr(args, "jobs", 1) if args else 1)


def _policy(args: argparse.Namespace | None) -> dict:
    """Engine fault-tolerance policy from the CLI flags.

    The CLI defaults to ``--keep-going`` (the library default is
    fail-fast): a hand-run campaign should render every row it can and
    mark the rest ERROR, exactly as the paper's Table I records
    failures instead of omitting them.
    """
    if args is None:
        return dict(retries=0, point_timeout=None, keep_going=True)
    return dict(
        retries=getattr(args, "retries", 0),
        point_timeout=getattr(args, "point_timeout", None),
        keep_going=getattr(args, "keep_going", True),
    )


def _sizes(spec: str, default: tuple[int, ...]) -> tuple[int, ...]:
    if not spec:
        return default
    try:
        sizes = tuple(int(tok) for tok in spec.split(",") if tok.strip())
    except ValueError:
        raise SystemExit(f"bad size list {spec!r} (want e.g. 2,4,8)")
    if not sizes:
        return default
    return sizes


def _table1(args: argparse.Namespace | None = None) -> int:
    from .harness import run_coverage

    report = run_coverage(jobs=_jobs(args), cache=_make_cache(args),
                          **_policy(args))
    print(report.render())
    print(f"\nVortex {report.vortex_passes}/28, "
          f"Intel SDK {report.hls_passes}/28; "
          f"matches paper: {report.matches_paper()}")
    if report.errors:
        print(f"{report.errors} row(s) hit an engine-level ERROR "
              f"(crash/timeout after retries)")
    if report.engine_stats is not None:
        print(report.engine_stats.summary())
    return 1 if report.errors else 0


def _table2(args: argparse.Namespace | None = None) -> int:
    from .harness import run_auto_cse_ablation, run_case_study

    print(run_case_study().render())
    ablation = run_auto_cse_ablation()
    print(f"\nauto-CSE ablation (BRAMs): {ablation}")
    return 0


def _table3(args: argparse.Namespace | None = None) -> int:
    from .harness import run_table3

    print(run_table3().render())
    return 0


def _table4(args: argparse.Namespace | None = None) -> int:
    from .harness import run_table4

    report = run_table4()
    print(report.render())
    print(f"\nmax relative error vs paper: "
          f"{report.max_relative_error():.2%}")
    return 0


def _fig7(args: argparse.Namespace | None = None) -> int:
    from .harness import ExperimentEngine, render_comparison, run_sweep
    from .harness.sweep import THREAD_SIZES, WARP_SIZES

    warp_sizes = _sizes(getattr(args, "warp_sizes", "") if args else "",
                        WARP_SIZES)
    thread_sizes = _sizes(getattr(args, "thread_sizes", "") if args else "",
                          THREAD_SIZES)
    # One engine for both benchmarks: the run summary aggregates the
    # whole figure (32 points by default) and the worker pool is spun
    # up once, not per benchmark.
    with ExperimentEngine(jobs=_jobs(args), cache=_make_cache(args),
                          **_policy(args)) as engine:
        results = []
        ckpt_dir = getattr(args, "checkpoint_dir", "") if args else ""
        ckpt_every = (getattr(args, "checkpoint_every", None)
                      if args else None)
        for benchmark in ("vecadd", "transpose"):
            result = run_sweep(benchmark, warp_sizes=warp_sizes,
                               thread_sizes=thread_sizes, engine=engine,
                               checkpoint_dir=ckpt_dir or None,
                               checkpoint_every=ckpt_every)
            results.append(result)
            print(result.render())
            print()
        print(render_comparison(results))
        print()
        print(engine.stats.summary())
        return 1 if engine.stats.failed else 0


def _golden(args: argparse.Namespace) -> int:
    from .harness import run_golden

    only = [tok for spec in (args.only or []) for tok in spec.split(",")
            if tok.strip()]
    report = run_golden(update=args.update, only=only or None)
    print(report.render())
    if args.update:
        print("\ndigests written under tests/golden/ — regenerating "
              "goldens asserts an INTENDED behaviour change; call it out "
              "in review (see EXPERIMENTS.md).")
    return 0 if (args.update or report.ok) else 1


def _profile(args: argparse.Namespace) -> int:
    from .errors import ReproError
    from .harness import run_profile_cached
    from .vortex import VortexConfig

    config = None
    if args.backend == "simx" and (args.cores or args.warps or args.threads):
        base = VortexConfig()
        config = base.with_geometry(
            cores=args.cores or base.cores,
            warps=args.warps or base.warps,
            threads=args.threads or base.threads,
        )
    try:
        report, summary, cache_hit = run_profile_cached(
            args.benchmark,
            backend=args.backend,
            scale=args.scale,
            config=config,
            cycle_bucket=args.bucket,
            validate=not args.no_validate,
            cache=_make_cache(args),
            retries=_policy(args)["retries"],
        )
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    trace_out = args.trace_out or (
        f"profile_{args.benchmark}_{args.backend}.trace.json")
    path = report.save_chrome_trace(trace_out)
    print(f"\nchrome trace written to {path} "
          f"(open in chrome://tracing or ui.perfetto.dev)")
    if args.json_out:
        print(f"summary JSON written to {report.save_json(args.json_out)}")
    launches = summary["launches"]
    cycles = summary["total_cycles"]
    print(f"{launches} launch(es)"
          + (f", {cycles:,} total cycles" if cycles is not None else "")
          + (" [result cache hit: no simulation ran]" if cache_hit else ""))
    return 0


def _calibrate(args: argparse.Namespace) -> int:
    from .calibrate import DEFAULT_ARTIFACT_PATH, run_calibration
    from .errors import ReproError

    benchmarks = tuple(
        tok for tok in (args.benchmarks or "").split(",") if tok.strip()
    ) or ("vecadd", "transpose")
    policy = _policy(args)
    try:
        artifact = run_calibration(
            benchmarks=benchmarks, n=args.n, cache=_make_cache(args),
            jobs=_jobs(args), retries=policy["retries"],
            point_timeout=policy["point_timeout"])
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    path = artifact.save(args.out or DEFAULT_ARTIFACT_PATH)
    print(f"calibrated against SimX at n={args.n} "
          f"({', '.join(benchmarks)})")
    for flow in ("vortex", "hls"):
        for bench, bounds in sorted(
                artifact.error_bounds.get(flow, {}).items()):
            print(f"  {flow:6s} {bench:12s} max rel err "
                  f"{bounds['max_rel_err']:.3f}  mean "
                  f"{bounds['mean_rel_err']:.3f}  "
                  f"({bounds['points']} points)")
    print(f"artifact written to {path} "
          f"(fingerprint {artifact.fingerprint[:12]}…)")
    return 0


def _dse(args: argparse.Namespace) -> int:
    from .calibrate import (DEFAULT_ARTIFACT_PATH, load_calibration,
                            run_calibration)
    from .errors import ReproError
    from .harness import run_dse

    policy = _policy(args)
    cache = _make_cache(args)
    try:
        calibration = None
        if args.calibrate:
            calibration = run_calibration(
                benchmarks=(args.benchmark,), n=min(args.n, 1024),
                cache=cache, jobs=_jobs(args),
                retries=policy["retries"],
                point_timeout=policy["point_timeout"])
        elif args.calibration:
            calibration = load_calibration(args.calibration)
        result = run_dse(
            args.benchmark, n=args.n,
            core_counts=_sizes(args.cores, (1, 2, 4, 8)),
            warp_sizes=_sizes(args.warps, (2, 4, 8, 16)),
            thread_sizes=_sizes(args.threads, (2, 4, 8, 16)),
            calibration=calibration,
            confirm=args.confirm,
            frontier_cap=args.frontier_cap,
            simulate_top=args.top_k,
            cache=cache, jobs=_jobs(args),
            checkpoint_dir=(getattr(args, "checkpoint_dir", "") or None),
            checkpoint_every=getattr(args, "checkpoint_every", None),
            **policy)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(result.render())
    if calibration is None and args.confirm == "frontier":
        print("\n(uncalibrated screen: pass --calibrate or "
              f"--calibration {DEFAULT_ARTIFACT_PATH} to prune the "
              "frontier with measured error bounds)")
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(result.to_payload(), fh, indent=1, sort_keys=True)
        print(f"result JSON written to {args.json_out}")
    errored = sum(1 for c in result.candidates if c.sim_error)
    return 1 if errored else 0


def _serve(args: argparse.Namespace) -> int:
    from .errors import ServiceError
    from .service import ExperimentDaemon, resolve_state_dir

    daemon = ExperimentDaemon(
        state_dir=resolve_state_dir(args.state_dir),
        jobs=args.jobs, host=args.host, port=args.port,
        max_queue=args.max_queue, per_client=args.per_client,
        batch_max=args.batch_max, resume=args.resume,
        retries=args.retries, point_timeout=args.point_timeout,
        checkpoint_dir=args.checkpoint_dir or None,
        checkpoint_every=args.checkpoint_every)
    try:
        daemon.start()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    host, port = daemon.address
    print(f"experiment daemon pid {os.getpid()} serving {host}:{port} "
          f"(state: {daemon.state_dir})", flush=True)
    return daemon.serve()


def _parse_job_specs(specs: list[str]) -> list[dict]:
    jobs = []
    for spec in specs:
        try:
            jobs.append(json.loads(spec))
        except ValueError:
            raise SystemExit(
                f"job spec is not valid JSON: {spec!r} "
                f'(want e.g. \'{{"kind": "probe", "value": 1}}\')')
    return jobs


def _client(args: argparse.Namespace):
    from .service import ServiceClient

    return ServiceClient(state_dir=args.state_dir,
                         retries=args.service_retries)


def _print_reply(reply: dict) -> None:
    print(json.dumps(reply, indent=2, sort_keys=True))


def _submit(args: argparse.Namespace) -> int:
    from .errors import ServiceError

    client = _client(args)
    jobs = _parse_job_specs(args.job)
    replies = []
    for job in jobs:
        try:
            replies.append(client.submit(job))
        except ServiceError as exc:
            print(f"error ({exc.code}): {exc}", file=sys.stderr)
            return 1
    if not args.wait:
        for reply in replies:
            note = " (coalesced)" if reply.get("coalesced") else ""
            print(f"{reply['job_id']} {reply['state']}{note}")
        return 0
    failed = 0
    for reply in replies:
        try:
            result = client.wait(reply["job_id"], timeout=args.timeout)
        except ServiceError as exc:
            print(f"error ({exc.code}): {exc}", file=sys.stderr)
            return 1
        _print_reply(result)
        if result.get("state") == "failed":
            failed += 1
    return 1 if failed else 0


def _status(args: argparse.Namespace) -> int:
    from .errors import ServiceError

    client = _client(args)
    try:
        _print_reply(client.status(args.job_id or None))
    except ServiceError as exc:
        print(f"error ({exc.code}): {exc}", file=sys.stderr)
        return 1
    return 0


def _results(args: argparse.Namespace) -> int:
    from .errors import ServiceError

    client = _client(args)
    failed = 0
    for job_id in args.job_id:
        try:
            if args.wait:
                reply = client.wait(job_id, timeout=args.timeout)
            else:
                reply = client.results(job_id)
        except ServiceError as exc:
            print(f"error ({exc.code}): {exc}", file=sys.stderr)
            return 1
        _print_reply(reply)
        if reply.get("state") == "failed":
            failed += 1
    return 1 if failed else 0


def _drain(args: argparse.Namespace) -> int:
    from .errors import ServiceError

    client = _client(args)
    try:
        reply = client.drain()
        print(f"draining: {reply.get('queued', 0)} job(s) queued")
        if args.wait:
            client.wait_gone(timeout=args.timeout)
            print("daemon exited")
    except ServiceError as exc:
        print(f"error ({exc.code}): {exc}", file=sys.stderr)
        return 1
    return 0


_ARTIFACTS = {
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "table4": _table4,
    "fig7": _fig7,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures, or "
                    "profile one benchmark on one executor.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    engine_flags = argparse.ArgumentParser(add_help=False)
    engine_flags.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent experiment points "
             "(default 1 = serial; 0 = one per CPU)")
    engine_flags.add_argument(
        "--cache-dir", default="", metavar="PATH",
        help="memoise experiment points on disk under PATH (also honours "
             "the REPRO_CACHE_DIR environment variable); entries are "
             "keyed by the inputs plus a fingerprint of the repro "
             "source, so code changes invalidate them automatically")
    engine_flags.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache-dir / REPRO_CACHE_DIR for this run")
    engine_flags.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry a failed experiment point up to N times with "
             "exponential backoff before recording it as an ERROR "
             "(recovers transient faults and killed workers)")
    engine_flags.add_argument(
        "--point-timeout", type=float, default=None, metavar="SECONDS",
        help="per-point watchdog: a point running longer is cancelled "
             "(its stuck worker pool is torn down and respawned) and "
             "counts as failed/retried")
    engine_flags.add_argument(
        "--checkpoint-dir", default="", metavar="PATH",
        help="snapshot running simulations under PATH so a preempted or "
             "killed point resumes mid-flight instead of restarting "
             "(fig7 and dse confirmations; with --point-timeout a point "
             "checkpoints out before the watchdog would kill it)")
    engine_flags.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="CYCLES",
        help="snapshot cadence in simulated cycles "
             "(default 2000000; implies nothing without "
             "--checkpoint-dir)")
    policy = engine_flags.add_mutually_exclusive_group()
    policy.add_argument(
        "--keep-going", dest="keep_going", action="store_true",
        default=True,
        help="render failed points as ERROR rows/cells and finish the "
             "campaign (default; exit status 1 if anything failed)")
    policy.add_argument(
        "--fail-fast", dest="keep_going", action="store_false",
        help="abort the whole campaign on the first failed point "
             "(completed points stay in the cache, so a re-run resumes)")

    for name, fn in _ARTIFACTS.items():
        parents = [engine_flags] if name in ("table1", "fig7") else []
        p = sub.add_parser(name, help=f"regenerate {name}",
                           parents=parents)
        if name == "fig7":
            p.add_argument(
                "--warp-sizes", default="", metavar="W,W,...",
                help="comma-separated warp counts (default 2,4,8,16)")
            p.add_argument(
                "--thread-sizes", default="", metavar="T,T,...",
                help="comma-separated thread counts (default 2,4,8,16)")
        p.set_defaults(func=fn)
    p_all = sub.add_parser("all", help="regenerate every table and figure")
    p_all.set_defaults(func=None)

    p = sub.add_parser(
        "golden",
        help="verify every committed SimX golden-trace digest "
             "(tests/golden/), or regenerate them with --update",
    )
    p.add_argument("--update", action="store_true",
                   help="rewrite the digests from the current simulator "
                        "(an explicit behaviour-change assertion)")
    p.add_argument("--only", action="append", metavar="BENCH[,BENCH...]",
                   help="restrict to these benchmarks / point names")
    p.set_defaults(func=_golden)

    p = sub.add_parser(
        "profile",
        parents=[engine_flags],
        help="run one benchmark under the unified profiler and emit a "
             "text report plus a Chrome-trace JSON file",
    )
    p.add_argument("benchmark", help="Table-I benchmark name, e.g. vecadd")
    p.add_argument("--backend", choices=("interp", "simx", "hls"),
                   default="simx")
    p.add_argument("--scale", type=int, default=1,
                   help="workload scale factor (default 1)")
    p.add_argument("--cores", type=int, default=0,
                   help="simx: core count override")
    p.add_argument("--warps", type=int, default=0,
                   help="simx: warps-per-core override")
    p.add_argument("--threads", type=int, default=0,
                   help="simx: threads-per-warp override")
    p.add_argument("--bucket", type=int, default=256,
                   help="simx: cycles per sampling bucket (default 256)")
    p.add_argument("--trace-out", default="",
                   help="Chrome-trace output path "
                        "(default profile_<bench>_<backend>.trace.json)")
    p.add_argument("--json-out", default="",
                   help="also write a machine-readable summary JSON")
    p.add_argument("--no-validate", action="store_true",
                   help="skip output validation against the numpy reference")
    p.set_defaults(func=_profile)

    p = sub.add_parser(
        "calibrate",
        parents=[engine_flags],
        help="fit the analytical predictors against SimX / the HLS "
             "pipeline model and write a fingerprinted calibration "
             "artifact (the trusted input of `dse`)",
    )
    p.add_argument("--out", default="", metavar="PATH",
                   help="artifact path (default .repro-calibration.json)")
    p.add_argument("--benchmarks", default="", metavar="B,B,...",
                   help="comma-separated benchmarks "
                        "(default vecadd,transpose)")
    p.add_argument("--n", type=int, default=4096,
                   help="problem size of the SimX ground-truth cells "
                        "(default 4096)")
    p.set_defaults(func=_calibrate)

    p = sub.add_parser(
        "dse",
        parents=[engine_flags],
        help="hierarchical design-space exploration: screen the full "
             "grid with the analytical model in milliseconds, then "
             "SimX-confirm only the Pareto frontier",
    )
    p.add_argument("benchmark", help="sweep benchmark: vecadd or transpose")
    p.add_argument("--n", type=int, default=4096,
                   help="problem size (default 4096)")
    p.add_argument("--cores", default="", metavar="C,C,...",
                   help="core counts to screen (default 1,2,4,8)")
    p.add_argument("--warps", default="", metavar="W,W,...",
                   help="warp counts to screen (default 2,4,8,16)")
    p.add_argument("--threads", default="", metavar="T,T,...",
                   help="thread counts to screen (default 2,4,8,16)")
    p.add_argument("--confirm", choices=("frontier", "top", "none"),
                   default="frontier",
                   help="confirmation policy: Pareto frontier "
                        "(hierarchical, default), flat top-K baseline, "
                        "or screen only")
    p.add_argument("--frontier-cap", type=int, default=8,
                   help="max frontier points to SimX-confirm (default 8)")
    p.add_argument("--top-k", type=int, default=8,
                   help="confirmation budget for --confirm top "
                        "(default 8)")
    p.add_argument("--calibration", default="", metavar="PATH",
                   help="load a saved calibration artifact (its error "
                        "bounds drive frontier pruning)")
    p.add_argument("--calibrate", action="store_true",
                   help="fit a fresh calibration for this benchmark "
                        "first instead of loading one")
    p.add_argument("--json-out", default="", metavar="PATH",
                   help="also write the full DSE result payload as JSON")
    p.set_defaults(func=_dse)

    service_flags = argparse.ArgumentParser(add_help=False)
    service_flags.add_argument(
        "--state-dir", default="", metavar="PATH",
        help="service state directory: journal, result cache, daemon "
             "address (default $REPRO_SERVICE_DIR or ./.repro-service)")

    p = sub.add_parser(
        "serve",
        parents=[service_flags],
        help="run the experiment-service daemon: a crash-safe job "
             "queue over the engine (journalled, resumable, bounded)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=0,
                   help="bind port (default 0 = ephemeral; clients "
                        "discover it via the state dir's daemon.json)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="engine worker processes (default 1 = inline; "
                        "0 = one per CPU)")
    p.add_argument("--resume", action="store_true",
                   help="replay the write-ahead journal and re-queue "
                        "every job without a durable result (use after "
                        "a crash or kill)")
    p.add_argument("--max-queue", type=int, default=256, metavar="N",
                   help="admission bound on queued jobs; beyond it "
                        "submissions get queue-full + retry_after "
                        "(default 256)")
    p.add_argument("--per-client", type=int, default=32, metavar="N",
                   help="in-flight job cap per client id (default 32)")
    p.add_argument("--batch-max", type=int, default=16, metavar="N",
                   help="jobs per engine campaign (default 16)")
    p.add_argument("--retries", type=int, default=1, metavar="N",
                   help="engine retries per failed point (default 1)")
    p.add_argument("--point-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-point watchdog for service jobs")
    p.add_argument("--checkpoint-dir", default="", metavar="PATH",
                   help="snapshot running fig7-cell/dse simulations "
                        "under PATH: a stop/kill mid-simulation is resumed "
                        "mid-flight by serve --resume instead of "
                        "re-running from cycle 0")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   metavar="CYCLES",
                   help="snapshot cadence in simulated cycles "
                        "(default 2000000)")
    p.set_defaults(func=_serve)

    client_flags = argparse.ArgumentParser(
        add_help=False, parents=[service_flags])
    client_flags.add_argument(
        "--service-retries", type=int, default=5, metavar="N",
        help="client-side retry budget for transient/backpressure "
             "errors, with jittered exponential backoff (default 5)")

    p = sub.add_parser(
        "submit",
        parents=[client_flags],
        help="submit job spec(s) to the daemon; identical work "
             "deduplicates against the shared result cache",
    )
    p.add_argument("job", nargs="+", metavar="JSON",
                   help='job spec, e.g. \'{"kind": "fig7-cell", '
                        '"benchmark": "vecadd", "warps": 4, '
                        '"threads": 4}\'')
    p.add_argument("--wait", action="store_true",
                   help="block until each job finishes and print its "
                        "result (exit 1 if any failed)")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="--wait deadline in seconds (default 600)")
    p.set_defaults(func=_submit)

    p = sub.add_parser("status", parents=[client_flags],
                       help="one job's state, or (with no job id) the "
                            "daemon's health/stats payload")
    p.add_argument("job_id", nargs="?", default="")
    p.set_defaults(func=_status)

    p = sub.add_parser("results", parents=[client_flags],
                       help="fetch finished job result(s) as JSON")
    p.add_argument("job_id", nargs="+")
    p.add_argument("--wait", action="store_true",
                   help="poll until each job finishes first")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="--wait deadline in seconds (default 600)")
    p.set_defaults(func=_results)

    p = sub.add_parser("drain", parents=[client_flags],
                       help="ask the daemon to finish all queued jobs "
                            "and exit")
    p.add_argument("--wait", action="store_true",
                   help="block until the daemon is gone")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="--wait deadline in seconds (default 600)")
    p.set_defaults(func=_drain)
    return parser


def _install_terminate_handler():
    """Route SIGTERM through KeyboardInterrupt so ``kill`` gets the
    same orderly unwind as Ctrl-C (``serve`` installs its own graceful
    handlers on top while the daemon runs). Returns the previous
    handler, or None when not on the main thread (tests import us)."""
    def _terminate(signum, frame):
        raise KeyboardInterrupt

    try:
        return signal.signal(signal.SIGTERM, _terminate)
    except ValueError:
        return None


def main(argv: list[str] | None = None) -> int:
    from .errors import ExperimentAborted

    args = _build_parser().parse_args(argv)
    previous_sigterm = _install_terminate_handler()
    try:
        if args.command == "all":
            for name in ("table1", "table2", "table3", "table4", "fig7"):
                print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
                _ARTIFACTS[name](None)
            return 0
        return args.func(args)
    except ExperimentAborted as exc:
        print(f"error: {exc}", file=sys.stderr)
        if exc.failure.traceback:
            print(exc.failure.traceback, file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # orderly interrupt: tear down any live worker pools (their
        # caches have already committed finished points, so a re-run
        # resumes), say so once on stderr, exit 130 with no traceback.
        from .harness import close_all_engines

        closed = close_all_engines()
        note = f" ({closed} worker pool(s) closed)" if closed else ""
        print(f"interrupted{note}", file=sys.stderr)
        return 130
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)


if __name__ == "__main__":
    sys.exit(main())
