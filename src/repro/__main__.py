"""Command-line entry point: regenerate the paper's artifacts.

Usage::

    python -m repro table1      # coverage
    python -m repro table2      # backprop case study
    python -m repro table3      # HLS areas
    python -m repro table4      # Vortex areas
    python -m repro fig7        # warp/thread sweep (slowest, ~1 min)
    python -m repro all

    # unified profiling of one benchmark on one executor:
    python -m repro profile vecadd --backend simx
    python -m repro profile bfs --backend hls --trace-out bfs.trace.json
"""

from __future__ import annotations

import argparse
import sys


def _table1(args: argparse.Namespace | None = None) -> int:
    from .harness import run_coverage

    report = run_coverage()
    print(report.render())
    print(f"\nVortex {report.vortex_passes}/28, "
          f"Intel SDK {report.hls_passes}/28; "
          f"matches paper: {report.matches_paper()}")
    return 0


def _table2(args: argparse.Namespace | None = None) -> int:
    from .harness import run_auto_cse_ablation, run_case_study

    print(run_case_study().render())
    ablation = run_auto_cse_ablation()
    print(f"\nauto-CSE ablation (BRAMs): {ablation}")
    return 0


def _table3(args: argparse.Namespace | None = None) -> int:
    from .harness import run_table3

    print(run_table3().render())
    return 0


def _table4(args: argparse.Namespace | None = None) -> int:
    from .harness import run_table4

    report = run_table4()
    print(report.render())
    print(f"\nmax relative error vs paper: "
          f"{report.max_relative_error():.2%}")
    return 0


def _fig7(args: argparse.Namespace | None = None) -> int:
    from .harness import render_comparison, run_sweep

    results = []
    for benchmark in ("vecadd", "transpose"):
        result = run_sweep(benchmark)
        results.append(result)
        print(result.render())
        print()
    print(render_comparison(results))
    return 0


def _profile(args: argparse.Namespace) -> int:
    from .errors import ReproError
    from .harness import run_profile
    from .vortex import VortexConfig

    config = None
    if args.backend == "simx" and (args.cores or args.warps or args.threads):
        base = VortexConfig()
        config = base.with_geometry(
            cores=args.cores or base.cores,
            warps=args.warps or base.warps,
            threads=args.threads or base.threads,
        )
    try:
        report, result = run_profile(
            args.benchmark,
            backend=args.backend,
            scale=args.scale,
            config=config,
            cycle_bucket=args.bucket,
            validate=not args.no_validate,
        )
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    trace_out = args.trace_out or (
        f"profile_{args.benchmark}_{args.backend}.trace.json")
    path = report.save_chrome_trace(trace_out)
    print(f"\nchrome trace written to {path} "
          f"(open in chrome://tracing or ui.perfetto.dev)")
    if args.json_out:
        print(f"summary JSON written to {report.save_json(args.json_out)}")
    launches = len(result.launches)
    cycles = result.total_cycles
    print(f"{launches} launch(es)"
          + (f", {cycles:,} total cycles" if cycles is not None else ""))
    return 0


_ARTIFACTS = {
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "table4": _table4,
    "fig7": _fig7,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures, or "
                    "profile one benchmark on one executor.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, fn in _ARTIFACTS.items():
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.set_defaults(func=fn)
    p_all = sub.add_parser("all", help="regenerate every table and figure")
    p_all.set_defaults(func=None)

    p = sub.add_parser(
        "profile",
        help="run one benchmark under the unified profiler and emit a "
             "text report plus a Chrome-trace JSON file",
    )
    p.add_argument("benchmark", help="Table-I benchmark name, e.g. vecadd")
    p.add_argument("--backend", choices=("interp", "simx", "hls"),
                   default="simx")
    p.add_argument("--scale", type=int, default=1,
                   help="workload scale factor (default 1)")
    p.add_argument("--cores", type=int, default=0,
                   help="simx: core count override")
    p.add_argument("--warps", type=int, default=0,
                   help="simx: warps-per-core override")
    p.add_argument("--threads", type=int, default=0,
                   help="simx: threads-per-warp override")
    p.add_argument("--bucket", type=int, default=256,
                   help="simx: cycles per sampling bucket (default 256)")
    p.add_argument("--trace-out", default="",
                   help="Chrome-trace output path "
                        "(default profile_<bench>_<backend>.trace.json)")
    p.add_argument("--json-out", default="",
                   help="also write a machine-readable summary JSON")
    p.add_argument("--no-validate", action="store_true",
                   help="skip output validation against the numpy reference")
    p.set_defaults(func=_profile)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "all":
        for name in ("table1", "table2", "table3", "table4", "fig7"):
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
            _ARTIFACTS[name](None)
        return 0
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
