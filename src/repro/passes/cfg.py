"""CFG analyses: orderings, dominators, postdominators.

Dominators use the Cooper–Harvey–Kennedy iterative algorithm over reverse
postorder, which is near-linear on the small, reducible CFGs the builder
produces. Postdominators run the same algorithm on the reversed CFG with a
virtual exit joining all RET blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ocl.ir import Block, Kernel, Opcode, predecessors, reachable_blocks


def reverse_postorder(kernel: Kernel) -> list[Block]:
    """Reachable blocks in reverse postorder (entry first)."""
    return reachable_blocks(kernel)


@dataclass
class DomTree:
    """Immediate-dominator tree over the reachable blocks of a kernel."""

    idom: dict[int, Block]  # block id -> immediate dominator (entry -> entry)
    order: list[Block]  # reverse postorder
    _children: dict[int, list[Block]] = field(default_factory=dict)

    def dominates(self, a: Block, b: Block) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        node: Block | None = b
        while node is not None:
            if node is a:
                return True
            parent = self.idom.get(id(node))
            node = None if parent is node else parent
        return False

    def strictly_dominates(self, a: Block, b: Block) -> bool:
        return a is not b and self.dominates(a, b)

    def children(self, block: Block) -> list[Block]:
        if not self._children:
            self._children[id(self.order[0])] = []
            for node in self.order:
                parent = self.idom[id(node)]
                if parent is not node:
                    self._children.setdefault(id(parent), []).append(node)
        return self._children.get(id(block), [])

    def preorder(self) -> list[Block]:
        """Dominator-tree preorder walk starting at the entry."""
        out: list[Block] = []
        stack = [self.order[0]]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(self.children(node)))
        return out


def dominators(kernel: Kernel) -> DomTree:
    order = reverse_postorder(kernel)
    index = {id(b): i for i, b in enumerate(order)}
    preds = predecessors(kernel)
    entry = order[0]
    idom: dict[int, Block] = {id(entry): entry}

    def intersect(a: Block, b: Block) -> Block:
        while a is not b:
            while index[id(a)] > index[id(b)]:
                a = idom[id(a)]
            while index[id(b)] > index[id(a)]:
                b = idom[id(b)]
        return a

    changed = True
    while changed:
        changed = False
        for block in order[1:]:
            candidates = [
                p for p in preds[block] if id(p) in idom and id(p) in index
            ]
            if not candidates:
                continue
            new = candidates[0]
            for p in candidates[1:]:
                new = intersect(new, p)
            if idom.get(id(block)) is not new:
                idom[id(block)] = new
                changed = True
    return DomTree(idom, order)


#: Sentinel for "postdominated only by the virtual exit".
_VIRTUAL_EXIT = object()


@dataclass
class PostDomTree:
    """Immediate postdominators. ``immediate()`` returns None for blocks
    whose only postdominator is the virtual exit (RET blocks, or branches
    whose arms both return)."""

    _ipdom: dict[int, object]

    def immediate(self, block: Block) -> Block | None:
        val = self._ipdom.get(id(block))
        return None if val is _VIRTUAL_EXIT or val is None else val  # type: ignore[return-value]


def postdominators(kernel: Kernel) -> PostDomTree:
    """Immediate postdominators via CHK on the reversed CFG.

    Used by divergence analysis / Vortex codegen: the reconvergence point
    of a divergent branch is its immediate postdominator, where JOIN goes.
    """
    order = reverse_postorder(kernel)
    exits = [b for b in order
             if b.terminator is not None and b.terminator.op is Opcode.RET]
    cfg_preds = predecessors(kernel)

    # Postorder over the reversed CFG from the exits; reversing it gives
    # the RPO the CHK iteration wants.
    seen: set[int] = set()
    post: list[Block] = []

    def visit(block: Block) -> None:
        stack = [(block, iter(cfg_preds[block]))]
        seen.add(id(block))
        while stack:
            node, it = stack[-1]
            advanced = False
            for pred in it:
                if id(pred) not in seen:
                    seen.add(id(pred))
                    stack.append((pred, iter(cfg_preds[pred])))
                    advanced = True
                    break
            if not advanced:
                post.append(node)
                stack.pop()

    for ex in exits:
        if id(ex) not in seen:
            visit(ex)

    rorder = list(reversed(post))
    index = {id(b): i for i, b in enumerate(rorder)}
    ipdom: dict[int, object] = {id(ex): _VIRTUAL_EXIT for ex in exits}

    def intersect(a: object, b: object) -> object:
        if a is _VIRTUAL_EXIT or b is _VIRTUAL_EXIT:
            return _VIRTUAL_EXIT
        while a is not b:
            while index[id(a)] > index[id(b)]:  # type: ignore[arg-type]
                a = ipdom[id(a)]  # type: ignore[arg-type]
                if a is _VIRTUAL_EXIT:
                    return _VIRTUAL_EXIT
            while index[id(b)] > index[id(a)]:  # type: ignore[arg-type]
                b = ipdom[id(b)]  # type: ignore[arg-type]
                if b is _VIRTUAL_EXIT:
                    return _VIRTUAL_EXIT
        return a

    changed = True
    while changed:
        changed = False
        for block in rorder:
            if id(block) in {id(ex) for ex in exits}:
                continue
            processed = [
                s for s in block.successors
                if id(s) in index and id(s) in ipdom
            ]
            if not processed:
                continue
            new: object = processed[0]
            for succ in processed[1:]:
                new = intersect(new, succ)
            if ipdom.get(id(block)) is not new:
                ipdom[id(block)] = new
                changed = True

    return PostDomTree(ipdom)
