"""Thread-divergence analysis.

Classifies every SSA value as *uniform* (same for all threads of a warp)
or *divergent*, and every conditional branch as uniform/divergent. The
Vortex code generator uses this to decide which branches need the
SPLIT/JOIN divergence instructions and which loops need PRED, exactly the
ISA mechanism the paper describes in §II-D; the HLS flow uses it to size
the work-item dispatch logic.

The analysis is a forward fixpoint:

* roots: ``get_global_id`` / ``get_local_id`` are divergent; group ids and
  size queries are uniform (the runtime never splits a work-group across a
  warp boundary mid-group — warps are filled group-first);
* data dependence: any op with a divergent operand is divergent;
* memory: a load is divergent if its index is divergent or its pointer
  root is written anywhere in the kernel (another thread may have written
  it — e.g. staging tiles in local memory); atomics are always divergent;
* control dependence: a phi is divergent if any incoming is divergent or
  if it merges paths of a divergent branch (region bounded by the branch
  block's immediate postdominator).

Over-approximation is safe (a uniform branch compiled as divergent is
merely slower); under-approximation would miscompile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ocl.ir import (
    ATOMIC_OPS,
    Block,
    Instr,
    Kernel,
    Opcode,
    Value,
    predecessors,
)
from .cfg import postdominators


@dataclass
class DivergenceInfo:
    divergent_values: set[int] = field(default_factory=set)
    divergent_branches: set[int] = field(default_factory=set)  # CBR instr ids
    #: Blocks in some divergent branch's influence region, *including*
    #: the reconvergence (ipdom) block — phis there merge divergent paths.
    divergent_blocks: set[int] = field(default_factory=set)
    #: Same, but *excluding* reconvergence blocks: code here runs with a
    #: partial thread mask. Barriers in these blocks are compile errors
    #: for the Vortex backend (sync divergence).
    divergent_interior_blocks: set[int] = field(default_factory=set)

    def is_divergent(self, v: Value) -> bool:
        return id(v) in self.divergent_values

    def branch_is_divergent(self, cbr: Instr) -> bool:
        return id(cbr) in self.divergent_branches


def _written_roots(kernel: Kernel) -> set[int]:
    roots: set[int] = set()
    for ins in kernel.instructions():
        if ins.op is Opcode.STORE or ins.op in ATOMIC_OPS:
            roots.add(id(ins.args[0]))
    return roots


def _influence_region(branch_block: Block, ipdom: Block | None) -> set[int]:
    """Blocks reachable from the branch's successors without passing
    through the immediate postdominator, plus the postdominator itself
    (whose phis merge the divergent paths)."""
    region: set[int] = set()
    stack = list(branch_block.successors)
    while stack:
        block = stack.pop()
        if ipdom is not None and block is ipdom:
            continue
        if id(block) in region:
            continue
        region.add(id(block))
        stack.extend(block.successors)
    if ipdom is not None:
        region.add(id(ipdom))
    return region


def analyze(kernel: Kernel) -> DivergenceInfo:
    info = DivergenceInfo()
    written = _written_roots(kernel)
    pdoms = postdominators(kernel)
    div = info.divergent_values

    changed = True
    while changed:
        changed = False

        # 1. Value-level propagation.
        for ins in kernel.instructions():
            if id(ins) in div or ins.ty is None:
                if ins.op is not Opcode.CBR:
                    continue
            new_div = False
            op = ins.op
            if op in (Opcode.GID, Opcode.LID):
                new_div = True
            elif op in ATOMIC_OPS:
                new_div = True
            elif op is Opcode.LOAD:
                root = ins.args[0]
                if id(root) in written or id(ins.args[1]) in div:
                    new_div = True
            elif op is Opcode.PHI:
                if any(id(v) in div for _, v in ins.attrs["incomings"]):
                    new_div = True
                elif ins.block is not None and id(ins.block) in info.divergent_blocks:
                    new_div = True
            elif op is Opcode.CBR:
                if id(ins.args[0]) in div and id(ins) not in info.divergent_branches:
                    info.divergent_branches.add(id(ins))
                    changed = True
                continue
            else:
                if any(id(a) in div for a in ins.args):
                    new_div = True
            if new_div and id(ins) not in div:
                div.add(id(ins))
                changed = True

        # 2. Control-dependence regions of divergent branches.
        for block in kernel.blocks:
            term = block.terminator
            if term is None or term.op is not Opcode.CBR:
                continue
            if id(term) not in info.divergent_branches:
                continue
            ipdom = pdoms.immediate(block)
            region = _influence_region(block, ipdom)
            interior = region - ({id(ipdom)} if ipdom is not None else set())
            if not region.issubset(info.divergent_blocks):
                info.divergent_blocks |= region
                changed = True
            if not interior.issubset(info.divergent_interior_blocks):
                info.divergent_interior_blocks |= interior
                changed = True

    return info
