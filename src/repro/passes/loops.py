"""Natural-loop detection and simple trip-count analysis.

The HLS pipeline model needs loop structure (initiation intervals apply
per loop) and the Vortex code generator needs to know which loops have
divergent exits (PRED lowering). Loops are found from back edges ``t →
h`` where ``h`` dominates ``t``; the natural loop body is everything that
reaches ``t`` without passing through ``h``.

Trip counts are recovered for the builder's ``for_range`` pattern — a
header phi, a constant-step increment in the latch and an ICMP exit test —
when both bounds are integer constants; everything else reports ``None``
and cost models fall back to a calibrated default.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ocl.ir import Block, Const, Instr, Kernel, Opcode, predecessors
from .cfg import dominators


@dataclass
class Loop:
    header: Block
    latches: list[Block]
    blocks: set[int] = field(default_factory=set)  # block ids, incl. header
    parent: "Loop | None" = None
    depth: int = 1
    #: Static trip count when derivable, else None.
    trip_count: int | None = None

    def contains_block(self, block: Block) -> bool:
        return id(block) in self.blocks


@dataclass
class LoopInfo:
    loops: list[Loop]
    #: block id -> innermost loop containing it (if any).
    block_loop: dict[int, Loop] = field(default_factory=dict)

    def innermost(self, block: Block) -> Loop | None:
        return self.block_loop.get(id(block))

    def loop_depth(self, block: Block) -> int:
        loop = self.innermost(block)
        return loop.depth if loop else 0

    def exit_branches(self, loop: Loop) -> list[Instr]:
        out = []
        for block_id in loop.blocks:
            block = self._blocks_by_id[block_id]
            term = block.terminator
            if term is not None and term.op is Opcode.CBR:
                if any(id(t) not in loop.blocks for t in term.targets):
                    out.append(term)
            elif term is not None and term.op is Opcode.RET:
                out.append(term)
        return out

    _blocks_by_id: dict[int, Block] = field(default_factory=dict)


def analyze(kernel: Kernel) -> LoopInfo:
    dom = dominators(kernel)
    order = dom.order
    by_id = {id(b): b for b in order}
    preds = predecessors(kernel)

    # Collect back edges and group by header.
    latches_by_header: dict[int, list[Block]] = {}
    for block in order:
        for succ in block.successors:
            if dom.dominates(succ, block):
                latches_by_header.setdefault(id(succ), []).append(block)

    loops: list[Loop] = []
    for header_id, latches in latches_by_header.items():
        header = by_id[header_id]
        body: set[int] = {header_id}
        stack = [l for l in latches if id(l) != header_id]
        for l in latches:
            body.add(id(l))
        while stack:
            block = stack.pop()
            for pred in preds[block]:
                if id(pred) not in body and id(pred) in by_id:
                    body.add(id(pred))
                    stack.append(pred)
        loops.append(Loop(header=header, latches=latches, blocks=body))

    # Nesting: loop A is inside B if A's header is in B's body and A != B.
    # Sort by body size so parents (bigger) are found correctly.
    loops.sort(key=lambda l: len(l.blocks))
    for i, inner in enumerate(loops):
        for outer in loops[i + 1:]:
            if id(inner.header) in outer.blocks and inner is not outer:
                inner.parent = outer
                break
    for loop in loops:
        depth = 1
        p = loop.parent
        while p is not None:
            depth += 1
            p = p.parent
        loop.depth = depth

    info = LoopInfo(loops=loops)
    info._blocks_by_id = by_id
    # Innermost map: iterate from outermost (largest) to innermost so the
    # smallest loop wins.
    for loop in sorted(loops, key=lambda l: -len(l.blocks)):
        for block_id in loop.blocks:
            info.block_loop[block_id] = loop

    for loop in loops:
        loop.trip_count = _trip_count(loop, info)
    return info


def _trip_count(loop: Loop, info: LoopInfo) -> int | None:
    """Recognise the for_range shape with constant bounds."""
    header = loop.header
    term = header.terminator
    if term is None or term.op is not Opcode.CBR:
        return None
    cond = term.args[0]
    if not isinstance(cond, Instr) or cond.op is not Opcode.ICMP:
        return None
    if cond.attrs["pred"] not in ("slt", "sgt"):
        return None
    iv, bound = cond.args
    if not isinstance(bound, Const):
        return None
    if not (isinstance(iv, Instr) and iv.op is Opcode.PHI):
        return None
    start = None
    step = None
    for pred_block, val in iv.attrs["incomings"]:
        if id(pred_block) in loop.blocks:
            # Latch value: expect iv + const_step.
            if (
                isinstance(val, Instr)
                and val.op is Opcode.ADD
                and val.args[0] is iv
                and isinstance(val.args[1], Const)
            ):
                step = int(val.args[1].value)
            else:
                return None
        else:
            if isinstance(val, Const):
                start = int(val.value)
            else:
                return None
    if start is None or step is None or step == 0:
        return None
    stop = int(bound.value)
    if cond.attrs["pred"] == "slt" and step > 0:
        return max(0, -(-(stop - start) // step))
    if cond.attrs["pred"] == "sgt" and step < 0:
        return max(0, -(-(start - stop) // -step))
    return None
