"""Common subexpression elimination.

This is the automatic-compiler analog of the paper's **O1 "variable
reuse"** source transformation (Fig. 6, Listing 2): values such as
``delta[index_x] * ETA`` that the original backprop kernel recomputes are
computed once and reused, which shrinks the number of inferred load units
and with them the BRAM count (Table II).

Two scopes:

* **pure ops** (arithmetic, comparisons, conversions, work-item queries)
  are merged across blocks, scoped by the dominator tree so every merged
  use is dominated by the surviving definition;
* **loads** are merged only within a basic block, tracked by a memory
  version per *pointer root* (kernel parameter or local array). A store or
  atomic to a root invalidates that root; a barrier invalidates every
  LOCAL and GLOBAL root. Distinct pointer roots are assumed not to alias,
  matching the Intel SDK's kernel-argument aliasing assumptions.
"""

from __future__ import annotations

from typing import Any

from ..ocl.ir import (
    ATOMIC_OPS,
    Block,
    Const,
    Instr,
    Kernel,
    Opcode,
    Value,
    WORKITEM_OPS,
)
from ..ocl.types import AddressSpace
from .cfg import dominators
from . import dce

#: Pure value ops safe to merge across blocks.
_PURE = frozenset(
    {
        Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
        Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.ASHR,
        Opcode.LSHR, Opcode.IMIN, Opcode.IMAX, Opcode.IABS,
        Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FNEG,
        Opcode.SQRT, Opcode.EXP, Opcode.LOG, Opcode.SIN, Opcode.COS,
        Opcode.FABS, Opcode.FLOOR, Opcode.POW, Opcode.FMIN, Opcode.FMAX,
        Opcode.ICMP, Opcode.FCMP, Opcode.SELECT, Opcode.SITOFP,
        Opcode.FPTOSI, Opcode.ZEXT,
    }
    | WORKITEM_OPS
)

#: Commutative ops whose operand order is canonicalised in the key.
_COMMUTATIVE = frozenset(
    {
        Opcode.ADD, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR,
        Opcode.FADD, Opcode.FMUL, Opcode.IMIN, Opcode.IMAX, Opcode.FMIN,
        Opcode.FMAX,
    }
)


class _Replacements:
    def __init__(self) -> None:
        self.map: dict[int, Value] = {}

    def canon(self, v: Value) -> Value:
        while id(v) in self.map:
            v = self.map[id(v)]
        return v

    def add(self, old: Value, new: Value) -> None:
        self.map[id(old)] = self.canon(new)

    def __len__(self) -> int:
        return len(self.map)


def _operand_key(v: Value, repl: _Replacements) -> Any:
    v = repl.canon(v)
    if isinstance(v, Const):
        return ("const", v.ty.name, v.value)
    return id(v)


def _pure_key(ins: Instr, repl: _Replacements) -> tuple:
    ops = [_operand_key(a, repl) for a in ins.args]
    if ins.op in _COMMUTATIVE:
        ops.sort(key=repr)
    attrs = tuple(sorted((k, v) for k, v in ins.attrs.items()))
    return (ins.op, tuple(ops), attrs)


def run(kernel: Kernel, merge_loads: bool = True, cleanup: bool = True) -> int:
    """CSE in place. Returns the number of instructions merged away.

    ``merge_loads=False`` restricts the pass to pure ops (used by the
    ablation benchmarks to separate the two effects)."""
    dom = dominators(kernel)
    repl = _Replacements()

    def visit(block: Block, table: dict[tuple, Instr]) -> None:
        versions: dict[int, int] = {}
        local_table: dict[tuple, Instr] = {}

        def bump_all(spaces: tuple[AddressSpace, ...]) -> None:
            # Invalidate merged loads in the given address spaces: bump
            # known roots' versions and drop table entries for roots that
            # were never stored to (still keyed at version 0).
            for root_id in list(versions):
                versions[root_id] += 1
            for key in list(local_table):
                if key[0] == "load" and key[4] in spaces:
                    del local_table[key]

        for ins in list(block.instrs):
            if ins.op in _PURE and ins.ty is not None:
                key = _pure_key(ins, repl)
                prior = table.get(key)
                if prior is not None:
                    repl.add(ins, prior)
                else:
                    table[key] = ins
            elif ins.op is Opcode.LOAD and merge_loads:
                root = repl.canon(ins.args[0])
                space = root.ty.space  # type: ignore[union-attr]
                key = (
                    "load",
                    id(root),
                    _operand_key(ins.args[1], repl),
                    versions.get(id(root), 0),
                    space,
                )
                prior = local_table.get(key)
                if prior is not None and kernel.directives.get(prior) == \
                        kernel.directives.get(ins):
                    repl.add(ins, prior)
                else:
                    local_table[key] = ins
            elif ins.op is Opcode.STORE or ins.op in ATOMIC_OPS:
                root = repl.canon(ins.args[0])
                versions[id(root)] = versions.get(id(root), 0) + 1
            elif ins.op is Opcode.BARRIER:
                bump_all((AddressSpace.LOCAL, AddressSpace.GLOBAL))

        for child in dom.children(block):
            visit(child, dict(table))

    visit(kernel.entry, {})

    if repl.map:
        for ins in kernel.instructions():
            ins.args = [repl.canon(a) for a in ins.args]
            if ins.op is Opcode.PHI:
                ins.attrs["incomings"] = [
                    (b, repl.canon(v)) for b, v in ins.attrs["incomings"]
                ]
    merged = len(repl.map)
    if cleanup and merged:
        dce.run(kernel)
    return merged
