"""Dead code elimination.

Removes value-producing instructions with no (transitive) uses and no side
effects. Runs as a cleanup after CSE: the merged duplicates become dead.
"""

from __future__ import annotations

from ..ocl.ir import Kernel, Opcode, iter_operands


def run(kernel: Kernel) -> int:
    """Remove dead instructions in place; returns the number removed."""
    removed_total = 0
    while True:
        used: set[int] = set()
        for ins in kernel.instructions():
            for opnd in iter_operands(ins):
                used.add(id(opnd))
        removed = 0
        for block in kernel.blocks:
            keep = []
            for ins in block.instrs:
                dead = (
                    ins.ty is not None
                    and not ins.has_side_effects
                    and ins.op not in (Opcode.ATOMIC_ADD, Opcode.ATOMIC_MIN,
                                       Opcode.ATOMIC_MAX, Opcode.ATOMIC_XCHG,
                                       Opcode.ATOMIC_CAS)
                    and id(ins) not in used
                )
                if dead:
                    removed += 1
                    kernel.directives.pop(ins, None)
                else:
                    keep.append(ins)
            block.instrs = keep
        removed_total += removed
        if removed == 0:
            return removed_total
