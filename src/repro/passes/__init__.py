"""Middle-end analyses and transforms shared by both backends.

These stand in for the LLVM / PoCL passes of the paper's Figure 3 and
Figure 5: CFG + dominators, liveness (register allocation), CSE (the O1
"variable reuse" mechanism of Table II), DCE, divergence analysis (drives
SPLIT/JOIN/PRED lowering), and loop analysis (pipeline cost model, PRED
loops).
"""

from . import cfg, cse, dce, divergence, liveness, loops

__all__ = ["cfg", "cse", "dce", "divergence", "liveness", "loops"]
