"""Backward liveness analysis.

Computes per-block live-in/live-out sets, consumed by the Vortex register
allocator to build live intervals. Phi semantics follow SSA convention:

* a phi's incoming value is live-out of the corresponding predecessor
  (the parallel copy happens on the edge);
* a phi's result is *defined* at the head of its block (it is in the
  block's def set, not in its live-in).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ocl.ir import Const, Kernel, Opcode, Value


def is_register_value(v: Value) -> bool:
    """True for values that occupy a register: instruction results, params
    and arrays (materialised by the codegen prologue) — not constants."""
    return not isinstance(v, Const)


@dataclass
class Liveness:
    live_in: dict[int, set[int]]  # block id -> value ids live at entry
    live_out: dict[int, set[int]]  # block id -> value ids live at exit
    uses: dict[int, set[int]]  # block id -> upward-exposed uses
    defs: dict[int, set[int]]  # block id -> values defined in block


def analyze(kernel: Kernel) -> Liveness:
    blocks = kernel.blocks

    uses: dict[int, set[int]] = {}
    defs: dict[int, set[int]] = {}
    phi_edge_uses: dict[int, set[int]] = {id(b): set() for b in blocks}

    for block in blocks:
        u: set[int] = set()
        d: set[int] = set()
        for ins in block.instrs:
            if ins.op is Opcode.PHI:
                d.add(id(ins))
                for pred, val in ins.attrs["incomings"]:
                    if is_register_value(val):
                        phi_edge_uses[id(pred)].add(id(val))
                continue
            for opnd in ins.args:
                if is_register_value(opnd) and id(opnd) not in d:
                    u.add(id(opnd))
            if ins.ty is not None:
                d.add(id(ins))
        uses[id(block)] = u
        defs[id(block)] = d

    live_in: dict[int, set[int]] = {id(b): set() for b in blocks}
    live_out: dict[int, set[int]] = {id(b): set() for b in blocks}

    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            bid = id(block)
            out: set[int] = set(phi_edge_uses[bid])
            for succ in block.successors:
                out |= live_in[id(succ)]
            new_in = uses[bid] | (out - defs[bid])
            if out != live_out[bid]:
                live_out[bid] = out
                changed = True
            if new_in != live_in[bid]:
                live_in[bid] = new_in
                changed = True
    return Liveness(live_in, live_out, uses, defs)
