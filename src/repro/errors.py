"""Exception hierarchy shared across the repro package.

Every subsystem raises a subclass of :class:`ReproError`, so callers can
catch a single base class at the harness boundary while tests assert on the
specific failure kind (e.g. the HLS flow raising :class:`SynthesisError`
with a machine-readable ``reason``).
"""

from __future__ import annotations

from dataclasses import dataclass


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class IRError(ReproError):
    """Malformed kernel IR (verifier failures, bad builder usage)."""


class TypeMismatchError(IRError):
    """An instruction was given operands of the wrong type."""


class RuntimeLaunchError(ReproError):
    """Invalid kernel launch (bad NDRange, missing arguments, ...)."""


class InterpreterError(ReproError):
    """The functional interpreter hit an invalid state (OOB access, ...)."""


class CompilationError(ReproError):
    """A backend compiler (HLS or Vortex) rejected the kernel."""


class SynthesisError(CompilationError):
    """HLS synthesis failure, mirroring the AOC failure modes in the paper.

    Attributes
    ----------
    reason:
        Machine-readable failure category. The paper's Table I uses two:
        ``"bram"`` (not enough BRAM) and ``"atomics"`` (atomic functions
        unsupported on a heterogeneous-memory device).
    detail:
        Free-form human-readable diagnostic.
    """

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail
        super().__init__(f"synthesis failed ({reason}): {detail}")


class ExplorationError(SynthesisError):
    """Design-space exploration found no feasible configuration.

    Raised by :meth:`repro.harness.dse.DSEResult.best` when the area
    model rejected every explored point, naming the device and the
    per-reason rejection counts so the caller can tell *why* the grid
    was infeasible (instead of a bare ``min() arg is an empty
    sequence``).
    """

    def __init__(self, device_name: str, rejected):
        reasons: dict[str, int] = {}
        for _, reason in rejected:
            reasons[reason] = reasons.get(reason, 0) + 1
        summary = ", ".join(
            f"{name}: {count}" for name, count in sorted(reasons.items())
        ) or "no points explored"
        self.device_name = device_name
        self.rejection_counts = reasons
        super().__init__(
            "no-feasible-config",
            f"all {len(rejected)} explored configurations were rejected "
            f"on {device_name} ({summary})",
        )


class SimulationError(ReproError):
    """The cycle-level simulator detected an illegal execution.

    Instances raised for a *stuck* machine (deadlock, cycle-limit
    overrun) carry a ``warp_dump`` attribute: the rendered per-warp
    state (core, warp id, PC, active mask, barrier/stall reason) at the
    moment the simulation gave up, so a hung configuration in a sweep is
    debuggable from the error row alone.
    """

    #: rendered per-warp machine state, set when the machine was stuck.
    warp_dump: str = ""


class TrapError(SimulationError):
    """A simulated Vortex core executed an illegal/unaligned operation."""


class CalibrationError(ReproError):
    """Model calibration could not produce or load a usable fit.

    Raised when a calibration artifact is missing/corrupt, was fitted
    against a different code fingerprint (and the caller asked for a
    strict load), or when ground-truth collection failed so the fit
    would be based on incomplete samples.
    """


class CheckpointError(ReproError):
    """A simulation snapshot could not be taken or used.

    Raised when checkpointing is requested in an unsupported mode
    (profiling/tracing) or when a snapshot fails its resume
    verification — config/ndrange/program-fingerprint/memory-baseline
    mismatch. A failed verification leaves the machine untouched, so
    callers degrade to a clean from-scratch launch.
    """


class SimulationPreempted(Exception):
    """Control-flow signal: the simulation wrote a snapshot and yielded
    instead of completing (checkpoint deadline reached, the daemon's
    stop file appeared, or a deterministic test hook fired).

    Deliberately *not* a :class:`ReproError`: harness layers that catch
    ``ReproError`` to mark a point as failed must never swallow a
    preemption — the engine catches it by name and requeues the point
    to resume from the snapshot, without charging a retry.

    Attributes
    ----------
    point_id:
        The launch id the snapshot was filed under.
    cycle:
        Simulated cycle the snapshot was taken at (monotonic progress
        across preemptions of the same point is enforced by the engine).
    """

    def __init__(self, point_id: str, cycle: int):
        self.point_id = point_id
        self.cycle = int(cycle)
        super().__init__(
            f"simulation preempted at cycle {cycle} "
            f"(snapshot {point_id!r} written)"
        )


@dataclass
class PointFailure:
    """Structured capture of one failed experiment point.

    The experiment engine turns a point that exhausted its retry budget
    into one of these instead of propagating (or losing) the exception:
    harness consumers render it as an ``ERROR(...)`` row/cell and the
    campaign keeps going. The payload is plain strings and ints so it is
    picklable across worker processes and byte-identical between serial
    and parallel runs of the same fault plan.
    """

    #: exception class name (``"SimulationError"``, ``"PointTimeout"``,
    #: ``"WorkerCrashed"``, ...).
    exc_type: str
    message: str
    traceback: str = ""
    #: total attempts made (1 = failed on the only attempt).
    attempts: int = 1

    def brief(self) -> str:
        """Compact ``ERROR(type: message)`` form for table cells."""
        return f"ERROR({self.exc_type}: {self.message})"

    def to_payload(self) -> dict:
        return {"exc_type": self.exc_type, "message": self.message,
                "traceback": self.traceback, "attempts": self.attempts}

    @classmethod
    def from_payload(cls, payload: dict) -> "PointFailure":
        return cls(exc_type=payload["exc_type"],
                   message=payload["message"],
                   traceback=payload.get("traceback", ""),
                   attempts=payload.get("attempts", 1))


class ServiceError(ReproError):
    """An experiment-service request failed.

    Every service failure carries a stable machine-readable ``code``
    (the wire-protocol ``code`` field), so clients and tests branch on
    codes, never on message strings. Subclasses pin well-known codes;
    the base class carries any other code verbatim (e.g.
    ``"bad-request"``, ``"shutting-down"``, ``"unavailable"``,
    ``"internal"``).

    Attributes
    ----------
    code:
        Stable machine-readable failure category.
    retry_after:
        Server-suggested seconds to wait before retrying (set on
        backpressure rejections), or ``None``.
    """

    code: str = "service-error"

    def __init__(self, message: str, *, code: str | None = None,
                 retry_after: float | None = None):
        if code is not None:
            self.code = code
        self.retry_after = retry_after
        super().__init__(message)


class QueueFull(ServiceError):
    """The daemon's admission queue (or a per-client in-flight limit)
    is at capacity; retry after ``retry_after`` seconds.

    ``code`` distinguishes the two bounds: ``"queue-full"`` (global
    queue depth) vs ``"client-limit"`` (this client's in-flight cap).
    """

    code = "queue-full"


class JobNotFound(ServiceError):
    """No job with the requested id is known to the daemon (never
    submitted, or evicted after completion — results live on in the
    result cache, keyed by content)."""

    code = "job-not-found"


class ExperimentAborted(ReproError):
    """A point failed under the engine's fail-fast policy.

    Raised instead of the (possibly remote, possibly unpicklable)
    original exception; carries the :class:`PointFailure` so callers can
    inspect the captured type/message/traceback. Points that completed
    before the abort were already committed to the result cache, so a
    re-run resumes from where the campaign died.
    """

    def __init__(self, label: str, failure: PointFailure):
        self.label = label
        self.failure = failure
        super().__init__(
            f"experiment {label!r} aborted: point failed after "
            f"{failure.attempts} attempt(s): {failure.exc_type}: "
            f"{failure.message}"
        )
