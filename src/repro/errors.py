"""Exception hierarchy shared across the repro package.

Every subsystem raises a subclass of :class:`ReproError`, so callers can
catch a single base class at the harness boundary while tests assert on the
specific failure kind (e.g. the HLS flow raising :class:`SynthesisError`
with a machine-readable ``reason``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class IRError(ReproError):
    """Malformed kernel IR (verifier failures, bad builder usage)."""


class TypeMismatchError(IRError):
    """An instruction was given operands of the wrong type."""


class RuntimeLaunchError(ReproError):
    """Invalid kernel launch (bad NDRange, missing arguments, ...)."""


class InterpreterError(ReproError):
    """The functional interpreter hit an invalid state (OOB access, ...)."""


class CompilationError(ReproError):
    """A backend compiler (HLS or Vortex) rejected the kernel."""


class SynthesisError(CompilationError):
    """HLS synthesis failure, mirroring the AOC failure modes in the paper.

    Attributes
    ----------
    reason:
        Machine-readable failure category. The paper's Table I uses two:
        ``"bram"`` (not enough BRAM) and ``"atomics"`` (atomic functions
        unsupported on a heterogeneous-memory device).
    detail:
        Free-form human-readable diagnostic.
    """

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail
        super().__init__(f"synthesis failed ({reason}): {detail}")


class ExplorationError(SynthesisError):
    """Design-space exploration found no feasible configuration.

    Raised by :meth:`repro.harness.dse.DSEResult.best` when the area
    model rejected every explored point, naming the device and the
    per-reason rejection counts so the caller can tell *why* the grid
    was infeasible (instead of a bare ``min() arg is an empty
    sequence``).
    """

    def __init__(self, device_name: str, rejected):
        reasons: dict[str, int] = {}
        for _, reason in rejected:
            reasons[reason] = reasons.get(reason, 0) + 1
        summary = ", ".join(
            f"{name}: {count}" for name, count in sorted(reasons.items())
        ) or "no points explored"
        self.device_name = device_name
        self.rejection_counts = reasons
        super().__init__(
            "no-feasible-config",
            f"all {len(rejected)} explored configurations were rejected "
            f"on {device_name} ({summary})",
        )


class SimulationError(ReproError):
    """The cycle-level simulator detected an illegal execution."""


class TrapError(SimulationError):
    """A simulated Vortex core executed an illegal/unaligned operation."""
