"""The soft-GPU approach: a model of the Vortex RISC-V GPGPU.

Pipeline (paper Figures 4 and 5): kernel IR -> divergence analysis ->
code generation to the Vortex ISA (RV32IMF+A plus TMC / WSPAWN / SPLIT /
JOIN / PRED / BAR) -> binary image -> execution on the SimX cycle-level
simulator with configurable (cores, warps, threads).
"""

from .analytical import (
    KernelProfile,
    Prediction,
    VortexModelParams,
    explore,
    predict,
    recommend,
)
from .asm import Assembler, Program, disassemble
from .codegen import CodeGen, VortexKernelImage, compile_kernel
from .isa import CSR, Instruction, decode, encode, format_instruction
from .regalloc import Allocation, allocate
from .runtime import VortexBackend, VortexCompiledKernel
from .simx import LaunchResult, Machine, VortexConfig

__all__ = [
    "Allocation",
    "KernelProfile",
    "Prediction",
    "VortexModelParams",
    "explore",
    "predict",
    "recommend",
    "Assembler",
    "CSR",
    "CodeGen",
    "Instruction",
    "LaunchResult",
    "Machine",
    "Program",
    "VortexBackend",
    "VortexCompiledKernel",
    "VortexConfig",
    "VortexKernelImage",
    "allocate",
    "compile_kernel",
    "decode",
    "disassemble",
    "encode",
    "format_instruction",
]
