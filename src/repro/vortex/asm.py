"""Assembler / disassembler for the Vortex ISA.

The code generator emits symbolic :class:`~repro.vortex.isa.Instruction`
streams with label references; :class:`Assembler` resolves labels to PC-
relative immediates and packs the stream into a binary image (one uint32
word per instruction, little-endian), which the runtime loads into
simulated device memory. ``disassemble`` renders a listing for debugging
and golden tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CompilationError
from .isa import Fmt, Instruction, encode, format_instruction


@dataclass
class Program:
    """An assembled code object."""

    instructions: list[Instruction]
    code_base: int
    labels: dict[str, int]  # label -> absolute address
    words: np.ndarray  # uint32, len == len(instructions)

    @property
    def size_bytes(self) -> int:
        return 4 * len(self.instructions)

    def address_of(self, label: str) -> int:
        return self.labels[label]

    def index_of_pc(self, pc: int) -> int:
        offset = pc - self.code_base
        if offset < 0 or offset % 4 or offset // 4 >= len(self.instructions):
            raise CompilationError(f"PC {pc:#x} outside program")
        return offset // 4


class Assembler:
    """Collects labels and instructions, then fixes up and encodes."""

    def __init__(self) -> None:
        self._items: list[str | Instruction] = []
        self._label_set: set[str] = set()

    def label(self, name: str) -> str:
        if name in self._label_set:
            raise CompilationError(f"duplicate label {name!r}")
        self._label_set.add(name)
        self._items.append(name)
        return name

    def fresh_label(self, prefix: str) -> str:
        name = f"{prefix}_{len(self._items)}"
        while name in self._label_set:
            name += "_"
        return name

    def emit(
        self,
        mnemonic: str,
        rd: int = 0,
        rs1: int = 0,
        rs2: int = 0,
        imm: int = 0,
        label: str | None = None,
    ) -> Instruction:
        ins = Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2, imm=imm, label=label)
        self._items.append(ins)
        return ins

    # Convenience emitters used heavily by the code generator ----------

    def li(self, rd: int, value: int) -> None:
        """Load a 32-bit immediate (lui+addi as needed)."""
        value &= 0xFFFFFFFF
        if value >= 0x80000000:
            value -= 0x100000000
        if -2048 <= value < 2048:
            self.emit("addi", rd=rd, rs1=0, imm=value)
            return
        upper = (value + 0x800) >> 12
        lower = value - (upper << 12)
        self.emit("lui", rd=rd, imm=upper & 0xFFFFF)
        if lower:
            self.emit("addi", rd=rd, rs1=rd, imm=lower)

    def mv(self, rd: int, rs: int) -> None:
        self.emit("addi", rd=rd, rs1=rs, imm=0)

    def fmv(self, rd: int, rs: int) -> None:
        self.emit("fsgnj.s", rd=rd, rs1=rs, rs2=rs)

    def j(self, label: str) -> None:
        self.emit("jal", rd=0, label=label)

    def assemble(self, code_base: int = 0) -> Program:
        """Resolve labels, encode, and return the Program."""
        # First pass: addresses.
        labels: dict[str, int] = {}
        pc = code_base
        instructions: list[Instruction] = []
        for item in self._items:
            if isinstance(item, str):
                labels[item] = pc
            else:
                instructions.append(item)
                pc += 4
        # Second pass: fix up label immediates (PC-relative).
        pc = code_base
        for ins in instructions:
            if ins.label is not None:
                if ins.label not in labels:
                    raise CompilationError(f"undefined label {ins.label!r}")
                ins.imm = labels[ins.label] - pc
                limit = 1 << 20 if ins.spec.fmt is Fmt.J else 1 << 12
                if not -limit <= ins.imm < limit:
                    raise CompilationError(
                        f"branch to {ins.label} out of range ({ins.imm})"
                    )
            pc += 4
        words = np.array([encode(i) for i in instructions], dtype=np.uint32)
        return Program(
            instructions=instructions,
            code_base=code_base,
            labels=labels,
            words=words,
        )


def disassemble(program: Program) -> str:
    """Text listing with addresses and labels."""
    by_addr: dict[int, list[str]] = {}
    for name, addr in program.labels.items():
        by_addr.setdefault(addr, []).append(name)
    lines = []
    pc = program.code_base
    for ins in program.instructions:
        for name in sorted(by_addr.get(pc, [])):
            lines.append(f"{name}:")
        lines.append(f"  {pc:#010x}:  {format_instruction(ins)}")
        pc += 4
    return "\n".join(lines)
