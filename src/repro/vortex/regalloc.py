"""Register allocation for the Vortex code generator.

Allocation happens at the IR level: every register-carried value (kernel
parameter, local-array base, instruction result, phi) is assigned either a
physical register or a stack spill slot. The algorithm is the classic
SSA-friendly one:

1. build an interference graph from backward liveness (phi parallel
   copies are modelled at the predecessor block ends);
2. greedy-colour values in dominance preorder of their definitions (on
   SSA-form chordal graphs this is conflict-free whenever enough colours
   exist);
3. values that do not fit are spilled to per-thread stack slots; the code
   generator rewrites their uses/defs through scratch registers.

Integer/bool/pointer values use the x-register file, floats the
f-register file; the two classes are coloured independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ocl.ir import Instr, Kernel, Value
from ..ocl.types import FLOAT32
from ..passes import cfg as cfg_pass
from ..passes import liveness as liveness_pass
from .isa import F_ALLOC_FIRST, F_ALLOC_LAST, X_ALLOC_FIRST, X_ALLOC_LAST


def reg_class(value: Value) -> str:
    """"f" for float values, "x" for everything register-resident else."""
    return "f" if value.ty is FLOAT32 else "x"


@dataclass
class Allocation:
    """Result of register allocation."""

    #: value id -> physical register number (within its class's file).
    regs: dict[int, int] = field(default_factory=dict)
    #: value id -> register class ("x" or "f").
    classes: dict[int, str] = field(default_factory=dict)
    #: value id -> stack slot byte offset (spilled values only).
    spill_slots: dict[int, int] = field(default_factory=dict)
    #: total bytes of spill area.
    spill_bytes: int = 0

    def is_spilled(self, value: Value) -> bool:
        return id(value) in self.spill_slots

    def reg_of(self, value: Value) -> int:
        return self.regs[id(value)]


def _register_values(kernel: Kernel) -> dict[int, Value]:
    vals: dict[int, Value] = {}
    for p in kernel.params:
        vals[id(p)] = p
    for arr in kernel.arrays:
        vals[id(arr)] = arr
    for ins in kernel.instructions():
        if ins.ty is not None:
            vals[id(ins)] = ins
    return vals


def build_interference(kernel: Kernel,
                       pin_entry_values: bool = False) -> dict[int, set[int]]:
    """Interference edges between register values of the same class.

    ``pin_entry_values`` treats kernel parameters and array bases as live
    everywhere: wave-mode kernels re-execute the body per wave, so the
    prologue-loaded values must survive the whole loop.
    """
    lv = liveness_pass.analyze(kernel)
    values = _register_values(kernel)
    adj: dict[int, set[int]] = {vid: set() for vid in values}
    pinned: set[int] = set()
    if pin_entry_values:
        pinned = {id(p) for p in kernel.params} | {
            id(a) for a in kernel.arrays
        }
        for bid in list(lv.live_in):
            lv.live_in[bid] |= pinned
        for bid in list(lv.live_out):
            lv.live_out[bid] |= pinned

    def add_clique_edges(vid: int, others: set[int]) -> None:
        v = values.get(vid)
        if v is None:
            return
        cls = reg_class(v)
        for oid in others:
            if oid == vid or oid not in values:
                continue
            if reg_class(values[oid]) != cls:
                continue
            adj[vid].add(oid)
            adj[oid].add(vid)

    entry = kernel.entry
    for block in kernel.blocks:
        live: set[int] = set(lv.live_out[id(block)])

        # The code generator emits phi parallel copies *before* the
        # terminator, so the terminator's operands (e.g. a divergent
        # branch condition) must survive the copies: count them live at
        # the copy point.
        term = block.terminator
        if term is not None:
            for opnd in term.args:
                if liveness_pass.is_register_value(opnd):
                    live.add(id(opnd))

        # Parallel phi copies at the end of this block: each successor phi
        # is defined here. Conservatively, successor phis interfere with
        # everything live-out and with each other.
        succ_phis = [
            phi for succ in block.successors for phi in succ.phis()
        ]
        for phi in succ_phis:
            add_clique_edges(id(phi), live)
        for i, phi in enumerate(succ_phis):
            for other in succ_phis[i + 1:]:
                add_clique_edges(id(phi), {id(other)})

        for ins in reversed(list(block.non_phis())):
            if ins.ty is not None:
                live.discard(id(ins))
                add_clique_edges(id(ins), live)
            for opnd in ins.args:
                if liveness_pass.is_register_value(opnd):
                    live.add(id(opnd))

        # Phis of this block define at the head.
        for phi in block.phis():
            live.discard(id(phi))
        for phi in block.phis():
            add_clique_edges(id(phi), live)

        # Params and arrays are defined at entry: they interfere with the
        # entry's live set and with each other.
        if block is entry:
            entry_defs = [id(p) for p in kernel.params] + [
                id(a) for a in kernel.arrays
            ]
            for vid in entry_defs:
                add_clique_edges(vid, live)
                add_clique_edges(vid, set(entry_defs))
    return adj


def allocate(kernel: Kernel, pin_entry_values: bool = False) -> Allocation:
    """Colour the interference graph; spill what does not fit."""
    values = _register_values(kernel)
    adj = build_interference(kernel, pin_entry_values=pin_entry_values)
    dom = cfg_pass.dominators(kernel)

    # Definition order: params, arrays, then instruction results in
    # dominance preorder (phis first within each block).
    order: list[int] = [id(p) for p in kernel.params]
    order += [id(a) for a in kernel.arrays]
    for block in dom.preorder():
        for ins in block.instrs:
            if ins.ty is not None:
                order.append(id(ins))
    # Instructions in unreachable blocks (should not exist) fall back in.
    for vid in values:
        if vid not in order:
            order.append(vid)

    limits = {
        "x": X_ALLOC_LAST - X_ALLOC_FIRST + 1,
        "f": F_ALLOC_LAST - F_ALLOC_FIRST + 1,
    }
    bases = {"x": X_ALLOC_FIRST, "f": F_ALLOC_FIRST}

    alloc = Allocation()
    colors: dict[int, int] = {}
    for vid in order:
        value = values[vid]
        cls = reg_class(value)
        taken = {
            colors[n]
            for n in adj[vid]
            if n in colors and reg_class(values[n]) == cls
        }
        color = 0
        while color in taken:
            color += 1
        colors[vid] = color
        alloc.classes[vid] = cls

    # Map colours to registers; colours beyond the file size spill.
    for vid, color in colors.items():
        cls = alloc.classes[vid]
        if color < limits[cls]:
            alloc.regs[vid] = bases[cls] + color
        else:
            alloc.spill_slots[vid] = alloc.spill_bytes
            alloc.spill_bytes += 4
    return alloc
