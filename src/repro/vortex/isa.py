"""Vortex ISA: RV32IMF + A subset + SIMT control extensions.

Vortex (§II-C of the paper) extends the RISC-V ISA with warp-control
instructions for SIMT execution. We implement:

* RV32I integer base (the subset a C-like kernel needs),
* M (MUL/DIV/REM), F (single-precision float), A (AMO atomics, plus the
  Zacas compare-and-swap),
* the Vortex extensions in the custom-0 opcode space (0001011):

  =========  ==============================================================
  TMC rs1    set the warp's thread mask from a bitmask register
  WSPAWN     activate ``rs1`` warps at PC ``rs2`` (used by dispatch tests)
  SPLIT rs1  begin divergent region on per-lane predicate ``rs1``
  JOIN       reconverge (pops the warp's IPDOM stack)
  PRED       rs1 = per-lane continue predicate, rs2 = restore mask: keep
             looping lanes active; when none remain, restore and skip the
             next instruction (the loop back-jump)
  BAR        rs1 = barrier id, rs2 = number of warps to rendezvous
  HALT       retire the warp
  PRINTFX    rs1 = format-string address, rs2 = packed-args address
  =========  ==============================================================

SPLIT/JOIN follow the paper's description: SPLIT pushes the not-taken
side and the reconvergence state on the IPDOM stack, JOIN pops it —
executing the taken path first, then the not-taken path, then
reconverging (see :mod:`repro.vortex.simx.warp` for the stack machine).

Every instruction encodes to a real 32-bit word (standard RISC-V
formats); the assembler round-trips encode/decode in tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import CompilationError

# ---------------------------------------------------------------------------
# Register names.
# ---------------------------------------------------------------------------

XLEN = 32
NUM_XREGS = 32
NUM_FREGS = 32

ZERO = 0  # x0: hardwired zero
AT = 1  # x1: codegen temporary (ra is unused: kernels don't call)
SP = 2  # x2: per-thread stack pointer
AT2 = 3  # x3: second codegen temporary
AT3 = 4  # x4: third codegen temporary (multi-step lowerings)
#: x27 holds the wave base (wave index * T) in work-item-loop kernels.
WAVE_REG = 27
#: First/last integer registers available to the register allocator.
#: x27 is the wave base; x28-x31 are the divergent-loop mask stack.
X_ALLOC_FIRST, X_ALLOC_LAST = 5, 26
LOOP_MASK_REGS = (28, 29, 30, 31)
#: FP temporaries and allocatable range.
FAT = 0  # f0: fp scratch
FAT2 = 1  # f1: second fp scratch
F_ALLOC_FIRST, F_ALLOC_LAST = 2, 31


def xreg_name(i: int) -> str:
    return f"x{i}"


def freg_name(i: int) -> str:
    return f"f{i}"


# ---------------------------------------------------------------------------
# CSRs (Vortex exposes SIMT geometry through CSRs).
# ---------------------------------------------------------------------------


class CSR(enum.IntEnum):
    THREAD_ID = 0xCC0  # lane index within the warp
    WARP_ID = 0xCC1  # warp index within the core
    CORE_ID = 0xCC2  # core index
    NUM_THREADS = 0xCC3  # threads per warp (T)
    NUM_WARPS = 0xCC4  # warps per core (W)
    NUM_CORES = 0xCC5  # cores (C)
    TMASK = 0xCC6  # current thread mask (bitmask)
    # Dispatch state, set per warp by the work-group dispatcher:
    GROUP_ID0 = 0xCD0
    GROUP_ID1 = 0xCD1
    GROUP_ID2 = 0xCD2
    LOCAL_OFFSET = 0xCD3  # linear local id of this warp's lane 0
    GROUP_SLOT = 0xCD4  # per-core slot index (selects barrier id & local mem)
    GROUP_WARPS = 0xCD5  # warps cooperating on this group (barrier count)
    LOCAL_BASE = 0xCD6  # base address of this group's local-memory window


# ---------------------------------------------------------------------------
# Instruction table.
# ---------------------------------------------------------------------------


class Fmt(enum.Enum):
    R = "R"
    I = "I"
    S = "S"
    B = "B"
    U = "U"
    J = "J"
    CSR = "CSR"
    AMO = "AMO"


@dataclass(frozen=True)
class Spec:
    fmt: Fmt
    opcode: int
    funct3: int = 0
    funct7: int = 0


_OP = 0b0110011
_OP_IMM = 0b0010011
_LOAD = 0b0000011
_STORE = 0b0100011
_BRANCH = 0b1100011
_LUI = 0b0110111
_AUIPC = 0b0010111
_JAL = 0b1101111
_JALR = 0b1100111
_SYSTEM = 0b1110011
_OP_FP = 0b1010011
_LOAD_FP = 0b0000111
_STORE_FP = 0b0100111
_AMO = 0b0101111
_CUSTOM0 = 0b0001011  # Vortex extensions

SPECS: dict[str, Spec] = {
    # RV32I
    "lui": Spec(Fmt.U, _LUI),
    "auipc": Spec(Fmt.U, _AUIPC),
    "jal": Spec(Fmt.J, _JAL),
    "jalr": Spec(Fmt.I, _JALR, 0),
    "beq": Spec(Fmt.B, _BRANCH, 0),
    "bne": Spec(Fmt.B, _BRANCH, 1),
    "blt": Spec(Fmt.B, _BRANCH, 4),
    "bge": Spec(Fmt.B, _BRANCH, 5),
    "bltu": Spec(Fmt.B, _BRANCH, 6),
    "bgeu": Spec(Fmt.B, _BRANCH, 7),
    "lw": Spec(Fmt.I, _LOAD, 2),
    "sw": Spec(Fmt.S, _STORE, 2),
    "addi": Spec(Fmt.I, _OP_IMM, 0),
    "slti": Spec(Fmt.I, _OP_IMM, 2),
    "sltiu": Spec(Fmt.I, _OP_IMM, 3),
    "xori": Spec(Fmt.I, _OP_IMM, 4),
    "ori": Spec(Fmt.I, _OP_IMM, 6),
    "andi": Spec(Fmt.I, _OP_IMM, 7),
    "slli": Spec(Fmt.I, _OP_IMM, 1, 0b0000000),
    "srli": Spec(Fmt.I, _OP_IMM, 5, 0b0000000),
    "srai": Spec(Fmt.I, _OP_IMM, 5, 0b0100000),
    "add": Spec(Fmt.R, _OP, 0, 0b0000000),
    "sub": Spec(Fmt.R, _OP, 0, 0b0100000),
    "sll": Spec(Fmt.R, _OP, 1, 0b0000000),
    "slt": Spec(Fmt.R, _OP, 2, 0b0000000),
    "sltu": Spec(Fmt.R, _OP, 3, 0b0000000),
    "xor": Spec(Fmt.R, _OP, 4, 0b0000000),
    "srl": Spec(Fmt.R, _OP, 5, 0b0000000),
    "sra": Spec(Fmt.R, _OP, 5, 0b0100000),
    "or": Spec(Fmt.R, _OP, 6, 0b0000000),
    "and": Spec(Fmt.R, _OP, 7, 0b0000000),
    # M
    "mul": Spec(Fmt.R, _OP, 0, 0b0000001),
    "mulh": Spec(Fmt.R, _OP, 1, 0b0000001),
    "div": Spec(Fmt.R, _OP, 4, 0b0000001),
    "rem": Spec(Fmt.R, _OP, 6, 0b0000001),
    # F (single precision)
    "flw": Spec(Fmt.I, _LOAD_FP, 2),
    "fsw": Spec(Fmt.S, _STORE_FP, 2),
    "fadd.s": Spec(Fmt.R, _OP_FP, 0, 0b0000000),
    "fsub.s": Spec(Fmt.R, _OP_FP, 0, 0b0000100),
    "fmul.s": Spec(Fmt.R, _OP_FP, 0, 0b0001000),
    "fdiv.s": Spec(Fmt.R, _OP_FP, 0, 0b0001100),
    "fsqrt.s": Spec(Fmt.R, _OP_FP, 0, 0b0101100),
    "fmin.s": Spec(Fmt.R, _OP_FP, 0, 0b0010100),
    "fmax.s": Spec(Fmt.R, _OP_FP, 1, 0b0010100),
    "fsgnj.s": Spec(Fmt.R, _OP_FP, 0, 0b0010000),
    "fsgnjn.s": Spec(Fmt.R, _OP_FP, 1, 0b0010000),
    "fsgnjx.s": Spec(Fmt.R, _OP_FP, 2, 0b0010000),
    "feq.s": Spec(Fmt.R, _OP_FP, 2, 0b1010000),
    "flt.s": Spec(Fmt.R, _OP_FP, 1, 0b1010000),
    "fle.s": Spec(Fmt.R, _OP_FP, 0, 0b1010000),
    "fcvt.w.s": Spec(Fmt.R, _OP_FP, 1, 0b1100000),  # rm=rtz encoded in funct3
    "fcvt.s.w": Spec(Fmt.R, _OP_FP, 7, 0b1101000),
    "fmv.x.w": Spec(Fmt.R, _OP_FP, 0, 0b1110000),
    "fmv.w.x": Spec(Fmt.R, _OP_FP, 0, 0b1111000),
    # Extra float math (Vortex exposes these via its FPU; we model them as
    # custom OP-FP encodings rather than libm calls).
    "fexp.s": Spec(Fmt.R, _OP_FP, 0, 0b0110000),
    "flog.s": Spec(Fmt.R, _OP_FP, 1, 0b0110000),
    "fsin.s": Spec(Fmt.R, _OP_FP, 2, 0b0110000),
    "fcos.s": Spec(Fmt.R, _OP_FP, 3, 0b0110000),
    "ffloor.s": Spec(Fmt.R, _OP_FP, 4, 0b0110000),
    "fpow.s": Spec(Fmt.R, _OP_FP, 5, 0b0110000),
    # A (atomics; aq/rl bits left zero)
    "amoadd.w": Spec(Fmt.AMO, _AMO, 2, 0b0000000),
    "amoswap.w": Spec(Fmt.AMO, _AMO, 2, 0b0000100),
    "amomin.w": Spec(Fmt.AMO, _AMO, 2, 0b1000000),
    "amomax.w": Spec(Fmt.AMO, _AMO, 2, 0b1010000),
    "amocas.w": Spec(Fmt.AMO, _AMO, 2, 0b0010100),  # Zacas: rd=expected/old
    # CSR
    "csrrs": Spec(Fmt.CSR, _SYSTEM, 2),
    # Vortex SIMT extensions (custom-0).
    "tmc": Spec(Fmt.R, _CUSTOM0, 0, 0),
    "wspawn": Spec(Fmt.R, _CUSTOM0, 0, 1),
    "split": Spec(Fmt.R, _CUSTOM0, 0, 2),
    "join": Spec(Fmt.R, _CUSTOM0, 0, 3),
    "bar": Spec(Fmt.R, _CUSTOM0, 0, 4),
    "pred": Spec(Fmt.R, _CUSTOM0, 0, 5),
    "halt": Spec(Fmt.R, _CUSTOM0, 0, 6),
    "printfx": Spec(Fmt.R, _CUSTOM0, 0, 7),
}

#: Mnemonics whose rd/rs registers address the FP register file.
FP_RD = {m for m in SPECS if m.startswith("f") and m not in
         ("fmv.x.w", "fcvt.w.s", "feq.s", "flt.s", "fle.s")} - {"fsw"}
FP_RS1 = {m for m in SPECS if m.startswith("f")} - {
    "flw", "fsw", "fmv.w.x", "fcvt.s.w"}
FP_RS2 = {"fadd.s", "fsub.s", "fmul.s", "fdiv.s", "fmin.s", "fmax.s",
          "fsgnj.s", "fsgnjn.s", "fsgnjx.s", "feq.s", "flt.s", "fle.s",
          "fpow.s", "fsw"}

#: Vortex custom mnemonics.
SIMT_OPS = {"tmc", "wspawn", "split", "join", "bar", "pred", "halt", "printfx"}


@dataclass
class Instruction:
    """One decoded instruction. ``imm`` holds the sign-extended immediate
    (branch/jump offsets in bytes, relative to this instruction)."""

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    #: Source label for branches/jumps (assembler fills imm from it).
    label: str | None = None

    def __post_init__(self) -> None:
        if self.mnemonic not in SPECS:
            raise CompilationError(f"unknown mnemonic {self.mnemonic!r}")

    @property
    def spec(self) -> Spec:
        return SPECS[self.mnemonic]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{format_instruction(self)}>"


def _sext(value: int, bits: int) -> int:
    mask = (1 << bits) - 1
    value &= mask
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def encode(ins: Instruction) -> int:
    """Encode to a 32-bit word (standard RISC-V formats)."""
    spec = ins.spec
    op, f3, f7 = spec.opcode, spec.funct3, spec.funct7
    rd, rs1, rs2, imm = ins.rd & 31, ins.rs1 & 31, ins.rs2 & 31, ins.imm

    if spec.fmt is Fmt.R:
        return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op
    if spec.fmt is Fmt.AMO:
        return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op
    if spec.fmt is Fmt.I:
        i = imm & 0xFFF
        if ins.mnemonic in ("slli", "srli", "srai"):
            i = (f7 << 5) | (imm & 31)
        return (i << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op
    if spec.fmt is Fmt.CSR:
        return ((imm & 0xFFF) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op
    if spec.fmt is Fmt.S:
        i = imm & 0xFFF
        return (
            ((i >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12)
            | ((i & 31) << 7) | op
        )
    if spec.fmt is Fmt.B:
        i = imm & 0x1FFF
        b12 = (i >> 12) & 1
        b11 = (i >> 11) & 1
        b10_5 = (i >> 5) & 0x3F
        b4_1 = (i >> 1) & 0xF
        return (
            (b12 << 31) | (b10_5 << 25) | (rs2 << 20) | (rs1 << 15)
            | (f3 << 12) | (b4_1 << 8) | (b11 << 7) | op
        )
    if spec.fmt is Fmt.U:
        return ((imm & 0xFFFFF) << 12) | (rd << 7) | op
    if spec.fmt is Fmt.J:
        i = imm & 0x1FFFFF
        b20 = (i >> 20) & 1
        b19_12 = (i >> 12) & 0xFF
        b11 = (i >> 11) & 1
        b10_1 = (i >> 1) & 0x3FF
        return (
            (b20 << 31) | (b10_1 << 21) | (b11 << 20) | (b19_12 << 12)
            | (rd << 7) | op
        )
    raise CompilationError(f"cannot encode {ins.mnemonic}")  # pragma: no cover


def decode(word: int) -> Instruction:
    """Decode a 32-bit word back into an :class:`Instruction`."""
    op = word & 0x7F
    rd = (word >> 7) & 31
    f3 = (word >> 12) & 7
    rs1 = (word >> 15) & 31
    rs2 = (word >> 20) & 31
    f7 = (word >> 25) & 0x7F

    def find(fmt_set, *, use_f7: bool) -> str:
        for name, spec in SPECS.items():
            if spec.opcode != op or spec.fmt not in fmt_set:
                continue
            if spec.fmt in (Fmt.U, Fmt.J):
                return name
            if spec.funct3 != f3:
                continue
            if use_f7 and spec.funct7 != f7:
                continue
            return name
        raise CompilationError(f"cannot decode word {word:#010x}")

    if op in (_LUI, _AUIPC):
        name = find({Fmt.U}, use_f7=False)
        return Instruction(name, rd=rd, imm=_sext(word >> 12, 20))
    if op == _JAL:
        i = (
            (((word >> 31) & 1) << 20)
            | (((word >> 12) & 0xFF) << 12)
            | (((word >> 20) & 1) << 11)
            | (((word >> 21) & 0x3FF) << 1)
        )
        return Instruction("jal", rd=rd, imm=_sext(i, 21))
    if op == _BRANCH:
        name = find({Fmt.B}, use_f7=False)
        i = (
            (((word >> 31) & 1) << 12)
            | (((word >> 7) & 1) << 11)
            | (((word >> 25) & 0x3F) << 5)
            | (((word >> 8) & 0xF) << 1)
        )
        return Instruction(name, rs1=rs1, rs2=rs2, imm=_sext(i, 13))
    if op == _STORE or op == _STORE_FP:
        name = find({Fmt.S}, use_f7=False)
        i = ((word >> 25) << 5) | ((word >> 7) & 31)
        return Instruction(name, rs1=rs1, rs2=rs2, imm=_sext(i, 12))
    if op == _SYSTEM:
        name = find({Fmt.CSR}, use_f7=False)
        return Instruction(name, rd=rd, rs1=rs1, imm=(word >> 20) & 0xFFF)
    if op in (_LOAD, _LOAD_FP, _JALR, _OP_IMM):
        # Shifts carry funct7 in the immediate field.
        if op == _OP_IMM and f3 in (1, 5):
            name = find({Fmt.I}, use_f7=True)
            return Instruction(name, rd=rd, rs1=rs1, imm=rs2)
        name = find({Fmt.I}, use_f7=False)
        return Instruction(name, rd=rd, rs1=rs1, imm=_sext(word >> 20, 12))
    if op in (_OP, _OP_FP, _CUSTOM0):
        name = find({Fmt.R}, use_f7=True)
        return Instruction(name, rd=rd, rs1=rs1, rs2=rs2)
    if op == _AMO:
        name = find({Fmt.AMO}, use_f7=True)
        return Instruction(name, rd=rd, rs1=rs1, rs2=rs2)
    raise CompilationError(f"cannot decode word {word:#010x}")


def format_instruction(ins: Instruction) -> str:
    """Disassemble one instruction to text."""
    m = ins.mnemonic
    spec = ins.spec
    rd = freg_name(ins.rd) if m in FP_RD else xreg_name(ins.rd)
    rs1 = freg_name(ins.rs1) if m in FP_RS1 else xreg_name(ins.rs1)
    rs2 = freg_name(ins.rs2) if m in FP_RS2 else xreg_name(ins.rs2)
    if m in ("lw", "flw", "jalr"):
        return f"{m} {rd}, {ins.imm}({rs1})"
    if m in ("sw", "fsw"):
        return f"{m} {rs2}, {ins.imm}({rs1})"
    if spec.fmt is Fmt.B:
        tgt = ins.label or f"pc{ins.imm:+d}"
        return f"{m} {rs1}, {rs2}, {tgt}"
    if m == "jal":
        tgt = ins.label or f"pc{ins.imm:+d}"
        return f"{m} {rd}, {tgt}"
    if spec.fmt is Fmt.U:
        return f"{m} {rd}, {ins.imm:#x}"
    if spec.fmt is Fmt.CSR:
        return f"{m} {rd}, {ins.imm:#x}, {rs1}"
    if spec.fmt is Fmt.I:
        return f"{m} {rd}, {rs1}, {ins.imm}"
    if m in ("join", "halt"):
        return m
    if m in ("tmc", "split"):
        return f"{m} {rs1}"
    if spec.fmt in (Fmt.R, Fmt.AMO):
        return f"{m} {rd}, {rs1}, {rs2}"
    return m  # pragma: no cover
