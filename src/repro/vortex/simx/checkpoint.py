"""Checkpoint/restore for the SimX machine: preemptible simulations.

A snapshot captures the *complete* mutable state of a mid-flight
:class:`~.machine.Machine` — per-warp register files, masks, IPDOM
stacks, scoreboards and LSU replay memos; per-core pipeline, cache
tag/LRU arrays, MSHR and write-combine queues and frozen-until state;
DRAM bank timing; the dispatcher's pending/slot bookkeeping; profiler
counters (CoreStats/CacheStats/DRAMStats) and the fast-forward skip
counters; and the memory image, delta-compressed against the
deterministic post-marshal baseline. Restoring a snapshot and running
to completion is byte-identical to a never-checkpointed run — the
golden-trace suite and the hypothesis round-trip property in
``tests/test_checkpoint.py`` pin this.

Snapshot files are a single JSON header line (magic, format version,
source fingerprint, point id, cycle, payload length + sha256) followed
by a zlib-compressed pickle of the state tree. Writes are atomic
(tmp + fsync + rename, the :class:`ResultCache` discipline); loads
verify every header field and degrade to ``None`` — a clean re-run —
on corruption or version/fingerprint skew, unlinking the bad file.

Cooperative preemption: ``Machine.launch(checkpoint=...)`` polls a
:class:`CheckpointControl` at a coarse cycle cadence; when the
control's deadline passes (or its stop file appears), the machine
writes a snapshot and raises :class:`~...errors.SimulationPreempted`
instead of being SIGKILLed by the engine watchdog. The engine requeues
preempted points without charging a retry as long as the snapshot
cycle advances; the next attempt resumes from the snapshot.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import tempfile
import time
import zlib
from pathlib import Path
from typing import Any

import numpy as np

from ...errors import CheckpointError
from .cache import CacheStats
from .core import CoreStats
from .dram import DRAMStats
from .warp import IPDOMEntry

#: First line of every snapshot file.
SNAPSHOT_MAGIC = "repro-simx-snapshot"

#: Bump whenever the state tree captured below changes shape. Old
#: snapshots are then rejected (and unlinked) instead of misrestored.
#: v2: ``baseline_sha`` (sha256) became ``baseline_digest`` (crc32).
SNAPSHOT_VERSION = 2

#: Default snapshot cadence in simulated cycles.
DEFAULT_EVERY_CYCLES = 2_000_000

#: The machine polls the control (deadline / stop file) at least this
#: often even when ``every_cycles`` is larger, so preemption latency is
#: bounded by wall-clock, not by the snapshot cadence.
CHECK_INTERVAL = 16_384

#: zlib level for hot-path (mid-run) snapshots: stored-block framing
#: only, no deflate pass. Snapshot wall cost is dominated by the memory
#: delta scan, and each point's snapshot file is overwritten in place —
#: the disk space a real compression pass buys back is not worth its
#: time on the simulation's critical path. ``load`` is level-agnostic.
HOT_COMPRESS_LEVEL = 0

#: Adaptive cadence (plans whose ``every_cycles`` was defaulted only):
#: whenever one snapshot costs more than this fraction of the wall time
#: since the previous one, the cadence doubles — bounding steady-state
#: snapshot overhead near the target regardless of how expensive
#: capture turns out to be for this workload on this machine.
ADAPT_TARGET_OVERHEAD = 0.05

#: Ceiling on adaptive stretching (worst-case re-simulated work on a
#: resume stays bounded).
ADAPT_MAX_EVERY_CYCLES = 64 * DEFAULT_EVERY_CYCLES

#: Orphaned ``*.tmp`` files older than this are swept on store
#: construction (mirrors ``ResultCache.TMP_GC_AGE_S``).
TMP_GC_AGE_S = 3600.0


def _slug(point_id: str) -> str:
    safe = re.sub(r"[^\w.+-]", "_", point_id)[:80]
    digest = hashlib.sha256(point_id.encode()).hexdigest()[:8]
    return f"{safe}-{digest}"


def program_fingerprint(image: Any, config: Any) -> str:
    """Identity of the decoded-instruction table a snapshot depends on:
    the program words plus the config label (decode specialises on
    geometry). A snapshot never restores onto a different program."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(image.program.words).tobytes())
    h.update(image.kernel_name.encode())
    h.update(config.label().encode())
    return h.hexdigest()


def baseline_digest(mem: np.ndarray) -> str:
    """Cheap identity of the post-marshal memory baseline a snapshot's
    delta applies to. This runs over the full device memory on *every*
    checkpoint-armed launch (and again on resume), so speed matters:
    it only has to catch two deterministic runs marshalling different
    arguments, which crc32+length does at under half sha256's cost."""
    return f"crc32:{zlib.crc32(mem) & 0xFFFFFFFF:08x}:{len(mem)}"


# ----------------------------------------------------------------------
# State capture / restore (duck-typed over Machine to avoid an import
# cycle; the field lists mirror the __init__ bodies of Warp, Core,
# Cache, DRAM and Machine).
# ----------------------------------------------------------------------


def _dup(obj: Any) -> Any:
    """Deep-copy an LSU replay memo tree (ndarrays, lists, tuples)."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, list):
        return [_dup(x) for x in obj]
    if isinstance(obj, tuple):
        return tuple(_dup(x) for x in obj)
    return obj


def _capture_warp(warp: Any) -> dict[str, Any]:
    return {
        "x": warp.x.copy(),
        "f": warp.f.copy(),
        "pc": warp.pc,
        "tmask": warp.tmask.copy(),
        "active": warp.active,
        "at_barrier": warp.at_barrier,
        "ready_at": warp.ready_at,
        "x_ready": list(warp.x_ready),
        "f_ready": list(warp.f_ready),
        "full": warp._full,
        "ipdom": [(e.mask.copy() if e.mask is not None else None,
                   e.pc, e.uniform) for e in warp.ipdom],
        "csrs": dict(warp.csrs),
        "group_key": warp.group_key,
        "iseq": warp._iseq,
        "lsu_replay": _dup(warp._lsu_replay),
    }


def _restore_warp(warp: Any, state: dict[str, Any]) -> None:
    warp.x = state["x"].copy()
    warp.f = state["f"].copy()
    warp.pc = state["pc"]
    warp.tmask = state["tmask"].copy()
    warp.active = state["active"]
    warp.at_barrier = state["at_barrier"]
    warp.ready_at = state["ready_at"]
    warp.x_ready = list(state["x_ready"])
    warp.f_ready = list(state["f_ready"])
    warp._full = state["full"]
    warp.ipdom = [
        IPDOMEntry(mask=m.copy() if m is not None else None,
                   pc=pc, uniform=uniform)
        for m, pc, uniform in state["ipdom"]
    ]
    warp.csrs = dict(state["csrs"])
    warp.csr_cache = {}  # pure memo; rebuilt lazily with identical values
    warp.group_key = state["group_key"]
    warp._iseq = state["iseq"]
    warp._lsu_replay = _dup(state["lsu_replay"])


def _capture_core(core: Any) -> dict[str, Any]:
    s = core.stats
    c = core.dcache.stats
    return {
        "stats": (s.instructions, s.cycles_active, s.idle_cycles,
                  s.lsu_stalls, s.lsu_replays, s.scoreboard_stalls,
                  s.barrier_waits, s.simt_instructions),
        "dcache_tags": [list(row) for row in core.dcache.tags],
        "dcache_lru": [list(row) for row in core.dcache.lru],
        "dcache_tick": core.dcache._tick,
        "dcache_stats": (c.accesses, c.hits, c.misses),
        "lsu_inflight": list(core.lsu_inflight),
        "lsu_busy_until": core.lsu_busy_until,
        "mshrs": dict(core.mshrs),
        "mshr_entries": list(core.mshr_entries),
        "purge_at": core._purge_at,
        "wc_buffer": dict(core.wc_buffer),
        "wc_stamp": core._wc_stamp,
        "issue_busy_until": core.issue_busy_until,
        "rr": core.rr,
        "barriers": {k: list(v) for k, v in core.barriers.items()},
        "stall": core._stall,
        "mshr_occupancy": core._mshr_occupancy,
        "warps": [_capture_warp(w) for w in core.warps],
    }


def _restore_core(core: Any, state: dict[str, Any]) -> None:
    (i, ca, ic, ls, lr, ss, bw, si) = state["stats"]
    core.stats = CoreStats(
        instructions=i, cycles_active=ca, idle_cycles=ic, lsu_stalls=ls,
        lsu_replays=lr, scoreboard_stalls=ss, barrier_waits=bw,
        simt_instructions=si,
    )
    core.dcache.tags = [list(row) for row in state["dcache_tags"]]
    core.dcache.lru = [list(row) for row in state["dcache_lru"]]
    core.dcache._tick = state["dcache_tick"]
    acc, hits, misses = state["dcache_stats"]
    core.dcache.stats = CacheStats(accesses=acc, hits=hits, misses=misses)
    core.lsu_inflight = list(state["lsu_inflight"])
    core.lsu_busy_until = state["lsu_busy_until"]
    core.mshrs = dict(state["mshrs"])
    core.mshr_entries = list(state["mshr_entries"])
    core._purge_at = state["purge_at"]
    core.wc_buffer = dict(state["wc_buffer"])
    core._wc_stamp = state["wc_stamp"]
    core.issue_busy_until = state["issue_busy_until"]
    core.rr = state["rr"]
    core.barriers = {k: list(v) for k, v in state["barriers"].items()}
    core._stall = state["stall"]
    core._mshr_occupancy = state["mshr_occupancy"]
    for warp, wstate in zip(core.warps, state["warps"]):
        _restore_warp(warp, wstate)


def _delta_indices(mem: np.ndarray, base: np.ndarray) -> np.ndarray:
    """Byte indices where ``mem`` differs from ``base``.

    This scan dominates snapshot cost: a byte-wise compare of the 64 MiB
    device memory runs ~50 ms. Comparing as uint64 words first is ~3x
    cheaper (8x fewer comparisons; the per-element index extraction then
    touches only the handful of dirty words)."""
    if len(mem) % 8:
        return np.flatnonzero(mem != base)
    words = np.flatnonzero(mem.view(np.uint64) != base.view(np.uint64))
    if not len(words):
        return words
    cand = (words[:, None] * 8 + np.arange(8)).ravel()
    return cand[mem[cand] != base[cand]]


def capture_state(machine: Any, now: int) -> dict[str, Any]:
    """Snapshot the machine at a main-loop cycle boundary.

    ``now`` must be the next cycle the main loop would execute; the
    machine must have been launched with checkpointing armed (so the
    post-marshal memory baseline exists).
    """
    mem = machine.memory.data
    base = machine._ckpt_baseline
    idx = _delta_indices(mem, base)
    dram = machine.dram
    return {
        "now": int(now),
        "config": machine.config.label(),
        "ndrange": (tuple(machine._ndrange.global_size),
                    tuple(machine._ndrange.local_size)),
        "program_sha": machine._ckpt_program_sha,
        "baseline_digest": machine._ckpt_baseline_digest,
        "mem_idx": idx,
        "mem_val": mem[idx].copy(),
        "printf": list(machine.printf_output),
        "skip_stats": dict(machine.skip_stats),
        "dram": {
            "bank_free": list(dram.bank_free),
            "open_rows": [list(t) for t in dram.open_rows],
            "stats": (dram.stats.requests, dram.stats.row_hits,
                      dram.stats.row_misses),
            "evict_seed": dram._evict_seed,
        },
        "group_remaining": dict(machine._group_remaining),
        "group_slot": dict(machine._group_slot),
        "slot_free": [list(row) for row in machine._slot_free],
        "pending": list(machine._pending),
        "next_group_key": machine._next_group_key,
        "dispatch_cursor": machine._dispatch_cursor,
        "groups_dispatched": machine._groups_dispatched,
        "active_warps": machine._active_warps,
        "dispatch_blocked": machine._dispatch_blocked,
        "frozen_until": list(machine._frozen_until),
        "cores": [_capture_core(c) for c in machine.cores],
    }


def verify_resume(machine: Any, ndrange: Any, state: dict[str, Any]) -> None:
    """All resume preconditions, checked before any mutation so a
    failed verification leaves the machine launchable from scratch."""
    if state.get("config") != machine.config.label():
        raise CheckpointError(
            f"snapshot was taken on config {state.get('config')!r}, "
            f"machine is {machine.config.label()!r}"
        )
    want = (tuple(ndrange.global_size), tuple(ndrange.local_size))
    if tuple(map(tuple, state.get("ndrange", ()))) != want:
        raise CheckpointError(
            f"snapshot ndrange {state.get('ndrange')} != launch {want}"
        )
    sha = program_fingerprint(machine._image, machine.config)
    if state.get("program_sha") != sha:
        raise CheckpointError("snapshot program fingerprint mismatch "
                              "(kernel or decode changed)")
    if state.get("baseline_digest") != baseline_digest(machine.memory.data):
        raise CheckpointError("snapshot memory baseline mismatch "
                              "(marshalled arguments differ)")
    if len(state.get("cores", ())) != len(machine.cores):
        raise CheckpointError("snapshot core count mismatch")


def restore_state(machine: Any, state: dict[str, Any]) -> None:
    """Apply a verified snapshot. The machine's memory must hold the
    baseline image (freshly loaded + marshalled) — ``verify_resume``
    checked that."""
    mem = machine.memory.data
    mem[state["mem_idx"]] = state["mem_val"]
    machine.printf_output[:] = state["printf"]
    machine.skip_stats = dict(state["skip_stats"])
    d = state["dram"]
    dram = machine.dram
    dram.bank_free = list(d["bank_free"])
    dram.open_rows = [list(t) for t in d["open_rows"]]
    req, rh, rm = d["stats"]
    dram.stats = DRAMStats(requests=req, row_hits=rh, row_misses=rm)
    dram._evict_seed = d["evict_seed"]
    machine._group_remaining = dict(state["group_remaining"])
    machine._group_slot = dict(state["group_slot"])
    machine._slot_free = [list(row) for row in state["slot_free"]]
    machine._pending = list(state["pending"])
    machine._next_group_key = state["next_group_key"]
    machine._dispatch_cursor = state["dispatch_cursor"]
    machine._groups_dispatched = state["groups_dispatched"]
    machine._active_warps = state["active_warps"]
    machine._dispatch_blocked = state["dispatch_blocked"]
    machine._frozen_until[:] = state["frozen_until"]
    for core, cstate in zip(machine.cores, state["cores"]):
        _restore_core(core, cstate)


# ----------------------------------------------------------------------
# On-disk store.
# ----------------------------------------------------------------------


class CheckpointStore:
    """Directory of snapshot files with atomic writes and verified
    loads (the ``ResultCache`` discipline, one layer down).

    Besides snapshots the directory holds a ``hits.log`` (one appended
    JSON line per successful resume — the durable checkpoint-hit
    counter the CI kill drill asserts on) and ``*.once`` claim markers
    used by the deterministic preemption test hook.
    """

    HITS_LOG = "hits.log"

    def __init__(self, root: str | os.PathLike,
                 fingerprint: str | None = None,
                 sweep_age_s: float | None = TMP_GC_AGE_S):
        self.root = Path(root)
        if fingerprint is None:
            # Lazy import: vortex must stay importable without harness.
            from ...harness.result_cache import code_fingerprint
            fingerprint = code_fingerprint()
        self.fingerprint = fingerprint
        self.corrupt_dropped = 0
        self.stale_dropped = 0
        self.root.mkdir(parents=True, exist_ok=True)
        if sweep_age_s is not None:
            self.sweep_tmp(sweep_age_s)

    def path(self, point_id: str) -> Path:
        return self.root / (_slug(point_id) + ".ckpt")

    def save(self, point_id: str, state: dict[str, Any],
             level: int = 1) -> Path:
        payload = zlib.compress(pickle.dumps(state, protocol=4), level)
        header = {
            "magic": SNAPSHOT_MAGIC,
            "version": SNAPSHOT_VERSION,
            "fingerprint": self.fingerprint,
            "point": point_id,
            "cycle": int(state["now"]),
            "payload_len": len(payload),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
        }
        blob = json.dumps(header, sort_keys=True).encode() + b"\n" + payload
        path = self.path(point_id)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        committed = False
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            committed = True
        finally:
            if not committed:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        return path

    def load(self, point_id: str) -> dict[str, Any] | None:
        """Return the verified state tree, or ``None`` (meaning: run
        from scratch). Corrupt or version/fingerprint-skewed files are
        unlinked and counted, never restored."""
        path = self.path(point_id)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        stale = False
        try:
            nl = raw.index(b"\n")
            header = json.loads(raw[:nl].decode())
            if (header.get("magic") != SNAPSHOT_MAGIC
                    or header.get("version") != SNAPSHOT_VERSION
                    or header.get("fingerprint") != self.fingerprint):
                stale = True
                raise ValueError("snapshot version/fingerprint skew")
            if header.get("point") != point_id:
                raise ValueError("snapshot point-id mismatch")
            payload = raw[nl + 1:]
            if (len(payload) != header.get("payload_len")
                    or hashlib.sha256(payload).hexdigest()
                    != header.get("payload_sha256")):
                raise ValueError("snapshot payload checksum mismatch")
            return pickle.loads(zlib.decompress(payload))
        except Exception:
            if stale:
                self.stale_dropped += 1
            else:
                self.corrupt_dropped += 1
            self.discard(point_id)
            return None

    def discard(self, point_id: str) -> None:
        try:
            os.unlink(self.path(point_id))
        except OSError:
            pass

    def record_hit(self, point_id: str, cycle: int) -> None:
        """Durable, append-only resume counter (cross-process safe:
        O_APPEND single-write lines)."""
        line = json.dumps({"point": point_id, "cycle": int(cycle)}) + "\n"
        fd = os.open(self.root / self.HITS_LOG,
                     os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)

    def hit_count(self) -> int:
        try:
            with open(self.root / self.HITS_LOG, "rb") as fh:
                return sum(1 for _ in fh)
        except OSError:
            return 0

    def claim_once(self, tag: str) -> bool:
        """Cross-process once-only marker (O_CREAT|O_EXCL, the fault
        plan's firing-budget idiom) — arms one-shot test hooks so a
        resumed or re-simulated launch cannot re-fire them."""
        path = self.root / (_slug(tag) + ".once")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def sweep_tmp(self, max_age_s: float) -> int:
        """Unlink orphaned ``*.tmp`` files (a crash between mkstemp and
        rename leaks one) older than ``max_age_s``; returns the count."""
        removed = 0
        cutoff = time.time() - max_age_s
        try:
            candidates = list(self.root.glob("*.tmp"))
        except OSError:
            return 0
        for path in candidates:
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                pass
        return removed


# ----------------------------------------------------------------------
# Per-point plan and per-launch control.
# ----------------------------------------------------------------------


class CheckpointControl:
    """What one ``Machine.launch``/``resume`` sees: where to write its
    snapshots and when to yield. Created by :class:`CheckpointPlan`."""

    __slots__ = ("store", "launch_id", "every_cycles", "deadline_at",
                 "stop_file", "preempt_at_cycle", "saves", "adaptive",
                 "on_stretch", "_prev_save_end")

    def __init__(self, store: CheckpointStore, launch_id: str,
                 every_cycles: int = DEFAULT_EVERY_CYCLES,
                 deadline_at: float | None = None,
                 stop_file: str | None = None,
                 preempt_at_cycle: int | None = None,
                 adaptive: bool = False,
                 on_stretch=None):
        self.store = store
        self.launch_id = launch_id
        self.every_cycles = max(1, int(every_cycles))
        self.deadline_at = deadline_at
        self.stop_file = stop_file
        self.preempt_at_cycle = preempt_at_cycle
        self.saves = 0
        #: adapt the cadence to measured snapshot cost (defaulted
        #: cadences only — an explicit ``every_cycles`` is a contract).
        self.adaptive = adaptive
        self.on_stretch = on_stretch
        self._prev_save_end = time.perf_counter()

    def due_preempt(self, now: int, run_start: int) -> bool:
        """Polled at checkpoint boundaries; any True yields a snapshot
        plus :class:`SimulationPreempted`."""
        if (self.preempt_at_cycle is not None
                and run_start < self.preempt_at_cycle <= now
                and self.store.claim_once(f"{self.launch_id}.preempt")):
            return True
        if self.stop_file is not None and os.path.exists(self.stop_file):
            return True
        if self.deadline_at is not None \
                and time.monotonic() >= self.deadline_at:
            return True
        return False

    def save(self, machine: Any, now: int) -> None:
        start = time.perf_counter()
        self.store.save(self.launch_id, capture_state(machine, now),
                        level=HOT_COMPRESS_LEVEL)
        end = time.perf_counter()
        self.saves += 1
        if self.adaptive and self.every_cycles < ADAPT_MAX_EVERY_CYCLES:
            cost = end - start
            since = max(start - self._prev_save_end, 0.0)
            if cost > ADAPT_TARGET_OVERHEAD * (since + cost):
                self.every_cycles = min(self.every_cycles * 2,
                                        ADAPT_MAX_EVERY_CYCLES)
                if self.on_stretch is not None:
                    self.on_stretch(self.every_cycles)
        self._prev_save_end = end

    def note_resumed(self, cycle: int) -> None:
        self.store.record_hit(self.launch_id, cycle)


class CheckpointPlan:
    """One experiment point's checkpoint policy: a store, a stable
    point id, and the shared preemption budget. Each kernel launch of
    the point gets its own sequenced launch id (``<point>.L<n>``) so a
    multi-launch benchmark resumes exactly the launch it was preempted
    in — earlier launches re-simulate deterministically from the
    result cache of host-side buffers."""

    def __init__(self, store: CheckpointStore, point_id: str,
                 every_cycles: int | None = None,
                 deadline_s: float | None = None,
                 stop_file: str | None = None,
                 preempt_at_cycle: int | None = None):
        self.store = store
        self.point_id = point_id
        #: a defaulted cadence is a heuristic, not a contract — controls
        #: built from this plan may stretch it (doubling whenever one
        #: snapshot exceeds ``ADAPT_TARGET_OVERHEAD`` of the interval
        #: since the last) and report the stretch back here so later
        #: launches of the point start at the adapted cadence.
        self.adaptive = every_cycles is None
        self.every_cycles = int(every_cycles or DEFAULT_EVERY_CYCLES)
        self.deadline_at = (time.monotonic() + deadline_s
                            if deadline_s is not None else None)
        self.stop_file = stop_file
        self.preempt_at_cycle = preempt_at_cycle
        self.hits = 0
        self._seq = 0

    @classmethod
    def from_spec(cls, spec: dict[str, Any] | None) -> "CheckpointPlan | None":
        """Build a plan from the picklable wire format the engine ships
        to workers: ``{"dir", "point_id", "every", "deadline_s",
        "stop_file", "preempt_at_cycle"}`` (all but the first two
        optional)."""
        if not spec:
            return None
        store = CheckpointStore(spec["dir"], sweep_age_s=None)
        return cls(
            store,
            spec["point_id"],
            every_cycles=spec.get("every"),
            deadline_s=spec.get("deadline_s"),
            stop_file=spec.get("stop_file"),
            preempt_at_cycle=spec.get("preempt_at_cycle"),
        )

    def next_control(self) -> CheckpointControl:
        launch_id = f"{self.point_id}.L{self._seq}"
        self._seq += 1
        return CheckpointControl(
            self.store, launch_id,
            every_cycles=self.every_cycles,
            deadline_at=self.deadline_at,
            stop_file=self.stop_file,
            preempt_at_cycle=self.preempt_at_cycle,
            adaptive=self.adaptive,
            on_stretch=self._note_stretch,
        )

    def _note_stretch(self, every_cycles: int) -> None:
        self.every_cycles = every_cycles
