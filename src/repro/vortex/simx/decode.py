"""Decode-once instruction cache for the SimX hot loop.

The pre-optimization simulator re-decoded every instruction at every
issue: a PC-to-index search, an :class:`InstrMeta` lookup, a latency
dict built per issue and a long mnemonic ``if/elif`` chain before any
lane arithmetic ran. This module moves all of that to *load time*: when
a kernel image is loaded, every static instruction is compiled into a
:class:`DecodedInstr` — a flat record holding the pre-resolved handler
function, operand registers, immediate constants already cast to their
numpy types, the absolute jump/branch target (PCs are static, so
``auipc``/``jal``/branch arithmetic folds away entirely) and the
writeback latency for the machine configuration. The issue stage then
costs one list index and one indirect call per dynamic instruction.

Two handler tables implement the same ISA:

* ``VECTOR_DISPATCH`` — numpy lane-vectorized execution (production);
* ``SCALAR_DISPATCH`` — a per-lane Python reference path for the
  masked compute operations, selected with ``REPRO_SIMX_SCALAR=1``.

The scalar path exists purely as a differential oracle: the property
tests in ``tests/test_simx_vectorized.py`` drive random instruction
sequences and active-mask patterns through both tables and require
bit-identical register/memory state. Each scalar handler loops over the
active lanes applying the *same* arithmetic kernel to one-element
slices, so any divergence isolates a masking/vectorization bug rather
than a numerics difference.
"""

from __future__ import annotations

import os

import numpy as np

from ...errors import SimulationError
from ..asm import Program
from ..isa import Instruction
from .config import VortexConfig
from .core import Core, InstrMeta, _sdiv, _srem, instr_meta

#: Environment variable selecting the scalar reference path.
SCALAR_ENV = "REPRO_SIMX_SCALAR"

_SIGN_BIT = np.int32(-(2**31))


def _i32(value: int) -> np.int32:
    value &= 0xFFFFFFFF
    if value >= 2**31:
        value -= 2**32
    return np.int32(value)


class DecodedInstr:
    """One statically-decoded instruction (the per-PC cache entry)."""

    __slots__ = (
        "ins", "meta", "mnemonic", "pc",
        "rs1", "rs2", "rd", "imm", "imm64",
        "kind", "is_mem", "is_simt",
        "srcs_x", "srcs_f",
        "wb_x", "wb_f", "latency",
        "handler", "op", "val", "target", "aux",
    )

    def __init__(self, ins: Instruction, meta: InstrMeta, pc: int,
                 latency: int):
        self.ins = ins
        self.meta = meta
        self.mnemonic = ins.mnemonic
        self.pc = pc
        self.rs1 = ins.rs1
        self.rs2 = ins.rs2
        self.rd = ins.rd
        self.imm = ins.imm
        #: immediate as a numpy int64 scalar: ``int32_row + imm64``
        #: upcasts to int64 in one ufunc call (the LSU address path).
        self.imm64 = np.int64(ins.imm)
        self.kind = meta.kind
        self.is_mem = meta.is_mem
        self.is_simt = meta.kind == "simt"
        self.srcs_x = meta.srcs_x
        self.srcs_f = meta.srcs_f
        self.wb_x = meta.dst[1] if meta.dst and meta.dst[0] == "x" else -1
        self.wb_f = meta.dst[1] if meta.dst and meta.dst[0] == "f" else -1
        self.latency = latency
        self.handler = None
        self.op = None
        self.val = None
        self.target = 0
        self.aux = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DecodedInstr {self.mnemonic} @ {self.pc:#x}>"


# ---------------------------------------------------------------------------
# Arithmetic kernels (shared by the vector and scalar paths; the RISC-V
# M-extension division corner cases live in ``core._sdiv``/``core._srem``).
# ---------------------------------------------------------------------------


_INT_BIN_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "sll": lambda a, b: a << (b & 31),
    "slt": lambda a, b: (a < b).astype(np.int32),
    "sltu": lambda a, b: (a.view(np.uint32) < b.view(np.uint32)).astype(
        np.int32),
    "xor": lambda a, b: a ^ b,
    "srl": lambda a, b: (a.view(np.uint32)
                         >> (b & 31).view(np.uint32)).view(np.int32),
    "sra": lambda a, b: a >> (b & 31),
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
    "mul": lambda a, b: (a.astype(np.int64) * b.astype(np.int64)).astype(
        np.int32),
    "mulh": lambda a, b: ((a.astype(np.int64) * b.astype(np.int64))
                          >> 32).astype(np.int32),
    "div": _sdiv,
    "rem": _srem,
}


def _make_imm_op(m: str, imm: int):
    """One-argument closure with the immediate pre-cast to numpy."""
    if m == "addi":
        c = np.int32(imm)
        return lambda a: a + c
    if m == "slti":
        c = np.int32(imm)
        return lambda a: (a < c).astype(np.int32)
    if m == "sltiu":
        c = np.uint32(imm & 0xFFFFFFFF)
        return lambda a: (a.view(np.uint32) < c).astype(np.int32)
    if m == "xori":
        c = np.int32(imm)
        return lambda a: a ^ c
    if m == "ori":
        c = np.int32(imm)
        return lambda a: a | c
    if m == "andi":
        c = np.int32(imm)
        return lambda a: a & c
    if m == "slli":
        s = imm & 31
        return lambda a: a << s
    if m == "srli":
        s = np.uint32(imm & 31)
        return lambda a: (a.view(np.uint32) >> s).view(np.int32)
    if m == "srai":
        s = imm & 31
        return lambda a: a >> s
    raise SimulationError(f"bad int immop {m}")  # pragma: no cover


# -- tiny-warp Python-int kernels -------------------------------------------
#
# For warps of <= TINY_LANES threads the numpy handlers spend more time
# in ufunc dispatch and temporary-row allocation than in arithmetic.
# These kernels mirror _INT_BIN_OPS/_make_imm_op exactly (including the
# RISC-V M-extension division corner cases) but operate on plain Python
# ints extracted with ndarray.item(); the ``_v_int_bin``/``_v_int_imm``
# handlers select them via ``warp._tiny``. The differential tests in
# ``tests/test_simx_vectorized.py`` hold both paths bit-identical.


def _w32(v: int) -> int:
    """Wrap a Python int to signed 32-bit two's complement."""
    v &= 0xFFFFFFFF
    return v - 0x100000000 if v >= 0x80000000 else v


def _py_sdiv(a: int, b: int) -> int:
    # RISC-V div: by zero -> -1, INT_MIN / -1 -> INT_MIN, else
    # truncation toward zero (Python // truncates toward -inf).
    if b == 0:
        return -1
    if a == -(2**31) and b == -1:
        return a
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _py_srem(a: int, b: int) -> int:
    # RISC-V rem: by zero -> dividend, INT_MIN % -1 -> 0, else the
    # remainder matching truncating division (sign of the dividend).
    if b == 0:
        return a
    if a == -(2**31) and b == -1:
        return 0
    return a - _py_sdiv(a, b) * b


_PY_INT_BIN_OPS = {
    "add": lambda a, b: _w32(a + b),
    "sub": lambda a, b: _w32(a - b),
    "sll": lambda a, b: _w32(a << (b & 31)),
    "slt": lambda a, b: 1 if a < b else 0,
    "sltu": lambda a, b: 1 if (a & 0xFFFFFFFF) < (b & 0xFFFFFFFF) else 0,
    "xor": lambda a, b: a ^ b,
    "srl": lambda a, b: _w32((a & 0xFFFFFFFF) >> (b & 31)),
    "sra": lambda a, b: a >> (b & 31),
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
    "mul": lambda a, b: _w32(a * b),
    "mulh": lambda a, b: _w32((a * b) >> 32),
    "div": _py_sdiv,
    "rem": _py_srem,
}


def _make_py_imm_op(m: str, imm: int):
    """Python-int twin of :func:`_make_imm_op` (same mnemonics)."""
    if m == "addi":
        return lambda a: _w32(a + imm)
    if m == "slti":
        return lambda a: 1 if a < imm else 0
    if m == "sltiu":
        c = imm & 0xFFFFFFFF
        return lambda a: 1 if (a & 0xFFFFFFFF) < c else 0
    if m == "xori":
        return lambda a: a ^ imm
    if m == "ori":
        return lambda a: a | imm
    if m == "andi":
        return lambda a: a & imm
    if m == "slli":
        s = imm & 31
        return lambda a: _w32(a << s)
    if m == "srli":
        s = imm & 31
        return lambda a: _w32((a & 0xFFFFFFFF) >> s)
    if m == "srai":
        s = imm & 31
        return lambda a: a >> s
    raise SimulationError(f"bad int immop {m}")  # pragma: no cover


_FLOAT_BIN_OPS = {
    "fadd.s": lambda a, b: a + b,
    "fsub.s": lambda a, b: a - b,
    "fmul.s": lambda a, b: a * b,
    "fdiv.s": lambda a, b: a / b,
    "fmin.s": np.fmin,
    "fmax.s": np.fmax,
    "fpow.s": lambda a, b: np.power(a.astype(np.float64),
                                    b.astype(np.float64)).astype(np.float32),
    "fsgnj.s": lambda a, b: ((a.view(np.int32) & 0x7FFFFFFF)
                             | (b.view(np.int32) & _SIGN_BIT)).view(
                                 np.float32),
    "fsgnjn.s": lambda a, b: ((a.view(np.int32) & 0x7FFFFFFF)
                              | (~b.view(np.int32) & _SIGN_BIT)).view(
                                  np.float32),
    "fsgnjx.s": lambda a, b: (a.view(np.int32)
                              ^ (b.view(np.int32) & _SIGN_BIT)).view(
                                  np.float32),
}

_FLOAT_UN_OPS = {
    "fsqrt.s": np.sqrt,
    "fexp.s": lambda a: np.exp(a.astype(np.float64)).astype(np.float32),
    "flog.s": lambda a: np.log(a.astype(np.float64)).astype(np.float32),
    "fsin.s": lambda a: np.sin(a.astype(np.float64)).astype(np.float32),
    "fcos.s": lambda a: np.cos(a.astype(np.float64)).astype(np.float32),
    "ffloor.s": np.floor,
}

_FLOAT_CMP_OPS = {
    "feq.s": lambda a, b: (a == b).astype(np.int32),
    "flt.s": lambda a, b: (a < b).astype(np.int32),
    "fle.s": lambda a, b: (a <= b).astype(np.int32),
}

_BRANCH_OPS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "bge": lambda a, b: a >= b,
    "bltu": lambda a, b: a.view(np.uint32) < b.view(np.uint32),
    "bgeu": lambda a, b: a.view(np.uint32) >= b.view(np.uint32),
}


def _fcvt_w_s(a: np.ndarray) -> np.ndarray:
    v = a.astype(np.float64)
    v = np.where(np.isnan(v), 0.0, v)
    return np.trunc(v).astype(np.int64).astype(np.int32)


# ---------------------------------------------------------------------------
# Vectorized handlers. Signature: handler(core, warp, d, now).
#
# The issue stage (Core.tick) has already set ``warp.ready_at``; each
# handler advances the PC, performs the masked register writes, and
# books the scoreboard writeback. Writes to x0 are impossible by
# construction (``wb_x``/masked-write guards), so the defensive
# ``x[0] = 0`` of the old interpreter loop is gone from the hot path
# (the property tests assert x0 stays zero).
# ---------------------------------------------------------------------------


def _v_int_bin(core, warp, d, now):
    if d.wb_x >= 0:
        x = warp.x
        if warp._tiny:
            op, rs1, rs2, wb = d.aux, d.rs1, d.rs2, d.wb_x
            if warp._full:
                for lane in range(warp.num_threads):
                    x[wb, lane] = op(x.item(rs1, lane), x.item(rs2, lane))
            else:
                tm = warp.tmask
                for lane in range(warp.num_threads):
                    if tm.item(lane):
                        x[wb, lane] = op(x.item(rs1, lane),
                                         x.item(rs2, lane))
        elif warp._full:
            x[d.wb_x] = d.op(x[d.rs1], x[d.rs2])
        else:
            np.copyto(x[d.wb_x], d.op(x[d.rs1], x[d.rs2]),
                      where=warp.tmask)
        warp.x_ready[d.wb_x] = now + d.latency
    warp.pc += 4


def _v_int_imm(core, warp, d, now):
    if d.wb_x >= 0:
        x = warp.x
        if warp._tiny:
            op, rs1, wb = d.aux, d.rs1, d.wb_x
            if warp._full:
                for lane in range(warp.num_threads):
                    x[wb, lane] = op(x.item(rs1, lane))
            else:
                tm = warp.tmask
                for lane in range(warp.num_threads):
                    if tm.item(lane):
                        x[wb, lane] = op(x.item(rs1, lane))
        elif warp._full:
            x[d.wb_x] = d.op(x[d.rs1])
        else:
            np.copyto(x[d.wb_x], d.op(x[d.rs1]), where=warp.tmask)
        warp.x_ready[d.wb_x] = now + d.latency
    warp.pc += 4


def _v_const(core, warp, d, now):
    # lui / auipc / jal-link: the written value is static per PC.
    if d.wb_x >= 0:
        if warp._full:
            warp.x[d.wb_x] = d.val
        else:
            warp.x[d.wb_x][warp.tmask] = d.val
        warp.x_ready[d.wb_x] = now + d.latency
    warp.pc += 4


def _v_jal(core, warp, d, now):
    if d.wb_x >= 0:
        if warp._full:
            warp.x[d.wb_x] = d.val
        else:
            warp.x[d.wb_x][warp.tmask] = d.val
        warp.x_ready[d.wb_x] = now + d.latency
    warp.pc = d.target


def _v_jalr(core, warp, d, now):
    x = warp.x
    target = core._uniform_value(warp, x[d.rs1] + d.imm)
    if d.wb_x >= 0:
        if warp._full:
            x[d.wb_x] = d.val
        else:
            x[d.wb_x][warp.tmask] = d.val
        warp.x_ready[d.wb_x] = now + d.latency
    warp.pc = int(target) & ~1


def _v_branch(core, warp, d, now):
    cond = d.op(warp.x[d.rs1], warp.x[d.rs2])
    active = cond if warp._full else cond[warp.tmask]
    if len(active) == 0:
        raise SimulationError(
            f"core {core.cid} warp {warp.wid}: branch with empty mask "
            f"at pc {warp.pc:#x}"
        )
    if active.all():
        warp.pc = d.target
    elif not active.any():
        warp.pc += 4
    else:
        raise SimulationError(
            f"core {core.cid} warp {warp.wid}: divergent branch executed "
            f"without SPLIT at pc {warp.pc:#x} (miscompiled kernel)"
        )


def _v_csr(core, warp, d, now):
    val = core._read_csr(warp, d.imm)
    if d.wb_x >= 0:
        if warp._full:
            warp.x[d.wb_x] = val
        else:
            np.copyto(warp.x[d.wb_x], val, where=warp.tmask)
        warp.x_ready[d.wb_x] = now + d.latency
    warp.pc += 4


def _v_fpu_bin(core, warp, d, now):
    f = warp.f
    if warp._full:
        f[d.wb_f] = d.op(f[d.rs1], f[d.rs2])
    else:
        np.copyto(f[d.wb_f], d.op(f[d.rs1], f[d.rs2]), where=warp.tmask)
    warp.f_ready[d.wb_f] = now + d.latency
    warp.pc += 4


def _v_fpu_un(core, warp, d, now):
    f = warp.f
    if warp._full:
        f[d.wb_f] = d.op(f[d.rs1])
    else:
        np.copyto(f[d.wb_f], d.op(f[d.rs1]), where=warp.tmask)
    warp.f_ready[d.wb_f] = now + d.latency
    warp.pc += 4


def _v_fcmp(core, warp, d, now):
    if d.wb_x >= 0:
        f = warp.f
        if warp._full:
            warp.x[d.wb_x] = d.op(f[d.rs1], f[d.rs2])
        else:
            np.copyto(warp.x[d.wb_x], d.op(f[d.rs1], f[d.rs2]),
                      where=warp.tmask)
        warp.x_ready[d.wb_x] = now + d.latency
    warp.pc += 4


def _v_f2x(core, warp, d, now):
    # fcvt.w.s / fmv.x.w: float register source, int register dest.
    if d.wb_x >= 0:
        if warp._full:
            warp.x[d.wb_x] = d.op(warp.f[d.rs1])
        else:
            np.copyto(warp.x[d.wb_x], d.op(warp.f[d.rs1]),
                      where=warp.tmask)
        warp.x_ready[d.wb_x] = now + d.latency
    warp.pc += 4


def _v_x2f(core, warp, d, now):
    # fcvt.s.w / fmv.w.x: int register source, float register dest.
    if warp._full:
        warp.f[d.wb_f] = d.op(warp.x[d.rs1])
    else:
        np.copyto(warp.f[d.wb_f], d.op(warp.x[d.rs1]), where=warp.tmask)
    warp.f_ready[d.wb_f] = now + d.latency
    warp.pc += 4


def _h_join(core, warp, d, now):
    entry = warp.pop_join()
    if entry.uniform:
        warp.pc += 4
    elif entry.pc is not None:
        warp.tmask = entry.mask
        warp._full = bool(entry.mask.all())
        warp.pc = entry.pc
    else:
        warp.tmask = entry.mask
        warp._full = bool(entry.mask.all())
        warp.pc += 4


def _h_pred(core, warp, d, now):
    cont = (warp.x[d.rs1] != 0) & warp.tmask
    if cont.any():
        warp.tmask = cont
        warp._full = bool(cont.all())
        warp.pc += 8  # skip the loop-exit jump
    else:
        bits = int(warp.x[d.rs2][warp.first_active_lane()])
        warp.set_tmask_bits(bits)
        warp.pc += 4  # execute the loop-exit jump


def _h_tmc(core, warp, d, now):
    bits = int(warp.x[d.rs1][warp.first_active_lane()])
    warp.set_tmask_bits(bits)
    warp.pc += 4
    if not warp.tmask.any():
        warp.halt()
        core.machine.on_warp_halt(core, warp, now)


def _h_halt(core, warp, d, now):
    warp.pc += 4
    warp.halt()
    core.machine.on_warp_halt(core, warp, now)


def _h_printf(core, warp, d, now):
    core._execute_printf(warp, d)
    warp.pc += 4


# ---------------------------------------------------------------------------
# Scalar reference handlers: per-lane Python loops over the active mask,
# applying the same arithmetic kernel to one-element slices.
# ---------------------------------------------------------------------------


def _s_int_bin(core, warp, d, now):
    if d.wb_x >= 0:
        x = warp.x
        a, b, dst, op = x[d.rs1], x[d.rs2], x[d.wb_x], d.op
        for lane in np.nonzero(warp.tmask)[0]:
            dst[lane] = op(a[lane:lane + 1], b[lane:lane + 1])[0]
        warp.x_ready[d.wb_x] = now + d.latency
    warp.pc += 4


def _s_int_imm(core, warp, d, now):
    if d.wb_x >= 0:
        x = warp.x
        a, dst, op = x[d.rs1], x[d.wb_x], d.op
        for lane in np.nonzero(warp.tmask)[0]:
            dst[lane] = op(a[lane:lane + 1])[0]
        warp.x_ready[d.wb_x] = now + d.latency
    warp.pc += 4


def _s_const(core, warp, d, now):
    if d.wb_x >= 0:
        dst = warp.x[d.wb_x]
        for lane in np.nonzero(warp.tmask)[0]:
            dst[lane] = d.val
        warp.x_ready[d.wb_x] = now + d.latency
    warp.pc += 4


def _s_csr(core, warp, d, now):
    val = core._read_csr(warp, d.imm)
    if d.wb_x >= 0:
        dst = warp.x[d.wb_x]
        for lane in np.nonzero(warp.tmask)[0]:
            dst[lane] = val[lane]
        warp.x_ready[d.wb_x] = now + d.latency
    warp.pc += 4


def _s_fpu_bin(core, warp, d, now):
    f = warp.f
    a, b, dst, op = f[d.rs1], f[d.rs2], f[d.wb_f], d.op
    for lane in np.nonzero(warp.tmask)[0]:
        dst[lane] = op(a[lane:lane + 1], b[lane:lane + 1])[0]
    warp.f_ready[d.wb_f] = now + d.latency
    warp.pc += 4


def _s_fpu_un(core, warp, d, now):
    f = warp.f
    a, dst, op = f[d.rs1], f[d.wb_f], d.op
    for lane in np.nonzero(warp.tmask)[0]:
        dst[lane] = op(a[lane:lane + 1])[0]
    warp.f_ready[d.wb_f] = now + d.latency
    warp.pc += 4


def _s_fcmp(core, warp, d, now):
    if d.wb_x >= 0:
        f = warp.f
        a, b, dst, op = f[d.rs1], f[d.rs2], warp.x[d.wb_x], d.op
        for lane in np.nonzero(warp.tmask)[0]:
            dst[lane] = op(a[lane:lane + 1], b[lane:lane + 1])[0]
        warp.x_ready[d.wb_x] = now + d.latency
    warp.pc += 4


def _s_f2x(core, warp, d, now):
    if d.wb_x >= 0:
        a, dst, op = warp.f[d.rs1], warp.x[d.wb_x], d.op
        for lane in np.nonzero(warp.tmask)[0]:
            dst[lane] = op(a[lane:lane + 1])[0]
        warp.x_ready[d.wb_x] = now + d.latency
    warp.pc += 4


def _s_x2f(core, warp, d, now):
    a, dst, op = warp.x[d.rs1], warp.f[d.wb_f], d.op
    for lane in np.nonzero(warp.tmask)[0]:
        dst[lane] = op(a[lane:lane + 1])[0]
    warp.f_ready[d.wb_f] = now + d.latency
    warp.pc += 4


# ---------------------------------------------------------------------------
# Decode.
# ---------------------------------------------------------------------------

_SIMT_HANDLERS = {
    # Core methods are used unbound — handler(core, warp, d, now) is
    # exactly the bound-method call with one less stack frame.
    "split": Core._exec_split,
    "join": _h_join,
    "pred": _h_pred,
    "tmc": _h_tmc,
    "halt": _h_halt,
    "bar": Core._exec_bar,
    "wspawn": Core._exec_wspawn,
    "printfx": _h_printf,
}

#: mnemonic -> vectorized compute handler (scalar table overrides these).
_COMPUTE_KINDS = {
    **{m: ("int_bin", op) for m, op in _INT_BIN_OPS.items()},
    **{m: ("fpu_bin", op) for m, op in _FLOAT_BIN_OPS.items()},
    **{m: ("fpu_un", op) for m, op in _FLOAT_UN_OPS.items()},
    **{m: ("fcmp", op) for m, op in _FLOAT_CMP_OPS.items()},
}

VECTOR_TABLE = {
    "int_bin": _v_int_bin, "int_imm": _v_int_imm, "const": _v_const,
    "csr": _v_csr, "fpu_bin": _v_fpu_bin, "fpu_un": _v_fpu_un,
    "fcmp": _v_fcmp, "f2x": _v_f2x, "x2f": _v_x2f,
}

SCALAR_TABLE = {
    "int_bin": _s_int_bin, "int_imm": _s_int_imm, "const": _s_const,
    "csr": _s_csr, "fpu_bin": _s_fpu_bin, "fpu_un": _s_fpu_un,
    "fcmp": _s_fcmp, "f2x": _s_f2x, "x2f": _s_x2f,
}


def scalar_path_enabled() -> bool:
    """True when ``REPRO_SIMX_SCALAR`` selects the per-lane path."""
    return os.environ.get(SCALAR_ENV, "") not in ("", "0")


def decode_one(ins: Instruction, pc: int, config: VortexConfig,
               table: dict) -> DecodedInstr:
    meta = instr_meta(ins)
    latency = {
        "alu": config.alu_latency,
        "mul": config.mul_latency,
        "div": config.div_latency,
        "fpu": config.fpu_latency,
        "fdiv": config.fdiv_latency,
        "sfu": config.sfu_latency,
        "csr": config.csr_latency,
        "simt": config.alu_latency,
        "mem": 0,  # computed by the LSU path
    }[meta.kind]
    d = DecodedInstr(ins, meta, pc, latency)
    m = ins.mnemonic

    if meta.is_mem:
        if m in ("lw", "flw"):
            d.handler = Core._exec_load
            d.aux = m == "flw"
        elif m in ("sw", "fsw"):
            d.handler = Core._exec_store
            d.aux = m == "fsw"
        else:
            d.handler = Core._exec_amo
    elif meta.kind == "simt":
        d.handler = _SIMT_HANDLERS[m]
    elif m in _COMPUTE_KINDS and m not in ("jal",):
        group, op = _COMPUTE_KINDS[m]
        d.handler = table[group]
        d.op = op
        if group == "int_bin":
            d.aux = _PY_INT_BIN_OPS[m]  # tiny-warp twin (warp._tiny)
    elif m in ("addi", "slti", "sltiu", "xori", "ori", "andi",
               "slli", "srli", "srai"):
        d.handler = table["int_imm"]
        d.op = _make_imm_op(m, ins.imm)
        d.aux = _make_py_imm_op(m, ins.imm)
    elif m == "lui":
        d.handler = table["const"]
        d.val = _i32(ins.imm << 12)
    elif m == "auipc":
        d.handler = table["const"]
        d.val = _i32(pc + (ins.imm << 12))
    elif m == "jal":
        d.handler = _v_jal
        d.val = np.int32(pc + 4)
        d.target = pc + ins.imm
    elif m == "jalr":
        d.handler = _v_jalr
        d.val = np.int32(pc + 4)
    elif m in _BRANCH_OPS:
        d.handler = _v_branch
        d.op = _BRANCH_OPS[m]
        d.target = pc + ins.imm
    elif m == "csrrs":
        d.handler = table["csr"]
    elif m == "fcvt.w.s":
        d.handler = table["f2x"]
        d.op = _fcvt_w_s
    elif m == "fmv.x.w":
        d.handler = table["f2x"]
        d.op = lambda a: a.view(np.int32)
    elif m == "fcvt.s.w":
        d.handler = table["x2f"]
        d.op = lambda a: a.astype(np.float32)
    elif m == "fmv.w.x":
        d.handler = table["x2f"]
        d.op = lambda a: a.view(np.float32)
    else:  # pragma: no cover - closed mnemonic set
        raise SimulationError(f"cannot decode {m}")
    return d


def decode_program(program: Program, config: VortexConfig,
                   scalar: bool | None = None) -> list[DecodedInstr]:
    """Decode every static instruction once, indexed by PC."""
    if scalar is None:
        scalar = scalar_path_enabled()
    table = SCALAR_TABLE if scalar else VECTOR_TABLE
    base = program.code_base
    decoded = [
        decode_one(ins, base + 4 * i, config, table)
        for i, ins in enumerate(program.instructions)
    ]
    # SPLIT fuses with the following branch; both are static, so the
    # direction sense and target resolve here. A malformed pair keeps
    # ``aux=None`` and the runtime fallback reproduces the original
    # diagnostics (including a split with no successor instruction).
    for i, d in enumerate(decoded):
        if d.mnemonic == "split" and i + 1 < len(decoded):
            nxt = decoded[i + 1]
            if nxt.mnemonic in ("beq", "bne") and nxt.rs2 == 0:
                d.aux = (nxt.mnemonic == "beq", nxt.target)
    return decoded


__all__ = [
    "SCALAR_ENV",
    "DecodedInstr",
    "decode_one",
    "decode_program",
    "scalar_path_enabled",
]
