"""Warp state: register files, thread mask, IPDOM stack, scoreboard.

The IPDOM (immediate-postdominator) stack implements the paper's
SPLIT/JOIN divergence scheme (§II-D): SPLIT pushes the original mask and
the not-taken side, JOIN pops — the taken path runs first, then the warp
is redirected to the not-taken path, then the original mask is restored
at the reconvergence point.

The scoreboards (``x_ready``/``f_ready``) are plain Python lists: the
issue stage reads a handful of entries per cycle and numpy scalar
indexing costs more than it saves at that access pattern.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ...errors import SimulationError

#: Sentinel "ready" time for warps blocked at a barrier.
BLOCKED = 1 << 60

#: Warp width at or below which the integer ALU handlers switch from
#: numpy ufuncs to plain Python-int arithmetic: ufunc dispatch costs
#: more than it vectorizes when a row holds one or two lanes.
TINY_LANES = 2

#: Environment variable disabling the tiny-warp fast path (the
#: differential tests use it to drive the same workload down both
#: integer execution paths).
TINYFAST_ENV = "REPRO_SIMX_NO_TINYFAST"


@dataclass
class IPDOMEntry:
    """One divergence-stack entry.

    ``uniform`` entries are markers pushed by a SPLIT that observed a
    uniform predicate; JOIN pops them and continues. Entries with a
    ``pc`` redirect the warp to the not-taken side; entries without
    restore the mask and fall through.
    """

    mask: np.ndarray | None
    pc: int | None
    uniform: bool = False


class Warp:
    def __init__(self, wid: int, num_threads: int):
        self.wid = wid
        self.num_threads = num_threads
        self.x = np.zeros((32, num_threads), dtype=np.int32)
        self.f = np.zeros((32, num_threads), dtype=np.float32)
        self.pc = 0
        self.tmask = np.zeros(num_threads, dtype=bool)
        self.active = False
        self.at_barrier = False
        #: earliest cycle the warp may issue again (structural). Kept at
        #: ``BLOCKED`` whenever the warp is inactive or parked at a
        #: barrier, so the issue scan needs only this one comparison.
        self.ready_at = BLOCKED
        #: scoreboard: cycle each register's value becomes available.
        self.x_ready = [0] * 32
        self.f_ready = [0] * 32
        #: True while every lane is active — kept in sync at each tmask
        #: write so handlers can take unmasked (whole-row) fast paths.
        self._full = False
        #: True for warps narrow enough that per-lane Python-int
        #: arithmetic beats numpy ufunc dispatch (see :data:`TINY_LANES`
        #: and the ``_v_int_bin``/``_v_int_imm`` handlers).
        self._tiny = (num_threads <= TINY_LANES
                      and os.environ.get(TINYFAST_ENV, "") in ("", "0"))
        self.ipdom: list[IPDOMEntry] = []
        #: warp-level CSRs set by the dispatcher (group ids etc.).
        self.csrs: dict[int, int] = {}
        #: memoized CSR read vectors (everything but TMASK is constant
        #: for the lifetime of a dispatched group).
        self.csr_cache: dict[int, np.ndarray] = {}
        #: the group this warp is working on (machine bookkeeping).
        self.group_key: object = None
        #: issue sequence number (incremented by Core.tick per issue);
        #: used to validate the LSU replay memo below.
        self._iseq = 0
        #: memoized address/line computation for a load being replayed:
        #: (iseq, pc, active_addrs, lanes, items). Valid only when the
        #: very next issue of this warp is the same load at the same pc.
        self._lsu_replay: tuple | None = None
        #: per-lane bit weights for tmask <-> integer conversions.
        self._lane_bits = 1 << np.arange(num_threads, dtype=np.int64)

    def reset_for_group(self, pc: int, tmask: np.ndarray, csrs: dict[int, int],
                        sp_values: np.ndarray) -> None:
        self.x.fill(0)
        self.f.fill(0)
        self.x[2] = sp_values  # stack pointers, one per lane
        self.pc = pc
        self.tmask = tmask.copy()
        self._full = bool(tmask.all())
        self.active = True
        self.at_barrier = False
        self.ready_at = 0
        self.x_ready = [0] * 32
        self.f_ready = [0] * 32
        self.ipdom.clear()
        self.csrs = dict(csrs)
        self.csr_cache = {}
        self._iseq = 0
        self._lsu_replay = None

    def halt(self) -> None:
        self.active = False
        self.at_barrier = False
        self.ready_at = BLOCKED

    # -- divergence stack -------------------------------------------------

    def push_uniform_marker(self) -> None:
        self.ipdom.append(IPDOMEntry(mask=None, pc=None, uniform=True))

    def push_divergence(self, orig_mask: np.ndarray, else_mask: np.ndarray,
                        else_pc: int) -> None:
        self.ipdom.append(IPDOMEntry(mask=orig_mask.copy(), pc=None))
        self.ipdom.append(IPDOMEntry(mask=else_mask.copy(), pc=else_pc))

    def pop_join(self) -> IPDOMEntry:
        if not self.ipdom:
            raise SimulationError(
                f"warp {self.wid}: JOIN with empty IPDOM stack at pc "
                f"{self.pc:#x} (unbalanced divergence — miscompiled kernel)"
            )
        return self.ipdom.pop()

    # -- helpers ------------------------------------------------------------

    def first_active_lane(self) -> int:
        lanes = np.nonzero(self.tmask)[0]
        if len(lanes) == 0:
            raise SimulationError(
                f"warp {self.wid}: no active lanes at pc {self.pc:#x}"
            )
        return int(lanes[0])

    def tmask_bits(self) -> int:
        return int(self._lane_bits[self.tmask].sum())

    def set_tmask_bits(self, bits: int) -> None:
        self.tmask = (bits & self._lane_bits) != 0
        self._full = bool(self.tmask.all())
