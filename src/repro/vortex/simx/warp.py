"""Warp state: register files, thread mask, IPDOM stack, scoreboard.

The IPDOM (immediate-postdominator) stack implements the paper's
SPLIT/JOIN divergence scheme (§II-D): SPLIT pushes the original mask and
the not-taken side, JOIN pops — the taken path runs first, then the warp
is redirected to the not-taken path, then the original mask is restored
at the reconvergence point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import SimulationError

#: Sentinel "ready" time for warps blocked at a barrier.
BLOCKED = 1 << 60


@dataclass
class IPDOMEntry:
    """One divergence-stack entry.

    ``uniform`` entries are markers pushed by a SPLIT that observed a
    uniform predicate; JOIN pops them and continues. Entries with a
    ``pc`` redirect the warp to the not-taken side; entries without
    restore the mask and fall through.
    """

    mask: np.ndarray | None
    pc: int | None
    uniform: bool = False


class Warp:
    def __init__(self, wid: int, num_threads: int):
        self.wid = wid
        self.num_threads = num_threads
        self.x = np.zeros((32, num_threads), dtype=np.int32)
        self.f = np.zeros((32, num_threads), dtype=np.float32)
        self.pc = 0
        self.tmask = np.zeros(num_threads, dtype=bool)
        self.active = False
        self.at_barrier = False
        #: earliest cycle the warp may issue again (structural).
        self.ready_at = 0
        #: scoreboard: cycle each register's value becomes available.
        self.x_ready = np.zeros(32, dtype=np.int64)
        self.f_ready = np.zeros(32, dtype=np.int64)
        self.ipdom: list[IPDOMEntry] = []
        #: warp-level CSRs set by the dispatcher (group ids etc.).
        self.csrs: dict[int, int] = {}
        #: the group this warp is working on (machine bookkeeping).
        self.group_key: object = None

    def reset_for_group(self, pc: int, tmask: np.ndarray, csrs: dict[int, int],
                        sp_values: np.ndarray) -> None:
        self.x.fill(0)
        self.f.fill(0)
        self.x[2] = sp_values  # stack pointers, one per lane
        self.pc = pc
        self.tmask = tmask.copy()
        self.active = True
        self.at_barrier = False
        self.ready_at = 0
        self.x_ready.fill(0)
        self.f_ready.fill(0)
        self.ipdom.clear()
        self.csrs = dict(csrs)

    def halt(self) -> None:
        self.active = False
        self.at_barrier = False

    # -- divergence stack -------------------------------------------------

    def push_uniform_marker(self) -> None:
        self.ipdom.append(IPDOMEntry(mask=None, pc=None, uniform=True))

    def push_divergence(self, orig_mask: np.ndarray, else_mask: np.ndarray,
                        else_pc: int) -> None:
        self.ipdom.append(IPDOMEntry(mask=orig_mask.copy(), pc=None))
        self.ipdom.append(IPDOMEntry(mask=else_mask.copy(), pc=else_pc))

    def pop_join(self) -> IPDOMEntry:
        if not self.ipdom:
            raise SimulationError(
                f"warp {self.wid}: JOIN with empty IPDOM stack at pc "
                f"{self.pc:#x} (unbalanced divergence — miscompiled kernel)"
            )
        return self.ipdom.pop()

    # -- helpers ------------------------------------------------------------

    def first_active_lane(self) -> int:
        lanes = np.nonzero(self.tmask)[0]
        if len(lanes) == 0:
            raise SimulationError(
                f"warp {self.wid}: no active lanes at pc {self.pc:#x}"
            )
        return int(lanes[0])

    def tmask_bits(self) -> int:
        return int(sum(1 << int(i) for i in np.nonzero(self.tmask)[0]))

    def set_tmask_bits(self, bits: int) -> None:
        self.tmask = np.array(
            [(bits >> i) & 1 == 1 for i in range(self.num_threads)], dtype=bool
        )
