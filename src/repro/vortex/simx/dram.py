"""Open-row DRAM timing model with a per-bank row table.

All cores share one DRAM. Line addresses interleave across banks; each
bank keeps a small table of open rows (modelling the memory controller's
reorder window / bank-group parallelism): a request to an open row costs
``row_hit_cycles`` of bank service time, anything else pays
``row_miss_cycles`` (precharge + activate) and replaces a table entry.
Bank service is serialised per bank, and every access pays the fixed
pipeline ``latency`` on top.

This is the mechanism behind the paper's Figure 7 shape: a few streaming
warps keep their rows open (vecadd's small configurations), while many
interleaved streams — more warps × threads in flight — exceed the row
table and collapse into row thrashing, which the paper reports as LSU
stalls growing with warp/thread counts. Strided patterns (transpose's
stores) never enjoy row locality and are latency-bound instead, which
added warps help hide.

Replacement within the row table is deterministic pseudo-random (hashed),
because true LRU degenerates under cyclic multi-stream interleavings and
real controllers approximate random/age hybrids.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import DRAMConfig


@dataclass
class DRAMStats:
    requests: int = 0
    row_hits: int = 0
    row_misses: int = 0

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.requests if self.requests else 0.0


class DRAM:
    def __init__(self, config: DRAMConfig, line_size: int):
        self.config = config
        self.line_size = line_size
        self.bank_free: list[int] = [0] * config.banks
        #: per-bank open-row tables.
        self.open_rows: list[list[int]] = [
            [] for _ in range(config.banks)
        ]
        self.stats = DRAMStats()
        self._evict_seed = 0x9E3779B9

    def access(self, line_addr: int, now: int) -> int:
        """Issue one line request; returns the completion cycle."""
        cfg = self.config
        line_index = line_addr // self.line_size
        bank = line_index % cfg.banks
        row = line_index // (cfg.banks * cfg.lines_per_row)
        self.stats.requests += 1
        table = self.open_rows[bank]
        if row in table:
            service = cfg.row_hit_cycles
            self.stats.row_hits += 1
        else:
            service = cfg.row_miss_cycles
            self.stats.row_misses += 1
            if len(table) < cfg.open_rows:
                table.append(row)
            else:
                # Deterministic pseudo-random victim.
                self._evict_seed = (self._evict_seed * 1103515245
                                    + 12345) & 0x7FFFFFFF
                table[self._evict_seed % len(table)] = row
        free = self.bank_free[bank]
        start = now if now > free else free
        done = start + service
        self.bank_free[bank] = done
        return done + cfg.latency
