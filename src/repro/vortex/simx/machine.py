"""The whole simulated Vortex device: cores + shared DRAM + dispatcher.

The dispatcher models Vortex's work-group scheduling: work-groups are
assigned to cores as warp-sets (one group occupies ``ceil(local_items /
T)`` warps on one core and one *slot*, which selects its barrier id and
local-memory window). Warps halt when their kernel returns; freed warps
immediately receive the next pending group.

The main loop advances one cycle at a time only while some core is
actually issuing. Two fast-forward mechanisms skip the rest (both
behaviour-preserving — the golden-trace suite pins every counter):

* **all-stalled jump** — when no core issued and none is mid-issue, the
  clock jumps straight to the earliest scoreboard/LSU completion
  (``next_event_time``); the skipped cycles book no statistics.
* **bulk stall booking** — when no core issued but some are still
  burning multi-beat issue cycles, every core's tick outcome is frozen
  until the earliest ``next_change_time``; the window's cycles are
  booked per core in one multiplication (active for busy cores,
  idle + the recorded stall reason for stalled ones) and the clock
  jumps to the window's end.

Set ``REPRO_SIMX_NO_FASTFORWARD=1`` (or pass ``fast_forward=False``) to
visit every cycle instead; cycle counts, cache/DRAM traffic and results
are identical, only wall-clock and the idle-cycle bookkeeping of the
jumped ranges differ (the jump path books nothing for skipped cycles).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ...errors import (
    CheckpointError,
    RuntimeLaunchError,
    SimulationError,
    SimulationPreempted,
)
from ...ocl.ndrange import NDRange
from ...profiling import Profiler, ensure_profiler
from .. import layout
from ..codegen import VortexKernelImage
from ..isa import CSR
from .checkpoint import CHECK_INTERVAL as _CKPT_CHECK_INTERVAL
from .config import VortexConfig
from .core import (
    Core,
    CoreStats,
    STALL_LSU,
    STALL_SCOREBOARD,
    TICK_BUSY,
    TICK_IDLE,
    TICK_ISSUED,
)
from .decode import DecodedInstr, decode_program
from .dram import DRAM
from .mem import Memory
from .warp import BLOCKED

#: Environment variable disabling both fast-forward mechanisms.
NO_FASTFORWARD_ENV = "REPRO_SIMX_NO_FASTFORWARD"

#: `describe_warp_states` renders at most this many warp lines before
#: truncating to a summary (huge (C, W) configs must not turn an
#: exception payload into megabytes of journal/PointFailure text).
WARP_DUMP_MAX = 32


@dataclass
class LaunchResult:
    cycles: int
    instructions: int
    printf_output: list[str]
    core_stats: list[CoreStats]
    dram_row_hit_rate: float
    dcache_hit_rate: float
    lsu_stalls: int
    idle_cycles: int
    groups_dispatched: int
    extra: dict[str, Any] = field(default_factory=dict)

    def time_ms(self, clock_mhz: float) -> float:
        return self.cycles / (clock_mhz * 1e3)


def _fresh_skip_stats() -> dict[str, int]:
    return {"ff_windows": 0, "ff_cycles": 0,
            "idle_jumps": 0, "idle_cycles": 0}


class Machine:
    def __init__(self, config: VortexConfig, trace: bool = False,
                 profiler: Profiler | None = None,
                 fast_forward: bool | None = None):
        self.config = config
        self.memory = Memory()
        self.dram = DRAM(config.dram, config.line_size)
        self.printf_output: list[str] = []
        #: profiling sink; the shared NULL_PROFILER when disabled, so the
        #: per-cycle guard is a single attribute test.
        self.profiler = ensure_profiler(profiler)
        #: dispatch cycle and group coordinates per in-flight group key.
        self._group_start: dict[int, tuple[int, tuple[int, int, int]]] = {}
        #: optional execution trace: (cycle, core, warp, pc, disasm, tmask)
        #: per issued instruction. Enable only for debugging — it grows
        #: with every instruction executed.
        self.trace: list[tuple[int, int, int, int, str, int]] | None = (
            [] if trace else None
        )
        if fast_forward is None:
            fast_forward = os.environ.get(NO_FASTFORWARD_ENV, "") in ("", "0")
        self.fast_forward = fast_forward
        self.program = None
        self._decoded: list[DecodedInstr] = []
        self._code_base = layout.CODE_BASE
        #: cycles the clock jumped over, by mechanism (reset per launch).
        self.skip_stats = _fresh_skip_stats()
        self._group_remaining: dict[int, int] = {}
        self._group_slot: dict[int, tuple[int, int]] = {}  # key -> (core, slot)
        self._slot_free: list[list[bool]] = [
            [True] * config.warps for _ in range(config.cores)
        ]
        self._pending: list[tuple[int, int, int]] = []
        self._next_group_key = 0
        self._dispatch_cursor = 0
        self._image: VortexKernelImage | None = None
        self._groups_dispatched = 0
        self._active_warps = 0
        #: dispatch found no room on its last attempt; stays set until a
        #: warp halts (the only event that frees warps or slots).
        self._dispatch_blocked = False
        #: per-core idle-freeze horizon: while ``now`` is below a core's
        #: entry its tick outcome is provably unchanged (see
        #: ``Core.next_change_time``), so the main loop books the frozen
        #: classification directly instead of re-scanning the core.
        #: Dispatching to a core clears its entry.
        self._frozen_until = [0] * config.cores
        # Cores last: Core.__init__ captures bound machine methods.
        self.cores = [Core(c, config, self) for c in range(config.cores)]

    # ------------------------------------------------------------------
    # Image loading.
    # ------------------------------------------------------------------

    def load_image(self, image: VortexKernelImage) -> None:
        self._image = image
        self.program = image.program
        self.memory.write_words(layout.CODE_BASE,
                                image.program.words.view(np.int32))
        for fmt, addr in image.fmt_table.items():
            raw = fmt.encode() + b"\x00"
            self.memory.write_bytes(addr, raw)
        # Decode every static instruction once; the issue stage indexes
        # this list instead of re-decoding per dynamic instruction.
        self._decoded = decode_program(image.program, self.config)
        self._code_base = image.program.code_base
        for core in self.cores:
            core._decoded = self._decoded
            core._code_base = self._code_base

    def fetch(self, pc: int) -> DecodedInstr:
        idx = pc - self._code_base
        if not idx & 3:
            idx >>= 2
            if 0 <= idx < len(self._decoded):
                return self._decoded[idx]
        # Out-of-program PC: index_of_pc raises the canonical error.
        return self._decoded[self.program.index_of_pc(pc)]

    # ------------------------------------------------------------------
    # Launch.
    # ------------------------------------------------------------------

    def launch(self, ndrange: NDRange, max_cycles: int = 200_000_000,
               checkpoint=None) -> LaunchResult:
        if self._image is None:
            raise RuntimeLaunchError("no kernel image loaded")
        cfg = self.config
        ipg = ndrange.items_per_group
        warps_needed = self._warps_per_group(ndrange)
        if warps_needed > cfg.warps:
            raise RuntimeLaunchError(
                f"work-group of {ipg} items needs {warps_needed} resident "
                f"warps (barrier kernel); the configuration has "
                f"{cfg.warps} per core"
            )
        # NDRange descriptor for get_*_size queries done via memory.
        ndr_words = np.array(
            list(ndrange.global_size) + list(ndrange.local_size)
            + list(ndrange.num_groups),
            dtype=np.int32,
        )
        self.memory.write_words(layout.NDR_BASE, ndr_words)

        self._pending = self._partition_groups(ndrange)
        self._ndrange = ndrange
        self._groups_dispatched = 0
        self.printf_output.clear()
        self.skip_stats = _fresh_skip_stats()
        skip = self.skip_stats
        self._active_warps = sum(
            1 for core in self.cores for w in core.warps if w.active
        )
        self._dispatch_blocked = False
        for i in range(len(self._frozen_until)):
            self._frozen_until[i] = 0
        if self.profiler.enabled:
            self._profile_prologue(ndrange)
        if checkpoint is not None:
            self._arm_checkpoint(checkpoint)
        self._try_dispatch(0)
        return self._run(0, max_cycles, checkpoint)

    def resume(self, ndrange: NDRange, state: dict,
               max_cycles: int = 200_000_000,
               checkpoint=None) -> LaunchResult:
        """Restore a verified snapshot and continue to completion.

        The machine must be assembled exactly as for :meth:`launch` —
        image loaded, kernel arguments marshalled — so its memory holds
        the deterministic baseline the snapshot's delta was taken
        against. Every precondition (config label, ndrange, program
        fingerprint, memory baseline) is verified *before* any
        mutation; on :class:`CheckpointError` the caller can fall back
        to a clean :meth:`launch` on a fresh machine.
        """
        from .checkpoint import restore_state, verify_resume

        if self._image is None:
            raise RuntimeLaunchError("no kernel image loaded")
        if self.profiler.enabled or self.trace is not None:
            raise CheckpointError(
                "cannot resume a snapshot with profiling or tracing "
                "enabled (their state is not snapshotted)"
            )
        ndr_words = np.array(
            list(ndrange.global_size) + list(ndrange.local_size)
            + list(ndrange.num_groups),
            dtype=np.int32,
        )
        self.memory.write_words(layout.NDR_BASE, ndr_words)
        verify_resume(self, ndrange, state)
        self._ndrange = ndrange
        # The pre-restore memory *is* the baseline for further deltas.
        self._ckpt_baseline = self.memory.data.copy()
        self._ckpt_baseline_digest = state["baseline_digest"]
        self._ckpt_program_sha = state["program_sha"]
        restore_state(self, state)
        if checkpoint is not None:
            checkpoint.note_resumed(int(state["now"]))
        return self._run(int(state["now"]), max_cycles, checkpoint)

    def _arm_checkpoint(self, ckpt) -> None:
        """Record the post-marshal baselines snapshots delta against."""
        from .checkpoint import baseline_digest, program_fingerprint

        if self.profiler.enabled or self.trace is not None:
            raise CheckpointError(
                "checkpointing is incompatible with profiling or "
                "tracing (sampler and trace state are not snapshotted)"
            )
        self._ckpt_baseline = self.memory.data.copy()
        self._ckpt_baseline_digest = baseline_digest(self._ckpt_baseline)
        self._ckpt_program_sha = program_fingerprint(self._image,
                                                     self.config)

    def _run(self, now: int, max_cycles: int, ckpt=None) -> LaunchResult:
        """The main cycle loop, from ``now`` (0 for a fresh launch, the
        snapshot cycle for a resume) to completion."""
        prof = self.profiler
        profiling = prof.enabled
        if profiling:
            sampler = _BucketSampler(self, prof)
        total_groups = len(self._pending) + self._groups_dispatched
        skip = self.skip_stats

        ff = self.fast_forward
        cores = self.cores
        codes = [0] * len(cores)
        # _try_dispatch pops this list in place, so the binding is
        # loop-invariant even as its contents drain.
        pending = self._pending
        frozen_until = self._frozen_until
        # Known multi-beat busy windows: while ``now`` is inside one the
        # issue stage cannot change state, so the loop books the busy
        # cycle directly instead of calling tick. (Deferring the lazy
        # LSU purge is safe — its state is only read at issue time.)
        # ``busy_until[i]`` tracks ``core.issue_busy_until`` exactly
        # (both start at 0 and only the ISSUED/BUSY branches copy it),
        # which is what lets a restored snapshot rebuild it here.
        busy_until = [core.issue_busy_until for core in cores]
        run_start = now
        if ckpt is not None:
            ckpt_step = min(ckpt.every_cycles, _CKPT_CHECK_INTERVAL)
            next_ckpt = now + ckpt_step
            next_snap = now + ckpt.every_cycles
        else:
            # One always-false compare per iteration: the off path costs
            # nothing measurable (BENCH_simx.json pins this).
            next_ckpt = BLOCKED
        # Hoisted errstate: the decoded handlers run without a per-issue
        # context manager (float div-by-zero etc. must stay silent).
        with np.errstate(all="ignore"):
            while True:
                issued_any = False
                busy_any = False
                for i, core in enumerate(cores):
                    if now < busy_until[i]:
                        core.stats.cycles_active += 1
                        codes[i] = TICK_BUSY
                        busy_any = True
                        continue
                    if now < frozen_until[i]:
                        # Frozen idle: book the cached classification
                        # without re-scanning the warp set.
                        stats = core.stats
                        stats.idle_cycles += 1
                        st = core._stall
                        if st == STALL_LSU:
                            stats.lsu_stalls += 1
                        elif st == STALL_SCOREBOARD:
                            stats.scoreboard_stalls += 1
                        codes[i] = TICK_IDLE
                        continue
                    code = core.tick(now)
                    codes[i] = code
                    if code == TICK_ISSUED:
                        issued_any = True
                        busy_until[i] = core.issue_busy_until
                    elif code == TICK_BUSY:
                        busy_any = True
                        busy_until[i] = core.issue_busy_until
                    else:
                        frozen_until[i] = core.next_change_time(now)
                if pending and not self._dispatch_blocked:
                    self._try_dispatch(now)
                if profiling:
                    sampler.maybe_sample(now)
                # Inline _done(): this runs every cycle of the hot loop.
                if not pending and self._active_warps == 0:
                    now += 1
                    break
                if issued_any:
                    now += 1
                elif busy_any:
                    if ff:
                        # No core can issue before the earliest busy
                        # expiry / stall release: book the whole window
                        # at once with each core's frozen classification.
                        skip_to = BLOCKED
                        for i, core in enumerate(cores):
                            if codes[i] == TICK_BUSY:
                                t = core.issue_busy_until
                            elif now < frozen_until[i]:
                                t = frozen_until[i]
                            else:
                                t = core.next_change_time(now)
                            if t < skip_to:
                                skip_to = t
                        k = skip_to - now - 1
                        if k > 0:
                            for i, core in enumerate(cores):
                                stats = core.stats
                                if codes[i] == TICK_BUSY:
                                    stats.cycles_active += k
                                else:
                                    stats.idle_cycles += k
                                    if core._stall == STALL_LSU:
                                        stats.lsu_stalls += k
                                    elif core._stall == STALL_SCOREBOARD:
                                        stats.scoreboard_stalls += k
                            skip["ff_windows"] += 1
                            skip["ff_cycles"] += k
                            now = skip_to
                        else:
                            now += 1
                    else:
                        now += 1
                else:
                    nxt = min(core.next_event_time(now) for core in cores)
                    if nxt >= BLOCKED:
                        raise self._stuck_error(
                            "deadlock: all warps blocked "
                            "(barrier mismatch?)",
                            now,
                        )
                    if ff:
                        jumped = max(now + 1, nxt)
                        k = jumped - now - 1
                        if k > 0:
                            # Nothing changes before ``nxt`` (it is the
                            # min over every pending threshold), so each
                            # core would re-derive the same idle/stall
                            # classification on every skipped cycle —
                            # book the whole window at once to keep the
                            # counters identical to a full visit.
                            for core in cores:
                                stats = core.stats
                                stats.idle_cycles += k
                                if core._stall == STALL_LSU:
                                    stats.lsu_stalls += k
                                elif core._stall == STALL_SCOREBOARD:
                                    stats.scoreboard_stalls += k
                            skip["idle_jumps"] += 1
                            skip["idle_cycles"] += k
                        now = jumped
                    else:
                        now += 1
                if now > max_cycles:
                    raise self._stuck_error(
                        f"simulation exceeded {max_cycles} cycles", now
                    )
                if now >= next_ckpt:
                    # Coarse checkpoint boundary: the state here is
                    # exactly the loop-top state for cycle ``now``, so a
                    # snapshot taken now resumes byte-identically.
                    next_ckpt = now + ckpt_step
                    preempt = ckpt.due_preempt(now, run_start)
                    if preempt or now >= next_snap:
                        ckpt.save(self, now)
                        next_snap = now + ckpt.every_cycles
                    if preempt:
                        raise SimulationPreempted(ckpt.launch_id, now)

        if profiling:
            sampler.flush(now)
            self._profile_epilogue(now, total_groups)
        hits = sum(c.dcache.stats.hits for c in self.cores)
        misses = sum(c.dcache.stats.misses for c in self.cores)
        return LaunchResult(
            cycles=now,
            instructions=sum(c.stats.instructions for c in self.cores),
            printf_output=list(self.printf_output),
            core_stats=[c.stats for c in self.cores],
            dram_row_hit_rate=self.dram.stats.row_hit_rate,
            dcache_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
            lsu_stalls=sum(c.stats.lsu_stalls + c.stats.lsu_replays
                           for c in self.cores),
            idle_cycles=sum(c.stats.idle_cycles for c in self.cores),
            groups_dispatched=total_groups,
            extra={
                "lsu_replays": sum(c.stats.lsu_replays for c in self.cores),
                "ff_windows": skip["ff_windows"],
                "ff_cycles": skip["ff_cycles"],
                "idle_jumps": skip["idle_jumps"],
                "idle_skipped_cycles": skip["idle_cycles"],
            },
        )

    def describe_warp_states(self, now: int,
                             max_warps: int = WARP_DUMP_MAX) -> str:
        """Render every warp's state: core, warp id, PC, active mask,
        group key and why it is (not) making progress. Attached to the
        :class:`SimulationError` raised for a stuck machine, so a hung
        configuration inside a sweep is debuggable from the rendered
        error row alone — no re-run with tracing needed.

        Configurations with more than ``max_warps`` warps render the
        problem warps (barrier/blocked/stalled) first, capped at
        ``max_warps`` lines plus one summary line — the dump stays
        bounded no matter the (C, W) geometry."""
        entries: list[tuple[str, bool]] = []
        for core in self.cores:
            barrier_of = {wid: bar
                          for bar, wids in core.barriers.items()
                          for wid in wids}
            for warp in core.warps:
                problem = True
                if not warp.active:
                    status = "halted"
                    problem = False
                elif warp.at_barrier:
                    status = f"waiting at barrier {barrier_of.get(warp.wid, '?')}"
                elif warp.ready_at >= BLOCKED:
                    status = "blocked"
                elif warp.ready_at > now:
                    status = f"stalled until cycle {warp.ready_at}"
                else:
                    status = "ready"
                    problem = False
                entries.append((
                    f"  core {core.cid} warp {warp.wid}: "
                    f"pc={warp.pc:#06x} mask={warp.tmask_bits():#x} "
                    f"group={warp.group_key} {status}",
                    problem,
                ))
        if len(entries) <= max_warps:
            return "\n".join(line for line, _ in entries)
        problems = [line for line, p in entries if p]
        shown = problems[:max_warps]
        if len(shown) < max_warps:
            others = [line for line, p in entries if not p]
            shown.extend(others[:max_warps - len(shown)])
        total = len(entries)
        shown.append(
            f"  ... {total - max_warps} more warp(s) omitted "
            f"({len(problems)} problem of {total} total; "
            f"dump capped at {max_warps})"
        )
        return "\n".join(shown)

    def _stuck_error(self, headline: str, now: int) -> SimulationError:
        dump = self.describe_warp_states(now)
        exc = SimulationError(
            f"{headline}\nwarp states at cycle {now}:\n{dump}")
        exc.warp_dump = dump
        return exc

    def _done(self) -> bool:
        return not self._pending and self._active_warps == 0

    # ------------------------------------------------------------------
    # Profiling.
    # ------------------------------------------------------------------

    def _profile_prologue(self, ndrange: NDRange) -> None:
        prof = self.profiler
        cfg = self.config
        prof.set_meta("backend", "simx")
        prof.set_meta("config", cfg.label())
        prof.set_meta("global_size", tuple(ndrange.global_size))
        prof.set_meta("local_size", tuple(ndrange.local_size))
        prof.set_meta("timeline", "cycles")
        prof.name_process(_DEVICE_PID, "device (DRAM + dispatch)")
        for core in self.cores:
            pid = _core_pid(core.cid)
            prof.name_process(pid, f"core {core.cid}")
            for slot in range(cfg.warps):
                prof.name_thread(pid, slot, f"slot {slot} (work-groups)")
        self._group_start.clear()

    def _profile_epilogue(self, now: int, total_groups: int) -> None:
        """Fold the end-of-launch counters into the profiler."""
        prof = self.profiler
        skip = self.skip_stats
        totals = {
            "cycles": now,
            "groups_dispatched": total_groups,
            "instructions": sum(c.stats.instructions for c in self.cores),
            "simt_instructions": sum(c.stats.simt_instructions
                                     for c in self.cores),
            "cycles_active": sum(c.stats.cycles_active for c in self.cores),
            "idle_cycles": sum(c.stats.idle_cycles for c in self.cores),
            "lsu_stalls": sum(c.stats.lsu_stalls for c in self.cores),
            "lsu_replays": sum(c.stats.lsu_replays for c in self.cores),
            "scoreboard_stalls": sum(c.stats.scoreboard_stalls
                                     for c in self.cores),
            "barrier_waits": sum(c.stats.barrier_waits for c in self.cores),
            "dcache.accesses": sum(c.dcache.stats.accesses
                                   for c in self.cores),
            "dcache.hits": sum(c.dcache.stats.hits for c in self.cores),
            "dcache.misses": sum(c.dcache.stats.misses for c in self.cores),
            "dram.requests": self.dram.stats.requests,
            "dram.row_hits": self.dram.stats.row_hits,
            "dram.row_misses": self.dram.stats.row_misses,
            "skip.ff_windows": skip["ff_windows"],
            "skip.ff_cycles": skip["ff_cycles"],
            "skip.idle_jumps": skip["idle_jumps"],
            "skip.idle_cycles": skip["idle_cycles"],
        }
        prof.count_many(totals, prefix="simx.")
        hits, misses = totals["dcache.hits"], totals["dcache.misses"]
        if hits + misses:
            prof.count("simx.dcache.hit_rate", hits / (hits + misses))
        if self.dram.stats.requests:
            prof.count("simx.dram.row_hit_rate",
                       self.dram.stats.row_hit_rate)

    def _profile_dispatch(self, now: int, key: int,
                          group: tuple[int, int, int], core: Core,
                          slot: int, warps_needed: int) -> None:
        self._group_start[key] = (now, group)
        self.profiler.instant(
            f"dispatch {group}", "simx.dispatch", ts=now,
            pid=_core_pid(core.cid), tid=slot,
            args={"group": list(group), "warps": warps_needed},
        )

    def _profile_group_done(self, now: int, key: int, cid: int,
                            slot: int) -> None:
        start = self._group_start.pop(key, None)
        if start is None:
            return
        ts, group = start
        self.profiler.complete(
            f"group {group}", "simx.group", ts=ts, dur=max(1, now - ts),
            pid=_core_pid(cid), tid=slot,
        )

    # ------------------------------------------------------------------
    # Work-group dispatch.
    # ------------------------------------------------------------------

    def _warps_per_group(self, ndrange: NDRange) -> int:
        """1 in wave mode (a warp sweeps its group in waves of T lanes);
        ceil(items/T) for barrier kernels (warp-set dispatch)."""
        if self._image is not None and self._image.wave_mode:
            return 1
        return max(1, -(-ndrange.items_per_group // self.config.threads))

    def _partition_groups(self, ndrange: NDRange) -> list:
        """Static chunked partitioning, as Vortex's ``vx_spawn`` does:
        each warp-set slot owns a *contiguous* range of work-groups, so
        concurrent slots stream through distant address regions. The
        pending list is ordered so that popping round-robin hands every
        slot the next group of its own chunk."""
        groups = list(ndrange.groups())
        cfg = self.config
        if not cfg.chunked_dispatch:
            return groups  # interleaved round-robin hand-out
        warps_needed = self._warps_per_group(ndrange)
        slots_total = max(1, (cfg.warps // warps_needed) * cfg.cores)
        nchunks = min(slots_total, len(groups))
        if nchunks <= 1:
            return groups
        chunk = -(-len(groups) // nchunks)
        chunks = [groups[i * chunk: (i + 1) * chunk]
                  for i in range(nchunks)]
        interleaved: list = []
        for depth in range(chunk):
            for ch in chunks:
                if depth < len(ch):
                    interleaved.append(ch[depth])
        return interleaved

    def _try_dispatch(self, now: int) -> None:
        cfg = self.config
        ndr = self._ndrange
        ipg = ndr.items_per_group
        warps_needed = self._warps_per_group(ndr)
        wave_mode = self._image is not None and self._image.wave_mode
        ncores = cfg.cores
        stuck = 0
        while self._pending and stuck < ncores:
            core = self.cores[self._dispatch_cursor % ncores]
            self._dispatch_cursor += 1
            free_warps = [w for w in core.warps if not w.active]
            free_slots = [s for s, ok in enumerate(self._slot_free[core.cid])
                          if ok]
            if len(free_warps) < warps_needed or not free_slots:
                stuck += 1
                continue
            stuck = 0
            group = self._pending.pop(0)
            slot = free_slots[0]
            self._slot_free[core.cid][slot] = False
            key = self._next_group_key
            self._next_group_key += 1
            self._group_remaining[key] = warps_needed
            self._group_slot[key] = (core.cid, slot)
            if self.profiler.enabled:
                self._profile_dispatch(now, key, group, core, slot,
                                       warps_needed)
            local_base = layout.local_window(core.cid, slot, cfg.warps)
            entry_pc = self.program.labels[self._image.kernel_name]
            for k in range(warps_needed):
                warp = free_warps[k]
                csrs = {
                    int(CSR.GROUP_ID0): group[0],
                    int(CSR.GROUP_ID1): group[1],
                    int(CSR.GROUP_ID2): group[2],
                    int(CSR.LOCAL_OFFSET): k * cfg.threads,
                    int(CSR.GROUP_SLOT): slot,
                    int(CSR.GROUP_WARPS): warps_needed,
                    int(CSR.LOCAL_BASE): local_base,
                }
                tmask = np.zeros(cfg.threads, dtype=bool)
                if wave_mode:
                    # First wave: lanes 0..min(T, items)-1; the kernel's
                    # own wave loop re-masks the later waves.
                    tmask[: min(cfg.threads, ipg)] = True
                else:
                    for lane in range(cfg.threads):
                        tmask[lane] = k * cfg.threads + lane < ipg
                sp = np.array(
                    [
                        layout.stack_top(
                            (core.cid * cfg.warps + warp.wid) * cfg.threads
                            + lane
                        )
                        for lane in range(cfg.threads)
                    ],
                    dtype=np.int32,
                )
                warp.reset_for_group(entry_pc, tmask, csrs, sp)
                warp.ready_at = now + 1
                warp.group_key = key
            self._active_warps += warps_needed
            self._groups_dispatched += 1
            # New warps invalidate the core's cached idle classification.
            self._frozen_until[core.cid] = 0
        # Loop exited either because nothing is pending or because a
        # full scan found no room; in the latter case skip further
        # attempts until a warp halts (nothing else frees capacity).
        self._dispatch_blocked = bool(self._pending)

    def on_warp_halt(self, core: Core, warp, now: int = 0) -> None:
        self._active_warps -= 1
        self._dispatch_blocked = False
        key = warp.group_key
        if key is None:
            return
        self._group_remaining[key] -= 1
        if self._group_remaining[key] == 0:
            cid, slot = self._group_slot.pop(key)
            self._slot_free[cid][slot] = True
            del self._group_remaining[key]
            if self.profiler.enabled:
                self._profile_group_done(now, key, cid, slot)
        warp.group_key = None

    def on_warp_spawn(self, core: Core, warp, now: int = 0) -> None:
        self._active_warps += 1


_DEVICE_PID = 0


def _core_pid(cid: int) -> int:
    """Chrome-trace process id for one core (0 is the device process)."""
    return cid + 1


class _BucketSampler:
    """Emits per-cycle-bucket issue/stall/idle breakdowns per core plus
    cache/DRAM counter snapshots as Chrome counter tracks.

    The machine's fast-forwarding main loop does not visit every cycle,
    so sampling is edge-triggered: whenever ``now`` crosses the next
    bucket boundary the delta since the previous sample is emitted,
    stamped at the current cycle. Cycles the clock jumped over are
    surfaced explicitly as a device-track "skipped cycles" counter, so a
    sparse region of the timeline is distinguishable from a quiet one.
    """

    __slots__ = ("machine", "prof", "bucket", "next_ts", "core_prev",
                 "dram_prev", "skip_prev")

    def __init__(self, machine: Machine, prof: Profiler):
        self.machine = machine
        self.prof = prof
        self.bucket = prof.cycle_bucket
        self.next_ts = self.bucket
        self.core_prev = [self._core_snapshot(c) for c in machine.cores]
        self.dram_prev = (0, 0)
        self.skip_prev = 0

    @staticmethod
    def _core_snapshot(core: Core) -> tuple[int, int, int, int, int, int]:
        s = core.stats
        return (s.instructions, s.cycles_active, s.idle_cycles,
                s.lsu_stalls, s.scoreboard_stalls,
                core.dcache.stats.hits + core.dcache.stats.misses)

    def maybe_sample(self, now: int) -> None:
        if now >= self.next_ts:
            self._emit(now)
            self.next_ts = now - now % self.bucket + self.bucket

    def flush(self, now: int) -> None:
        self._emit(now)

    def _emit(self, now: int) -> None:
        prof = self.prof
        for core in self.machine.cores:
            snap = self._core_snapshot(core)
            prev = self.core_prev[core.cid]
            issued, active, idle, lsu, sb, dacc = (
                a - b for a, b in zip(snap, prev))
            self.core_prev[core.cid] = snap
            if active or idle:
                prof.sample(
                    f"core{core.cid} issue/stall/idle", ts=now,
                    values={"issue": issued, "lsu_stall": lsu,
                            "scoreboard_stall": sb,
                            "idle": max(0, idle - lsu - sb)},
                    pid=_core_pid(core.cid),
                )
            if dacc:
                prof.sample(
                    f"core{core.cid} dcache accesses", ts=now,
                    values={"accesses": dacc}, pid=_core_pid(core.cid),
                )
        dstats = self.machine.dram.stats
        dsnap = (dstats.requests, dstats.row_hits)
        dreq = dsnap[0] - self.dram_prev[0]
        if dreq:
            prof.sample(
                "dram requests", ts=now,
                values={"requests": dreq,
                        "row_hits": dsnap[1] - self.dram_prev[1]},
                pid=_DEVICE_PID,
            )
        self.dram_prev = dsnap
        skip = self.machine.skip_stats
        skipped = skip["ff_cycles"] + skip["idle_cycles"]
        if skipped != self.skip_prev:
            prof.sample(
                "skipped cycles", ts=now,
                values={"cycles": skipped - self.skip_prev},
                pid=_DEVICE_PID,
            )
            self.skip_prev = skipped
