"""The whole simulated Vortex device: cores + shared DRAM + dispatcher.

The dispatcher models Vortex's work-group scheduling: work-groups are
assigned to cores as warp-sets (one group occupies ``ceil(local_items /
T)`` warps on one core and one *slot*, which selects its barrier id and
local-memory window). Warps halt when their kernel returns; freed warps
immediately receive the next pending group. The machine advances one
cycle at a time while any core issues, and skips ahead to the next
scoreboard/LSU completion when every core is stalled (event skipping:
identical cycle counts, much faster wall-clock).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ...errors import RuntimeLaunchError, SimulationError
from ...ocl.ndrange import NDRange
from ...profiling import Profiler, ensure_profiler
from .. import layout
from ..codegen import VortexKernelImage
from ..isa import CSR, Instruction
from .config import VortexConfig
from .core import Core, CoreStats, InstrMeta, instr_meta
from .dram import DRAM
from .mem import Memory
from .warp import BLOCKED


@dataclass
class LaunchResult:
    cycles: int
    instructions: int
    printf_output: list[str]
    core_stats: list[CoreStats]
    dram_row_hit_rate: float
    dcache_hit_rate: float
    lsu_stalls: int
    idle_cycles: int
    groups_dispatched: int
    extra: dict[str, Any] = field(default_factory=dict)

    def time_ms(self, clock_mhz: float) -> float:
        return self.cycles / (clock_mhz * 1e3)


class Machine:
    def __init__(self, config: VortexConfig, trace: bool = False,
                 profiler: Profiler | None = None):
        self.config = config
        self.memory = Memory()
        self.dram = DRAM(config.dram, config.line_size)
        self.cores = [Core(c, config, self) for c in range(config.cores)]
        self.printf_output: list[str] = []
        #: profiling sink; the shared NULL_PROFILER when disabled, so the
        #: per-cycle guard is a single attribute test.
        self.profiler = ensure_profiler(profiler)
        #: dispatch cycle and group coordinates per in-flight group key.
        self._group_start: dict[int, tuple[int, tuple[int, int, int]]] = {}
        #: optional execution trace: (cycle, core, warp, pc, disasm, tmask)
        #: per issued instruction. Enable only for debugging — it grows
        #: with every instruction executed.
        self.trace: list[tuple[int, int, int, int, str, int]] | None = (
            [] if trace else None
        )
        self.program = None
        self._meta: list[InstrMeta] = []
        self._group_remaining: dict[int, int] = {}
        self._group_slot: dict[int, tuple[int, int]] = {}  # key -> (core, slot)
        self._slot_free: list[list[bool]] = [
            [True] * config.warps for _ in range(config.cores)
        ]
        self._pending: list[tuple[int, int, int]] = []
        self._next_group_key = 0
        self._dispatch_cursor = 0
        self._image: VortexKernelImage | None = None
        self._groups_dispatched = 0

    # ------------------------------------------------------------------
    # Image loading.
    # ------------------------------------------------------------------

    def load_image(self, image: VortexKernelImage) -> None:
        self._image = image
        self.program = image.program
        self.memory.write_words(layout.CODE_BASE,
                                image.program.words.view(np.int32))
        for fmt, addr in image.fmt_table.items():
            raw = fmt.encode() + b"\x00"
            self.memory.write_bytes(addr, raw)
        self._meta = [instr_meta(i) for i in image.program.instructions]

    def fetch(self, pc: int) -> tuple[Instruction, InstrMeta]:
        idx = self.program.index_of_pc(pc)
        return self.program.instructions[idx], self._meta[idx]

    # ------------------------------------------------------------------
    # Launch.
    # ------------------------------------------------------------------

    def launch(self, ndrange: NDRange, max_cycles: int = 200_000_000
               ) -> LaunchResult:
        if self._image is None:
            raise RuntimeLaunchError("no kernel image loaded")
        cfg = self.config
        ipg = ndrange.items_per_group
        warps_needed = self._warps_per_group(ndrange)
        if warps_needed > cfg.warps:
            raise RuntimeLaunchError(
                f"work-group of {ipg} items needs {warps_needed} resident "
                f"warps (barrier kernel); the configuration has "
                f"{cfg.warps} per core"
            )
        # NDRange descriptor for get_*_size queries done via memory.
        ndr_words = np.array(
            list(ndrange.global_size) + list(ndrange.local_size)
            + list(ndrange.num_groups),
            dtype=np.int32,
        )
        self.memory.write_words(layout.NDR_BASE, ndr_words)

        self._pending = self._partition_groups(ndrange)
        self._ndrange = ndrange
        self._groups_dispatched = 0
        self.printf_output.clear()
        now = 0
        prof = self.profiler
        profiling = prof.enabled
        if profiling:
            self._profile_prologue(ndrange)
            sampler = _BucketSampler(self, prof)
        self._try_dispatch(now)
        total_groups = len(self._pending) + self._groups_dispatched

        while True:
            issued_any = False
            for core in self.cores:
                if core.tick(now):
                    issued_any = True
            if self._pending:
                self._try_dispatch(now)
            if profiling:
                sampler.maybe_sample(now)
            if self._done():
                now += 1
                break
            if not issued_any:
                nxt = min(core.next_event_time(now) for core in self.cores)
                if nxt >= BLOCKED:
                    raise self._stuck_error(
                        "deadlock: all warps blocked (barrier mismatch?)",
                        now,
                    )
                now = max(now + 1, nxt)
            else:
                now += 1
            if now > max_cycles:
                raise self._stuck_error(
                    f"simulation exceeded {max_cycles} cycles", now
                )

        if profiling:
            sampler.flush(now)
            self._profile_epilogue(now, total_groups)
        hits = sum(c.dcache.stats.hits for c in self.cores)
        misses = sum(c.dcache.stats.misses for c in self.cores)
        return LaunchResult(
            cycles=now,
            instructions=sum(c.stats.instructions for c in self.cores),
            printf_output=list(self.printf_output),
            core_stats=[c.stats for c in self.cores],
            dram_row_hit_rate=self.dram.stats.row_hit_rate,
            dcache_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
            lsu_stalls=sum(c.stats.lsu_stalls + c.stats.lsu_replays
                           for c in self.cores),
            idle_cycles=sum(c.stats.idle_cycles for c in self.cores),
            groups_dispatched=total_groups,
            extra={
                "lsu_replays": sum(c.stats.lsu_replays for c in self.cores),
            },
        )

    def describe_warp_states(self, now: int) -> str:
        """Render every warp's state: core, warp id, PC, active mask,
        group key and why it is (not) making progress. Attached to the
        :class:`SimulationError` raised for a stuck machine, so a hung
        configuration inside a sweep is debuggable from the rendered
        error row alone — no re-run with tracing needed."""
        lines = []
        for core in self.cores:
            barrier_of = {wid: bar
                          for bar, wids in core.barriers.items()
                          for wid in wids}
            for warp in core.warps:
                if not warp.active:
                    status = "halted"
                elif warp.at_barrier:
                    status = f"waiting at barrier {barrier_of.get(warp.wid, '?')}"
                elif warp.ready_at >= BLOCKED:
                    status = "blocked"
                elif warp.ready_at > now:
                    status = f"stalled until cycle {warp.ready_at}"
                else:
                    status = "ready"
                lines.append(
                    f"  core {core.cid} warp {warp.wid}: "
                    f"pc={warp.pc:#06x} mask={warp.tmask_bits():#x} "
                    f"group={warp.group_key} {status}"
                )
        return "\n".join(lines)

    def _stuck_error(self, headline: str, now: int) -> SimulationError:
        dump = self.describe_warp_states(now)
        exc = SimulationError(
            f"{headline}\nwarp states at cycle {now}:\n{dump}")
        exc.warp_dump = dump
        return exc

    def _done(self) -> bool:
        if self._pending:
            return False
        return all(
            not w.active for core in self.cores for w in core.warps
        )

    # ------------------------------------------------------------------
    # Profiling.
    # ------------------------------------------------------------------

    def _profile_prologue(self, ndrange: NDRange) -> None:
        prof = self.profiler
        cfg = self.config
        prof.set_meta("backend", "simx")
        prof.set_meta("config", cfg.label())
        prof.set_meta("global_size", tuple(ndrange.global_size))
        prof.set_meta("local_size", tuple(ndrange.local_size))
        prof.set_meta("timeline", "cycles")
        prof.name_process(_DEVICE_PID, "device (DRAM + dispatch)")
        for core in self.cores:
            pid = _core_pid(core.cid)
            prof.name_process(pid, f"core {core.cid}")
            for slot in range(cfg.warps):
                prof.name_thread(pid, slot, f"slot {slot} (work-groups)")
        self._group_start.clear()

    def _profile_epilogue(self, now: int, total_groups: int) -> None:
        """Fold the end-of-launch counters into the profiler."""
        prof = self.profiler
        totals = {
            "cycles": now,
            "groups_dispatched": total_groups,
            "instructions": sum(c.stats.instructions for c in self.cores),
            "simt_instructions": sum(c.stats.simt_instructions
                                     for c in self.cores),
            "cycles_active": sum(c.stats.cycles_active for c in self.cores),
            "idle_cycles": sum(c.stats.idle_cycles for c in self.cores),
            "lsu_stalls": sum(c.stats.lsu_stalls for c in self.cores),
            "lsu_replays": sum(c.stats.lsu_replays for c in self.cores),
            "scoreboard_stalls": sum(c.stats.scoreboard_stalls
                                     for c in self.cores),
            "barrier_waits": sum(c.stats.barrier_waits for c in self.cores),
            "dcache.accesses": sum(c.dcache.stats.accesses
                                   for c in self.cores),
            "dcache.hits": sum(c.dcache.stats.hits for c in self.cores),
            "dcache.misses": sum(c.dcache.stats.misses for c in self.cores),
            "dram.requests": self.dram.stats.requests,
            "dram.row_hits": self.dram.stats.row_hits,
            "dram.row_misses": self.dram.stats.row_misses,
        }
        prof.count_many(totals, prefix="simx.")
        hits, misses = totals["dcache.hits"], totals["dcache.misses"]
        if hits + misses:
            prof.count("simx.dcache.hit_rate", hits / (hits + misses))
        if self.dram.stats.requests:
            prof.count("simx.dram.row_hit_rate",
                       self.dram.stats.row_hit_rate)

    def _profile_dispatch(self, now: int, key: int,
                          group: tuple[int, int, int], core: Core,
                          slot: int, warps_needed: int) -> None:
        self._group_start[key] = (now, group)
        self.profiler.instant(
            f"dispatch {group}", "simx.dispatch", ts=now,
            pid=_core_pid(core.cid), tid=slot,
            args={"group": list(group), "warps": warps_needed},
        )

    def _profile_group_done(self, now: int, key: int, cid: int,
                            slot: int) -> None:
        start = self._group_start.pop(key, None)
        if start is None:
            return
        ts, group = start
        self.profiler.complete(
            f"group {group}", "simx.group", ts=ts, dur=max(1, now - ts),
            pid=_core_pid(cid), tid=slot,
        )

    # ------------------------------------------------------------------
    # Work-group dispatch.
    # ------------------------------------------------------------------

    def _warps_per_group(self, ndrange: NDRange) -> int:
        """1 in wave mode (a warp sweeps its group in waves of T lanes);
        ceil(items/T) for barrier kernels (warp-set dispatch)."""
        if self._image is not None and self._image.wave_mode:
            return 1
        return max(1, -(-ndrange.items_per_group // self.config.threads))

    def _partition_groups(self, ndrange: NDRange) -> list:
        """Static chunked partitioning, as Vortex's ``vx_spawn`` does:
        each warp-set slot owns a *contiguous* range of work-groups, so
        concurrent slots stream through distant address regions. The
        pending list is ordered so that popping round-robin hands every
        slot the next group of its own chunk."""
        groups = list(ndrange.groups())
        cfg = self.config
        if not cfg.chunked_dispatch:
            return groups  # interleaved round-robin hand-out
        warps_needed = self._warps_per_group(ndrange)
        slots_total = max(1, (cfg.warps // warps_needed) * cfg.cores)
        nchunks = min(slots_total, len(groups))
        if nchunks <= 1:
            return groups
        chunk = -(-len(groups) // nchunks)
        chunks = [groups[i * chunk: (i + 1) * chunk]
                  for i in range(nchunks)]
        interleaved: list = []
        for depth in range(chunk):
            for ch in chunks:
                if depth < len(ch):
                    interleaved.append(ch[depth])
        return interleaved

    def _try_dispatch(self, now: int) -> None:
        cfg = self.config
        ndr = self._ndrange
        ipg = ndr.items_per_group
        warps_needed = self._warps_per_group(ndr)
        wave_mode = self._image is not None and self._image.wave_mode
        ncores = cfg.cores
        stuck = 0
        while self._pending and stuck < ncores:
            core = self.cores[self._dispatch_cursor % ncores]
            self._dispatch_cursor += 1
            free_warps = [w for w in core.warps if not w.active]
            free_slots = [s for s, ok in enumerate(self._slot_free[core.cid])
                          if ok]
            if len(free_warps) < warps_needed or not free_slots:
                stuck += 1
                continue
            stuck = 0
            group = self._pending.pop(0)
            slot = free_slots[0]
            self._slot_free[core.cid][slot] = False
            key = self._next_group_key
            self._next_group_key += 1
            self._group_remaining[key] = warps_needed
            self._group_slot[key] = (core.cid, slot)
            if self.profiler.enabled:
                self._profile_dispatch(now, key, group, core, slot,
                                       warps_needed)
            local_base = layout.local_window(core.cid, slot, cfg.warps)
            entry_pc = self.program.labels[self._image.kernel_name]
            for k in range(warps_needed):
                warp = free_warps[k]
                csrs = {
                    int(CSR.GROUP_ID0): group[0],
                    int(CSR.GROUP_ID1): group[1],
                    int(CSR.GROUP_ID2): group[2],
                    int(CSR.LOCAL_OFFSET): k * cfg.threads,
                    int(CSR.GROUP_SLOT): slot,
                    int(CSR.GROUP_WARPS): warps_needed,
                    int(CSR.LOCAL_BASE): local_base,
                }
                tmask = np.zeros(cfg.threads, dtype=bool)
                if wave_mode:
                    # First wave: lanes 0..min(T, items)-1; the kernel's
                    # own wave loop re-masks the later waves.
                    tmask[: min(cfg.threads, ipg)] = True
                else:
                    for lane in range(cfg.threads):
                        tmask[lane] = k * cfg.threads + lane < ipg
                sp = np.array(
                    [
                        layout.stack_top(
                            (core.cid * cfg.warps + warp.wid) * cfg.threads
                            + lane
                        )
                        for lane in range(cfg.threads)
                    ],
                    dtype=np.int32,
                )
                warp.reset_for_group(entry_pc, tmask, csrs, sp)
                warp.ready_at = now + 1
                warp.group_key = key
            self._groups_dispatched += 1

    def on_warp_halt(self, core: Core, warp, now: int = 0) -> None:
        key = warp.group_key
        if key is None:
            return
        self._group_remaining[key] -= 1
        if self._group_remaining[key] == 0:
            cid, slot = self._group_slot.pop(key)
            self._slot_free[cid][slot] = True
            del self._group_remaining[key]
            if self.profiler.enabled:
                self._profile_group_done(now, key, cid, slot)
        warp.group_key = None


_DEVICE_PID = 0


def _core_pid(cid: int) -> int:
    """Chrome-trace process id for one core (0 is the device process)."""
    return cid + 1


class _BucketSampler:
    """Emits per-cycle-bucket issue/stall/idle breakdowns per core plus
    cache/DRAM counter snapshots as Chrome counter tracks.

    The machine's event-skipping main loop does not visit every cycle,
    so sampling is edge-triggered: whenever ``now`` crosses the next
    bucket boundary the delta since the previous sample is emitted,
    stamped at the current cycle (gaps in the track mean idle-skips).
    """

    __slots__ = ("machine", "prof", "bucket", "next_ts", "core_prev",
                 "dram_prev")

    def __init__(self, machine: Machine, prof: Profiler):
        self.machine = machine
        self.prof = prof
        self.bucket = prof.cycle_bucket
        self.next_ts = self.bucket
        self.core_prev = [self._core_snapshot(c) for c in machine.cores]
        self.dram_prev = (0, 0)

    @staticmethod
    def _core_snapshot(core: Core) -> tuple[int, int, int, int, int, int]:
        s = core.stats
        return (s.instructions, s.cycles_active, s.idle_cycles,
                s.lsu_stalls, s.scoreboard_stalls,
                core.dcache.stats.hits + core.dcache.stats.misses)

    def maybe_sample(self, now: int) -> None:
        if now >= self.next_ts:
            self._emit(now)
            self.next_ts = now - now % self.bucket + self.bucket

    def flush(self, now: int) -> None:
        self._emit(now)

    def _emit(self, now: int) -> None:
        prof = self.prof
        for core in self.machine.cores:
            snap = self._core_snapshot(core)
            prev = self.core_prev[core.cid]
            issued, active, idle, lsu, sb, dacc = (
                a - b for a, b in zip(snap, prev))
            self.core_prev[core.cid] = snap
            if active or idle:
                prof.sample(
                    f"core{core.cid} issue/stall/idle", ts=now,
                    values={"issue": issued, "lsu_stall": lsu,
                            "scoreboard_stall": sb,
                            "idle": max(0, idle - lsu - sb)},
                    pid=_core_pid(core.cid),
                )
            if dacc:
                prof.sample(
                    f"core{core.cid} dcache accesses", ts=now,
                    values={"accesses": dacc}, pid=_core_pid(core.cid),
                )
        dstats = self.machine.dram.stats
        dsnap = (dstats.requests, dstats.row_hits)
        dreq = dsnap[0] - self.dram_prev[0]
        if dreq:
            prof.sample(
                "dram requests", ts=now,
                values={"requests": dreq,
                        "row_hits": dsnap[1] - self.dram_prev[1]},
                pid=_DEVICE_PID,
            )
        self.dram_prev = dsnap
