"""Simulated device memory: a flat byte array with typed vector access.

One :class:`Memory` instance backs the whole device (all cores share it,
as on the real board). The runtime uses the byte-level helpers to load
code, arguments and buffers; the cores use the word-vector gather/scatter
paths, which are numpy-vectorised across warp lanes.
"""

from __future__ import annotations

import numpy as np

from ...errors import TrapError
from .. import layout


class Memory:
    def __init__(self, size: int = layout.MEM_SIZE):
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)
        self._words = self.data.view(np.int32)
        self._floats = self.data.view(np.float32)

    # -- host/runtime byte access ---------------------------------------

    def write_bytes(self, addr: int, data: bytes | np.ndarray) -> None:
        raw = np.frombuffer(bytes(data), dtype=np.uint8) \
            if isinstance(data, (bytes, bytearray)) else data.view(np.uint8)
        self._check_range(addr, len(raw))
        self.data[addr: addr + len(raw)] = raw

    def read_bytes(self, addr: int, length: int) -> bytes:
        self._check_range(addr, length)
        return self.data[addr: addr + length].tobytes()

    def write_words(self, addr: int, words: np.ndarray) -> None:
        raw = np.ascontiguousarray(words).view(np.uint8)
        self.write_bytes(addr, raw)

    def read_word(self, addr: int) -> int:
        # Scalar fast path: skip the vector-check array allocation.
        if addr < 0 or addr + 4 > self.size or addr & 3:
            self._check_word(np.array([addr]))  # raises the right trap
        return int(self._words[addr >> 2])

    def write_word(self, addr: int, value: int) -> None:
        if addr < 0 or addr + 4 > self.size or addr & 3:
            self._check_word(np.array([addr]))
        self._words[addr >> 2] = np.int32(value & 0xFFFFFFFF if value >= 0
                                          else value)

    def read_cstring(self, addr: int, limit: int = 4096) -> str:
        end = min(addr + limit, self.size)
        chunk = self.data[addr:end]
        nul = np.nonzero(chunk == 0)[0]
        if len(nul) == 0:
            raise TrapError(f"unterminated string at {addr:#x}")
        return chunk[: nul[0]].tobytes().decode("utf-8", errors="replace")

    # -- lane-vector access ----------------------------------------------

    def gather_i32(self, addrs: np.ndarray) -> np.ndarray:
        self._check_lanes(addrs)
        return self._words[addrs >> 2]

    def gather_f32(self, addrs: np.ndarray) -> np.ndarray:
        self._check_lanes(addrs)
        return self._floats[addrs >> 2]

    def scatter_i32(self, addrs: np.ndarray, values: np.ndarray) -> None:
        self._check_lanes(addrs)
        self._words[addrs >> 2] = values

    def scatter_f32(self, addrs: np.ndarray, values: np.ndarray) -> None:
        self._check_lanes(addrs)
        self._floats[addrs >> 2] = values

    # -- checks -----------------------------------------------------------

    def _check_range(self, addr: int, length: int) -> None:
        if addr < 0 or addr + length > self.size:
            raise TrapError(
                f"memory access [{addr:#x}, {addr + length:#x}) outside "
                f"device memory of {self.size:#x} bytes"
            )

    def _check_lanes(self, addrs: np.ndarray) -> None:
        """Word-access check for lane vectors (at most 32 entries): a
        plain Python pass beats three ufunc reductions at that size.
        Same diagnostics as :meth:`_check_word` — range errors first,
        first offending lane reported."""
        if len(addrs) > 64:
            self._check_word(addrs)
            return
        size = self.size
        alist = addrs.tolist()
        for a in alist:
            if a < 0 or a + 4 > size:
                raise TrapError(f"memory access at {a:#x} out of range")
        for a in alist:
            if a & 3:
                raise TrapError(f"unaligned word access at {a:#x}")

    def _check_word(self, addrs: np.ndarray) -> None:
        addrs_u = addrs if addrs.dtype == np.int64 else addrs.astype(np.int64)
        if len(addrs_u) == 0:
            return
        # Fast path: one min/max pass instead of three boolean reductions.
        lo = int(addrs_u.min())
        hi = int(addrs_u.max())
        if lo >= 0 and hi + 4 <= self.size and not (addrs_u & 3).any():
            return
        # Slow path: reproduce the original diagnostics (range errors
        # take priority over alignment, first offending lane reported).
        if lo < 0 or hi + 4 > self.size:
            bad = addrs_u[(addrs_u < 0) | (addrs_u + 4 > self.size)][0]
            raise TrapError(f"memory access at {int(bad):#x} out of range")
        bad = addrs_u[(addrs_u & 3) != 0][0]
        raise TrapError(f"unaligned word access at {int(bad):#x}")
