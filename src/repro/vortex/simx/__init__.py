"""SimX: the cycle-level simulator of the Vortex soft GPU.

The paper's §IV-A describes SimX as Vortex's C++ cycle-level simulator
(within 6% of the RTL) used to explore hardware configurations quickly —
this package is our Python equivalent, executing real encoded kernels
over configurable (cores, warps, threads) geometries with a warp
scheduler, scoreboard, LSU, per-core D-cache, and a shared open-row DRAM
model.
"""

from .config import DDR4_DRAM, DRAMConfig, HBM2_DRAM, VortexConfig
from .core import Core, CoreStats
from .machine import LaunchResult, Machine
from .mem import Memory
from .warp import Warp

__all__ = [
    "Core",
    "CoreStats",
    "DDR4_DRAM",
    "DRAMConfig",
    "HBM2_DRAM",
    "LaunchResult",
    "Machine",
    "Memory",
    "VortexConfig",
    "Warp",
]
