"""Set-associative write-through data cache (per core).

The LSU consults the cache per line: a hit costs the cache hit latency,
a miss goes to DRAM and fills the line (no-allocate on stores would be
an option; Vortex's cache allocates on both, which we follow). LRU
replacement via per-way timestamps.

The tag and LRU arrays are plain Python lists-of-lists: a lookup touches
one set of (typically) a few ways, where ``list.index`` beats a numpy
comparison-plus-nonzero round trip by an order of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    #: total lookups, counted independently of the hit/miss split so the
    #: ``hits + misses == accesses`` invariant is checkable.
    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        # Divide by the independent ``accesses`` counter, not the
        # hits+misses sum: the two are meant to be identical, and using
        # ``accesses`` means the rate cannot silently mask a broken
        # split (the invariant tests pin them equal).
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    def __init__(self, size: int, ways: int, line_size: int):
        self.line_size = line_size
        self.ways = ways
        self.sets = size // (ways * line_size)
        self.tags: list[list[int]] = [[-1] * ways for _ in range(self.sets)]
        self.lru: list[list[int]] = [[0] * ways for _ in range(self.sets)]
        self._tick = 0
        self.stats = CacheStats()

    def lookup(self, line_addr: int) -> bool:
        """True on hit; updates LRU. Does not fill."""
        line = line_addr // self.line_size
        set_idx = line % self.sets
        tag = line // self.sets
        self._tick += 1
        stats = self.stats
        stats.accesses += 1
        try:
            way = self.tags[set_idx].index(tag)
        except ValueError:
            stats.misses += 1
            return False
        self.lru[set_idx][way] = self._tick
        stats.hits += 1
        return True

    def fill(self, line_addr: int) -> None:
        line = line_addr // self.line_size
        set_idx = line % self.sets
        tag = line // self.sets
        self._tick += 1
        tag_row = self.tags[set_idx]
        lru_row = self.lru[set_idx]
        # If the tag is already resident (two outstanding misses on the
        # same line both filling), refresh that way instead of
        # allocating the line into a second one — duplicate residency
        # would silently halve the set's effective associativity.
        try:
            way = tag_row.index(tag)
        except ValueError:
            way = lru_row.index(min(lru_row))  # first-oldest, as argmin
            tag_row[way] = tag
        lru_row[way] = self._tick

    def invalidate_all(self) -> None:
        for row in self.tags:
            row[:] = [-1] * self.ways
        for row in self.lru:
            row[:] = [0] * self.ways
