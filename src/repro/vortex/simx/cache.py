"""Set-associative write-through data cache (per core).

The LSU consults the cache per line: a hit costs the cache hit latency,
a miss goes to DRAM and fills the line (no-allocate on stores would be
an option; Vortex's cache allocates on both, which we follow). LRU
replacement via per-way timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CacheStats:
    #: total lookups, counted independently of the hit/miss split so the
    #: ``hits + misses == accesses`` invariant is checkable.
    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        # Divide by the independent ``accesses`` counter, not the
        # hits+misses sum: the two are meant to be identical, and using
        # ``accesses`` means the rate cannot silently mask a broken
        # split (the invariant tests pin them equal).
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    def __init__(self, size: int, ways: int, line_size: int):
        self.line_size = line_size
        self.ways = ways
        self.sets = size // (ways * line_size)
        self.tags = np.full((self.sets, ways), -1, dtype=np.int64)
        self.lru = np.zeros((self.sets, ways), dtype=np.int64)
        self._tick = 0
        self.stats = CacheStats()

    def lookup(self, line_addr: int) -> bool:
        """True on hit; updates LRU. Does not fill."""
        line = line_addr // self.line_size
        set_idx = line % self.sets
        tag = line // self.sets
        self._tick += 1
        self.stats.accesses += 1
        ways = self.tags[set_idx]
        hit = np.nonzero(ways == tag)[0]
        if len(hit):
            self.lru[set_idx, hit[0]] = self._tick
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def fill(self, line_addr: int) -> None:
        line = line_addr // self.line_size
        set_idx = line % self.sets
        tag = line // self.sets
        self._tick += 1
        # If the tag is already resident (two outstanding misses on the
        # same line both filling), refresh that way instead of
        # allocating the line into a second one — duplicate residency
        # would silently halve the set's effective associativity.
        resident = np.nonzero(self.tags[set_idx] == tag)[0]
        if len(resident):
            self.lru[set_idx, resident[0]] = self._tick
            return
        victim = int(np.argmin(self.lru[set_idx]))
        self.tags[set_idx, victim] = tag
        self.lru[set_idx, victim] = self._tick

    def invalidate_all(self) -> None:
        self.tags.fill(-1)
        self.lru.fill(0)
