"""One SIMT core: warp scheduler, execution units, LSU, D-cache.

The core issues at most one warp-instruction per cycle (Vortex is a
single-issue in-order design). A warp is *ready* when it is active, not
parked at a barrier, past its structural ``ready_at`` time, and all its
source registers are available per the scoreboard. Memory instructions
additionally need a free LSU queue entry and the LSU lane-sequencer to be
free; when the selected warp is blocked on the LSU, the core records an
**LSU stall** — the counter behind the paper's Figure 7 discussion.

Execution is functional-at-issue (register values are computed
immediately, numpy-vectorised across lanes) with timing imposed through
the scoreboard (result-availability cycles) and the LSU/DRAM models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import SimulationError, TrapError
from ..isa import CSR, FP_RD, FP_RS1, FP_RS2, Fmt, Instruction, SPECS
from .cache import Cache
from .config import VortexConfig
from .warp import BLOCKED, Warp

_INT32_MIN = np.int32(-(2**31))


def _i32(value: int) -> np.int32:
    """Wrap a Python int to signed 32-bit."""
    value &= 0xFFFFFFFF
    if value >= 2**31:
        value -= 2**32
    return np.int32(value)


@dataclass
class InstrMeta:
    """Pre-decoded issue metadata for one instruction."""

    srcs_x: tuple[int, ...] = ()
    srcs_f: tuple[int, ...] = ()
    dst: tuple[str, int] | None = None
    is_mem: bool = False
    kind: str = "alu"  # alu|mul|div|fpu|fdiv|sfu|mem|csr|simt


_MUL_OPS = {"mul", "mulh"}
_DIV_OPS = {"div", "rem"}
_FPU_OPS = {
    "fadd.s", "fsub.s", "fmul.s", "fmin.s", "fmax.s", "fsgnj.s", "fsgnjn.s",
    "fsgnjx.s", "feq.s", "flt.s", "fle.s", "fcvt.w.s", "fcvt.s.w",
    "fmv.x.w", "fmv.w.x",
}
_FDIV_OPS = {"fdiv.s", "fsqrt.s"}
_SFU_OPS = {"fexp.s", "flog.s", "fsin.s", "fcos.s", "ffloor.s", "fpow.s"}
_MEM_OPS = {"lw", "sw", "flw", "fsw",
            "amoadd.w", "amoswap.w", "amomin.w", "amomax.w", "amocas.w"}
_SIMT_OPS = {"tmc", "wspawn", "split", "join", "bar", "pred", "halt",
             "printfx"}


def instr_meta(ins: Instruction) -> InstrMeta:
    m = ins.mnemonic
    spec = SPECS[m]
    srcs_x: list[int] = []
    srcs_f: list[int] = []
    if spec.fmt in (Fmt.R, Fmt.I, Fmt.S, Fmt.B, Fmt.AMO, Fmt.CSR):
        (srcs_f if m in FP_RS1 else srcs_x).append(ins.rs1)
    if spec.fmt in (Fmt.R, Fmt.S, Fmt.B, Fmt.AMO):
        (srcs_f if m in FP_RS2 else srcs_x).append(ins.rs2)
    if m == "amocas.w":
        srcs_x.append(ins.rd)  # rd carries the expected value
    dst: tuple[str, int] | None = None
    if spec.fmt in (Fmt.R, Fmt.I, Fmt.U, Fmt.J, Fmt.CSR, Fmt.AMO) and \
            m not in ("sw", "fsw") and m not in _SIMT_OPS:
        if m in FP_RD:
            dst = ("f", ins.rd)
        elif ins.rd != 0:
            dst = ("x", ins.rd)
    if m in _MUL_OPS:
        kind = "mul"
    elif m in _DIV_OPS:
        kind = "div"
    elif m in _FPU_OPS:
        kind = "fpu"
    elif m in _FDIV_OPS:
        kind = "fdiv"
    elif m in _SFU_OPS:
        kind = "sfu"
    elif m in _MEM_OPS:
        kind = "mem"
    elif m == "csrrs":
        kind = "csr"
    elif m in _SIMT_OPS:
        kind = "simt"
    else:
        kind = "alu"
    return InstrMeta(
        srcs_x=tuple(srcs_x),
        srcs_f=tuple(srcs_f),
        dst=dst,
        is_mem=kind == "mem",
        kind=kind,
    )


@dataclass
class CoreStats:
    instructions: int = 0
    cycles_active: int = 0
    idle_cycles: int = 0
    lsu_stalls: int = 0
    lsu_replays: int = 0  # loads bounced off full MSHRs (wasted slots)
    scoreboard_stalls: int = 0
    barrier_waits: int = 0
    simt_instructions: int = 0


class Core:
    def __init__(self, cid: int, config: VortexConfig, machine: "object"):
        self.cid = cid
        self.config = config
        self.machine = machine
        self.warps = [Warp(w, config.threads) for w in range(config.warps)]
        self.dcache = Cache(config.dcache_size, config.dcache_ways,
                            config.line_size)
        self.lsu_inflight: list[int] = []
        self.lsu_busy_until = 0
        #: outstanding missed lines: line address -> fill-completion cycle
        #: (DRAM fetches merge per line).
        self.mshrs: dict[int, int] = {}
        #: per-lane MSHR occupancy: (release_cycle, entries).
        self.mshr_entries: list[tuple[int, int]] = []
        #: write-combining buffer: line -> insertion order stamp.
        self.wc_buffer: dict[int, int] = {}
        self._wc_stamp = 0
        #: multi-beat issue: the issue stage is busy until this cycle.
        self.issue_busy_until = 0
        self._issue_beats = max(
            1, -(-config.threads // config.issue_lanes)
        )
        self.rr = 0
        self.stats = CoreStats()
        #: barrier slot -> list of waiting warp indices.
        self.barriers: dict[int, list[int]] = {}

    # ------------------------------------------------------------------
    # Issue.
    # ------------------------------------------------------------------

    def tick(self, now: int) -> bool:
        self.lsu_inflight = [t for t in self.lsu_inflight if t > now]
        if self.mshrs:
            self.mshrs = {ln: t for ln, t in self.mshrs.items() if t > now}
        if self.mshr_entries:
            self.mshr_entries = [(t, n) for t, n in self.mshr_entries
                                 if t > now]
        cfg = self.config
        if now < self.issue_busy_until:
            # A previous multi-beat instruction still occupies the
            # issue stage.
            self.stats.cycles_active += 1
            return True
        nw = len(self.warps)
        issued = False
        saw_lsu_block = False
        saw_scoreboard_block = False
        for k in range(nw):
            idx = (self.rr + 1 + k) % nw
            warp = self.warps[idx]
            if not warp.active or warp.at_barrier or warp.ready_at > now:
                continue
            ins, meta = self.machine.fetch(warp.pc)
            if not self._sources_ready(warp, meta, now):
                saw_scoreboard_block = True
                continue
            if meta.is_mem and (
                len(self.lsu_inflight) >= cfg.lsu_queue_depth
                or self.lsu_busy_until > now
            ):
                saw_lsu_block = True
                continue
            if self.machine.trace is not None:
                from ..isa import format_instruction

                self.machine.trace.append(
                    (now, self.cid, warp.wid, warp.pc,
                     format_instruction(ins), warp.tmask_bits())
                )
            self._execute(warp, ins, meta, now)
            self.issue_busy_until = now + self._issue_beats
            self.rr = idx
            self.stats.instructions += 1
            if meta.kind == "simt":
                self.stats.simt_instructions += 1
            issued = True
            break
        if issued:
            self.stats.cycles_active += 1
        else:
            self.stats.idle_cycles += 1
            if saw_lsu_block:
                self.stats.lsu_stalls += 1
            elif saw_scoreboard_block:
                self.stats.scoreboard_stalls += 1
        return issued

    def _sources_ready(self, warp: Warp, meta: InstrMeta, now: int) -> bool:
        for r in meta.srcs_x:
            if warp.x_ready[r] > now:
                return False
        for r in meta.srcs_f:
            if warp.f_ready[r] > now:
                return False
        return True

    def next_event_time(self, now: int) -> int:
        """Earliest future cycle at which this core might make progress."""
        best = BLOCKED
        for warp in self.warps:
            if not warp.active or warp.at_barrier:
                continue
            t = warp.ready_at
            _, meta = self.machine.fetch(warp.pc)
            for r in meta.srcs_x:
                t = max(t, int(warp.x_ready[r]))
            for r in meta.srcs_f:
                t = max(t, int(warp.f_ready[r]))
            if meta.is_mem:
                if len(self.lsu_inflight) >= self.config.lsu_queue_depth:
                    t = max(t, min(self.lsu_inflight))
                t = max(t, self.lsu_busy_until)
            best = min(best, t)
        return best

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def _writeback(self, warp: Warp, meta: InstrMeta, now: int,
                   latency: int) -> None:
        if meta.dst is None:
            return
        cls, reg = meta.dst
        if cls == "x":
            warp.x_ready[reg] = now + latency
        else:
            warp.f_ready[reg] = now + latency

    def _execute(self, warp: Warp, ins: Instruction, meta: InstrMeta,
                 now: int) -> None:
        cfg = self.config
        m = ins.mnemonic
        warp.ready_at = now + self._issue_beats
        latency = {
            "alu": cfg.alu_latency,
            "mul": cfg.mul_latency,
            "div": cfg.div_latency,
            "fpu": cfg.fpu_latency,
            "fdiv": cfg.fdiv_latency,
            "sfu": cfg.sfu_latency,
            "csr": cfg.csr_latency,
            "simt": cfg.alu_latency,
            "mem": 0,  # computed by the LSU path
        }[meta.kind]

        if meta.kind == "mem":
            self._execute_mem(warp, ins, meta, now)
            return
        if meta.kind == "simt":
            self._execute_simt(warp, ins, now)
            return

        x, f, mask = warp.x, warp.f, warp.tmask
        advance = True
        with np.errstate(all="ignore"):
            if m in ("add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra",
                     "or", "and", "mul", "mulh", "div", "rem"):
                a, b = x[ins.rs1], x[ins.rs2]
                res = _int_binop(m, a, b)
                _masked_set(x, ins.rd, res, mask)
            elif m in ("addi", "slti", "sltiu", "xori", "ori", "andi",
                       "slli", "srli", "srai"):
                a = x[ins.rs1]
                res = _int_immop(m, a, ins.imm)
                _masked_set(x, ins.rd, res, mask)
            elif m == "lui":
                _masked_set(x, ins.rd,
                            np.full_like(x[0], _i32(ins.imm << 12)), mask)
            elif m == "auipc":
                _masked_set(x, ins.rd,
                            np.full_like(x[0],
                                         _i32(warp.pc + (ins.imm << 12))),
                            mask)
            elif m == "jal":
                _masked_set(x, ins.rd, np.full_like(x[0],
                                                    np.int32(warp.pc + 4)),
                            mask)
                warp.pc += ins.imm
                advance = False
            elif m == "jalr":
                target = self._uniform_value(warp, x[ins.rs1] + ins.imm)
                _masked_set(x, ins.rd, np.full_like(x[0],
                                                    np.int32(warp.pc + 4)),
                            mask)
                warp.pc = int(target) & ~1
                advance = False
            elif m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
                taken = self._branch_taken(warp, ins)
                if taken:
                    warp.pc += ins.imm
                    advance = False
            elif m == "csrrs":
                val = self._read_csr(warp, ins.imm)
                _masked_set(x, ins.rd, val, mask)
            elif m in ("fadd.s", "fsub.s", "fmul.s", "fdiv.s", "fmin.s",
                       "fmax.s", "fpow.s"):
                a, b = f[ins.rs1], f[ins.rs2]
                res = _float_binop(m, a, b)
                _masked_setf(f, ins.rd, res, mask)
            elif m in ("fsqrt.s", "fexp.s", "flog.s", "fsin.s", "fcos.s",
                       "ffloor.s"):
                res = _float_unop(m, f[ins.rs1])
                _masked_setf(f, ins.rd, res, mask)
            elif m in ("fsgnj.s", "fsgnjn.s", "fsgnjx.s"):
                res = _float_sgnj(m, f[ins.rs1], f[ins.rs2])
                _masked_setf(f, ins.rd, res, mask)
            elif m in ("feq.s", "flt.s", "fle.s"):
                a, b = f[ins.rs1], f[ins.rs2]
                res = {"feq.s": a == b, "flt.s": a < b, "fle.s": a <= b}[m]
                _masked_set(x, ins.rd, res.astype(np.int32), mask)
            elif m == "fcvt.w.s":
                v = f[ins.rs1].astype(np.float64)
                v = np.where(np.isnan(v), 0.0, v)
                res = np.trunc(v).astype(np.int64).astype(np.int32)
                _masked_set(x, ins.rd, res, mask)
            elif m == "fcvt.s.w":
                _masked_setf(f, ins.rd, x[ins.rs1].astype(np.float32), mask)
            elif m == "fmv.x.w":
                _masked_set(x, ins.rd, f[ins.rs1].view(np.int32), mask)
            elif m == "fmv.w.x":
                _masked_setf(f, ins.rd, x[ins.rs1].view(np.float32), mask)
            else:  # pragma: no cover - closed mnemonic set
                raise SimulationError(f"cannot execute {m}")
        if advance:
            warp.pc += 4
        warp.x[0] = 0
        self._writeback(warp, meta, now, latency)

    # -- branches and CSRs -------------------------------------------------

    def _branch_taken(self, warp: Warp, ins: Instruction) -> bool:
        a = warp.x[ins.rs1]
        b = warp.x[ins.rs2]
        m = ins.mnemonic
        if m == "beq":
            cond = a == b
        elif m == "bne":
            cond = a != b
        elif m == "blt":
            cond = a < b
        elif m == "bge":
            cond = a >= b
        elif m == "bltu":
            cond = a.view(np.uint32) < b.view(np.uint32)
        else:
            cond = a.view(np.uint32) >= b.view(np.uint32)
        active = cond[warp.tmask]
        if len(active) == 0:
            raise SimulationError(
                f"core {self.cid} warp {warp.wid}: branch with empty mask "
                f"at pc {warp.pc:#x}"
            )
        if active.all():
            return True
        if not active.any():
            return False
        raise SimulationError(
            f"core {self.cid} warp {warp.wid}: divergent branch executed "
            f"without SPLIT at pc {warp.pc:#x} (miscompiled kernel)"
        )

    def _uniform_value(self, warp: Warp, values: np.ndarray) -> int:
        active = values[warp.tmask]
        if len(active) and not (active == active[0]).all():
            raise SimulationError(
                f"warp {warp.wid}: non-uniform value where uniform required "
                f"at pc {warp.pc:#x}"
            )
        return int(active[0])

    def _read_csr(self, warp: Warp, csr: int) -> np.ndarray:
        T = self.config.threads
        if csr == CSR.THREAD_ID:
            return np.arange(T, dtype=np.int32)
        if csr == CSR.WARP_ID:
            return np.full(T, warp.wid, dtype=np.int32)
        if csr == CSR.CORE_ID:
            return np.full(T, self.cid, dtype=np.int32)
        if csr == CSR.NUM_THREADS:
            return np.full(T, T, dtype=np.int32)
        if csr == CSR.NUM_WARPS:
            return np.full(T, self.config.warps, dtype=np.int32)
        if csr == CSR.NUM_CORES:
            return np.full(T, self.config.cores, dtype=np.int32)
        if csr == CSR.TMASK:
            return np.full(T, warp.tmask_bits(), dtype=np.int32)
        if csr in warp.csrs:
            return np.full(T, warp.csrs[csr], dtype=np.int32)
        raise TrapError(f"read of unknown CSR {csr:#x}")

    # -- memory --------------------------------------------------------------

    def _execute_mem(self, warp: Warp, ins: Instruction, meta: InstrMeta,
                     now: int) -> None:
        cfg = self.config
        m = ins.mnemonic
        mem = self.machine.memory
        mask = warp.tmask
        lanes = int(mask.sum())
        base = warp.x[ins.rs1].astype(np.int64)

        if m in ("lw", "flw"):
            addrs = base + ins.imm
            active_addrs = addrs[mask]
            timing = self._lsu_load_timing(active_addrs, lanes, now)
            if timing is None:
                # All MSHRs busy: the load is replayed later; this issue
                # slot is wasted (an LSU stall in the paper's terms).
                warp.ready_at = now + cfg.replay_penalty
                self.stats.lsu_replays += 1
                return
            completion = timing
            if m == "lw":
                vals = np.zeros_like(warp.x[0])
                vals[mask] = mem.gather_i32(active_addrs)
                _masked_set(warp.x, ins.rd, vals, mask)
            else:
                vals = np.zeros_like(warp.f[0])
                vals[mask] = mem.gather_f32(active_addrs)
                _masked_setf(warp.f, ins.rd, vals, mask)
        elif m in ("sw", "fsw"):
            addrs = base + ins.imm
            active_addrs = addrs[mask]
            if m == "sw":
                mem.scatter_i32(active_addrs, warp.x[ins.rs2][mask])
            else:
                mem.scatter_f32(active_addrs, warp.f[ins.rs2][mask])
            completion = self._lsu_store_timing(active_addrs, lanes, now)
        else:
            # AMOs bypass the cache and serialise per lane through DRAM.
            addrs = base[mask]
            if (addrs & 3).any():
                raise TrapError(f"unaligned atomic at pc {warp.pc:#x}")
            completion = now + cfg.dcache_hit_latency
            results = np.zeros(lanes, dtype=np.int32)
            src = warp.x[ins.rs2][mask]
            expected = warp.x[ins.rd][mask] if m == "amocas.w" else None
            lane_ids = np.nonzero(mask)[0]
            for i in range(lanes):
                addr = int(addrs[i])
                line = addr & ~(cfg.line_size - 1)
                completion = self.machine.dram.access(line, completion)
                old = mem.read_word(addr)
                results[i] = old
                val = int(src[i])
                if m == "amoadd.w":
                    new = int(np.int32(np.int64(old) + val))
                elif m == "amomin.w":
                    new = min(old, val)
                elif m == "amomax.w":
                    new = max(old, val)
                elif m == "amoswap.w":
                    new = val
                else:  # amocas.w
                    new = val if old == int(expected[i]) else old
                mem.write_word(addr, new)
            if ins.rd != 0:
                full = np.zeros_like(warp.x[0])
                full[lane_ids] = results
                _masked_set(warp.x, ins.rd, full, mask)
        warp.pc += 4
        warp.x[0] = 0
        self.lsu_inflight.append(completion)
        unpack = max(1, -(-lanes // cfg.lsu_lanes_per_cycle))
        self.lsu_busy_until = max(self.lsu_busy_until, now) + unpack
        if meta.dst is not None:
            cls, reg = meta.dst
            if cls == "x":
                warp.x_ready[reg] = completion
            else:
                warp.f_ready[reg] = completion

    def _lsu_load_timing(self, addrs: np.ndarray, lanes: int,
                         now: int) -> int | None:
        """Cache/MSHR/DRAM timing for one warp load.

        Returns the data-ready cycle, or ``None`` when a new line miss
        found every MSHR occupied (the load must be replayed).
        """
        cfg = self.config
        if len(addrs) == 0:
            return now + cfg.dcache_hit_latency
        line_ids = addrs // cfg.line_size
        lines, lane_counts = np.unique(line_ids, return_counts=True)
        completion = now + cfg.dcache_hit_latency
        new_misses: list[tuple[int, int]] = []  # (line, lanes)
        waiting_lanes = 0
        merged_completions: list[int] = []
        for line, nlanes in zip(lines, lane_counts):
            line = int(line) * cfg.line_size
            pending = self.mshrs.get(line)
            if pending is not None:
                # Fill already in flight: lanes merge onto it but still
                # occupy their own MSHR entries until it returns.
                merged_completions.append(pending)
                waiting_lanes += int(nlanes)
            elif self.dcache.lookup(line):
                continue
            else:
                new_misses.append((line, int(nlanes)))
                waiting_lanes += int(nlanes)
        if waiting_lanes:
            occupancy = sum(n for _, n in self.mshr_entries)
            free = cfg.mshrs - occupancy
            # Oversized gathers (more lanes than MSHRs exist) are allowed
            # through once the MSHRs have fully drained, guaranteeing
            # forward progress.
            if waiting_lanes > free and not (
                waiting_lanes > cfg.mshrs and occupancy == 0
            ):
                return None
            for t in merged_completions:
                completion = max(completion, t)
            for line, nlanes in new_misses:
                t = self.machine.dram.access(line,
                                             now + cfg.dcache_hit_latency)
                self.mshrs[line] = t
                self.dcache.fill(line)
                merged_completions.append(t)
                completion = max(completion, t)
            # Lanes of each line release when their fill returns.
            for line, nlanes in zip(lines, lane_counts):
                line = int(line) * cfg.line_size
                t = self.mshrs.get(line)
                if t is not None:
                    self.mshr_entries.append((t, int(nlanes)))
        unpack = max(1, -(-lanes // cfg.lsu_lanes_per_cycle))
        return completion + unpack

    def _lsu_store_timing(self, addrs: np.ndarray, lanes: int,
                          now: int) -> int:
        """Write-through, no-allocate stores: pay DRAM bandwidth, hold an
        LSU entry, but never block on MSHRs and never wait the warp.
        Stores to a line still in the write-combining buffer merge (a
        partial-line store would otherwise hit DRAM once per wave)."""
        cfg = self.config
        if len(addrs) == 0:
            return now + cfg.dcache_hit_latency
        lines = np.unique(addrs // cfg.line_size) * cfg.line_size
        completion = now + cfg.dcache_hit_latency
        for line in lines:
            line = int(line)
            if line in self.wc_buffer:
                self._wc_stamp += 1
                self.wc_buffer[line] = self._wc_stamp  # refresh LRU
                continue
            t = self.machine.dram.access(line, now + cfg.dcache_hit_latency)
            completion = max(completion, t)
            self._wc_stamp += 1
            self.wc_buffer[line] = self._wc_stamp
            if len(self.wc_buffer) > cfg.wc_entries:
                victim = min(self.wc_buffer, key=self.wc_buffer.get)
                del self.wc_buffer[victim]
        unpack = max(1, -(-lanes // cfg.lsu_lanes_per_cycle))
        return completion + unpack

    # -- SIMT control -------------------------------------------------------

    def _execute_simt(self, warp: Warp, ins: Instruction, now: int) -> None:
        m = ins.mnemonic
        if m == "split":
            self._execute_split(warp, ins)
        elif m == "join":
            entry = warp.pop_join()
            if entry.uniform:
                warp.pc += 4
            elif entry.pc is not None:
                warp.tmask = entry.mask
                warp.pc = entry.pc
            else:
                warp.tmask = entry.mask
                warp.pc += 4
        elif m == "pred":
            cont = (warp.x[ins.rs1] != 0) & warp.tmask
            if cont.any():
                warp.tmask = cont
                warp.pc += 8  # skip the loop-exit jump
            else:
                bits = int(warp.x[ins.rs2][warp.first_active_lane()])
                warp.set_tmask_bits(bits)
                warp.pc += 4  # execute the loop-exit jump
        elif m == "tmc":
            bits = int(warp.x[ins.rs1][warp.first_active_lane()])
            warp.set_tmask_bits(bits)
            warp.pc += 4
            if not warp.tmask.any():
                warp.halt()
                self.machine.on_warp_halt(self, warp, now)
        elif m == "halt":
            warp.pc += 4
            warp.halt()
            self.machine.on_warp_halt(self, warp, now)
        elif m == "bar":
            bar_id = int(warp.x[ins.rs1][warp.first_active_lane()])
            count = int(warp.x[ins.rs2][warp.first_active_lane()])
            warp.pc += 4
            waiting = self.barriers.setdefault(bar_id, [])
            waiting.append(warp.wid)
            if len(waiting) >= count:
                for wid in waiting:
                    self.warps[wid].at_barrier = False
                    self.warps[wid].ready_at = now + 1
                del self.barriers[bar_id]
            else:
                warp.at_barrier = True
                self.stats.barrier_waits += 1
        elif m == "wspawn":
            count = int(warp.x[ins.rs1][warp.first_active_lane()])
            target = int(warp.x[ins.rs2][warp.first_active_lane()])
            warp.pc += 4
            spawned = 0
            for other in self.warps:
                if other is warp or other.active or spawned >= count - 1:
                    continue
                other.pc = target
                other.tmask = np.ones(self.config.threads, dtype=bool)
                other.active = True
                other.ready_at = now + 1
                spawned += 1
        elif m == "printfx":
            self._execute_printf(warp, ins)
            warp.pc += 4
        else:  # pragma: no cover
            raise SimulationError(f"unknown SIMT op {m}")
        warp.x[0] = 0

    def _execute_split(self, warp: Warp, ins: Instruction) -> None:
        """Fused SPLIT + conditional branch (see codegen docstring)."""
        branch, _ = self.machine.fetch(warp.pc + 4)
        if branch.mnemonic not in ("beq", "bne") or branch.rs2 != 0:
            raise SimulationError(
                f"SPLIT at pc {warp.pc:#x} not followed by a beq/bne on x0"
            )
        pred = (warp.x[ins.rs1] != 0) & warp.tmask
        if branch.mnemonic == "beq":
            # Lanes with cond == 0 take the branch (the else side).
            else_mask = warp.tmask & ~pred
            then_mask = pred
        else:
            else_mask = pred
            then_mask = warp.tmask & ~pred
        branch_target = warp.pc + 4 + branch.imm
        if not else_mask.any() or not then_mask.any():
            warp.push_uniform_marker()
            warp.pc += 4  # branch executes normally next cycle
            return
        warp.push_divergence(warp.tmask, else_mask, branch_target)
        warp.tmask = then_mask
        warp.pc += 8  # branch is consumed by the split

    def _execute_printf(self, warp: Warp, ins: Instruction) -> None:
        mem = self.machine.memory
        fmt_addr = int(warp.x[ins.rs1][warp.first_active_lane()])
        fmt = mem.read_cstring(fmt_addr)
        spec_types = _printf_arg_types(fmt)
        for lane in np.nonzero(warp.tmask)[0]:
            cursor = int(warp.x[ins.rs2][lane])
            args = []
            for ty in spec_types:
                word = mem.read_word(cursor)
                cursor += 4
                if ty == "f":
                    args.append(float(np.array([word], dtype=np.int32)
                                      .view(np.float32)[0]))
                else:
                    args.append(int(word))
            try:
                text = fmt % tuple(args)
            except (TypeError, ValueError) as exc:
                raise TrapError(f"bad printf at pc {warp.pc:#x}: {exc}")
            self.machine.printf_output.append(text)


def _printf_arg_types(fmt: str) -> list[str]:
    """'f' for float conversions, 'd' for everything else."""
    out = []
    i = 0
    while i < len(fmt):
        if fmt[i] == "%":
            if i + 1 < len(fmt) and fmt[i + 1] == "%":
                i += 2
                continue
            j = i + 1
            while j < len(fmt) and fmt[j] in "0123456789.+- #":
                j += 1
            if j < len(fmt):
                out.append("f" if fmt[j] in "feEgG" else "d")
            i = j + 1
        else:
            i += 1
    return out


# ---------------------------------------------------------------------------
# Lane-vector arithmetic helpers.
# ---------------------------------------------------------------------------


def _masked_set(regfile: np.ndarray, rd: int, values: np.ndarray,
                mask: np.ndarray) -> None:
    if rd != 0:  # writes to x0 are dropped
        regfile[rd][mask] = values[mask]


def _masked_setf(regfile: np.ndarray, rd: int, values: np.ndarray,
                 mask: np.ndarray) -> None:
    regfile[rd][mask] = values[mask]


def _int_binop(m: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if m == "add":
        return a + b
    if m == "sub":
        return a - b
    if m == "sll":
        return a << (b & 31)
    if m == "slt":
        return (a < b).astype(np.int32)
    if m == "sltu":
        return (a.view(np.uint32) < b.view(np.uint32)).astype(np.int32)
    if m == "xor":
        return a ^ b
    if m == "srl":
        return (a.view(np.uint32) >> (b & 31).view(np.uint32)).view(np.int32)
    if m == "sra":
        return a >> (b & 31)
    if m == "or":
        return a | b
    if m == "and":
        return a & b
    if m == "mul":
        return (a.astype(np.int64) * b.astype(np.int64)).astype(np.int32)
    if m == "mulh":
        return ((a.astype(np.int64) * b.astype(np.int64)) >> 32).astype(
            np.int32)
    if m == "div":
        return _sdiv(a, b)
    if m == "rem":
        return _srem(a, b)
    raise SimulationError(f"bad int binop {m}")  # pragma: no cover


def _int_immop(m: str, a: np.ndarray, imm: int) -> np.ndarray:
    if m == "addi":
        return a + np.int32(imm)
    if m == "slti":
        return (a < np.int32(imm)).astype(np.int32)
    if m == "sltiu":
        return (a.view(np.uint32) < np.uint32(imm & 0xFFFFFFFF)).astype(
            np.int32)
    if m == "xori":
        return a ^ np.int32(imm)
    if m == "ori":
        return a | np.int32(imm)
    if m == "andi":
        return a & np.int32(imm)
    if m == "slli":
        return a << (imm & 31)
    if m == "srli":
        return (a.view(np.uint32) >> np.uint32(imm & 31)).view(np.int32)
    if m == "srai":
        return a >> (imm & 31)
    raise SimulationError(f"bad int immop {m}")  # pragma: no cover


def _sdiv(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    res = np.full_like(a, -1)
    ovf = (a == _INT32_MIN) & (b == -1)
    res[ovf] = _INT32_MIN
    safe = (b != 0) & ~ovf
    q = np.trunc(a[safe].astype(np.float64) / b[safe].astype(np.float64))
    res[safe] = q.astype(np.int64).astype(np.int32)
    return res


def _srem(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    res = a.copy()  # rem by zero -> dividend
    ovf = (a == _INT32_MIN) & (b == -1)
    res[ovf] = 0
    safe = (b != 0) & ~ovf
    q = np.trunc(a[safe].astype(np.float64) / b[safe].astype(np.float64))
    res[safe] = (
        a[safe].astype(np.int64) - q.astype(np.int64) * b[safe].astype(np.int64)
    ).astype(np.int32)
    return res


def _float_binop(m: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if m == "fadd.s":
        return a + b
    if m == "fsub.s":
        return a - b
    if m == "fmul.s":
        return a * b
    if m == "fdiv.s":
        return a / b
    if m == "fmin.s":
        return np.fmin(a, b)
    if m == "fmax.s":
        return np.fmax(a, b)
    if m == "fpow.s":
        return np.power(a.astype(np.float64), b.astype(np.float64)).astype(
            np.float32)
    raise SimulationError(f"bad float binop {m}")  # pragma: no cover


def _float_unop(m: str, a: np.ndarray) -> np.ndarray:
    if m == "fsqrt.s":
        return np.sqrt(a)
    if m == "fexp.s":
        return np.exp(a.astype(np.float64)).astype(np.float32)
    if m == "flog.s":
        return np.log(a.astype(np.float64)).astype(np.float32)
    if m == "fsin.s":
        return np.sin(a.astype(np.float64)).astype(np.float32)
    if m == "fcos.s":
        return np.cos(a.astype(np.float64)).astype(np.float32)
    if m == "ffloor.s":
        return np.floor(a)
    raise SimulationError(f"bad float unop {m}")  # pragma: no cover


def _float_sgnj(m: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    abits = a.view(np.int32)
    bbits = b.view(np.int32)
    if m == "fsgnj.s":
        out = (abits & 0x7FFFFFFF) | (bbits & np.int32(-(2**31)))
    elif m == "fsgnjn.s":
        out = (abits & 0x7FFFFFFF) | (~bbits & np.int32(-(2**31)))
    else:  # fsgnjx.s
        out = abits ^ (bbits & np.int32(-(2**31)))
    return out.view(np.float32)
