"""One SIMT core: warp scheduler, execution units, LSU, D-cache.

The core issues at most one warp-instruction per cycle (Vortex is a
single-issue in-order design). A warp is *ready* when it is active, not
parked at a barrier, past its structural ``ready_at`` time, and all its
source registers are available per the scoreboard. Memory instructions
additionally need a free LSU queue entry and the LSU lane-sequencer to be
free; when the selected warp is blocked on the LSU, the core records an
**LSU stall** — the counter behind the paper's Figure 7 discussion.

Execution is functional-at-issue (register values are computed
immediately, numpy-vectorised across lanes) with timing imposed through
the scoreboard (result-availability cycles) and the LSU/DRAM models.

The per-issue work here is deliberately thin: instruction semantics live
in statically-decoded handlers (:mod:`.decode`), LSU book-keeping
structures are purged lazily (``_purge_at`` tracks the earliest expiry
instead of rescanning every queue every cycle), and
:meth:`Core.next_change_time` gives the machine a conservative bound on
how long the core's issue/stall classification stays constant, enabling
bulk fast-forwarding in :mod:`.machine`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import SimulationError, TrapError
from ..isa import CSR, FP_RD, FP_RS1, FP_RS2, Fmt, Instruction, SPECS
from .cache import Cache
from .config import VortexConfig
from .warp import BLOCKED, Warp

_INT32_MIN = np.int32(-(2**31))


def _i32(value: int) -> np.int32:
    """Wrap a Python int to signed 32-bit."""
    value &= 0xFFFFFFFF
    if value >= 2**31:
        value -= 2**32
    return np.int32(value)


@dataclass
class InstrMeta:
    """Pre-decoded issue metadata for one instruction."""

    srcs_x: tuple[int, ...] = ()
    srcs_f: tuple[int, ...] = ()
    dst: tuple[str, int] | None = None
    is_mem: bool = False
    kind: str = "alu"  # alu|mul|div|fpu|fdiv|sfu|mem|csr|simt


_MUL_OPS = {"mul", "mulh"}
_DIV_OPS = {"div", "rem"}
_FPU_OPS = {
    "fadd.s", "fsub.s", "fmul.s", "fmin.s", "fmax.s", "fsgnj.s", "fsgnjn.s",
    "fsgnjx.s", "feq.s", "flt.s", "fle.s", "fcvt.w.s", "fcvt.s.w",
    "fmv.x.w", "fmv.w.x",
}
_FDIV_OPS = {"fdiv.s", "fsqrt.s"}
_SFU_OPS = {"fexp.s", "flog.s", "fsin.s", "fcos.s", "ffloor.s", "fpow.s"}
_MEM_OPS = {"lw", "sw", "flw", "fsw",
            "amoadd.w", "amoswap.w", "amomin.w", "amomax.w", "amocas.w"}
_SIMT_OPS = {"tmc", "wspawn", "split", "join", "bar", "pred", "halt",
             "printfx"}


def instr_meta(ins: Instruction) -> InstrMeta:
    m = ins.mnemonic
    spec = SPECS[m]
    srcs_x: list[int] = []
    srcs_f: list[int] = []
    if spec.fmt in (Fmt.R, Fmt.I, Fmt.S, Fmt.B, Fmt.AMO, Fmt.CSR):
        (srcs_f if m in FP_RS1 else srcs_x).append(ins.rs1)
    if spec.fmt in (Fmt.R, Fmt.S, Fmt.B, Fmt.AMO):
        (srcs_f if m in FP_RS2 else srcs_x).append(ins.rs2)
    if m == "amocas.w":
        srcs_x.append(ins.rd)  # rd carries the expected value
    dst: tuple[str, int] | None = None
    if spec.fmt in (Fmt.R, Fmt.I, Fmt.U, Fmt.J, Fmt.CSR, Fmt.AMO) and \
            m not in ("sw", "fsw") and m not in _SIMT_OPS:
        if m in FP_RD:
            dst = ("f", ins.rd)
        elif ins.rd != 0:
            dst = ("x", ins.rd)
    if m in _MUL_OPS:
        kind = "mul"
    elif m in _DIV_OPS:
        kind = "div"
    elif m in _FPU_OPS:
        kind = "fpu"
    elif m in _FDIV_OPS:
        kind = "fdiv"
    elif m in _SFU_OPS:
        kind = "sfu"
    elif m in _MEM_OPS:
        kind = "mem"
    elif m == "csrrs":
        kind = "csr"
    elif m in _SIMT_OPS:
        kind = "simt"
    else:
        kind = "alu"
    return InstrMeta(
        srcs_x=tuple(srcs_x),
        srcs_f=tuple(srcs_f),
        dst=dst,
        is_mem=kind == "mem",
        kind=kind,
    )


@dataclass
class CoreStats:
    instructions: int = 0
    cycles_active: int = 0
    idle_cycles: int = 0
    lsu_stalls: int = 0
    lsu_replays: int = 0  # loads bounced off full MSHRs (wasted slots)
    scoreboard_stalls: int = 0
    barrier_waits: int = 0
    simt_instructions: int = 0


#: ``Core.tick`` result codes.
TICK_IDLE = 0
TICK_BUSY = 1
TICK_ISSUED = 2

#: ``Core._stall`` classification of an idle tick.
STALL_NONE = 0
STALL_LSU = 1
STALL_SCOREBOARD = 2


class Core:
    def __init__(self, cid: int, config: VortexConfig, machine: "object"):
        self.cid = cid
        self.config = config
        self.machine = machine
        self.warps = [Warp(w, config.threads) for w in range(config.warps)]
        self.dcache = Cache(config.dcache_size, config.dcache_ways,
                            config.line_size)
        self.lsu_inflight: list[int] = []
        self.lsu_busy_until = 0
        #: outstanding missed lines: line address -> fill-completion cycle
        #: (DRAM fetches merge per line).
        self.mshrs: dict[int, int] = {}
        #: per-lane MSHR occupancy: (release_cycle, entries).
        self.mshr_entries: list[tuple[int, int]] = []
        #: earliest expiry across lsu_inflight/mshrs/mshr_entries; the
        #: queues are only rescanned when the clock reaches it.
        self._purge_at = BLOCKED
        #: write-combining buffer: line -> insertion order stamp.
        self.wc_buffer: dict[int, int] = {}
        self._wc_stamp = 0
        #: multi-beat issue: the issue stage is busy until this cycle.
        self.issue_busy_until = 0
        self._issue_beats = max(
            1, -(-config.threads // config.issue_lanes)
        )
        self.rr = 0
        self.stats = CoreStats()
        #: barrier slot -> list of waiting warp indices.
        self.barriers: dict[int, list[int]] = {}
        #: why the last idle tick stalled (STALL_* constant).
        self._stall = STALL_NONE
        self._nwarps = config.warps
        self._lsu_depth = config.lsu_queue_depth
        self._fetch = machine.fetch
        self._trace = machine.trace
        #: incremental MSHR occupancy (sum of mshr_entries lane counts).
        self._mshr_occupancy = 0
        #: decoded-program fast path; refreshed by Machine.load_image.
        self._decoded: list = []
        self._code_base = 0
        #: round-robin scan orders: _orders[rr] lists warps starting at
        #: rr+1, so the issue scan is a plain iteration.
        nw = config.warps
        self._orders = [
            tuple(self.warps[(r + 1 + k) % nw] for k in range(nw))
            for r in range(nw)
        ]

    # ------------------------------------------------------------------
    # Issue.
    # ------------------------------------------------------------------

    def tick(self, now: int) -> int:
        """Advance the issue stage one cycle.

        Returns ``TICK_ISSUED`` when an instruction issued,
        ``TICK_BUSY`` when a previous multi-beat issue still occupies
        the stage, ``TICK_IDLE`` otherwise (with ``_stall`` recording
        why). Exactly one of ``cycles_active``/``idle_cycles`` is booked
        per call.
        """
        if now >= self._purge_at:
            self._purge(now)
        if now < self.issue_busy_until:
            self.stats.cycles_active += 1
            return TICK_BUSY
        saw_lsu_block = False
        saw_scoreboard_block = False
        dec = self._decoded
        ndec = len(dec)
        cb = self._code_base
        for warp in self._orders[self.rr]:
            # ready_at is BLOCKED for halted/parked warps (invariant
            # kept by halt()/_exec_bar), so one compare gates the scan.
            if warp.ready_at > now:
                continue
            off = warp.pc - cb
            idx = off >> 2
            if not off & 3 and 0 <= idx < ndec:
                d = dec[idx]
            else:
                d = self._fetch(warp.pc)  # raises the canonical error
            ready = True
            xr = warp.x_ready
            for r in d.srcs_x:
                if xr[r] > now:
                    ready = False
                    break
            if ready:
                fr = warp.f_ready
                for r in d.srcs_f:
                    if fr[r] > now:
                        ready = False
                        break
            if not ready:
                saw_scoreboard_block = True
                continue
            if d.is_mem and (
                len(self.lsu_inflight) >= self._lsu_depth
                or self.lsu_busy_until > now
            ):
                saw_lsu_block = True
                continue
            if self._trace is not None:
                from ..isa import format_instruction

                self._trace.append(
                    (now, self.cid, warp.wid, warp.pc,
                     format_instruction(d.ins), warp.tmask_bits())
                )
            warp.ready_at = now + self._issue_beats
            warp._iseq += 1
            d.handler(self, warp, d, now)
            self.issue_busy_until = now + self._issue_beats
            self.rr = warp.wid
            stats = self.stats
            stats.instructions += 1
            if d.is_simt:
                stats.simt_instructions += 1
            stats.cycles_active += 1
            return TICK_ISSUED
        stats = self.stats
        stats.idle_cycles += 1
        if saw_lsu_block:
            stats.lsu_stalls += 1
            self._stall = STALL_LSU
        elif saw_scoreboard_block:
            stats.scoreboard_stalls += 1
            self._stall = STALL_SCOREBOARD
        else:
            self._stall = STALL_NONE
        return TICK_IDLE

    def _purge(self, now: int) -> None:
        """Drop expired LSU queue entries, outstanding fills and MSHR
        occupancy, and recompute the next expiry time."""
        self.lsu_inflight = [t for t in self.lsu_inflight if t > now]
        if self.mshrs:
            self.mshrs = {ln: t for ln, t in self.mshrs.items() if t > now}
        if self.mshr_entries:
            self.mshr_entries = [(t, n) for t, n in self.mshr_entries
                                 if t > now]
            self._mshr_occupancy = sum(n for _, n in self.mshr_entries)
        nxt = BLOCKED
        for t in self.lsu_inflight:
            if t < nxt:
                nxt = t
        for t in self.mshrs.values():
            if t < nxt:
                nxt = t
        for t, _ in self.mshr_entries:
            if t < nxt:
                nxt = t
        self._purge_at = nxt

    def next_event_time(self, now: int) -> int:
        """Earliest future cycle at which this core might make progress."""
        if now >= self._purge_at:
            self._purge(now)
        best = BLOCKED
        for warp in self.warps:
            if not warp.active or warp.at_barrier:
                continue
            t = warp.ready_at
            d = self._fetch(warp.pc)
            for r in d.srcs_x:
                rt = warp.x_ready[r]
                if rt > t:
                    t = rt
            for r in d.srcs_f:
                rt = warp.f_ready[r]
                if rt > t:
                    t = rt
            if d.is_mem:
                if len(self.lsu_inflight) >= self._lsu_depth:
                    mt = min(self.lsu_inflight)
                    if mt > t:
                        t = mt
                if self.lsu_busy_until > t:
                    t = self.lsu_busy_until
            if t < best:
                best = t
        return best

    def next_change_time(self, now: int) -> int:
        """Earliest future cycle at which this core's tick outcome
        (issue vs. idle, and the idle stall classification) could differ
        from the one just computed at ``now``.

        Conservative by construction: the minimum over *every* pending
        threshold — each stalled warp's ``ready_at``, every
        not-yet-available source register, the LSU queue's earliest
        completion when full and the lane-sequencer's busy horizon. As
        long as the machine clock stays below this bound, re-running
        :meth:`tick` would book exactly the same counters, which is what
        licenses the machine's bulk fast-forward to book them in one
        multiplication instead.
        """
        if now >= self._purge_at:
            self._purge(now)
        best = BLOCKED
        for warp in self.warps:
            if not warp.active or warp.at_barrier:
                continue
            rt = warp.ready_at
            if rt > now:
                if rt < best:
                    best = rt
                continue
            d = self._fetch(warp.pc)
            for r in d.srcs_x:
                t = warp.x_ready[r]
                if now < t < best:
                    best = t
            for r in d.srcs_f:
                t = warp.f_ready[r]
                if now < t < best:
                    best = t
            if d.is_mem:
                if len(self.lsu_inflight) >= self._lsu_depth:
                    t = min(self.lsu_inflight)
                    if now < t < best:
                        best = t
                t = self.lsu_busy_until
                if now < t < best:
                    best = t
        return best

    # ------------------------------------------------------------------
    # Shared execution helpers (called from the decoded handlers).
    # ------------------------------------------------------------------

    def _uniform_value(self, warp: Warp, values: np.ndarray) -> int:
        active = values[warp.tmask]
        if len(active) and not (active == active[0]).all():
            raise SimulationError(
                f"warp {warp.wid}: non-uniform value where uniform required "
                f"at pc {warp.pc:#x}"
            )
        return int(active[0])

    def _read_csr(self, warp: Warp, csr: int) -> np.ndarray:
        if csr == CSR.TMASK:
            # The only CSR whose value changes while a group runs.
            return np.full(self.config.threads, warp.tmask_bits(),
                           dtype=np.int32)
        cached = warp.csr_cache.get(csr)
        if cached is None:
            cached = self._csr_value(warp, csr)
            warp.csr_cache[csr] = cached
        return cached

    def _csr_value(self, warp: Warp, csr: int) -> np.ndarray:
        T = self.config.threads
        if csr == CSR.THREAD_ID:
            return np.arange(T, dtype=np.int32)
        if csr == CSR.WARP_ID:
            return np.full(T, warp.wid, dtype=np.int32)
        if csr == CSR.CORE_ID:
            return np.full(T, self.cid, dtype=np.int32)
        if csr == CSR.NUM_THREADS:
            return np.full(T, T, dtype=np.int32)
        if csr == CSR.NUM_WARPS:
            return np.full(T, self.config.warps, dtype=np.int32)
        if csr == CSR.NUM_CORES:
            return np.full(T, self.config.cores, dtype=np.int32)
        if csr in warp.csrs:
            return np.full(T, warp.csrs[csr], dtype=np.int32)
        raise TrapError(f"read of unknown CSR {csr:#x}")

    # -- memory --------------------------------------------------------------

    def _exec_load(self, warp: Warp, d, now: int) -> None:
        cfg = self.config
        mask = warp.tmask
        # Replay memo: a load bounced off full MSHRs re-issues with the
        # warp untouched (no writeback happened, no other instruction of
        # this warp ran in between — _iseq proves it), so the address
        # vector and line grouping are reusable verbatim.
        full = warp._full
        memo = warp._lsu_replay
        if memo is not None and memo[0] == warp._iseq - 1 \
                and memo[1] == warp.pc:
            _, _, active_addrs, lanes, items = memo
        else:
            row = warp.x[d.rs1]
            # int32 row + int64 scalar upcasts in a single ufunc call.
            active_addrs = (row if full else row[mask]) + d.imm64
            lanes = len(active_addrs)
            items = None
        completion, items = self._lsu_load_timing(active_addrs, lanes,
                                                  now, items)
        if completion is None:
            # All MSHRs busy: the load is replayed later; this issue
            # slot is wasted (an LSU stall in the paper's terms).
            warp._lsu_replay = (warp._iseq, warp.pc, active_addrs,
                                lanes, items)
            warp.ready_at = now + cfg.replay_penalty
            self.stats.lsu_replays += 1
            return
        warp._lsu_replay = None
        mem = self.machine.memory
        if d.aux:  # flw
            vals = mem.gather_f32(active_addrs)
            if full:
                warp.f[d.rd] = vals
            else:
                warp.f[d.rd][mask] = vals
            warp.f_ready[d.rd] = completion
        else:
            vals = mem.gather_i32(active_addrs)
            if d.wb_x >= 0:
                if full:
                    warp.x[d.rd] = vals
                else:
                    warp.x[d.rd][mask] = vals
                warp.x_ready[d.rd] = completion
        warp.pc += 4
        self._lsu_book(lanes, completion, now)

    def _exec_store(self, warp: Warp, d, now: int) -> None:
        full = warp._full
        mask = warp.tmask
        row = warp.x[d.rs1]
        active_addrs = (row if full else row[mask]) + d.imm64
        lanes = len(active_addrs)
        mem = self.machine.memory
        if d.aux:  # fsw
            src = warp.f[d.rs2]
            mem.scatter_f32(active_addrs, src if full else src[mask])
        else:
            src = warp.x[d.rs2]
            mem.scatter_i32(active_addrs, src if full else src[mask])
        completion = self._lsu_store_timing(active_addrs, lanes, now)
        warp.pc += 4
        self._lsu_book(lanes, completion, now)

    def _exec_amo(self, warp: Warp, d, now: int) -> None:
        # AMOs bypass the cache and serialise per lane through DRAM.
        cfg = self.config
        m = d.mnemonic
        mem = self.machine.memory
        mask = warp.tmask
        base = warp.x[d.rs1].astype(np.int64)
        addrs = base[mask]
        lanes = len(addrs)
        if (addrs & 3).any():
            raise TrapError(f"unaligned atomic at pc {warp.pc:#x}")
        completion = now + cfg.dcache_hit_latency
        results = np.zeros(lanes, dtype=np.int32)
        src = warp.x[d.rs2][mask]
        expected = warp.x[d.rd][mask] if m == "amocas.w" else None
        for i in range(lanes):
            addr = int(addrs[i])
            line = addr & ~(cfg.line_size - 1)
            completion = self.machine.dram.access(line, completion)
            old = mem.read_word(addr)
            results[i] = old
            val = int(src[i])
            if m == "amoadd.w":
                new = int(np.int32(np.int64(old) + val))
            elif m == "amomin.w":
                new = min(old, val)
            elif m == "amomax.w":
                new = max(old, val)
            elif m == "amoswap.w":
                new = val
            else:  # amocas.w
                new = val if old == int(expected[i]) else old
            mem.write_word(addr, new)
        if d.rd != 0:
            warp.x[d.rd][mask] = results
            warp.x_ready[d.rd] = completion
        warp.pc += 4
        self._lsu_book(lanes, completion, now)

    def _lsu_book(self, lanes: int, completion: int, now: int) -> None:
        """Common LSU tail: occupy a queue entry until ``completion`` and
        hold the lane-sequencer for the unpack beats."""
        self.lsu_inflight.append(completion)
        if completion < self._purge_at:
            self._purge_at = completion
        unpack = max(1, -(-lanes // self.config.lsu_lanes_per_cycle))
        self.lsu_busy_until = max(self.lsu_busy_until, now) + unpack

    def _lsu_load_timing(self, addrs: np.ndarray, lanes: int, now: int,
                         items: list[tuple[int, int]] | None = None,
                         ) -> tuple[int | None, list[tuple[int, int]]]:
        """Cache/MSHR/DRAM timing for one warp load.

        Returns ``(completion, items)`` where ``completion`` is the
        data-ready cycle, or ``None`` when a new line miss found every
        MSHR occupied (the load must be replayed). ``items`` is the
        sorted per-line lane grouping — callers may pass it back in on
        a replay to skip recomputing it.
        """
        cfg = self.config
        if lanes == 0:
            return now + cfg.dcache_hit_latency, []
        if items is None:
            counts: dict[int, int] = {}
            ls = cfg.line_size
            get = counts.get
            for a in addrs.tolist():
                ln = a // ls
                counts[ln] = get(ln, 0) + 1
            # Sorted line order: DRAM bank state and the deterministic
            # row evictions depend on request order, so it must stay
            # canonical.
            items = sorted(counts.items())
        completion = now + cfg.dcache_hit_latency
        new_misses: list[tuple[int, int]] = []  # (line, lanes)
        waiting_lanes = 0
        mshrs = self.mshrs
        for ln, nlanes in items:
            line = ln * cfg.line_size
            pending = mshrs.get(line)
            if pending is not None:
                # Fill already in flight: lanes merge onto it but still
                # occupy their own MSHR entries until it returns.
                if pending > completion:
                    completion = pending
                waiting_lanes += nlanes
            elif self.dcache.lookup(line):
                continue
            else:
                new_misses.append((line, nlanes))
                waiting_lanes += nlanes
        if waiting_lanes:
            occupancy = self._mshr_occupancy
            free = cfg.mshrs - occupancy
            # Oversized gathers (more lanes than MSHRs exist) are allowed
            # through once the MSHRs have fully drained, guaranteeing
            # forward progress.
            if waiting_lanes > free and not (
                waiting_lanes > cfg.mshrs and occupancy == 0
            ):
                return None, items
            dram_access = self.machine.dram.access
            for line, _ in new_misses:
                t = dram_access(line, now + cfg.dcache_hit_latency)
                mshrs[line] = t
                if t < self._purge_at:
                    self._purge_at = t
                self.dcache.fill(line)
                if t > completion:
                    completion = t
            # Lanes of each line release when their fill returns.
            for ln, nlanes in items:
                t = mshrs.get(ln * cfg.line_size)
                if t is not None:
                    self.mshr_entries.append((t, nlanes))
                    self._mshr_occupancy += nlanes
                    if t < self._purge_at:
                        self._purge_at = t
        unpack = max(1, -(-lanes // cfg.lsu_lanes_per_cycle))
        return completion + unpack, items

    def _lsu_store_timing(self, addrs: np.ndarray, lanes: int,
                          now: int) -> int:
        """Write-through, no-allocate stores: pay DRAM bandwidth, hold an
        LSU entry, but never block on MSHRs and never wait the warp.
        Stores to a line still in the write-combining buffer merge (a
        partial-line store would otherwise hit DRAM once per wave)."""
        cfg = self.config
        if len(addrs) == 0:
            return now + cfg.dcache_hit_latency
        seen: dict[int, None] = {}
        ls = cfg.line_size
        for a in addrs.tolist():
            seen[a // ls] = None
        completion = now + cfg.dcache_hit_latency
        wc = self.wc_buffer
        for ln in sorted(seen):
            line = ln * cfg.line_size
            if line in wc:
                self._wc_stamp += 1
                wc[line] = self._wc_stamp  # refresh LRU
                continue
            t = self.machine.dram.access(line, now + cfg.dcache_hit_latency)
            if t > completion:
                completion = t
            self._wc_stamp += 1
            wc[line] = self._wc_stamp
            if len(wc) > cfg.wc_entries:
                victim = min(wc, key=wc.get)
                del wc[victim]
        unpack = max(1, -(-lanes // cfg.lsu_lanes_per_cycle))
        return completion + unpack

    # -- SIMT control -------------------------------------------------------

    def _exec_split(self, warp: Warp, d, now: int) -> None:
        """Fused SPLIT + conditional branch (see codegen docstring).

        The following branch is static, so its direction sense and
        target were resolved at decode time (``d.aux``); the dynamic
        fallback only runs for malformed pairs, preserving the original
        diagnostics.
        """
        info = d.aux
        if info is None:
            branch = self.machine.fetch(warp.pc + 4)
            if branch.mnemonic not in ("beq", "bne") or branch.rs2 != 0:
                raise SimulationError(
                    f"SPLIT at pc {warp.pc:#x} not followed by a beq/bne "
                    f"on x0"
                )
            info = (branch.mnemonic == "beq", warp.pc + 4 + branch.imm)
        then_on_true, branch_target = info
        pred = (warp.x[d.rs1] != 0) & warp.tmask
        if then_on_true:
            # Lanes with cond == 0 take the branch (the else side).
            else_mask = warp.tmask & ~pred
            then_mask = pred
        else:
            else_mask = pred
            then_mask = warp.tmask & ~pred
        if not else_mask.any() or not then_mask.any():
            warp.push_uniform_marker()
            warp.pc += 4  # branch executes normally next cycle
            return
        warp.push_divergence(warp.tmask, else_mask, branch_target)
        warp.tmask = then_mask
        warp._full = False  # both sides non-empty, so strictly partial
        warp.pc += 8  # branch is consumed by the split

    def _exec_bar(self, warp: Warp, d, now: int) -> None:
        bar_id = int(warp.x[d.rs1][warp.first_active_lane()])
        count = int(warp.x[d.rs2][warp.first_active_lane()])
        warp.pc += 4
        waiting = self.barriers.setdefault(bar_id, [])
        waiting.append(warp.wid)
        if len(waiting) >= count:
            for wid in waiting:
                self.warps[wid].at_barrier = False
                self.warps[wid].ready_at = now + 1
            del self.barriers[bar_id]
        else:
            warp.at_barrier = True
            warp.ready_at = BLOCKED
            self.stats.barrier_waits += 1

    def _exec_wspawn(self, warp: Warp, d, now: int) -> None:
        count = int(warp.x[d.rs1][warp.first_active_lane()])
        target = int(warp.x[d.rs2][warp.first_active_lane()])
        warp.pc += 4
        spawned = 0
        for other in self.warps:
            if other is warp or other.active or spawned >= count - 1:
                continue
            other.pc = target
            other.tmask = np.ones(self.config.threads, dtype=bool)
            other._full = True
            other.active = True
            other.ready_at = now + 1
            spawned += 1
            self.machine.on_warp_spawn(self, other, now)

    def _execute_printf(self, warp: Warp, d) -> None:
        mem = self.machine.memory
        fmt_addr = int(warp.x[d.rs1][warp.first_active_lane()])
        fmt = mem.read_cstring(fmt_addr)
        spec_types = _printf_arg_types(fmt)
        for lane in np.nonzero(warp.tmask)[0]:
            cursor = int(warp.x[d.rs2][lane])
            args = []
            for ty in spec_types:
                word = mem.read_word(cursor)
                cursor += 4
                if ty == "f":
                    args.append(float(np.array([word], dtype=np.int32)
                                      .view(np.float32)[0]))
                else:
                    args.append(int(word))
            try:
                text = fmt % tuple(args)
            except (TypeError, ValueError) as exc:
                raise TrapError(f"bad printf at pc {warp.pc:#x}: {exc}")
            self.machine.printf_output.append(text)


def _printf_arg_types(fmt: str) -> list[str]:
    """'f' for float conversions, 'd' for everything else."""
    out = []
    i = 0
    while i < len(fmt):
        if fmt[i] == "%":
            if i + 1 < len(fmt) and fmt[i + 1] == "%":
                i += 2
                continue
            j = i + 1
            while j < len(fmt) and fmt[j] in "0123456789.+- #":
                j += 1
            if j < len(fmt):
                out.append("f" if fmt[j] in "feEgG" else "d")
            i = j + 1
        else:
            i += 1
    return out


# ---------------------------------------------------------------------------
# RISC-V M-extension division semantics (shared with the decoded handler
# tables; the corner cases are pinned by tests).
# ---------------------------------------------------------------------------


def _sdiv(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    res = np.full_like(a, -1)
    ovf = (a == _INT32_MIN) & (b == -1)
    res[ovf] = _INT32_MIN
    safe = (b != 0) & ~ovf
    q = np.trunc(a[safe].astype(np.float64) / b[safe].astype(np.float64))
    res[safe] = q.astype(np.int64).astype(np.int32)
    return res


def _srem(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    res = a.copy()  # rem by zero -> dividend
    ovf = (a == _INT32_MIN) & (b == -1)
    res[ovf] = 0
    safe = (b != 0) & ~ovf
    q = np.trunc(a[safe].astype(np.float64) / b[safe].astype(np.float64))
    res[safe] = (
        a[safe].astype(np.int64) - q.astype(np.int64) * b[safe].astype(np.int64)
    ).astype(np.int32)
    return res
