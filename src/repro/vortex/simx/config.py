"""Configuration of the simulated Vortex device.

``VortexConfig`` is the (C, W, T) tuple of the paper's Tables IV and
Figure 7 plus the microarchitectural knobs of the memory system. The
defaults model the SX2800 platform (DDR4) the paper synthesized Vortex
on; ``hbm()`` gives an MX2100-like profile for the memory-system
ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ...errors import SimulationError


@dataclass(frozen=True)
class DRAMConfig:
    """Open-row DRAM timing model (cycles at the core clock)."""

    kind: str = "ddr4"
    #: pipeline latency from LSU to DRAM and back (fixed part).
    latency: int = 60
    #: independent banks (line address interleaved).
    banks: int = 4
    #: service cycles per 64B line when the bank row is open.
    row_hit_cycles: int = 4
    #: service cycles per line on a row conflict (precharge+activate).
    row_miss_cycles: int = 36
    #: lines per DRAM row (row size / line size).
    lines_per_row: int = 16
    #: open rows tracked per bank (controller reorder window).
    open_rows: int = 4


DDR4_DRAM = DRAMConfig()
HBM2_DRAM = DRAMConfig(
    kind="hbm2", latency=72, banks=16, row_hit_cycles=2,
    row_miss_cycles=20, lines_per_row=16, open_rows=4,
)


@dataclass(frozen=True)
class VortexConfig:
    """One Vortex hardware configuration."""

    cores: int = 4
    warps: int = 8  # warps per core (W)
    threads: int = 8  # threads per warp (T)

    #: execute-stage lane width: a warp instruction with more active
    #: threads than lanes issues in multiple beats, occupying the issue
    #: slot for ceil(T / issue_lanes) cycles (the register file and
    #: datapath are banked 4 lanes wide on the FPGA; threads beyond the
    #: lane width buy latency hiding, not raw issue throughput).
    issue_lanes: int = 4

    # Pipeline latencies (result availability, cycles).
    alu_latency: int = 1
    mul_latency: int = 3
    div_latency: int = 16
    fpu_latency: int = 4
    fdiv_latency: int = 16
    sfu_latency: int = 24  # exp/log/sin/cos/pow
    csr_latency: int = 1

    # LSU.
    lsu_queue_depth: int = 8  # in-flight memory instructions per core
    lsu_lanes_per_cycle: int = 4  # lane requests unpacked per cycle
    dcache_hit_latency: int = 4
    #: miss-status holding registers per core. Entries are *per lane
    #: request* (merging lanes onto one line entry needs expensive CAM
    #: hardware a small FPGA cache does not have), so a T-wide load that
    #: misses occupies T entries until the fill returns: wide-thread
    #: configurations exhaust the MSHRs quickly, throttling concurrent
    #: line fetches and bouncing further loads — the LSU stalls the paper
    #: reports growing "with a higher number of threads and warps per
    #: core" (§III-C).
    mshrs: int = 20
    #: cycles before a replayed memory instruction may retry.
    replay_penalty: int = 2
    #: write-combining buffer entries (lines) per core: write-through
    #: stores to a recently-written line merge instead of paying DRAM
    #: bandwidth again (partial-line stores would otherwise multiply
    #: store traffic at small thread counts).
    wc_entries: int = 16

    # D-cache (per core).
    dcache_size: int = 16 * 1024
    dcache_ways: int = 4
    line_size: int = 64

    #: work-group partitioning: True = vx_spawn-style static chunks (each
    #: warp slot owns a contiguous group range), False = interleaved
    #: round-robin hand-out. Ablation knob for §IV-A challenge 4 (work
    #: distribution strategies).
    chunked_dispatch: bool = True

    dram: DRAMConfig = field(default_factory=lambda: DDR4_DRAM)

    #: core clock used when converting cycles to time.
    clock_mhz: float = 200.0

    def __post_init__(self) -> None:
        if self.threads < 1 or self.threads > 32:
            raise SimulationError("threads per warp must be 1..32")
        if self.warps < 1 or self.cores < 1:
            raise SimulationError("warps and cores must be positive")
        if self.line_size % 4 or self.dcache_size % (
            self.line_size * self.dcache_ways
        ):
            raise SimulationError("bad cache geometry")

    @property
    def total_threads(self) -> int:
        return self.cores * self.warps * self.threads

    def with_geometry(self, cores=None, warps=None, threads=None) -> "VortexConfig":
        return replace(
            self,
            cores=self.cores if cores is None else cores,
            warps=self.warps if warps is None else warps,
            threads=self.threads if threads is None else threads,
        )

    def hbm(self) -> "VortexConfig":
        return replace(self, dram=HBM2_DRAM)

    def label(self) -> str:
        return f"{self.cores}c{self.warps}w{self.threads}t"
