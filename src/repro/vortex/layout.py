"""Device memory map of the simulated Vortex platform.

The runtime and the code generator agree on these addresses; they model
the Vortex kernel ABI (argument block + NDRange descriptor in device
memory, per-thread stacks, per-group local-memory windows).
"""

from __future__ import annotations

#: Kernel argument block: one 32-bit word per kernel parameter
#: (scalars by value, buffers by device address).
ARG_BASE = 0x0000_4000

#: NDRange descriptor: gsize[3], lsize[3], num_groups[3] (9 words).
NDR_BASE = 0x0000_4800
NDR_GSIZE_OFF = 0
NDR_LSIZE_OFF = 12
NDR_NGROUPS_OFF = 24

#: printf format strings (NUL-terminated, 4-byte aligned).
FMT_BASE = 0x0000_8000
FMT_LIMIT = 0x0001_0000

#: Kernel code.
CODE_BASE = 0x0001_0000

#: Device buffer heap (cl buffers are allocated here).
HEAP_BASE = 0x0010_0000
HEAP_LIMIT = 0x0200_0000

#: Local-memory windows: one per (core, group slot).
LOCAL_BASE = 0x0200_0000
LOCAL_WINDOW_SIZE = 0x0001_0000  # 64 KiB per concurrent group
LOCAL_LIMIT = 0x0280_0000

#: Per-thread stacks (private arrays, spills, printf staging).
STACK_BASE = 0x0280_0000
STACK_SIZE_PER_THREAD = 0x1000  # 4 KiB
STACK_LIMIT = 0x0300_0000

#: Total simulated DRAM.
MEM_SIZE = 0x0400_0000  # 64 MiB


def stack_top(global_thread_index: int) -> int:
    """Base (lowest address) of one thread's frame; frames grow upward."""
    addr = STACK_BASE + global_thread_index * STACK_SIZE_PER_THREAD
    if addr + STACK_SIZE_PER_THREAD > STACK_LIMIT:
        raise ValueError("too many threads for the stack region")
    return addr


def local_window(core: int, slot: int, slots_per_core: int) -> int:
    """Base address of the local-memory window of (core, group slot)."""
    index = core * slots_per_core + slot
    addr = LOCAL_BASE + index * LOCAL_WINDOW_SIZE
    if addr + LOCAL_WINDOW_SIZE > LOCAL_LIMIT:
        raise ValueError("too many concurrent groups for the local region")
    return addr
