"""Kernel IR → Vortex machine code.

This is the analog of the paper's extended PoCL + LLVM pipeline (Fig. 5):
divergence analysis decides which branches become SPLIT/JOIN regions and
which loops become PRED loops, work-item queries lower to the CSR-based
scheduling the dispatcher provides, and a register allocator maps SSA
values onto the x/f register files with stack spilling.

Divergence lowering (§II-D of the paper):

* divergent if/else: ``split p`` + conditional branch; one ``join`` is
  placed at the head of the branch's immediate postdominator. SPLIT is
  *fused* with the branch that follows it (the branch unit and the IPDOM
  stack cooperate, as in the Vortex RTL): it resolves the taken/not-taken
  lane masks and their PCs at once, pushes {orig_mask} and {else_mask,
  else_pc}, and steers the warp to the taken side. The first JOIN pops
  the else side and redirects the warp there; the second restores the
  original mask and falls through (see simx.warp for the stack machine).
* divergent loop exits: the header's exit branch becomes
  ``pred cond, saved_mask`` — lanes that want to continue stay on; when
  none remain the saved mask (captured by ``csrr`` at loop entry into one
  of the reserved mask registers x28-x31) is restored and the next
  instruction (the jump to the loop exit) executes.

Kernels are specialized per launch geometry (work-group sizes become
compile-time constants), as PoCL does; the runtime caches the compiled
image per (kernel, NDRange shape).

Unsupported shapes raise :class:`CompilationError`: divergent breaks out
of loops, barriers under divergent control (sync divergence), and loops
mixing a divergent exit with other exits. The benchmark suite is written
within these constraints, mirroring how real SIMT compilers restructure
such code.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..errors import CompilationError
from ..ocl.ir import (
    ATOMIC_OPS,
    Block,
    Const,
    Instr,
    Kernel,
    LocalArray,
    Opcode,
    Param,
    Value,
    clone_kernel,
    predecessors,
)
from ..ocl.ndrange import NDRange
from ..ocl.types import BOOL, FLOAT32, AddressSpace
from ..ocl.validate import validate
from ..passes import cse as cse_pass
from ..passes import divergence as div_pass
from ..passes import loops as loop_pass
from ..passes.cfg import postdominators
from . import layout
from .asm import Assembler, Program, disassemble
from .isa import (
    AT,
    AT2,
    AT3,
    CSR,
    FAT,
    FAT2,
    LOOP_MASK_REGS,
    SP,
    WAVE_REG,
    ZERO,
    Instruction,
)
from .regalloc import Allocation, allocate


def _float_bits(value: float) -> int:
    return struct.unpack("<i", struct.pack("<f", float(value)))[0]


@dataclass
class FrameLayout:
    """Per-thread stack frame: private arrays, spills, printf staging."""

    private_offsets: dict[int, int] = field(default_factory=dict)
    spill_base: int = 0
    printf_base: int = 0
    size: int = 0


@dataclass
class VortexKernelImage:
    """A compiled kernel, ready for the runtime to load and dispatch."""

    kernel_name: str
    program: Program
    #: format string -> absolute device address.
    fmt_table: dict[str, int]
    frame: FrameLayout
    #: local array id -> offset within the group's local window.
    local_offsets: dict[int, int]
    local_window_bytes: int
    ndrange: NDRange
    #: static instruction count (reported in stats).
    num_instructions: int = 0
    #: True when the kernel carries its own work-item loop (one warp per
    #: work-group, lanes sweeping the group in waves of T) — the
    #: PoCL-style scheduling for barrier-free kernels. False for barrier
    #: kernels, which need one hardware lane per work item and warp-set
    #: dispatch.
    wave_mode: bool = False
    threads: int = 0

    def disassembly(self) -> str:
        return disassemble(self.program)


class CodeGen:
    def __init__(self, kernel: Kernel, ndrange: NDRange,
                 threads: int = 0, optimize: bool = True):
        validate(kernel)
        kernel = clone_kernel(kernel)
        if optimize:
            cse_pass.run(kernel, merge_loads=False)
        self.kernel = kernel
        self.ndrange = ndrange
        #: Work-item-loop scheduling: barrier-free kernels are wrapped in
        #: a wave loop so one warp sweeps a whole work-group (PoCL's
        #: work-item loops, "work scheduling that reflects Vortex
        #: hardware", §II-D). Barrier kernels need one resident lane per
        #: item and keep warp-set dispatch.
        self.threads = threads
        self.wave_mode = bool(threads) and not kernel.uses_barrier()
        self._pin_entry = self.wave_mode
        self.div = div_pass.analyze(kernel)
        self.loops = loop_pass.analyze(kernel)
        self.pdoms = postdominators(kernel)
        self.alloc: Allocation = allocate(
            kernel, pin_entry_values=self._pin_entry
        )
        self.asm = Assembler()
        self.fmt_table: dict[str, int] = {}
        self._fmt_cursor = layout.FMT_BASE
        self.frame = FrameLayout()
        self.local_offsets: dict[int, int] = {}
        self.local_window_bytes = 0
        #: block id -> number of JOINs at its head.
        self.join_counts: dict[int, int] = {}
        #: loop header block id -> mask register for its PRED lowering.
        self.pred_loops: dict[int, int] = {}
        #: block id -> mask registers to save before its terminator.
        self.mask_saves: dict[int, list[int]] = {}
        self._analyze_control()
        self._layout_frame()

    # ------------------------------------------------------------------
    # Control-structure analysis and legality checks.
    # ------------------------------------------------------------------

    def _analyze_control(self) -> None:
        kernel = self.kernel
        # Classify loops: PRED-mode loops have a divergent header exit.
        pred_loop_headers: set[int] = set()
        for loop in self.loops.loops:
            exits = self.loops.exit_branches(loop)
            div_exits = [
                e for e in exits
                if e.op is Opcode.CBR and self.div.branch_is_divergent(e)
            ]
            if not div_exits:
                continue
            header_term = loop.header.terminator
            if div_exits != [header_term] or len(exits) != 1:
                raise CompilationError(
                    f"kernel {kernel.name}: loop at {loop.header.name} has "
                    "divergent breaks; restructure with flag variables "
                    "(divergent exits are only supported as the loop "
                    "header condition)"
                )
            pred_loop_headers.add(id(loop.header))

        # Nesting depth among PRED loops selects the mask register.
        for loop in self.loops.loops:
            if id(loop.header) not in pred_loop_headers:
                continue
            depth = 0
            p = loop.parent
            while p is not None:
                if id(p.header) in pred_loop_headers:
                    depth += 1
                p = p.parent
            if depth >= len(LOOP_MASK_REGS):
                raise CompilationError(
                    f"kernel {kernel.name}: divergent loops nested deeper "
                    f"than {len(LOOP_MASK_REGS)} levels"
                )
            mask_reg = LOOP_MASK_REGS[depth]
            self.pred_loops[id(loop.header)] = mask_reg
            # Save the current thread mask in every out-of-loop
            # predecessor of the header (the loop pre-header).
            preds = predecessors(kernel)
            for pred in preds[loop.header]:
                if id(pred) not in loop.blocks:
                    self.mask_saves.setdefault(id(pred), []).append(mask_reg)

        # Divergent non-loop branches: place JOIN at the ipdom.
        for block in kernel.blocks:
            term = block.terminator
            if term is None or term.op is not Opcode.CBR:
                continue
            if not self.div.branch_is_divergent(term):
                continue
            if id(block) in self.pred_loops:
                continue  # handled by PRED
            join_block = self.pdoms.immediate(block)
            if join_block is None:
                raise CompilationError(
                    f"kernel {kernel.name}: divergent branch in "
                    f"{block.name} has no reconvergence point"
                )
            inner_branch = self.loops.innermost(block)
            inner_join = self.loops.innermost(join_block)
            if inner_branch is not inner_join:
                raise CompilationError(
                    f"kernel {kernel.name}: divergent branch in "
                    f"{block.name} reconverges outside its loop "
                    "(divergent break?); restructure with flag variables"
                )
            self.join_counts[id(join_block)] = (
                self.join_counts.get(id(join_block), 0) + 1
            )

        # Barriers must execute under uniform control.
        for block in kernel.blocks:
            for ins in block.instrs:
                if ins.op is not Opcode.BARRIER:
                    continue
                if id(block) in self.div.divergent_interior_blocks:
                    raise CompilationError(
                        f"kernel {kernel.name}: barrier under divergent "
                        "control flow"
                    )
                loop = self.loops.innermost(block)
                while loop is not None:
                    if id(loop.header) in self.pred_loops:
                        raise CompilationError(
                            f"kernel {kernel.name}: barrier inside a "
                            "divergent loop"
                        )
                    loop = loop.parent

    def _layout_frame(self) -> None:
        offset = 0
        for arr in self.kernel.arrays:
            nbytes = arr.size * arr.ty.element.size_bytes
            if arr.space is AddressSpace.PRIVATE:
                self.frame.private_offsets[id(arr)] = offset
                offset += (nbytes + 3) & ~3
            else:
                self.local_offsets[id(arr)] = self.local_window_bytes
                self.local_window_bytes += (nbytes + 3) & ~3
        self.frame.spill_base = offset
        offset += self.alloc.spill_bytes
        self.frame.printf_base = offset
        max_printf = 0
        for ins in self.kernel.instructions():
            if ins.op is Opcode.PRINTF:
                max_printf = max(max_printf, 4 * len(ins.args))
        offset += max_printf
        self.frame.size = offset
        if self.frame.size > layout.STACK_SIZE_PER_THREAD:
            raise CompilationError(
                f"kernel {self.kernel.name}: frame of {self.frame.size} bytes "
                f"exceeds the per-thread stack "
                f"({layout.STACK_SIZE_PER_THREAD} bytes)"
            )
        if self.local_window_bytes > layout.LOCAL_WINDOW_SIZE:
            raise CompilationError(
                f"kernel {self.kernel.name}: local arrays need "
                f"{self.local_window_bytes} bytes; the local window is "
                f"{layout.LOCAL_WINDOW_SIZE}"
            )

    # ------------------------------------------------------------------
    # Value access helpers.
    # ------------------------------------------------------------------

    def _spill_off(self, v: Value) -> int:
        return self.frame.spill_base + self.alloc.spill_slots[id(v)]

    def xsrc(self, v: Value, scratch: int = AT) -> int:
        """Materialise an int/bool/pointer value; returns its register."""
        if isinstance(v, Const):
            val = int(v.value) if v.ty is not BOOL else int(bool(v.value))
            self.asm.li(scratch, val)
            return scratch
        if self.alloc.is_spilled(v):
            self.asm.emit("lw", rd=scratch, rs1=SP, imm=self._spill_off(v))
            return scratch
        return self.alloc.reg_of(v)

    def fsrc(self, v: Value, scratch: int = FAT) -> int:
        """Materialise a float value; returns its f-register."""
        if isinstance(v, Const):
            self.asm.li(AT, _float_bits(v.value))
            self.asm.emit("fmv.w.x", rd=scratch, rs1=AT)
            return scratch
        if self.alloc.is_spilled(v):
            self.asm.emit("flw", rd=scratch, rs1=SP, imm=self._spill_off(v))
            return scratch
        return self.alloc.reg_of(v)

    def _to_xreg(self, v: Value, reg: int) -> None:
        """Force an int-class value into a specific register."""
        if isinstance(v, Const):
            val = int(v.value) if v.ty is not BOOL else int(bool(v.value))
            self.asm.li(reg, val)
        elif self.alloc.is_spilled(v):
            self.asm.emit("lw", rd=reg, rs1=SP, imm=self._spill_off(v))
        else:
            self.asm.mv(reg, self.alloc.reg_of(v))

    def xdst(self, ins: Instr) -> tuple[int, bool]:
        """(register to compute into, needs_spill_store)."""
        if self.alloc.is_spilled(ins):
            return AT, True
        return self.alloc.reg_of(ins), False

    def fdst(self, ins: Instr) -> tuple[int, bool]:
        if self.alloc.is_spilled(ins):
            return FAT, True
        return self.alloc.reg_of(ins), False

    def finish_x(self, ins: Instr, reg: int, spill: bool) -> None:
        if spill:
            self.asm.emit("sw", rs1=SP, rs2=reg, imm=self._spill_off(ins))

    def finish_f(self, ins: Instr, reg: int, spill: bool) -> None:
        if spill:
            self.asm.emit("fsw", rs1=SP, rs2=reg, imm=self._spill_off(ins))

    # ------------------------------------------------------------------
    # Top-level emission.
    # ------------------------------------------------------------------

    @property
    def _num_waves(self) -> int:
        if not self.wave_mode:
            return 1
        return -(-self.ndrange.items_per_group // self.threads)

    def run(self) -> VortexKernelImage:
        kernel = self.kernel
        asm = self.asm
        asm.label(kernel.name)
        self._emit_prologue()
        if self.wave_mode:
            asm.li(WAVE_REG, 0)
            if self._num_waves > 1:
                asm.label(self._wave_loop_label())
                self._emit_wave_mask()
        next_of: dict[int, Block | None] = {}
        for i, block in enumerate(kernel.blocks):
            next_of[id(block)] = (
                kernel.blocks[i + 1] if i + 1 < len(kernel.blocks) else None
            )
        for block in kernel.blocks:
            self._emit_block(block, next_of[id(block)])
        program = self.asm.assemble(layout.CODE_BASE)
        return VortexKernelImage(
            kernel_name=kernel.name,
            program=program,
            fmt_table=dict(self.fmt_table),
            frame=self.frame,
            local_offsets=dict(self.local_offsets),
            local_window_bytes=self.local_window_bytes,
            ndrange=self.ndrange,
            num_instructions=len(program.instructions),
            wave_mode=self.wave_mode,
            threads=self.threads,
        )

    def _wave_loop_label(self) -> str:
        return f".{self.kernel.name}.waveloop"

    def _emit_wave_mask(self) -> None:
        """At each wave head, activate min(T, items_left) lanes."""
        ipg = self.ndrange.items_per_group
        if ipg % self.threads == 0:
            return  # every wave is full; the dispatch mask persists
        asm = self.asm
        asm.li(AT, ipg)
        asm.emit("sub", rd=AT, rs1=AT, rs2=WAVE_REG)  # items left
        asm.li(AT2, self.threads)
        skip = self.asm.fresh_label("fullwave")
        asm.emit("blt", rs1=AT, rs2=AT2, label=skip)
        asm.mv(AT, AT2)
        asm.label(skip)
        asm.li(AT2, 1)
        asm.emit("sll", rd=AT2, rs1=AT2, rs2=AT)
        asm.emit("addi", rd=AT2, rs1=AT2, imm=-1)
        asm.emit("tmc", rs1=AT2)

    def _emit_wave_epilogue(self) -> None:
        """RET lowering in wave mode: advance to the next wave or halt."""
        asm = self.asm
        if self._num_waves <= 1:
            asm.emit("halt")
            return
        ipg = self.ndrange.items_per_group
        asm.emit("addi", rd=WAVE_REG, rs1=WAVE_REG, imm=self.threads)
        asm.li(AT, ipg)
        asm.emit("blt", rs1=WAVE_REG, rs2=AT, label=self._wave_loop_label())
        asm.emit("halt")

    def _block_label(self, block: Block) -> str:
        return f".{self.kernel.name}.{block.name}"

    def _emit_prologue(self) -> None:
        asm = self.asm
        # Kernel parameters live in the argument block.
        if self.kernel.params:
            asm.li(AT2, layout.ARG_BASE)
        for param in self.kernel.params:
            off = 4 * param.index
            if param.ty is FLOAT32:
                if self.alloc.is_spilled(param):
                    asm.emit("flw", rd=FAT, rs1=AT2, imm=off)
                    asm.emit("fsw", rs1=SP, rs2=FAT, imm=self._spill_off(param))
                else:
                    asm.emit("flw", rd=self.alloc.reg_of(param), rs1=AT2, imm=off)
            else:
                if self.alloc.is_spilled(param):
                    asm.emit("lw", rd=AT, rs1=AT2, imm=off)
                    asm.emit("sw", rs1=SP, rs2=AT, imm=self._spill_off(param))
                else:
                    asm.emit("lw", rd=self.alloc.reg_of(param), rs1=AT2, imm=off)
        # Array base addresses.
        for arr in self.kernel.arrays:
            if arr.space is AddressSpace.PRIVATE:
                base_reg, base_off = SP, self.frame.private_offsets[id(arr)]
            else:
                asm.emit("csrrs", rd=AT, rs1=0, imm=int(CSR.LOCAL_BASE))
                base_reg, base_off = AT, self.local_offsets[id(arr)]
            if self.alloc.is_spilled(arr):
                asm.emit("addi", rd=AT, rs1=base_reg, imm=base_off)
                asm.emit("sw", rs1=SP, rs2=AT, imm=self._spill_off(arr))
            else:
                asm.emit(
                    "addi", rd=self.alloc.reg_of(arr), rs1=base_reg, imm=base_off
                )

    def _emit_block(self, block: Block, next_block: Block | None) -> None:
        asm = self.asm
        asm.label(self._block_label(block))
        for _ in range(self.join_counts.get(id(block), 0)):
            asm.emit("join")
        for ins in block.non_phis():
            if ins.is_terminator:
                self._emit_terminator(block, ins, next_block)
            else:
                self._emit_instr(ins)

    # ------------------------------------------------------------------
    # Terminators, phi copies, divergence lowering.
    # ------------------------------------------------------------------

    def _emit_terminator(
        self, block: Block, term: Instr, next_block: Block | None
    ) -> None:
        asm = self.asm
        self._emit_phi_copies(block)
        for mask_reg in self.mask_saves.get(id(block), []):
            asm.emit("csrrs", rd=mask_reg, rs1=0, imm=int(CSR.TMASK))

        if term.op is Opcode.RET:
            if self.wave_mode:
                self._emit_wave_epilogue()
            else:
                asm.emit("halt")
            return
        if term.op is Opcode.BR:
            target = term.targets[0]
            if target is not next_block:
                asm.j(self._block_label(target))
            return

        # CBR
        then_b, else_b = term.targets
        cond = term.args[0]
        if id(block) in self.pred_loops:
            # Divergent loop exit: PRED keeps looping lanes on; when all
            # lanes are done it restores the saved mask and executes the
            # jump to the exit block.
            mask_reg = self.pred_loops[id(block)]
            cond_reg = self.xsrc(cond, AT)
            asm.emit("pred", rs1=cond_reg, rs2=mask_reg)
            asm.j(self._block_label(else_b))
            if then_b is not next_block:
                asm.j(self._block_label(then_b))
            return

        divergent = self.div.branch_is_divergent(term)
        cond_reg = self.xsrc(cond, AT)
        if divergent:
            asm.emit("split", rs1=cond_reg)
            asm.emit("beq", rs1=cond_reg, rs2=ZERO,
                     label=self._block_label(else_b))
            if then_b is not next_block:
                asm.j(self._block_label(then_b))
            return
        # Uniform branch.
        if then_b is next_block:
            asm.emit("beq", rs1=cond_reg, rs2=ZERO,
                     label=self._block_label(else_b))
        elif else_b is next_block:
            asm.emit("bne", rs1=cond_reg, rs2=ZERO,
                     label=self._block_label(then_b))
        else:
            asm.emit("beq", rs1=cond_reg, rs2=ZERO,
                     label=self._block_label(else_b))
            asm.j(self._block_label(then_b))

    def _emit_phi_copies(self, block: Block) -> None:
        """Lower the parallel copies implied by successor phis."""
        asm = self.asm
        copies: list[tuple[Instr, Value]] = []
        for succ in block.successors:
            for phi in succ.phis():
                for pred, val in phi.attrs["incomings"]:
                    if pred is block:
                        copies.append((phi, val))
        if not copies:
            return

        # 1. Copies into spill slots read registers but write memory.
        reg_copies: list[tuple[Instr, Value]] = []
        for phi, val in copies:
            if self.alloc.is_spilled(phi):
                if phi.ty is FLOAT32:
                    src = self.fsrc(val, FAT)
                    asm.emit("fsw", rs1=SP, rs2=src, imm=self._spill_off(phi))
                else:
                    src = self.xsrc(val, AT)
                    asm.emit("sw", rs1=SP, rs2=src, imm=self._spill_off(phi))
            else:
                reg_copies.append((phi, val))

        # 2. Register-to-register moves with cycle breaking.
        moves: dict[tuple[str, int], tuple[str, int]] = {}  # dst -> src
        late: list[tuple[Instr, Value]] = []  # const / spilled sources
        for phi, val in reg_copies:
            cls = "f" if phi.ty is FLOAT32 else "x"
            dst = (cls, self.alloc.reg_of(phi))
            if isinstance(val, Const) or self.alloc.is_spilled(val):
                late.append((phi, val))
            else:
                src = (cls, self.alloc.reg_of(val))
                if src != dst:
                    moves[dst] = src

        scratch_for = {"x": AT, "f": FAT}
        in_scratch: dict[tuple[str, int], str] = {}
        while moves:
            # Emit any move whose destination is not a pending source.
            ready = [d for d in moves if d not in moves.values()]
            if ready:
                dst = ready[0]
                src = moves.pop(dst)
                self._emit_move(dst, src, in_scratch)
            else:
                # Cycle: park one destination's current value in a scratch.
                dst = next(iter(moves))
                cls = dst[0]
                if cls == "x":
                    asm.mv(scratch_for["x"], dst[1])
                else:
                    asm.fmv(scratch_for["f"], dst[1])
                in_scratch[dst] = cls
                src = moves.pop(dst)
                self._emit_move(dst, src, in_scratch)

        # 3. Constant / spilled sources into registers.
        for phi, val in late:
            if phi.ty is FLOAT32:
                reg = self.alloc.reg_of(phi)
                if isinstance(val, Const):
                    asm.li(AT, _float_bits(val.value))
                    asm.emit("fmv.w.x", rd=reg, rs1=AT)
                else:
                    asm.emit("flw", rd=reg, rs1=SP, imm=self._spill_off(val))
            else:
                self._to_xreg(val, self.alloc.reg_of(phi))

    def _emit_move(
        self,
        dst: tuple[str, int],
        src: tuple[str, int],
        in_scratch: dict[tuple[str, int], str],
    ) -> None:
        asm = self.asm
        cls, dreg = dst
        sreg = src[1]
        if src in in_scratch:
            sreg = AT if cls == "x" else FAT
            del in_scratch[src]
        if cls == "x":
            asm.mv(dreg, sreg)
        else:
            asm.fmv(dreg, sreg)

    # ------------------------------------------------------------------
    # Straight-line instruction lowering.
    # ------------------------------------------------------------------

    _X_BINOPS = {
        Opcode.ADD: "add", Opcode.SUB: "sub", Opcode.MUL: "mul",
        Opcode.DIV: "div", Opcode.REM: "rem", Opcode.AND: "and",
        Opcode.OR: "or", Opcode.XOR: "xor", Opcode.SHL: "sll",
        Opcode.ASHR: "sra", Opcode.LSHR: "srl",
    }
    _F_BINOPS = {
        Opcode.FADD: "fadd.s", Opcode.FSUB: "fsub.s", Opcode.FMUL: "fmul.s",
        Opcode.FDIV: "fdiv.s", Opcode.FMIN: "fmin.s", Opcode.FMAX: "fmax.s",
        Opcode.POW: "fpow.s",
    }
    _F_UNOPS = {
        Opcode.SQRT: "fsqrt.s", Opcode.EXP: "fexp.s", Opcode.LOG: "flog.s",
        Opcode.SIN: "fsin.s", Opcode.COS: "fcos.s", Opcode.FLOOR: "ffloor.s",
    }
    _CSR_QUERIES = {
        Opcode.GROUP_ID: (CSR.GROUP_ID0, CSR.GROUP_ID1, CSR.GROUP_ID2),
    }
    _AMO_MNEMONICS = {
        Opcode.ATOMIC_ADD: "amoadd.w",
        Opcode.ATOMIC_MIN: "amomin.w",
        Opcode.ATOMIC_MAX: "amomax.w",
        Opcode.ATOMIC_XCHG: "amoswap.w",
    }

    def _emit_instr(self, ins: Instr) -> None:
        asm = self.asm
        op = ins.op

        if op in self._X_BINOPS:
            a = self.xsrc(ins.args[0], AT)
            b = self.xsrc(ins.args[1], AT2)
            d, spill = self.xdst(ins)
            asm.emit(self._X_BINOPS[op], rd=d, rs1=a, rs2=b)
            self.finish_x(ins, d, spill)
        elif op in self._F_BINOPS:
            a = self.fsrc(ins.args[0], FAT)
            b = self.fsrc(ins.args[1], FAT2)
            d, spill = self.fdst(ins)
            asm.emit(self._F_BINOPS[op], rd=d, rs1=a, rs2=b)
            self.finish_f(ins, d, spill)
        elif op in self._F_UNOPS:
            a = self.fsrc(ins.args[0], FAT)
            d, spill = self.fdst(ins)
            asm.emit(self._F_UNOPS[op], rd=d, rs1=a)
            self.finish_f(ins, d, spill)
        elif op is Opcode.FNEG:
            a = self.fsrc(ins.args[0], FAT)
            d, spill = self.fdst(ins)
            asm.emit("fsgnjn.s", rd=d, rs1=a, rs2=a)
            self.finish_f(ins, d, spill)
        elif op is Opcode.FABS:
            a = self.fsrc(ins.args[0], FAT)
            d, spill = self.fdst(ins)
            asm.emit("fsgnjx.s", rd=d, rs1=a, rs2=a)
            self.finish_f(ins, d, spill)
        elif op is Opcode.ICMP:
            self._emit_icmp(ins)
        elif op is Opcode.FCMP:
            self._emit_fcmp(ins)
        elif op is Opcode.SELECT:
            self._emit_select(ins)
        elif op in (Opcode.IMIN, Opcode.IMAX):
            self._emit_iminmax(ins)
        elif op is Opcode.IABS:
            self._to_xreg(ins.args[0], AT)
            asm.emit("srai", rd=AT2, rs1=AT, imm=31)
            asm.emit("xor", rd=AT, rs1=AT, rs2=AT2)
            d, spill = self.xdst(ins)
            asm.emit("sub", rd=d, rs1=AT, rs2=AT2)
            self.finish_x(ins, d, spill)
        elif op is Opcode.SITOFP:
            a = self.xsrc(ins.args[0], AT)
            d, spill = self.fdst(ins)
            asm.emit("fcvt.s.w", rd=d, rs1=a)
            self.finish_f(ins, d, spill)
        elif op is Opcode.FPTOSI:
            a = self.fsrc(ins.args[0], FAT)
            d, spill = self.xdst(ins)
            asm.emit("fcvt.w.s", rd=d, rs1=a)
            self.finish_x(ins, d, spill)
        elif op is Opcode.ZEXT:
            a = self.xsrc(ins.args[0], AT)
            d, spill = self.xdst(ins)
            asm.mv(d, a)
            self.finish_x(ins, d, spill)
        elif op is Opcode.LOAD:
            self._emit_load(ins)
        elif op is Opcode.STORE:
            self._emit_store(ins)
        elif op in ATOMIC_OPS:
            self._emit_atomic(ins)
        elif op in (Opcode.GID, Opcode.LID):
            self._emit_workitem_id(ins)
        elif op is Opcode.GROUP_ID:
            csr = self._CSR_QUERIES[Opcode.GROUP_ID][ins.attrs["dim"]]
            d, spill = self.xdst(ins)
            asm.emit("csrrs", rd=d, rs1=0, imm=int(csr))
            self.finish_x(ins, d, spill)
        elif op in (Opcode.LOCAL_SIZE, Opcode.GLOBAL_SIZE, Opcode.NUM_GROUPS):
            dim = ins.attrs["dim"]
            value = {
                Opcode.LOCAL_SIZE: self.ndrange.local_size,
                Opcode.GLOBAL_SIZE: self.ndrange.global_size,
                Opcode.NUM_GROUPS: self.ndrange.num_groups,
            }[op][dim]
            d, spill = self.xdst(ins)
            asm.li(d, value)
            self.finish_x(ins, d, spill)
        elif op is Opcode.BARRIER:
            asm.emit("csrrs", rd=AT, rs1=0, imm=int(CSR.GROUP_SLOT))
            asm.emit("csrrs", rd=AT2, rs1=0, imm=int(CSR.GROUP_WARPS))
            asm.emit("bar", rs1=AT, rs2=AT2)
        elif op is Opcode.PRINTF:
            self._emit_printf(ins)
        elif op is Opcode.PHI:  # pragma: no cover - skipped by caller
            pass
        else:  # pragma: no cover - closed opcode set
            raise CompilationError(f"codegen cannot lower {op}")

    def _emit_icmp(self, ins: Instr) -> None:
        asm = self.asm
        pred = ins.attrs["pred"]
        a = ins.args[0]
        b = ins.args[1]
        d, spill = self.xdst(ins)
        if pred in ("slt", "sgt"):
            x = self.xsrc(a if pred == "slt" else b, AT)
            y = self.xsrc(b if pred == "slt" else a, AT2)
            asm.emit("slt", rd=d, rs1=x, rs2=y)
        elif pred in ("sge", "sle"):
            x = self.xsrc(a if pred == "sge" else b, AT)
            y = self.xsrc(b if pred == "sge" else a, AT2)
            asm.emit("slt", rd=d, rs1=x, rs2=y)
            asm.emit("xori", rd=d, rs1=d, imm=1)
        elif pred == "eq":
            x = self.xsrc(a, AT)
            y = self.xsrc(b, AT2)
            asm.emit("xor", rd=d, rs1=x, rs2=y)
            asm.emit("sltiu", rd=d, rs1=d, imm=1)
        elif pred == "ne":
            x = self.xsrc(a, AT)
            y = self.xsrc(b, AT2)
            asm.emit("xor", rd=d, rs1=x, rs2=y)
            asm.emit("sltu", rd=d, rs1=ZERO, rs2=d)
        else:  # pragma: no cover - validator rejects
            raise CompilationError(f"bad icmp predicate {pred}")
        self.finish_x(ins, d, spill)

    def _emit_fcmp(self, ins: Instr) -> None:
        asm = self.asm
        pred = ins.attrs["pred"]
        a, b = ins.args
        d, spill = self.xdst(ins)
        table = {
            "oeq": ("feq.s", False, False),
            "one": ("feq.s", True, False),
            "olt": ("flt.s", False, False),
            "ole": ("fle.s", False, False),
            "ogt": ("flt.s", False, True),
            "oge": ("fle.s", False, True),
        }
        mnem, invert, swap = table[pred]
        x = self.fsrc(b if swap else a, FAT)
        y = self.fsrc(a if swap else b, FAT2)
        asm.emit(mnem, rd=d, rs1=x, rs2=y)
        if invert:
            asm.emit("xori", rd=d, rs1=d, imm=1)
        self.finish_x(ins, d, spill)

    def _emit_select(self, ins: Instr) -> None:
        asm = self.asm
        cond, a, b = ins.args
        is_float = ins.ty is FLOAT32
        # mask = -cond; result = b ^ ((a ^ b) & mask)  (branchless: safe
        # under divergence). Operands are materialised first because
        # fsrc/li of float constants stages bits through AT.
        if is_float:
            fa = self.fsrc(a, FAT)
            asm.emit("fmv.x.w", rd=AT2, rs1=fa)
            fb = self.fsrc(b, FAT2)
            asm.emit("fmv.x.w", rd=AT3, rs1=fb)
        else:
            self._to_xreg(a, AT2)
            self._to_xreg(b, AT3)
        self._to_xreg(cond, AT)
        asm.emit("sub", rd=AT, rs1=ZERO, rs2=AT)
        asm.emit("xor", rd=AT2, rs1=AT2, rs2=AT3)
        asm.emit("and", rd=AT2, rs1=AT2, rs2=AT)
        asm.emit("xor", rd=AT2, rs1=AT2, rs2=AT3)
        if is_float:
            d, spill = self.fdst(ins)
            asm.emit("fmv.w.x", rd=d, rs1=AT2)
            self.finish_f(ins, d, spill)
        else:
            d, spill = self.xdst(ins)
            asm.mv(d, AT2)
            self.finish_x(ins, d, spill)

    def _emit_iminmax(self, ins: Instr) -> None:
        asm = self.asm
        a, b = ins.args
        self._to_xreg(a, AT2)
        self._to_xreg(b, AT3)
        if ins.op is Opcode.IMIN:
            asm.emit("slt", rd=AT, rs1=AT2, rs2=AT3)  # a < b -> pick a
        else:
            asm.emit("slt", rd=AT, rs1=AT3, rs2=AT2)  # b < a -> pick a
        asm.emit("sub", rd=AT, rs1=ZERO, rs2=AT)
        asm.emit("xor", rd=AT2, rs1=AT2, rs2=AT3)
        asm.emit("and", rd=AT2, rs1=AT2, rs2=AT)
        asm.emit("xor", rd=AT2, rs1=AT2, rs2=AT3)
        d, spill = self.xdst(ins)
        asm.mv(d, AT2)
        self.finish_x(ins, d, spill)

    def _address(self, ins: Instr) -> tuple[int, int]:
        """Compute a memory operand; returns (base_reg, imm_offset)."""
        asm = self.asm
        ptr, index = ins.args[0], ins.args[1]
        base = self.xsrc(ptr, AT2)
        if isinstance(index, Const):
            off = 4 * int(index.value)
            if -2048 <= off < 2048:
                return base, off
            asm.li(AT, off)
            asm.emit("add", rd=AT, rs1=AT, rs2=base)
            return AT, 0
        idx = self.xsrc(index, AT)
        asm.emit("slli", rd=AT, rs1=idx, imm=2)
        asm.emit("add", rd=AT, rs1=AT, rs2=base)
        return AT, 0

    def _emit_load(self, ins: Instr) -> None:
        base, off = self._address(ins)
        if ins.ty is FLOAT32:
            d, spill = self.fdst(ins)
            self.asm.emit("flw", rd=d, rs1=base, imm=off)
            self.finish_f(ins, d, spill)
        else:
            d, spill = self.xdst(ins)
            self.asm.emit("lw", rd=d, rs1=base, imm=off)
            self.finish_x(ins, d, spill)

    def _emit_store(self, ins: Instr) -> None:
        value = ins.args[2]
        if value.ty is FLOAT32:
            v = self.fsrc(value, FAT)
            base, off = self._address(ins)
            self.asm.emit("fsw", rs1=base, rs2=v, imm=off)
        else:
            base, off = self._address(ins)
            v = self.xsrc(value, AT3)
            self.asm.emit("sw", rs1=base, rs2=v, imm=off)

    def _emit_atomic(self, ins: Instr) -> None:
        asm = self.asm
        if ins.ty is FLOAT32:
            raise CompilationError(
                "float atomics are not supported by the Vortex backend"
            )
        base, off = self._address(ins)  # base in AT, AT2, or a real reg
        if off:
            asm.emit("addi", rd=AT, rs1=base, imm=off)
            base = AT
        elif base == AT2:
            # Free AT2 for the operand reloads below.
            asm.mv(AT, AT2)
            base = AT
        if ins.op is Opcode.ATOMIC_CAS:
            expected, desired = ins.args[2], ins.args[3]
            self._to_xreg(expected, AT3)  # amocas: rd holds expected/old
            v = self.xsrc(desired, AT2)
            asm.emit("amocas.w", rd=AT3, rs1=base, rs2=v)
            d, spill = self.xdst(ins)
            asm.mv(d, AT3)
            self.finish_x(ins, d, spill)
            return
        v = self.xsrc(ins.args[2], AT2)
        d, spill = self.xdst(ins)
        asm.emit(self._AMO_MNEMONICS[ins.op], rd=d, rs1=base, rs2=v)
        self.finish_x(ins, d, spill)

    def _emit_workitem_id(self, ins: Instr) -> None:
        """GID/LID via the dispatcher CSRs and launch-time constants."""
        asm = self.asm
        dim = ins.attrs["dim"]
        lx, ly, _lz = self.ndrange.local_size
        # linear local id: wave base + lane (wave mode) or the
        # dispatcher's LOCAL_OFFSET + lane (warp-set mode).
        asm.emit("csrrs", rd=AT2, rs1=0, imm=int(CSR.THREAD_ID))
        if self.wave_mode:
            asm.emit("add", rd=AT, rs1=WAVE_REG, rs2=AT2)
        else:
            asm.emit("csrrs", rd=AT, rs1=0, imm=int(CSR.LOCAL_OFFSET))
            asm.emit("add", rd=AT, rs1=AT, rs2=AT2)
        # Decompose into the requested dimension.
        if dim == 0:
            self._emit_mod_const(AT, lx)
        elif dim == 1:
            self._emit_div_const(AT, lx)
            self._emit_mod_const(AT, ly)
        else:
            self._emit_div_const(AT, lx * ly)
        if ins.op is Opcode.LID:
            d, spill = self.xdst(ins)
            asm.mv(d, AT)
            self.finish_x(ins, d, spill)
            return
        # gid = group_id(dim) * local_size(dim) + lid
        csr = self._CSR_QUERIES[Opcode.GROUP_ID][dim]
        asm.emit("csrrs", rd=AT2, rs1=0, imm=int(csr))
        lsz = self.ndrange.local_size[dim]
        self._emit_mul_const(AT2, lsz)
        d, spill = self.xdst(ins)
        asm.emit("add", rd=d, rs1=AT, rs2=AT2)
        self.finish_x(ins, d, spill)

    def _emit_mod_const(self, reg: int, c: int) -> None:
        asm = self.asm
        if c == 1:
            asm.li(reg, 0)
        elif c & (c - 1) == 0:
            asm.emit("andi", rd=reg, rs1=reg, imm=c - 1)
        else:
            asm.li(AT3, c)
            asm.emit("rem", rd=reg, rs1=reg, rs2=AT3)

    def _emit_div_const(self, reg: int, c: int) -> None:
        asm = self.asm
        if c == 1:
            return
        if c & (c - 1) == 0:
            asm.emit("srli", rd=reg, rs1=reg, imm=c.bit_length() - 1)
        else:
            asm.li(AT3, c)
            asm.emit("div", rd=reg, rs1=reg, rs2=AT3)

    def _emit_mul_const(self, reg: int, c: int) -> None:
        asm = self.asm
        if c == 0:
            asm.li(reg, 0)
        elif c == 1:
            return
        elif c & (c - 1) == 0:
            asm.emit("slli", rd=reg, rs1=reg, imm=c.bit_length() - 1)
        else:
            asm.li(AT3, c)
            asm.emit("mul", rd=reg, rs1=reg, rs2=AT3)

    def _emit_printf(self, ins: Instr) -> None:
        asm = self.asm
        fmt = ins.attrs["fmt"]
        if fmt not in self.fmt_table:
            addr = self._fmt_cursor
            nbytes = (len(fmt.encode()) + 1 + 3) & ~3
            if addr + nbytes > layout.FMT_LIMIT:
                raise CompilationError("printf format-string region full")
            self.fmt_table[fmt] = addr
            self._fmt_cursor += nbytes
        for i, arg in enumerate(ins.args):
            off = self.frame.printf_base + 4 * i
            if arg.ty is FLOAT32:
                v = self.fsrc(arg, FAT)
                asm.emit("fsw", rs1=SP, rs2=v, imm=off)
            else:
                v = self.xsrc(arg, AT)
                asm.emit("sw", rs1=SP, rs2=v, imm=off)
        asm.li(AT, self.fmt_table[fmt])
        asm.emit("addi", rd=AT2, rs1=SP, imm=self.frame.printf_base)
        asm.emit("printfx", rs1=AT, rs2=AT2)


def compile_kernel(
    kernel: Kernel, ndrange: NDRange, threads: int = 0,
    optimize: bool = True
) -> VortexKernelImage:
    """Compile one kernel for one launch geometry.

    ``threads`` (the configuration's T) enables the wave-loop scheduling
    for barrier-free kernels; 0 forces warp-set dispatch.
    """
    return CodeGen(kernel, ndrange, threads=threads,
                   optimize=optimize).run()
