"""Vortex device backend: the PoCL-style runtime of the paper's Fig. 5.

``VortexBackend`` plugs into the OpenCL-style host API: building a kernel
validates it; launching JIT-compiles it for the launch geometry (PoCL
also specializes work-group sizes), loads the image into a fresh
simulated device, marshals buffers into the device heap, runs the
cycle-level simulator and copies buffers back.

Compiled images are cached per (kernel, geometry), mirroring PoCL's
program cache.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import CheckpointError, RuntimeLaunchError
from ..ocl.host import CompiledKernel, DeviceBackend, LaunchStats
from ..ocl.ir import Kernel
from ..ocl.ndrange import NDRange
from ..ocl.types import FLOAT32, INT32, is_pointer
from ..ocl.validate import validate
from . import layout
from .codegen import VortexKernelImage, compile_kernel
from .simx.config import VortexConfig
from .simx.machine import LaunchResult, Machine

_HEAP_ALIGN = 64


class VortexBackend(DeviceBackend):
    """The soft-GPU approach: kernels run as binaries on simulated
    Vortex hardware."""

    name = "vortex"

    def __init__(self, config: VortexConfig | None = None,
                 max_cycles: int = 200_000_000, optimize: bool = True,
                 trace: bool = False, profiler=None, launch_hook=None,
                 checkpoint=None):
        self.config = config if config is not None else VortexConfig()
        self.max_cycles = max_cycles
        self.optimize = optimize
        #: keep a per-instruction execution trace on every launch
        #: (debugging aid; surfaces in LaunchStats.extra["trace"]).
        self.trace = trace
        #: optional :class:`repro.profiling.Profiler`; every launch on
        #: this backend records cycle-bucket samples and group spans.
        self.profiler = profiler
        #: optional ``hook(machine, result)`` called after every launch
        #: completes and buffers are copied back — the golden-trace
        #: harness uses it to digest the final device state.
        self.launch_hook = launch_hook
        #: optional :class:`repro.vortex.simx.checkpoint.CheckpointPlan`;
        #: every launch then snapshots on the plan's cadence, resumes
        #: from an existing snapshot when one verifies, and yields
        #: :class:`~repro.errors.SimulationPreempted` past the plan's
        #: deadline instead of being killed by the engine watchdog.
        self.checkpoint = checkpoint
        self._image_cache: dict[tuple, VortexKernelImage] = {}

    def build(self, kernel: Kernel) -> "VortexCompiledKernel":
        validate(kernel)
        return VortexCompiledKernel(kernel, self)

    def compile_for(self, kernel: Kernel, ndrange: NDRange
                    ) -> VortexKernelImage:
        key = (id(kernel), ndrange.global_size, ndrange.local_size)
        image = self._image_cache.get(key)
        if image is None:
            image = compile_kernel(kernel, ndrange,
                                   threads=self.config.threads,
                                   optimize=self.optimize)
            self._image_cache[key] = image
        return image


class VortexCompiledKernel(CompiledKernel):
    def __init__(self, kernel: Kernel, backend: VortexBackend):
        super().__init__(kernel)
        self.backend = backend

    def launch(self, args: list[Any], ndrange: NDRange) -> LaunchStats:
        kernel = self.kernel
        if len(args) != len(kernel.params):
            raise RuntimeLaunchError(
                f"kernel {kernel.name} expects {len(kernel.params)} args"
            )
        image = self.backend.compile_for(kernel, ndrange)

        def assemble() -> tuple[Machine, list[tuple[int, np.ndarray]]]:
            """Fresh machine with image loaded and arguments marshalled.

            Deterministic given the same host arrays, so the
            post-marshal memory is the reproducible baseline snapshots
            delta-compress against — and reassembling after a failed
            resume verification yields a clean machine to launch.
            """
            machine = Machine(self.backend.config,
                              trace=self.backend.trace,
                              profiler=self.backend.profiler)
            if machine.profiler.enabled:
                machine.profiler.set_meta("kernel", kernel.name)
            machine.load_image(image)

            # Marshal arguments: buffers into the heap, scalars by value.
            heap = layout.HEAP_BASE
            arg_words = np.zeros(max(1, len(kernel.params)), dtype=np.int32)
            buffers: list[tuple[int, np.ndarray]] = []
            for param, arg in zip(kernel.params, args):
                if is_pointer(param.ty):
                    if not isinstance(arg, np.ndarray) or arg.ndim != 1:
                        raise RuntimeLaunchError(
                            f"arg {param.name!r} must be a 1-D numpy array"
                        )
                    want = (np.int32 if param.ty.element is INT32
                            else np.float32)
                    if arg.dtype != want:
                        raise RuntimeLaunchError(
                            f"arg {param.name!r}: dtype {arg.dtype} != "
                            f"{np.dtype(want)}"
                        )
                    nbytes = arg.nbytes
                    if heap + nbytes > layout.HEAP_LIMIT:
                        raise RuntimeLaunchError("device heap exhausted")
                    machine.memory.write_bytes(heap, arg.view(np.uint8))
                    buffers.append((heap, arg))
                    arg_words[param.index] = np.int32(heap)
                    heap += (nbytes + _HEAP_ALIGN - 1) & ~(_HEAP_ALIGN - 1)
                elif param.ty is FLOAT32:
                    arg_words[param.index] = np.float32(arg).view(np.int32)
                else:
                    arg_words[param.index] = np.int32(
                        int(arg) & 0xFFFFFFFF if int(arg) >= 0 else int(arg)
                    )
            if kernel.params:
                machine.memory.write_words(layout.ARG_BASE, arg_words)
            return machine, buffers

        machine, buffers = assemble()
        plan = self.backend.checkpoint
        if plan is None:
            result: LaunchResult = machine.launch(
                ndrange, max_cycles=self.backend.max_cycles
            )
        else:
            ctl = plan.next_control()
            state = ctl.store.load(ctl.launch_id)
            if state is not None:
                try:
                    result = machine.resume(
                        ndrange, state,
                        max_cycles=self.backend.max_cycles,
                        checkpoint=ctl,
                    )
                    plan.hits += 1
                except CheckpointError:
                    # Mismatched snapshot (the store already dropped
                    # corrupt/stale files): degrade to a clean run.
                    ctl.store.discard(ctl.launch_id)
                    machine, buffers = assemble()
                    state = None
            if state is None:
                result = machine.launch(
                    ndrange, max_cycles=self.backend.max_cycles,
                    checkpoint=ctl,
                )
            # Completed: the snapshot is spent; a retry of this point
            # re-simulates this launch from scratch, deterministically.
            ctl.store.discard(ctl.launch_id)

        # Copy buffers back (device-visible writes land in host arrays).
        for addr, arr in buffers:
            raw = machine.memory.read_bytes(addr, arr.nbytes)
            arr[:] = np.frombuffer(raw, dtype=arr.dtype)

        if self.backend.launch_hook is not None:
            self.backend.launch_hook(machine, result)

        return LaunchStats(
            kernel_name=kernel.name,
            backend=self.backend.name,
            cycles=result.cycles,
            dynamic_instructions=result.instructions,
            printf_output=result.printf_output,
            extra={
                "config": self.backend.config.label(),
                "lsu_replays": result.extra.get("lsu_replays", 0),
                "lsu_stalls": result.lsu_stalls,
                "idle_cycles": result.idle_cycles,
                "dcache_hit_rate": result.dcache_hit_rate,
                "dram_row_hit_rate": result.dram_row_hit_rate,
                "groups_dispatched": result.groups_dispatched,
                "time_ms": result.time_ms(self.backend.config.clock_mhz),
                "static_instructions": image.num_instructions,
                **({"trace": machine.trace}
                   if machine.trace is not None else {}),
            },
        )
