"""Synthesis-area model for Vortex hardware configurations (Table IV).

Unlike the HLS flow — where area depends on the *kernel* — the soft GPU
is synthesized once per hardware configuration and any kernel runs on it
(the paper's §III-D point). Area therefore scales with the configuration
(C cores, W warps/core, T threads/warp) through identifiable components:

* a fixed uncore (memory subsystem, AFU shell, NoC),
* per-core control,
* the warp information table (∝ C·W) — the paper: "augmenting the number
  of warp sizes leads to an expansion in the warp information table",
* execution lanes: ALU/FPU/LSU datapaths replicate per thread (∝ C·T) —
  "increasing the number of threads necessitates an expansion in ... the
  number of ALU lanes and FPU lanes",
* the register file, sized by warps × threads (∝ C·W·T).

Coefficients are least-squares calibrated to the five configurations the
paper synthesized (Table IV); the model reproduces every published cell
within ±1%. DSPs are dominated by the FPU lanes at ~28 DSPs per lane,
matching the exact 896 / 1,792 published counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hls.area import AreaReport
from ..hls.device import FPGADevice, STRATIX10_SX2800
from ..errors import SynthesisError
from .simx.config import VortexConfig

#: Component coefficients per resource: (uncore, core, warp-table C*W,
#: lane C*T, regfile C*W*T).
_ALUT = (54_316.0, 538.0, 1.21, 8_607.5, 19.29)
_FF = (131_271.0, 615.0, 3.83, 9_841.0, 61.36)
_BRAM = (350.4, 1.82, 0.0, 29.1, 0.02)
_DSP = (0.0, 1.74, 0.0, 27.89, 0.0)


def _eval(coef: tuple[float, ...], c: int, w: int, t: int) -> int:
    base, per_core, per_cw, per_ct, per_cwt = coef
    return round(
        base + per_core * c + per_cw * c * w + per_ct * c * t
        + per_cwt * c * w * t
    )


@dataclass(frozen=True)
class VortexAreaReport:
    config: VortexConfig
    aluts: int
    ffs: int
    brams: int
    dsps: int

    def as_row(self) -> dict[str, int]:
        return {
            "ALUTs": self.aluts,
            "FFs": self.ffs,
            "BRAMs": self.brams,
            "DSPs": self.dsps,
        }


def estimate(config: VortexConfig) -> VortexAreaReport:
    """Synthesis area of one Vortex hardware configuration."""
    c, w, t = config.cores, config.warps, config.threads
    return VortexAreaReport(
        config=config,
        aluts=_eval(_ALUT, c, w, t),
        ffs=_eval(_FF, c, w, t),
        brams=_eval(_BRAM, c, w, t),
        dsps=_eval(_DSP, c, w, t),
    )


def synthesize(
    config: VortexConfig, device: FPGADevice = STRATIX10_SX2800
) -> VortexAreaReport:
    """Area-check a configuration against a device, like Quartus would.

    Raises :class:`SynthesisError` when the configuration does not fit —
    the soft-GPU analog of the HLS capacity check, used by the ablation
    studies exploring the largest feasible configuration per board.
    """
    report = estimate(config)
    checks = (
        ("aluts", report.aluts, device.aluts),
        ("ffs", report.ffs, device.ffs),
        ("bram", report.brams, device.brams),
        ("dsps", report.dsps, device.dsps),
    )
    for reason, used, capacity in checks:
        if used > capacity:
            raise SynthesisError(
                reason=reason,
                detail=(
                    f"Vortex {config.label()} needs {used} {reason} but "
                    f"{device.name} provides {capacity}"
                ),
            )
    return report


def to_area_report(report: VortexAreaReport) -> AreaReport:
    """Convert to the shared AreaReport shape for table rendering."""
    out = AreaReport(
        aluts=report.aluts, ffs=report.ffs, brams=report.brams,
        dsps=report.dsps,
    )
    out.breakdown["vortex_total"] = (
        report.aluts, report.ffs, report.brams, report.dsps
    )
    return out
