"""Analytical performance model for Vortex configurations.

The paper's §IV-A names this as the open opportunity: "a valuable
opportunity exists for research aimed at minimizing or circumventing the
exploration space by leveraging the application's characteristics and
proposing an analytical model for Vortex's performance". This module
implements a first-order such model:

1. Profile the kernel **once**, configuration-independently, with the
   functional interpreter (dynamic operation counts per work item).
2. Predict cycles for any (cores, warps, threads) from three closed-form
   bounds, taking the slowest:

   * **issue bound** — dynamic warp-instructions × issue beats
     (``ceil(T / issue_lanes)``), divided across cores;
   * **memory bound** — distinct cache lines moved, throttled by the
     per-lane MSHR line concurrency (``mshrs / min(T, lanes_per_line)``)
     over the DRAM round trip;
   * **latency bound** — each warp serialises its waves' memory round
     trips; only ``W`` resident warps overlap them.

The model is validated against SimX in ``tests/test_analytical.py`` and
``benchmarks/test_ablations.py``: it ranks the Figure 7 grid with high
correlation and places the true optimum in its top picks at a cost of
one interpreter run instead of 16 cycle simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ocl.interp import RunResult, interpret
from ..ocl.ir import Kernel, Opcode
from ..ocl.ndrange import NDRange
from .simx.config import VortexConfig


@dataclass(frozen=True)
class KernelProfile:
    """Configuration-independent dynamic profile of one launch."""

    total_items: int
    ops_per_item: float
    loads_per_item: float
    stores_per_item: float
    #: fraction of loads assumed to coalesce with lane neighbours
    #: (unit-stride in the fastest dimension); measured crudely from the
    #: kernel's static access pattern.
    coalesced_fraction: float

    @staticmethod
    def collect(kernel: Kernel, args: list, ndrange: NDRange
                ) -> "KernelProfile":
        run: RunResult = interpret(kernel, args, ndrange)
        items = max(1, run.items_executed)
        loads = run.op_counts.get(Opcode.LOAD, 0)
        stores = run.op_counts.get(Opcode.STORE, 0)
        ops = run.dynamic_instructions
        coalesced = _coalesced_fraction(kernel)
        return KernelProfile(
            total_items=items,
            ops_per_item=ops / items,
            loads_per_item=loads / items,
            stores_per_item=stores / items,
            coalesced_fraction=coalesced,
        )


def _coalesced_fraction(kernel: Kernel) -> float:
    """Fraction of static global loads that coalesce across lanes,
    reusing the HLS flow's affine access classifier."""
    from ..hls.lsu import LSUKind, classify_kernel

    sites = [s for s in classify_kernel(kernel)
             if not s.is_store and s.kind is not LSUKind.LOCAL_PORT]
    if not sites:
        return 1.0
    good = sum(1 for s in sites
               if s.kind in (LSUKind.STREAMING, LSUKind.UNIFORM,
                             LSUKind.CONSTANT_CACHE))
    return good / len(sites)


@dataclass(frozen=True)
class Prediction:
    config_label: str
    issue_bound: float
    memory_bound: float
    latency_bound: float

    @property
    def cycles(self) -> float:
        return max(self.issue_bound, self.memory_bound, self.latency_bound)

    @property
    def bottleneck(self) -> str:
        bounds = {
            "issue": self.issue_bound,
            "memory": self.memory_bound,
            "latency": self.latency_bound,
        }
        return max(bounds, key=bounds.get)


#: Per-instruction overhead the wave scheduler adds (loop + masks).
_WAVE_OVERHEAD_OPS = 8.0
#: bytes per element (the IR is 32-bit).
_WORD = 4
#: Mixed row hit/miss service estimate per line.
_SERVICE = 12.0
#: Issue-slot waste per unit of MSHR over-subscription (replay storms).
_CONTENTION_ALPHA = 0.2


@dataclass(frozen=True)
class VortexModelParams:
    """The model's free parameters, exposed so ``repro.calibrate`` can
    fit them against SimX ground truth instead of hand-tuned constants.

    The defaults reproduce the historical hand-tuned model exactly, so
    every ``params=None`` call site behaves as before calibration
    existed. The three ``*_scale`` factors are pure fitting degrees of
    freedom (multipliers on each closed-form bound); the rest are the
    physically-named constants the bounds are built from.
    """

    wave_overhead_ops: float = _WAVE_OVERHEAD_OPS
    service_cycles: float = _SERVICE
    contention_alpha: float = _CONTENTION_ALPHA
    issue_scale: float = 1.0
    memory_scale: float = 1.0
    latency_scale: float = 1.0

    def to_payload(self) -> dict:
        return {
            "wave_overhead_ops": self.wave_overhead_ops,
            "service_cycles": self.service_cycles,
            "contention_alpha": self.contention_alpha,
            "issue_scale": self.issue_scale,
            "memory_scale": self.memory_scale,
            "latency_scale": self.latency_scale,
        }

    @staticmethod
    def from_payload(payload: dict) -> "VortexModelParams":
        return VortexModelParams(**{
            k: float(payload[k]) for k in
            VortexModelParams().to_payload()
        })


DEFAULT_VORTEX_PARAMS = VortexModelParams()


def predict(profile: KernelProfile, config: VortexConfig,
            items_per_group: int = 16,
            params: VortexModelParams | None = None) -> Prediction:
    """Predict launch cycles for one configuration.

    ``params`` supplies calibrated model constants (see
    :mod:`repro.calibrate`); ``None`` keeps the hand-tuned defaults.
    """
    p = params or DEFAULT_VORTEX_PARAMS
    c, w, t = config.cores, config.warps, config.threads
    n = profile.total_items
    lanes = config.issue_lanes
    beats = max(1, -(-t // lanes))

    # --- issue bound -----------------------------------------------------
    # Per item: its share of the wave's instructions (ops/T) plus its
    # share of the wave-loop overhead, each issued in `beats` cycles.
    issue = n * (profile.ops_per_item / t) * beats / c \
        + n * p.wave_overhead_ops * beats / (t * c)

    # --- memory bound ------------------------------------------------------
    line_words = 64 // _WORD
    coalesced_lines = (profile.loads_per_item * profile.coalesced_fraction
                       * n / line_words)
    scattered_lines = (profile.loads_per_item
                       * (1.0 - profile.coalesced_fraction) * n)
    load_lines = coalesced_lines + scattered_lines
    store_lines = profile.stores_per_item * n / line_words  # write-combined
    lanes_per_line = min(t, line_words)
    concurrency = max(1.0, config.mshrs / lanes_per_line)
    roundtrip = config.dram.latency + p.service_cycles
    memory = (load_lines / c) * roundtrip / concurrency \
        + (store_lines / c) * p.service_cycles / config.dram.banks

    # --- latency bound ------------------------------------------------------
    # Each resident warp overlaps its waves' round trips with the others'.
    waves_total = n / (t * c)
    mem_ops_per_wave = (profile.loads_per_item + profile.stores_per_item) * t
    exposure = roundtrip if mem_ops_per_wave > 0 else 0.0
    latency = waves_total * (profile.ops_per_item * t / lanes + exposure) / w

    # --- MSHR contention ---------------------------------------------------
    # Outstanding load lanes scale with resident warps x lanes per load;
    # beyond the MSHR capacity, loads replay and waste issue slots.
    loads_in_flight = min(2.0, max(profile.loads_per_item, 0.0))
    demand = w * lanes_per_line * loads_in_flight
    pressure = max(0.0, demand / config.mshrs - 1.0)
    contention = 1.0 + p.contention_alpha * pressure

    return Prediction(
        config_label=config.label(),
        issue_bound=issue * contention * p.issue_scale,
        memory_bound=memory * p.memory_scale,
        latency_bound=latency * p.latency_scale,
    )


def explore(
    profile: KernelProfile,
    cores: int = 4,
    warp_sizes: tuple[int, ...] = (2, 4, 8, 16),
    thread_sizes: tuple[int, ...] = (2, 4, 8, 16),
    base: VortexConfig | None = None,
    items_per_group: int = 16,
    params: VortexModelParams | None = None,
) -> dict[tuple[int, int], Prediction]:
    """Predict the whole Figure 7 grid from one profile."""
    base = base or VortexConfig()
    out: dict[tuple[int, int], Prediction] = {}
    for w in warp_sizes:
        for t in thread_sizes:
            config = base.with_geometry(cores=cores, warps=w, threads=t)
            out[(w, t)] = predict(profile, config,
                                  items_per_group=items_per_group,
                                  params=params)
    return out


def recommend(predictions: dict[tuple[int, int], "Prediction"],
              top: int = 3) -> list[tuple[int, int]]:
    """The configurations predicted fastest, best first."""
    ranked = sorted(predictions, key=lambda k: predictions[k].cycles)
    return ranked[:top]
