"""OpenCL-style host API.

This mirrors the paper's Figure 2: the *same* host program drives either
backend; only the kernel binary differs. A :class:`Context` wraps one
:class:`DeviceBackend` (reference interpreter, HLS pipeline, or the Vortex
soft GPU); :class:`Program` compiles kernels for that backend; launching a
kernel copies buffers in, executes, and copies buffers out.

Backends raise :class:`~repro.errors.CompilationError` (HLS raises the
:class:`~repro.errors.SynthesisError` subclass) from ``Program.build`` —
this is exactly the failure the paper's Table I records per benchmark.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..errors import RuntimeLaunchError
from .interp import interpret
from .ir import Kernel
from .ndrange import NDRange
from .types import is_pointer
from .validate import validate


@dataclass
class LaunchStats:
    """What a backend reports for one kernel launch.

    ``cycles`` is meaningful for cycle-simulated backends (Vortex) and for
    the HLS pipeline model; the reference interpreter reports only dynamic
    instruction counts. ``extra`` carries backend-specific counters
    (stalls, cache hits, pipeline occupancy, ...).
    """

    kernel_name: str
    backend: str
    cycles: int | None = None
    dynamic_instructions: int | None = None
    printf_output: list[str] = field(default_factory=list)
    extra: dict[str, Any] = field(default_factory=dict)


class CompiledKernel(abc.ABC):
    """A kernel built for one backend, ready to launch."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel

    @abc.abstractmethod
    def launch(self, args: list[Any], ndrange: NDRange) -> LaunchStats:
        """Run over ``ndrange``; buffer args are numpy arrays mutated in
        place (the caller — :class:`Context` — handles host/device copies)."""


class DeviceBackend(abc.ABC):
    """A device + its kernel compiler (one per approach in the paper)."""

    name: str = "abstract"

    @abc.abstractmethod
    def build(self, kernel: Kernel) -> CompiledKernel:
        """Compile one kernel; raises CompilationError on failure."""


class ReferenceBackend(DeviceBackend):
    """Functional-interpreter backend; the correctness oracle."""

    name = "reference"

    def __init__(self, profiler=None):
        #: optional :class:`repro.profiling.Profiler` recording dynamic
        #: op mixes and per-group spans for every launch.
        self.profiler = profiler

    def build(self, kernel: Kernel) -> CompiledKernel:
        validate(kernel)
        return _ReferenceKernel(kernel, self.profiler)


class _ReferenceKernel(CompiledKernel):
    def __init__(self, kernel: Kernel, profiler=None):
        super().__init__(kernel)
        self.profiler = profiler

    def launch(self, args: list[Any], ndrange: NDRange) -> LaunchStats:
        if self.profiler is not None and self.profiler.enabled:
            self.profiler.set_meta("backend", ReferenceBackend.name)
            self.profiler.set_meta("kernel", self.kernel.name)
            self.profiler.set_meta("timeline", "dynamic instructions")
        result = interpret(self.kernel, args, ndrange,
                           profiler=self.profiler)
        return LaunchStats(
            kernel_name=self.kernel.name,
            backend=ReferenceBackend.name,
            dynamic_instructions=result.dynamic_instructions,
            printf_output=result.printf_output,
            extra={"op_counts": dict(result.op_counts)},
        )


class Buffer:
    """A device buffer with a host-side shadow array."""

    def __init__(self, context: "Context", host: np.ndarray):
        if host.ndim != 1 or host.dtype not in (np.int32, np.float32):
            raise RuntimeLaunchError(
                "buffers must be 1-D int32/float32 arrays "
                f"(got ndim={host.ndim}, dtype={host.dtype})"
            )
        self.context = context
        self.host = host

    @property
    def size(self) -> int:
        return int(self.host.shape[0])

    @property
    def dtype(self) -> np.dtype:
        return self.host.dtype

    def read(self) -> np.ndarray:
        """Return a copy of the current buffer contents."""
        return self.host.copy()

    def write(self, data: np.ndarray) -> None:
        if data.shape != self.host.shape:
            raise RuntimeLaunchError(
                f"write shape {data.shape} != buffer shape {self.host.shape}"
            )
        self.host[:] = data


class Program:
    """A set of kernels compiled for one backend."""

    def __init__(self, context: "Context", kernels: Sequence[Kernel]):
        self.context = context
        self.kernels = {k.name: k for k in kernels}
        self.compiled: dict[str, CompiledKernel] = {}
        for kernel in kernels:
            # Build failures propagate: Table I's per-benchmark outcome.
            self.compiled[kernel.name] = context.backend.build(kernel)

    def launch(
        self,
        name: str,
        args: Sequence[Any],
        global_size: int | tuple[int, ...],
        local_size: int | tuple[int, ...] | None = None,
    ) -> LaunchStats:
        if name not in self.compiled:
            raise RuntimeLaunchError(f"no kernel named {name!r} in program")
        compiled = self.compiled[name]
        kernel = compiled.kernel
        ndrange = NDRange.create(global_size, local_size)
        raw_args: list[Any] = []
        for param, arg in zip(kernel.params, args):
            if isinstance(arg, Buffer):
                raw_args.append(arg.host)
            elif is_pointer(param.ty):
                raise RuntimeLaunchError(
                    f"arg {param.name!r} must be a Buffer, got {type(arg)}"
                )
            else:
                raw_args.append(arg)
        if len(raw_args) != len(kernel.params):
            raise RuntimeLaunchError(
                f"kernel {name} expects {len(kernel.params)} args, "
                f"got {len(raw_args)}"
            )
        return compiled.launch(raw_args, ndrange)


class Context:
    """Top-level host handle bound to a single device backend."""

    def __init__(self, backend: DeviceBackend | None = None):
        self.backend = backend if backend is not None else ReferenceBackend()

    def buffer(self, data: np.ndarray) -> Buffer:
        """Create a buffer initialised from (a copy of) ``data``."""
        arr = np.array(data, copy=True)
        if arr.dtype == np.int64:
            arr = arr.astype(np.int32)
        elif arr.dtype == np.float64:
            arr = arr.astype(np.float32)
        return Buffer(self, arr)

    def alloc(self, size: int, dtype: Any = np.float32) -> Buffer:
        """Create a zero-initialised buffer of ``size`` elements."""
        return Buffer(self, np.zeros(size, dtype=dtype))

    def program(self, kernels: Sequence[Kernel]) -> Program:
        return Program(self, kernels)
