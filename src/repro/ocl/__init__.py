"""Mini-OpenCL frontend: kernel IR, builder DSL, NDRange, host API.

This package plays the role of "OpenCL source + host runtime" in the
paper's Figure 2. Kernels are built once with :class:`KernelBuilder` and
then consumed unmodified by both backends (:mod:`repro.hls` and
:mod:`repro.vortex`), which is the paper's central experimental control.
"""

from .builder import KernelBuilder, Var
from .host import (
    Buffer,
    CompiledKernel,
    Context,
    DeviceBackend,
    LaunchStats,
    Program,
    ReferenceBackend,
)
from . import patterns
from .interp import RunResult, interpret
from .ir import Block, Const, Instr, Kernel, LocalArray, Opcode, Param, Value
from .ndrange import NDRange
from .types import (
    BOOL,
    CONSTANT_FLOAT32,
    CONSTANT_INT32,
    FLOAT32,
    GLOBAL_FLOAT32,
    GLOBAL_INT32,
    INT32,
    LOCAL_FLOAT32,
    LOCAL_INT32,
    AddressSpace,
    PointerType,
    ScalarType,
    pointer,
)
from .validate import validate

__all__ = [
    "AddressSpace",
    "patterns",
    "BOOL",
    "Block",
    "Buffer",
    "CompiledKernel",
    "CONSTANT_FLOAT32",
    "CONSTANT_INT32",
    "Const",
    "Context",
    "DeviceBackend",
    "FLOAT32",
    "GLOBAL_FLOAT32",
    "GLOBAL_INT32",
    "INT32",
    "Instr",
    "Kernel",
    "KernelBuilder",
    "LaunchStats",
    "LOCAL_FLOAT32",
    "LOCAL_INT32",
    "LocalArray",
    "NDRange",
    "Opcode",
    "Param",
    "PointerType",
    "Program",
    "ReferenceBackend",
    "RunResult",
    "ScalarType",
    "Value",
    "Var",
    "interpret",
    "pointer",
    "validate",
]
