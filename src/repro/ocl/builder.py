"""Kernel construction DSL.

:class:`KernelBuilder` lets benchmark authors write kernels in Python with
structured control flow (``if_`` / ``if_else`` / ``for_range`` / ``while_``)
and mutable variables (:class:`Var`), and produces SSA IR directly using
on-the-fly SSA construction (Braun et al., CC'13): variable reads insert
phi nodes lazily, loop headers stay "unsealed" until their back edge is
known, and trivial phis are cleaned up at ``finish()``.

Example
-------
>>> from repro.ocl.builder import KernelBuilder
>>> from repro.ocl.types import GLOBAL_FLOAT32, INT32
>>> b = KernelBuilder("vecadd")
>>> a = b.param("a", GLOBAL_FLOAT32)
>>> out = b.param("out", GLOBAL_FLOAT32)
>>> n = b.param("n", INT32)
>>> gid = b.global_id(0)
>>> with b.if_(b.lt(gid, n)):
...     b.store(out, gid, b.add(b.load(a, gid), b.load(a, gid)))
>>> kernel = b.finish()
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Iterator

from ..errors import IRError, TypeMismatchError
from .ir import (
    Block,
    Const,
    Instr,
    Kernel,
    LocalArray,
    Opcode,
    Param,
    Value,
    iter_operands,
    predecessors,
    reachable_blocks,
)
from .types import (
    BOOL,
    FLOAT32,
    INT32,
    AddressSpace,
    PointerType,
    ScalarType,
    Type,
    is_pointer,
    pointer,
)

Operand = Value | int | float | bool


class Var:
    """A mutable variable backed by SSA construction.

    Reads (:meth:`get`) return the reaching SSA value; writes (:meth:`set`)
    record a new definition in the current block. Most builder methods
    accept a :class:`Var` anywhere a value is expected.
    """

    __slots__ = ("name", "ty", "_builder")

    def __init__(self, builder: "KernelBuilder", name: str, ty: ScalarType):
        self._builder = builder
        self.name = name
        self.ty = ty

    def get(self) -> Value:
        return self._builder._read_var(self)

    def set(self, value: Operand) -> None:
        self._builder._write_var(self, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Var {self.name}: {self.ty.name}>"


class _LoopFrame:
    __slots__ = ("header", "latch", "exit")

    def __init__(self, header: Block, latch: Block | None, exit_: Block):
        self.header = header
        self.latch = latch  # continue target (None => header)
        self.exit = exit_


class KernelBuilder:
    """Builds a :class:`~repro.ocl.ir.Kernel` incrementally."""

    def __init__(self, name: str):
        self.kernel = Kernel(name)
        self._cur: Block = self.kernel.add_block("entry")
        # SSA construction state (Braun et al.).
        self._defs: dict[str, dict[int, Value]] = {}
        self._sealed: set[int] = {id(self._cur)}
        self._incomplete: dict[int, dict[str, Instr]] = {}
        self._block_by_id: dict[int, Block] = {id(self._cur): self._cur}
        self._loops: list[_LoopFrame] = []
        self._finished = False

    # ------------------------------------------------------------------
    # Parameters, variables, arrays.
    # ------------------------------------------------------------------

    def param(self, name: str, ty: Type) -> Param:
        return self.kernel.add_param(name, ty)

    def var(self, name: str, ty: ScalarType, init: Operand | None = None) -> Var:
        v = Var(self, f"{name}.{self.kernel.fresh_name('var')}", ty)
        if init is not None:
            v.set(init)
        return v

    def local_array(self, name: str, elem: ScalarType, size: int) -> LocalArray:
        arr = LocalArray(name, pointer(AddressSpace.LOCAL, elem), size)
        self.kernel.arrays.append(arr)
        return arr

    def private_array(self, name: str, elem: ScalarType, size: int) -> LocalArray:
        arr = LocalArray(name, pointer(AddressSpace.PRIVATE, elem), size)
        self.kernel.arrays.append(arr)
        return arr

    # ------------------------------------------------------------------
    # Value coercion.
    # ------------------------------------------------------------------

    def const(self, value: Any, ty: ScalarType | None = None) -> Const:
        if ty is None:
            if isinstance(value, bool):
                ty = BOOL
            elif isinstance(value, int):
                ty = INT32
            elif isinstance(value, float):
                ty = FLOAT32
            else:
                raise TypeMismatchError(f"cannot infer constant type for {value!r}")
        return Const(ty, value)

    def _val(self, x: Operand, expect: Type | None = None) -> Value:
        """Coerce an operand: Vars are read, Python literals become consts."""
        if isinstance(x, Var):
            x = x.get()
        if isinstance(x, Value):
            return x
        if isinstance(x, bool):
            return Const(BOOL if expect is None else expect, x)  # type: ignore[arg-type]
        if isinstance(x, int):
            if expect is FLOAT32:
                return Const(FLOAT32, float(x))
            return Const(INT32, x)
        if isinstance(x, float):
            return Const(FLOAT32, x)
        raise TypeMismatchError(f"cannot use {x!r} as an IR operand")

    def _pair(self, a: Operand, b: Operand) -> tuple[Value, Value]:
        """Coerce a binary-op operand pair, letting a typed side win."""
        hint: Type | None = None
        for x in (a, b):
            if isinstance(x, Var):
                hint = x.ty
                break
            if isinstance(x, Value):
                hint = x.ty
                break
        av = self._val(a, hint)
        bv = self._val(b, av.ty)
        return av, bv

    # ------------------------------------------------------------------
    # Instruction emission.
    # ------------------------------------------------------------------

    def _emit(
        self,
        op: Opcode,
        ty: Type | None,
        args: list[Value],
        attrs: dict[str, Any] | None = None,
        targets: list[Block] | None = None,
    ) -> Instr:
        if self._finished:
            raise IRError("builder already finished")
        name = self.kernel.fresh_name() if ty is not None else ""
        ins = Instr(op, ty, args, attrs, targets, name)
        self._cur.append(ins)
        return ins

    def _binop(self, int_op: Opcode, float_op: Opcode | None, a: Operand, b: Operand) -> Instr:
        av, bv = self._pair(a, b)
        if av.ty is not bv.ty:
            raise TypeMismatchError(
                f"{int_op.value}: operand types differ ({av.ty} vs {bv.ty})"
            )
        if av.ty is FLOAT32:
            if float_op is None:
                raise TypeMismatchError(f"{int_op.value} not defined on float")
            return self._emit(float_op, FLOAT32, [av, bv])
        if av.ty is INT32:
            return self._emit(int_op, INT32, [av, bv])
        raise TypeMismatchError(f"{int_op.value} not defined on {av.ty}")

    # Type-dispatching arithmetic (int or float by operand type).
    def add(self, a: Operand, b: Operand) -> Instr:
        return self._binop(Opcode.ADD, Opcode.FADD, a, b)

    def sub(self, a: Operand, b: Operand) -> Instr:
        return self._binop(Opcode.SUB, Opcode.FSUB, a, b)

    def mul(self, a: Operand, b: Operand) -> Instr:
        return self._binop(Opcode.MUL, Opcode.FMUL, a, b)

    def div(self, a: Operand, b: Operand) -> Instr:
        return self._binop(Opcode.DIV, Opcode.FDIV, a, b)

    def rem(self, a: Operand, b: Operand) -> Instr:
        return self._binop(Opcode.REM, None, a, b)

    def min(self, a: Operand, b: Operand) -> Instr:
        return self._binop(Opcode.IMIN, Opcode.FMIN, a, b)

    def max(self, a: Operand, b: Operand) -> Instr:
        return self._binop(Opcode.IMAX, Opcode.FMAX, a, b)

    def abs(self, a: Operand) -> Instr:
        av = self._val(a)
        if av.ty is FLOAT32:
            return self._emit(Opcode.FABS, FLOAT32, [av])
        return self._emit(Opcode.IABS, INT32, [av])

    def neg(self, a: Operand) -> Instr:
        av = self._val(a)
        if av.ty is FLOAT32:
            return self._emit(Opcode.FNEG, FLOAT32, [av])
        return self.sub(self.const(0), av)

    # Bitwise / shifts (int only).
    def and_(self, a: Operand, b: Operand) -> Instr:
        return self._binop(Opcode.AND, None, a, b)

    def or_(self, a: Operand, b: Operand) -> Instr:
        return self._binop(Opcode.OR, None, a, b)

    def xor(self, a: Operand, b: Operand) -> Instr:
        return self._binop(Opcode.XOR, None, a, b)

    def shl(self, a: Operand, b: Operand) -> Instr:
        return self._binop(Opcode.SHL, None, a, b)

    def ashr(self, a: Operand, b: Operand) -> Instr:
        return self._binop(Opcode.ASHR, None, a, b)

    def lshr(self, a: Operand, b: Operand) -> Instr:
        return self._binop(Opcode.LSHR, None, a, b)

    # Float math builtins.
    def _unary_f(self, op: Opcode, a: Operand) -> Instr:
        av = self._val(a, FLOAT32)
        if av.ty is not FLOAT32:
            raise TypeMismatchError(f"{op.value} requires float operand")
        return self._emit(op, FLOAT32, [av])

    def sqrt(self, a: Operand) -> Instr:
        return self._unary_f(Opcode.SQRT, a)

    def exp(self, a: Operand) -> Instr:
        return self._unary_f(Opcode.EXP, a)

    def log(self, a: Operand) -> Instr:
        return self._unary_f(Opcode.LOG, a)

    def sin(self, a: Operand) -> Instr:
        return self._unary_f(Opcode.SIN, a)

    def cos(self, a: Operand) -> Instr:
        return self._unary_f(Opcode.COS, a)

    def floor(self, a: Operand) -> Instr:
        return self._unary_f(Opcode.FLOOR, a)

    def pow(self, a: Operand, b: Operand) -> Instr:
        av = self._val(a, FLOAT32)
        bv = self._val(b, FLOAT32)
        return self._emit(Opcode.POW, FLOAT32, [av, bv])

    # Comparisons (type-dispatched; result BOOL).
    def _cmp(self, ipred: str, fpred: str, a: Operand, b: Operand) -> Instr:
        av, bv = self._pair(a, b)
        if av.ty is not bv.ty:
            raise TypeMismatchError(f"cmp: operand types differ ({av.ty} vs {bv.ty})")
        if av.ty is FLOAT32:
            return self._emit(Opcode.FCMP, BOOL, [av, bv], {"pred": fpred})
        return self._emit(Opcode.ICMP, BOOL, [av, bv], {"pred": ipred})

    def eq(self, a: Operand, b: Operand) -> Instr:
        return self._cmp("eq", "oeq", a, b)

    def ne(self, a: Operand, b: Operand) -> Instr:
        return self._cmp("ne", "one", a, b)

    def lt(self, a: Operand, b: Operand) -> Instr:
        return self._cmp("slt", "olt", a, b)

    def le(self, a: Operand, b: Operand) -> Instr:
        return self._cmp("sle", "ole", a, b)

    def gt(self, a: Operand, b: Operand) -> Instr:
        return self._cmp("sgt", "ogt", a, b)

    def ge(self, a: Operand, b: Operand) -> Instr:
        return self._cmp("sge", "oge", a, b)

    def logical_and(self, a: Operand, b: Operand) -> Instr:
        """Non-short-circuit boolean AND (both sides already evaluated)."""
        av, bv = self._val(a), self._val(b)
        if av.ty is not BOOL or bv.ty is not BOOL:
            raise TypeMismatchError("logical_and requires bool operands")
        return self._emit(Opcode.AND, BOOL, [av, bv])

    def logical_or(self, a: Operand, b: Operand) -> Instr:
        av, bv = self._val(a), self._val(b)
        if av.ty is not BOOL or bv.ty is not BOOL:
            raise TypeMismatchError("logical_or requires bool operands")
        return self._emit(Opcode.OR, BOOL, [av, bv])

    def logical_not(self, a: Operand) -> Instr:
        av = self._val(a)
        if av.ty is not BOOL:
            raise TypeMismatchError("logical_not requires a bool operand")
        return self._emit(Opcode.XOR, BOOL, [av, Const(BOOL, True)])

    def select(self, cond: Operand, a: Operand, b: Operand) -> Instr:
        cv = self._val(cond)
        av, bv = self._pair(a, b)
        if cv.ty is not BOOL:
            raise TypeMismatchError("select condition must be bool")
        if av.ty is not bv.ty:
            raise TypeMismatchError("select arms must have the same type")
        return self._emit(Opcode.SELECT, av.ty, [cv, av, bv])

    # Conversions.
    def itof(self, a: Operand) -> Instr:
        av = self._val(a, INT32)
        if av.ty is FLOAT32:
            return av  # type: ignore[return-value]
        return self._emit(Opcode.SITOFP, FLOAT32, [av])

    def ftoi(self, a: Operand) -> Instr:
        av = self._val(a, FLOAT32)
        if av.ty is INT32:
            return av  # type: ignore[return-value]
        return self._emit(Opcode.FPTOSI, INT32, [av])

    def zext(self, a: Operand) -> Instr:
        av = self._val(a)
        if av.ty is INT32:
            return av  # type: ignore[return-value]
        return self._emit(Opcode.ZEXT, INT32, [av])

    # Memory.
    def load(self, ptr: Value, index: Operand, *, pipelined: bool = False) -> Instr:
        pv = self._ptr(ptr)
        iv = self._val(index, INT32)
        ins = self._emit(Opcode.LOAD, pv.ty.element, [pv, iv])
        if pipelined:
            self.kernel.directives[ins] = "pipelined_load"
        return ins

    def store(self, ptr: Value, index: Operand, value: Operand) -> Instr:
        pv = self._ptr(ptr)
        iv = self._val(index, INT32)
        vv = self._val(value, pv.ty.element)
        if vv.ty is not pv.ty.element:
            raise TypeMismatchError(
                f"store of {vv.ty} into pointer to {pv.ty.element}"
            )
        return self._emit(Opcode.STORE, None, [pv, iv, vv])

    def _ptr(self, ptr: Value) -> Value:
        if isinstance(ptr, Var):
            raise TypeMismatchError("pointers cannot be stored in Vars")
        if not is_pointer(ptr.ty):
            raise TypeMismatchError(f"expected a pointer, got {ptr.ty}")
        return ptr

    def _atomic(self, op: Opcode, ptr: Value, index: Operand, *vals: Operand) -> Instr:
        pv = self._ptr(ptr)
        iv = self._val(index, INT32)
        args = [pv, iv] + [self._val(v, pv.ty.element) for v in vals]
        return self._emit(op, pv.ty.element, args)

    def atomic_add(self, ptr: Value, index: Operand, value: Operand) -> Instr:
        return self._atomic(Opcode.ATOMIC_ADD, ptr, index, value)

    def atomic_min(self, ptr: Value, index: Operand, value: Operand) -> Instr:
        return self._atomic(Opcode.ATOMIC_MIN, ptr, index, value)

    def atomic_max(self, ptr: Value, index: Operand, value: Operand) -> Instr:
        return self._atomic(Opcode.ATOMIC_MAX, ptr, index, value)

    def atomic_xchg(self, ptr: Value, index: Operand, value: Operand) -> Instr:
        return self._atomic(Opcode.ATOMIC_XCHG, ptr, index, value)

    def atomic_cas(
        self, ptr: Value, index: Operand, expected: Operand, desired: Operand
    ) -> Instr:
        return self._atomic(Opcode.ATOMIC_CAS, ptr, index, expected, desired)

    # Work-item functions.
    def _wi(self, op: Opcode, dim: int) -> Instr:
        if dim not in (0, 1, 2):
            raise IRError(f"work-item dimension must be 0..2, got {dim}")
        return self._emit(op, INT32, [], {"dim": dim})

    def global_id(self, dim: int = 0) -> Instr:
        return self._wi(Opcode.GID, dim)

    def local_id(self, dim: int = 0) -> Instr:
        return self._wi(Opcode.LID, dim)

    def group_id(self, dim: int = 0) -> Instr:
        return self._wi(Opcode.GROUP_ID, dim)

    def local_size(self, dim: int = 0) -> Instr:
        return self._wi(Opcode.LOCAL_SIZE, dim)

    def global_size(self, dim: int = 0) -> Instr:
        return self._wi(Opcode.GLOBAL_SIZE, dim)

    def num_groups(self, dim: int = 0) -> Instr:
        return self._wi(Opcode.NUM_GROUPS, dim)

    # Sync / IO.
    def barrier(self) -> Instr:
        return self._emit(Opcode.BARRIER, None, [])

    def printf(self, fmt: str, *args: Operand) -> Instr:
        return self._emit(
            Opcode.PRINTF, None, [self._val(a) for a in args], {"fmt": fmt}
        )

    # ------------------------------------------------------------------
    # SSA construction (Braun et al., CC'13).
    # ------------------------------------------------------------------

    def _write_var(self, var: Var, value: Operand) -> None:
        val = self._val(value, var.ty)
        if val.ty is not var.ty:
            raise TypeMismatchError(
                f"assigning {val.ty} to variable {var.name} of type {var.ty}"
            )
        self._defs.setdefault(var.name, {})[id(self._cur)] = val

    def _read_var(self, var: Var) -> Value:
        return self._read_var_in(var, self._cur)

    def _read_var_in(self, var: Var, block: Block) -> Value:
        defs = self._defs.setdefault(var.name, {})
        if id(block) in defs:
            return defs[id(block)]
        return self._read_var_recursive(var, block)

    def _read_var_recursive(self, var: Var, block: Block) -> Value:
        preds = self._preds(block)
        if id(block) not in self._sealed:
            # Loop header whose back edge is not known yet: placeholder phi.
            phi = self._new_phi(block, var)
            self._incomplete.setdefault(id(block), {})[var.name] = phi
            val: Value = phi
        elif len(preds) == 1:
            val = self._read_var_in(var, preds[0])
        elif len(preds) == 0:
            raise IRError(
                f"variable {var.name!r} read before any assignment reaches "
                f"block {block.name}"
            )
        else:
            phi = self._new_phi(block, var)
            # Break potential cycles by defining before recursing.
            self._defs[var.name][id(block)] = phi
            self._add_phi_operands(phi, var, block)
            val = phi
        self._defs[var.name][id(block)] = val
        return val

    def _new_phi(self, block: Block, var: Var) -> Instr:
        phi = Instr(
            Opcode.PHI,
            var.ty,
            [],
            {"incomings": [], "var": var.name},
            name=self.kernel.fresh_name("phi"),
        )
        phi.block = block
        block.instrs.insert(0, phi)
        return phi

    def _add_phi_operands(self, phi: Instr, var: Var, block: Block) -> None:
        incomings = []
        for pred in self._preds(block):
            incomings.append((pred, self._read_var_in(var, pred)))
        phi.attrs["incomings"] = incomings

    def _preds(self, block: Block) -> list[Block]:
        preds = []
        for b in self.kernel.blocks:
            if block in b.successors:
                preds.append(b)
        return preds

    def _seal(self, block: Block) -> None:
        if id(block) in self._sealed:
            return
        self._sealed.add(id(block))
        for var_name, phi in self._incomplete.pop(id(block), {}).items():
            var = Var(self, var_name, phi.ty)  # type: ignore[arg-type]
            self._add_phi_operands(phi, var, block)

    # ------------------------------------------------------------------
    # Structured control flow.
    # ------------------------------------------------------------------

    def _new_block(self, prefix: str) -> Block:
        block = self.kernel.add_block(f"{prefix}{len(self.kernel.blocks)}")
        self._block_by_id[id(block)] = block
        return block

    def _branch_to(self, target: Block) -> None:
        """Terminate the current block with a BR if it isn't terminated."""
        if self._cur.terminator is None:
            self._emit(Opcode.BR, None, [], targets=[target])

    @contextlib.contextmanager
    def if_(self, cond: Operand) -> Iterator[None]:
        """``if (cond) { body }`` with no else branch."""
        cv = self._val(cond)
        if cv.ty is not BOOL:
            raise TypeMismatchError("if_ condition must be bool")
        then_bb = self._new_block("then")
        merge_bb = self._new_block("endif")
        self._emit(Opcode.CBR, None, [cv], targets=[then_bb, merge_bb])
        self._seal(then_bb)
        self._cur = then_bb
        yield
        self._branch_to(merge_bb)
        self._seal(merge_bb)
        self._cur = merge_bb

    @contextlib.contextmanager
    def if_else(self, cond: Operand) -> Iterator[tuple[Any, Any]]:
        """``if (cond) { then } else { otherwise }``.

        Yields two context managers; enter each exactly once::

            with b.if_else(cond) as (then, otherwise):
                with then:
                    ...
                with otherwise:
                    ...
        """
        cv = self._val(cond)
        if cv.ty is not BOOL:
            raise TypeMismatchError("if_else condition must be bool")
        then_bb = self._new_block("then")
        else_bb = self._new_block("else")
        merge_bb = self._new_block("endif")
        self._emit(Opcode.CBR, None, [cv], targets=[then_bb, else_bb])
        self._seal(then_bb)
        self._seal(else_bb)
        after = self._cur  # resume point if user forgets an arm (checked below)
        entered = {"then": False, "else": False}

        @contextlib.contextmanager
        def arm(block: Block, key: str) -> Iterator[None]:
            if entered[key]:
                raise IRError(f"{key} arm entered twice")
            entered[key] = True
            self._cur = block
            yield
            self._branch_to(merge_bb)

        yield arm(then_bb, "then"), arm(else_bb, "else")
        if not (entered["then"] and entered["else"]):
            raise IRError("if_else requires both arms to be entered")
        self._seal(merge_bb)
        self._cur = merge_bb

    @contextlib.contextmanager
    def for_range(
        self, start: Operand, stop: Operand, step: int = 1
    ) -> Iterator[Value]:
        """Counted loop ``for (i = start; i < stop; i += step)``.

        ``step`` must be a nonzero Python int; negative steps compare with
        ``>``. Yields the SSA induction value for use in the body.
        """
        if step == 0:
            raise IRError("for_range step must be nonzero")
        i = self.var("i", INT32, init=self._val(start, INT32))
        header = self._new_block("for")
        body = self._new_block("body")
        latch = self._new_block("latch")
        exit_bb = self._new_block("endfor")
        self._branch_to(header)
        self._cur = header  # unsealed: back edge comes from the latch
        iv = i.get()
        stop_v = self._val(stop, INT32)
        cond = self.lt(iv, stop_v) if step > 0 else self.gt(iv, stop_v)
        self._emit(Opcode.CBR, None, [cond], targets=[body, exit_bb])
        self._seal(body)
        self._cur = body
        self._loops.append(_LoopFrame(header, latch, exit_bb))
        yield iv
        self._loops.pop()
        self._branch_to(latch)
        self._seal(latch)
        self._cur = latch
        i.set(self.add(i.get(), self.const(step)))
        self._branch_to(header)
        self._seal(header)
        self._seal(exit_bb)
        self._cur = exit_bb

    @contextlib.contextmanager
    def while_(self, cond_fn: Callable[[], Operand]) -> Iterator[None]:
        """``while (cond) { body }``; the condition is built by ``cond_fn``
        inside the loop header so it re-evaluates each iteration."""
        header = self._new_block("while")
        body = self._new_block("body")
        latch = self._new_block("latch")
        exit_bb = self._new_block("endwhile")
        self._branch_to(header)
        self._cur = header  # unsealed until all back edges exist
        cv = self._val(cond_fn())
        if cv.ty is not BOOL:
            raise TypeMismatchError("while_ condition must be bool")
        self._emit(Opcode.CBR, None, [cv], targets=[body, exit_bb])
        self._seal(body)
        self._cur = body
        self._loops.append(_LoopFrame(header, latch, exit_bb))
        yield
        self._loops.pop()
        self._branch_to(latch)
        self._seal(latch)
        self._cur = latch
        self._branch_to(header)
        self._seal(header)
        self._seal(exit_bb)
        self._cur = exit_bb

    def break_(self) -> None:
        if not self._loops:
            raise IRError("break_ outside a loop")
        self._branch_to(self._loops[-1].exit)

    def continue_(self) -> None:
        if not self._loops:
            raise IRError("continue_ outside a loop")
        frame = self._loops[-1]
        self._branch_to(frame.latch if frame.latch is not None else frame.header)

    # ------------------------------------------------------------------
    # Finalisation.
    # ------------------------------------------------------------------

    def finish(self) -> Kernel:
        """Terminate, clean trivial phis, prune dead blocks, and return."""
        if self._finished:
            raise IRError("finish() called twice")
        if self._loops:
            raise IRError("finish() inside an open loop")
        if self._cur.terminator is None:
            self._emit(Opcode.RET, None, [])
        if self._incomplete:
            names = [self._block_by_id[b].name for b in self._incomplete]
            raise IRError(f"unsealed blocks at finish: {names}")
        self._finished = True
        self._remove_trivial_phis()
        self._prune_unreachable()
        return self.kernel

    def _remove_trivial_phis(self) -> None:
        """Fixpoint removal of phis whose incomings are all {self, X}."""
        changed = True
        while changed:
            changed = False
            replacements: dict[int, Value] = {}
            for block in self.kernel.blocks:
                for phi in list(block.phis()):
                    ops = {
                        id(v) for _, v in phi.attrs["incomings"] if v is not phi
                    }
                    if len(ops) == 1:
                        (only,) = [
                            v for _, v in phi.attrs["incomings"] if v is not phi
                        ][:1]
                        replacements[id(phi)] = only
                        block.instrs.remove(phi)
                        changed = True
            if replacements:
                def resolve(v: Value) -> Value:
                    seen = set()
                    while id(v) in replacements and id(v) not in seen:
                        seen.add(id(v))
                        v = replacements[id(v)]
                    return v

                for block in self.kernel.blocks:
                    for ins in block.instrs:
                        ins.args = [resolve(a) for a in ins.args]
                        if ins.op is Opcode.PHI:
                            ins.attrs["incomings"] = [
                                (b, resolve(v))
                                for b, v in ins.attrs["incomings"]
                            ]

    def _prune_unreachable(self) -> None:
        live = set(id(b) for b in reachable_blocks(self.kernel))
        self.kernel.blocks = [b for b in self.kernel.blocks if id(b) in live]
        # Drop phi incomings from removed predecessor blocks.
        preds = predecessors(self.kernel)
        for block in self.kernel.blocks:
            pred_ids = {id(p) for p in preds[block]}
            for phi in block.phis():
                phi.attrs["incomings"] = [
                    (b, v) for b, v in phi.attrs["incomings"] if id(b) in pred_ids
                ]
