"""Type system for the mini-OpenCL kernel IR.

The IR is deliberately small: 32-bit integers, 32-bit floats, booleans, and
typed pointers qualified by an OpenCL address space. This covers every
kernel in the paper's 28-benchmark suite (Rodinia and the NVIDIA OpenCL SDK
samples are overwhelmingly ``int``/``float`` codes).

Types are interned singletons: ``INT32 is INT32`` everywhere, and pointer
types are cached by (space, element), so type equality is identity and is
cheap in hot interpreter/codegen loops.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AddressSpace(enum.Enum):
    """OpenCL address spaces.

    GLOBAL   -- off-chip device memory (DDR4/HBM2 on the paper's boards)
    LOCAL    -- on-chip scratchpad shared by a work-group
    PRIVATE  -- per-work-item storage
    CONSTANT -- read-only global memory
    """

    GLOBAL = "global"
    LOCAL = "local"
    PRIVATE = "private"
    CONSTANT = "constant"


@dataclass(frozen=True)
class ScalarType:
    """A primitive value type. ``name`` is the OpenCL spelling."""

    name: str
    bits: int
    is_float: bool = False
    is_bool: bool = False

    @property
    def size_bytes(self) -> int:
        return max(1, self.bits // 8)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.name


INT32 = ScalarType("int", 32)
FLOAT32 = ScalarType("float", 32, is_float=True)
BOOL = ScalarType("bool", 1, is_bool=True)

#: All scalar types, for iteration in property-based tests.
SCALAR_TYPES = (INT32, FLOAT32, BOOL)


@dataclass(frozen=True)
class PointerType:
    """A typed pointer into one address space.

    Pointer arithmetic in the IR is expressed as ``load(ptr, index)`` /
    ``store(ptr, index, value)`` with an element index, i.e. the ``gep`` is
    folded into the access. This matches both backends' needs: the HLS flow
    infers one load/store unit per static access site, and the Vortex flow
    lowers the index to a shift+add address computation.
    """

    space: AddressSpace
    element: ScalarType

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.space.value} {self.element.name}*"


_POINTER_CACHE: dict[tuple[AddressSpace, ScalarType], PointerType] = {}


def pointer(space: AddressSpace, element: ScalarType) -> PointerType:
    """Return the interned pointer type for (space, element)."""
    key = (space, element)
    ty = _POINTER_CACHE.get(key)
    if ty is None:
        ty = PointerType(space, element)
        _POINTER_CACHE[key] = ty
    return ty


GLOBAL_INT32 = pointer(AddressSpace.GLOBAL, INT32)
GLOBAL_FLOAT32 = pointer(AddressSpace.GLOBAL, FLOAT32)
LOCAL_INT32 = pointer(AddressSpace.LOCAL, INT32)
LOCAL_FLOAT32 = pointer(AddressSpace.LOCAL, FLOAT32)
CONSTANT_INT32 = pointer(AddressSpace.CONSTANT, INT32)
CONSTANT_FLOAT32 = pointer(AddressSpace.CONSTANT, FLOAT32)
PRIVATE_INT32 = pointer(AddressSpace.PRIVATE, INT32)
PRIVATE_FLOAT32 = pointer(AddressSpace.PRIVATE, FLOAT32)

Type = ScalarType | PointerType


def is_pointer(ty: Type) -> bool:
    return isinstance(ty, PointerType)


def is_scalar(ty: Type) -> bool:
    return isinstance(ty, ScalarType)


def type_name(ty: Type) -> str:
    """Human-readable spelling used by the IR printer."""
    if isinstance(ty, PointerType):
        return f"{ty.space.value} {ty.element.name}*"
    return ty.name
