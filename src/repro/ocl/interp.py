"""Functional (work-item level) interpreter for the kernel IR.

This is the reference executor: it runs a kernel over an NDRange with
OpenCL semantics and bit-faithful arithmetic (int32 wraparound, float32
rounding after every operation), so its outputs can be compared both
against each benchmark's numpy reference *and* against the Vortex
cycle-level simulator, which executes the same kernels from machine code.

Work-group barriers are honoured by running each work item as a Python
generator that yields at BARRIER; the group scheduler advances all items
in lock-step between barriers and raises on barrier divergence (which is
undefined behaviour in OpenCL, and a real bug in a benchmark).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from ..errors import InterpreterError, RuntimeLaunchError
from ..profiling import Profiler, ensure_profiler
from .ir import Block, Const, Instr, Kernel, LocalArray, Opcode, Param, Value
from .ndrange import NDRange
from .types import BOOL, FLOAT32, INT32, AddressSpace, is_pointer

_INT_MIN = -(2**31)
_UINT_MASK = 0xFFFFFFFF


def wrap32(x: int) -> int:
    """Wrap a Python int to signed 32-bit two's complement."""
    return ((int(x) + 2**31) & _UINT_MASK) - 2**31


def f32(x: float) -> float:
    """Round a Python float to IEEE-754 binary32 (as Python float)."""
    return float(np.float32(x))


@dataclass
class RunResult:
    """Output of an interpreter run (buffers are mutated in place)."""

    printf_output: list[str] = field(default_factory=list)
    op_counts: Counter = field(default_factory=Counter)
    items_executed: int = 0
    barriers_executed: int = 0

    @property
    def dynamic_instructions(self) -> int:
        return sum(self.op_counts.values())


class _ItemState:
    """Per-work-item execution context."""

    __slots__ = ("gid", "lid", "group", "env", "private_arrays")

    def __init__(self, gid, lid, group):
        self.gid = gid
        self.lid = lid
        self.group = group
        self.env: dict[int, Any] = {}
        self.private_arrays: dict[int, np.ndarray] = {}


def _check_args(kernel: Kernel, args: list[Any]) -> None:
    if len(args) != len(kernel.params):
        raise RuntimeLaunchError(
            f"kernel {kernel.name} expects {len(kernel.params)} args, "
            f"got {len(args)}"
        )
    for param, arg in zip(kernel.params, args):
        if is_pointer(param.ty):
            if not isinstance(arg, np.ndarray) or arg.ndim != 1:
                raise RuntimeLaunchError(
                    f"arg {param.name!r} must be a 1-D numpy array"
                )
            want = np.int32 if param.ty.element is INT32 else np.float32
            if arg.dtype != want:
                raise RuntimeLaunchError(
                    f"arg {param.name!r}: dtype {arg.dtype} != {np.dtype(want)}"
                )
        else:
            if isinstance(arg, np.ndarray):
                raise RuntimeLaunchError(
                    f"arg {param.name!r} is scalar but got an array"
                )


def interpret(
    kernel: Kernel,
    args: list[Any],
    ndrange: NDRange,
    max_steps_per_item: int = 2_000_000,
    profiler: Profiler | None = None,
) -> RunResult:
    """Execute ``kernel`` over ``ndrange``; mutates buffer args in place.

    When ``profiler`` is enabled, records the kernel's dynamic op mix,
    barrier counts and per-work-group spans on a timeline measured in
    dynamic instruction steps (the interpreter has no cycle clock).
    """
    _check_args(kernel, args)
    result = RunResult()
    prof = ensure_profiler(profiler)

    base_env: dict[int, Any] = {}
    for param, arg in zip(kernel.params, args):
        if is_pointer(param.ty):
            base_env[id(param)] = arg
        elif param.ty is FLOAT32:
            base_env[id(param)] = f32(arg)
        elif param.ty is BOOL:
            base_env[id(param)] = bool(arg)
        else:
            base_env[id(param)] = wrap32(arg)

    for group in ndrange.groups():
        if prof.enabled:
            steps_before = sum(result.op_counts.values())
            barriers_before = result.barriers_executed
        _run_group(kernel, base_env, ndrange, group, result, max_steps_per_item)
        if prof.enabled:
            steps_after = sum(result.op_counts.values())
            prof.complete(
                f"group {group}", "interp.group",
                ts=steps_before, dur=steps_after - steps_before,
                pid=0, tid=0,
                args={"barriers": result.barriers_executed - barriers_before},
            )
    if prof.enabled:
        _record_run(prof, kernel, ndrange, result)
    return result


def _record_run(prof: Profiler, kernel: Kernel, ndr: NDRange,
                result: RunResult) -> None:
    """Fold one interpreter run into profiler counters."""
    prof.name_process(0, f"interpreter: {kernel.name}")
    prof.name_thread(0, 0, "work-groups (timeline = dynamic instructions)")
    prof.count("interp.items_executed", result.items_executed)
    prof.count("interp.barriers_executed", result.barriers_executed)
    prof.count("interp.dynamic_instructions", result.dynamic_instructions)
    prof.count("interp.groups", len(list(ndr.groups())))
    if result.items_executed:
        prof.count("interp.steps_per_item",
                   result.dynamic_instructions / result.items_executed)
    for op, n in result.op_counts.items():
        prof.count(f"interp.op.{op.value}", n)


def _run_group(
    kernel: Kernel,
    base_env: dict[int, Any],
    ndr: NDRange,
    group: tuple[int, int, int],
    result: RunResult,
    max_steps: int,
) -> None:
    local_arrays: dict[int, np.ndarray] = {}
    for arr in kernel.arrays:
        dtype = np.int32 if arr.ty.element is INT32 else np.float32
        if arr.space is AddressSpace.LOCAL:
            local_arrays[id(arr)] = np.zeros(arr.size, dtype=dtype)

    gens: list[Iterator[None]] = []
    for local in ndr.local_items():
        gid = ndr.global_id(group, local)
        item = _ItemState(gid, local, group)
        for arr in kernel.arrays:
            if arr.space is AddressSpace.PRIVATE:
                dtype = np.int32 if arr.ty.element is INT32 else np.float32
                item.private_arrays[id(arr)] = np.zeros(arr.size, dtype=dtype)
        gens.append(
            _exec_item(kernel, base_env, local_arrays, item, ndr, result, max_steps)
        )
        result.items_executed += 1

    # Lock-step between barriers.
    active = list(range(len(gens)))
    while active:
        at_barrier: list[int] = []
        done: list[int] = []
        for idx in active:
            try:
                next(gens[idx])
                at_barrier.append(idx)
            except StopIteration:
                done.append(idx)
        if at_barrier and done:
            raise InterpreterError(
                f"kernel {kernel.name}: barrier divergence in group {group} "
                f"({len(at_barrier)} items at a barrier, {len(done)} returned)"
            )
        if at_barrier:
            result.barriers_executed += 1
        active = at_barrier


def _exec_item(
    kernel: Kernel,
    base_env: dict[int, Any],
    local_arrays: dict[int, np.ndarray],
    item: _ItemState,
    ndr: NDRange,
    result: RunResult,
    max_steps: int,
) -> Iterator[None]:
    env = item.env
    counts = result.op_counts
    steps = 0
    block: Block = kernel.entry
    prev: Block | None = None

    def value_of(v: Value) -> Any:
        if isinstance(v, Const):
            if v.ty is FLOAT32:
                return f32(v.value)
            return v.value
        if isinstance(v, Instr):
            return env[id(v)]
        if isinstance(v, Param):
            return base_env[id(v)]
        if isinstance(v, LocalArray):
            if v.space is AddressSpace.PRIVATE:
                return item.private_arrays[id(v)]
            return local_arrays[id(v)]
        raise InterpreterError(f"unknown value kind: {v!r}")  # pragma: no cover

    while True:
        # Phis evaluate in parallel against the edge we arrived on.
        phi_updates: list[tuple[Instr, Any]] = []
        for phi in block.phis():
            for pred, val in phi.attrs["incomings"]:
                if pred is prev:
                    phi_updates.append((phi, value_of(val)))
                    break
            else:
                raise InterpreterError(
                    f"{kernel.name}/{block.name}: phi %{phi.name} has no "
                    f"incoming for predecessor "
                    f"{prev.name if prev else '<entry>'}"
                )
        for phi, val in phi_updates:
            env[id(phi)] = val
            counts[Opcode.PHI] += 1

        for ins in block.non_phis():
            steps += 1
            if steps > max_steps:
                raise InterpreterError(
                    f"kernel {kernel.name}: work item {item.gid} exceeded "
                    f"{max_steps} steps (runaway loop?)"
                )
            op = ins.op
            counts[op] += 1
            if op is Opcode.BR:
                prev, block = block, ins.targets[0]
                break
            if op is Opcode.CBR:
                taken = bool(value_of(ins.args[0]))
                prev, block = block, ins.targets[0 if taken else 1]
                break
            if op is Opcode.RET:
                return
            if op is Opcode.BARRIER:
                yield
                continue
            env[id(ins)] = _eval(kernel, ins, value_of, item, ndr, result)
        else:  # pragma: no cover - validator guarantees a terminator
            raise InterpreterError(f"block {block.name} fell through")


def _bounds(arr: np.ndarray, idx: int, ins: Instr, kernel: Kernel) -> int:
    if not 0 <= idx < arr.shape[0]:
        raise InterpreterError(
            f"kernel {kernel.name}: out-of-bounds access index {idx} "
            f"(size {arr.shape[0]}) at '{ins.format()}'"
        )
    return idx


def _store_value(arr: np.ndarray, val: Any) -> Any:
    if arr.dtype == np.int32:
        return wrap32(val)
    return f32(val)


def _eval(
    kernel: Kernel,
    ins: Instr,
    value_of,
    item: _ItemState,
    ndr: NDRange,
    result: RunResult,
) -> Any:
    op = ins.op
    a = ins.args

    # Integer arithmetic with 32-bit wrap.
    if op is Opcode.ADD:
        return wrap32(value_of(a[0]) + value_of(a[1]))
    if op is Opcode.SUB:
        return wrap32(value_of(a[0]) - value_of(a[1]))
    if op is Opcode.MUL:
        return wrap32(value_of(a[0]) * value_of(a[1]))
    if op is Opcode.DIV:
        x, y = value_of(a[0]), value_of(a[1])
        if y == 0:
            raise InterpreterError(f"{kernel.name}: integer division by zero")
        return wrap32(int(math.trunc(x / y)) if (x < 0) != (y < 0) else x // y)
    if op is Opcode.REM:
        x, y = value_of(a[0]), value_of(a[1])
        if y == 0:
            raise InterpreterError(f"{kernel.name}: integer remainder by zero")
        q = int(math.trunc(x / y)) if (x < 0) != (y < 0) else x // y
        return wrap32(x - q * y)
    if op is Opcode.AND:
        x, y = value_of(a[0]), value_of(a[1])
        if ins.ty is BOOL:
            return bool(x) and bool(y)
        return wrap32(x & y)
    if op is Opcode.OR:
        x, y = value_of(a[0]), value_of(a[1])
        if ins.ty is BOOL:
            return bool(x) or bool(y)
        return wrap32(x | y)
    if op is Opcode.XOR:
        x, y = value_of(a[0]), value_of(a[1])
        if ins.ty is BOOL:
            return bool(x) != bool(y)
        return wrap32(x ^ y)
    if op is Opcode.SHL:
        return wrap32(value_of(a[0]) << (value_of(a[1]) & 31))
    if op is Opcode.ASHR:
        return wrap32(value_of(a[0]) >> (value_of(a[1]) & 31))
    if op is Opcode.LSHR:
        return wrap32((value_of(a[0]) & _UINT_MASK) >> (value_of(a[1]) & 31))
    if op is Opcode.IMIN:
        return min(value_of(a[0]), value_of(a[1]))
    if op is Opcode.IMAX:
        return max(value_of(a[0]), value_of(a[1]))
    if op is Opcode.IABS:
        return wrap32(abs(value_of(a[0])))

    # Float arithmetic, rounded to binary32 after each op.
    if op is Opcode.FADD:
        return f32(value_of(a[0]) + value_of(a[1]))
    if op is Opcode.FSUB:
        return f32(value_of(a[0]) - value_of(a[1]))
    if op is Opcode.FMUL:
        return f32(value_of(a[0]) * value_of(a[1]))
    if op is Opcode.FDIV:
        y = value_of(a[1])
        if y == 0.0:
            return f32(math.inf if value_of(a[0]) > 0 else -math.inf) \
                if value_of(a[0]) != 0 else f32(math.nan)
        return f32(value_of(a[0]) / y)
    if op is Opcode.FNEG:
        return f32(-value_of(a[0]))
    if op is Opcode.SQRT:
        x = value_of(a[0])
        return f32(math.nan) if x < 0 else f32(math.sqrt(x))
    if op is Opcode.EXP:
        try:
            return f32(math.exp(value_of(a[0])))
        except OverflowError:
            return f32(math.inf)
    if op is Opcode.LOG:
        x = value_of(a[0])
        if x < 0:
            return f32(math.nan)
        if x == 0:
            return f32(-math.inf)
        return f32(math.log(x))
    if op is Opcode.SIN:
        return f32(math.sin(value_of(a[0])))
    if op is Opcode.COS:
        return f32(math.cos(value_of(a[0])))
    if op is Opcode.FABS:
        return f32(abs(value_of(a[0])))
    if op is Opcode.FLOOR:
        return f32(math.floor(value_of(a[0])))
    if op is Opcode.POW:
        x, y = value_of(a[0]), value_of(a[1])
        try:
            return f32(math.pow(x, y))
        except (ValueError, OverflowError):
            return f32(math.nan)
    if op is Opcode.FMIN:
        return f32(min(value_of(a[0]), value_of(a[1])))
    if op is Opcode.FMAX:
        return f32(max(value_of(a[0]), value_of(a[1])))

    # Comparisons / select / conversions.
    if op is Opcode.ICMP or op is Opcode.FCMP:
        x, y = value_of(a[0]), value_of(a[1])
        pred = ins.attrs["pred"]
        table = {
            "eq": x == y, "ne": x != y, "slt": x < y, "sle": x <= y,
            "sgt": x > y, "sge": x >= y,
            "oeq": x == y, "one": x != y, "olt": x < y, "ole": x <= y,
            "ogt": x > y, "oge": x >= y,
        }
        return bool(table[pred])
    if op is Opcode.SELECT:
        return value_of(a[1]) if bool(value_of(a[0])) else value_of(a[2])
    if op is Opcode.SITOFP:
        return f32(float(value_of(a[0])))
    if op is Opcode.FPTOSI:
        x = value_of(a[0])
        if math.isnan(x):
            return 0
        return wrap32(int(math.trunc(x)))
    if op is Opcode.ZEXT:
        return 1 if value_of(a[0]) else 0

    # Memory.
    if op is Opcode.LOAD:
        arr = value_of(a[0])
        idx = _bounds(arr, value_of(a[1]), ins, kernel)
        v = arr[idx]
        return int(v) if arr.dtype == np.int32 else float(v)
    if op is Opcode.STORE:
        arr = value_of(a[0])
        idx = _bounds(arr, value_of(a[1]), ins, kernel)
        arr[idx] = _store_value(arr, value_of(a[2]))
        return None
    if op in (Opcode.ATOMIC_ADD, Opcode.ATOMIC_MIN, Opcode.ATOMIC_MAX,
              Opcode.ATOMIC_XCHG):
        arr = value_of(a[0])
        idx = _bounds(arr, value_of(a[1]), ins, kernel)
        old = int(arr[idx]) if arr.dtype == np.int32 else float(arr[idx])
        val = value_of(a[2])
        if op is Opcode.ATOMIC_ADD:
            new = old + val
        elif op is Opcode.ATOMIC_MIN:
            new = min(old, val)
        elif op is Opcode.ATOMIC_MAX:
            new = max(old, val)
        else:
            new = val
        arr[idx] = _store_value(arr, new)
        return old
    if op is Opcode.ATOMIC_CAS:
        arr = value_of(a[0])
        idx = _bounds(arr, value_of(a[1]), ins, kernel)
        old = int(arr[idx]) if arr.dtype == np.int32 else float(arr[idx])
        if old == value_of(a[2]):
            arr[idx] = _store_value(arr, value_of(a[3]))
        return old

    # Work-item queries.
    if op is Opcode.GID:
        return item.gid[ins.attrs["dim"]]
    if op is Opcode.LID:
        return item.lid[ins.attrs["dim"]]
    if op is Opcode.GROUP_ID:
        return item.group[ins.attrs["dim"]]
    if op is Opcode.LOCAL_SIZE:
        return ndr.local_size[ins.attrs["dim"]]
    if op is Opcode.GLOBAL_SIZE:
        return ndr.global_size[ins.attrs["dim"]]
    if op is Opcode.NUM_GROUPS:
        return ndr.num_groups[ins.attrs["dim"]]

    if op is Opcode.PRINTF:
        vals = tuple(value_of(v) for v in a)
        try:
            text = ins.attrs["fmt"] % vals
        except (TypeError, ValueError) as exc:
            raise InterpreterError(
                f"{kernel.name}: bad printf format {ins.attrs['fmt']!r}: {exc}"
            ) from exc
        result.printf_output.append(text)
        return None

    raise InterpreterError(f"interpreter cannot execute {op}")  # pragma: no cover
