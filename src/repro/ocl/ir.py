"""SSA kernel IR.

This module defines the in-memory form shared by every consumer in the
repository: the functional interpreter (:mod:`repro.ocl.interp`), the
middle-end passes (:mod:`repro.passes`), the HLS flow (:mod:`repro.hls`)
and the Vortex code generator (:mod:`repro.vortex.codegen`). It plays the
role OpenCL C + LLVM IR play in the paper's Figure 2: one kernel artifact
consumed unmodified by both backends.

Shape
-----
A :class:`Kernel` is a list of :class:`Block`; each block holds a list of
:class:`Instr` ending in exactly one terminator (``BR``/``CBR``/``RET``).
Instructions are in SSA form: each value-producing instruction *is* the
value. ``PHI`` nodes appear only at block heads. Constants and kernel
parameters are non-instruction :class:`Value` objects.

The instruction set is a single class keyed by :class:`Opcode` rather than
one subclass per op; the interpreter and both backends dispatch on the
opcode, and a closed enum keeps exhaustiveness checkable in tests.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Iterable, Iterator

from ..errors import IRError
from .types import (
    BOOL,
    FLOAT32,
    INT32,
    AddressSpace,
    PointerType,
    ScalarType,
    Type,
    is_pointer,
    type_name,
)


class Opcode(enum.Enum):
    # Integer arithmetic / bitwise.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"  # signed division, truncating toward zero (C semantics)
    REM = "rem"  # signed remainder
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    ASHR = "ashr"
    LSHR = "lshr"
    IMIN = "imin"
    IMAX = "imax"
    IABS = "iabs"

    # Float arithmetic and math builtins.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"
    SQRT = "sqrt"
    EXP = "exp"
    LOG = "log"
    SIN = "sin"
    COS = "cos"
    FABS = "fabs"
    FLOOR = "floor"
    POW = "pow"
    FMIN = "fmin"
    FMAX = "fmax"

    # Comparisons, selection, conversions.
    ICMP = "icmp"  # attrs: pred in {eq, ne, slt, sle, sgt, sge}
    FCMP = "fcmp"  # attrs: pred in {oeq, one, olt, ole, ogt, oge}
    SELECT = "select"
    SITOFP = "sitofp"
    FPTOSI = "fptosi"
    ZEXT = "zext"  # bool -> int

    # Memory. The element index is folded into the access (no separate GEP).
    LOAD = "load"  # (ptr, index)
    STORE = "store"  # (ptr, index, value)
    ATOMIC_ADD = "atomic_add"  # (ptr, index, value) -> old
    ATOMIC_MIN = "atomic_min"
    ATOMIC_MAX = "atomic_max"
    ATOMIC_XCHG = "atomic_xchg"
    ATOMIC_CAS = "atomic_cas"  # (ptr, index, expected, desired) -> old

    # Work-item functions. attrs: dim in {0, 1, 2}.
    GID = "get_global_id"
    LID = "get_local_id"
    GROUP_ID = "get_group_id"
    LOCAL_SIZE = "get_local_size"
    GLOBAL_SIZE = "get_global_size"
    NUM_GROUPS = "get_num_groups"

    # Synchronisation and I/O.
    BARRIER = "barrier"
    PRINTF = "printf"  # attrs: fmt (str); args are the varargs

    # SSA / control flow.
    PHI = "phi"
    BR = "br"
    CBR = "cbr"  # (cond); targets = [then, else]
    RET = "ret"


#: Opcodes that terminate a basic block.
TERMINATORS = frozenset({Opcode.BR, Opcode.CBR, Opcode.RET})

#: Opcodes that read memory.
MEMORY_READS = frozenset(
    {
        Opcode.LOAD,
        Opcode.ATOMIC_ADD,
        Opcode.ATOMIC_MIN,
        Opcode.ATOMIC_MAX,
        Opcode.ATOMIC_XCHG,
        Opcode.ATOMIC_CAS,
    }
)

#: Opcodes that write memory.
MEMORY_WRITES = frozenset(
    {
        Opcode.STORE,
        Opcode.ATOMIC_ADD,
        Opcode.ATOMIC_MIN,
        Opcode.ATOMIC_MAX,
        Opcode.ATOMIC_XCHG,
        Opcode.ATOMIC_CAS,
    }
)

#: All atomic read-modify-write opcodes.
ATOMIC_OPS = frozenset(
    {
        Opcode.ATOMIC_ADD,
        Opcode.ATOMIC_MIN,
        Opcode.ATOMIC_MAX,
        Opcode.ATOMIC_XCHG,
        Opcode.ATOMIC_CAS,
    }
)

#: Work-item query opcodes (uniform per the queried dimension granularity).
WORKITEM_OPS = frozenset(
    {
        Opcode.GID,
        Opcode.LID,
        Opcode.GROUP_ID,
        Opcode.LOCAL_SIZE,
        Opcode.GLOBAL_SIZE,
        Opcode.NUM_GROUPS,
    }
)

#: Opcodes with side effects that must never be removed by DCE.
SIDE_EFFECTS = MEMORY_WRITES | {Opcode.BARRIER, Opcode.PRINTF} | TERMINATORS

#: Transcendental / long-latency float ops (used by both cost models).
TRANSCENDENTAL = frozenset(
    {Opcode.SQRT, Opcode.EXP, Opcode.LOG, Opcode.SIN, Opcode.COS, Opcode.POW}
)

ICMP_PREDS = ("eq", "ne", "slt", "sle", "sgt", "sge")
FCMP_PREDS = ("oeq", "one", "olt", "ole", "ogt", "oge")


class Value:
    """Anything that can appear as an instruction operand."""

    __slots__ = ("ty", "name")

    def __init__(self, ty: Type, name: str):
        self.ty = ty
        self.name = name

    def short(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.short()}: {type_name(self.ty)}"


class Const(Value):
    """An immediate constant. ``value`` is a Python int/float/bool."""

    __slots__ = ("value",)

    def __init__(self, ty: ScalarType, value: Any):
        super().__init__(ty, f"c{value}")
        if ty is INT32:
            value = int(value)
        elif ty is FLOAT32:
            value = float(value)
        elif ty is BOOL:
            value = bool(value)
        self.value = value

    def short(self) -> str:
        return repr(self.value)


class Param(Value):
    """A kernel parameter (scalar or pointer)."""

    __slots__ = ("index",)

    def __init__(self, name: str, ty: Type, index: int):
        super().__init__(ty, name)
        self.index = index


class LocalArray(Value):
    """A statically sized on-chip array in LOCAL or PRIVATE space.

    LOCAL arrays are shared by a work-group (the HLS flow maps them to
    dedicated BRAM, Vortex maps them to its shared-memory region); PRIVATE
    arrays are per work item (HLS: registers/BRAM, Vortex: stack memory).
    """

    __slots__ = ("size", "space")

    def __init__(self, name: str, ty: PointerType, size: int):
        super().__init__(ty, name)
        if size <= 0:
            raise IRError(f"array {name!r} must have positive size, got {size}")
        self.size = int(size)
        self.space = ty.space


class Instr(Value):
    """One SSA instruction.

    ``args`` are value operands; ``attrs`` holds non-value immediates
    (comparison predicate, work-item dimension, printf format string).
    Terminators store successor blocks in ``targets``. Instructions whose
    ``ty`` is None produce no value (stores, barriers, terminators).
    """

    __slots__ = ("op", "args", "attrs", "targets", "block")

    def __init__(
        self,
        op: Opcode,
        ty: Type | None,
        args: list[Value],
        attrs: dict[str, Any] | None = None,
        targets: list["Block"] | None = None,
        name: str = "",
    ):
        super().__init__(ty, name)  # type: ignore[arg-type]
        self.op = op
        self.args = list(args)
        self.attrs = attrs or {}
        self.targets = targets or []
        self.block: "Block" | None = None

    @property
    def is_terminator(self) -> bool:
        return self.op in TERMINATORS

    @property
    def has_side_effects(self) -> bool:
        return self.op in SIDE_EFFECTS

    def replace_uses(self, old: Value, new: Value) -> None:
        """Replace every operand equal to ``old`` with ``new``."""
        self.args = [new if a is old else a for a in self.args]
        if self.op is Opcode.PHI:
            inc = self.attrs["incomings"]
            self.attrs["incomings"] = [
                (blk, new if val is old else val) for blk, val in inc
            ]

    def format(self) -> str:
        """Render one line of textual IR."""
        parts = []
        if self.ty is not None:
            parts.append(f"%{self.name} = ")
        parts.append(self.op.value)
        extras = []
        for key, val in self.attrs.items():
            if key == "incomings":
                val = ", ".join(f"[{b.name}: {v.short()}]" for b, v in val)
            extras.append(f"{key}={val}")
        if extras:
            parts.append(f"<{', '.join(extras)}>")
        if self.args:
            parts.append(" " + ", ".join(a.short() for a in self.args))
        if self.targets:
            parts.append(" -> " + ", ".join(b.name for b in self.targets))
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Instr {self.format()}>"


class Block:
    """A basic block: zero or more phis, then straight-line code, then a
    single terminator."""

    __slots__ = ("name", "instrs")

    def __init__(self, name: str):
        self.name = name
        self.instrs: list[Instr] = []

    @property
    def terminator(self) -> Instr | None:
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None

    @property
    def successors(self) -> list["Block"]:
        term = self.terminator
        return list(term.targets) if term else []

    def phis(self) -> Iterator[Instr]:
        for ins in self.instrs:
            if ins.op is Opcode.PHI:
                yield ins
            else:
                break

    def non_phis(self) -> Iterator[Instr]:
        for ins in self.instrs:
            if ins.op is not Opcode.PHI:
                yield ins

    def append(self, instr: Instr) -> Instr:
        if self.terminator is not None:
            raise IRError(f"block {self.name} already terminated")
        instr.block = self
        self.instrs.append(instr)
        return instr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Block {self.name} ({len(self.instrs)} instrs)>"


class Kernel:
    """A complete kernel function.

    Attributes
    ----------
    name: kernel name (the OpenCL ``__kernel`` function name).
    params: ordered parameters.
    blocks: basic blocks in layout order; ``blocks[0]`` is the entry.
    arrays: LOCAL/PRIVATE arrays declared by the kernel.
    directives: per-access HLS directives, e.g. the paper's
        ``__pipelined_load`` (Listing 3) recorded as instruction -> kind.
    """

    def __init__(self, name: str):
        self.name = name
        self.params: list[Param] = []
        self.blocks: list[Block] = []
        self.arrays: list[LocalArray] = []
        self.directives: dict[Instr, str] = {}
        self._name_counter = itertools.count()

    # -- construction helpers used by the builder -------------------------

    def add_param(self, name: str, ty: Type) -> Param:
        param = Param(name, ty, len(self.params))
        self.params.append(param)
        return param

    def add_block(self, name: str = "") -> Block:
        if not name:
            name = f"bb{len(self.blocks)}"
        block = Block(name)
        self.blocks.append(block)
        return block

    def fresh_name(self, prefix: str = "v") -> str:
        return f"{prefix}{next(self._name_counter)}"

    # -- queries -----------------------------------------------------------

    @property
    def entry(self) -> Block:
        if not self.blocks:
            raise IRError(f"kernel {self.name} has no blocks")
        return self.blocks[0]

    def instructions(self) -> Iterator[Instr]:
        for block in self.blocks:
            yield from block.instrs

    def param_by_name(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(name)

    def uses_atomics(self) -> bool:
        return any(ins.op in ATOMIC_OPS for ins in self.instructions())

    def uses_barrier(self) -> bool:
        return any(ins.op is Opcode.BARRIER for ins in self.instructions())

    def uses_printf(self) -> bool:
        return any(ins.op is Opcode.PRINTF for ins in self.instructions())

    def global_accesses(self) -> Iterator[Instr]:
        """Static LOAD/STORE/atomic sites touching GLOBAL/CONSTANT memory."""
        for ins in self.instructions():
            if ins.op in (MEMORY_READS | MEMORY_WRITES):
                ptr = ins.args[0]
                if is_pointer(ptr.ty) and ptr.ty.space in (
                    AddressSpace.GLOBAL,
                    AddressSpace.CONSTANT,
                ):
                    yield ins

    def format(self) -> str:
        """Textual IR dump (stable, used in golden tests)."""
        lines = [
            "kernel %s(%s) {"
            % (
                self.name,
                ", ".join(f"{p.name}: {type_name(p.ty)}" for p in self.params),
            )
        ]
        for arr in self.arrays:
            lines.append(
                f"  {arr.space.value} {arr.ty.element.name} {arr.name}[{arr.size}]"
            )
        for block in self.blocks:
            lines.append(f"{block.name}:")
            for ins in block.instrs:
                line = f"  {ins.format()}"
                directive = self.directives.get(ins)
                if directive:
                    line += f"  ; __{directive}"
                lines.append(line)
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nin = sum(len(b.instrs) for b in self.blocks)
        return f"<Kernel {self.name}: {len(self.blocks)} blocks, {nin} instrs>"


def predecessors(kernel: Kernel) -> dict[Block, list[Block]]:
    """Map each block to its CFG predecessors, in deterministic order."""
    preds: dict[Block, list[Block]] = {b: [] for b in kernel.blocks}
    for block in kernel.blocks:
        for succ in block.successors:
            preds[succ].append(block)
    return preds


def reachable_blocks(kernel: Kernel) -> list[Block]:
    """Blocks reachable from the entry, in reverse-postorder."""
    seen: set[int] = set()
    order: list[Block] = []

    def visit(block: Block) -> None:
        if id(block) in seen:
            return
        seen.add(id(block))
        for succ in block.successors:
            visit(succ)
        order.append(block)

    visit(kernel.entry)
    order.reverse()
    return order


def iter_operands(instr: Instr) -> Iterable[Value]:
    """All value operands of an instruction, including phi incomings."""
    yield from instr.args
    if instr.op is Opcode.PHI:
        for _, val in instr.attrs["incomings"]:
            yield val


def clone_kernel(kernel: Kernel) -> Kernel:
    """Deep-copy a kernel (blocks, instructions, arrays, directives).

    Parameters are shared (they are immutable descriptors); instructions,
    blocks and arrays are fresh objects, so passes may mutate the clone
    without touching the original. Used by backends that run transforms
    (e.g. ``aoc(..., auto_cse=True)``).
    """
    new = Kernel(kernel.name)
    new.params = list(kernel.params)
    array_map: dict[int, LocalArray] = {}
    for arr in kernel.arrays:
        copy = LocalArray(arr.name, arr.ty, arr.size)
        array_map[id(arr)] = copy
        new.arrays.append(copy)

    block_map: dict[int, Block] = {}
    for block in kernel.blocks:
        block_map[id(block)] = new.add_block(block.name)

    value_map: dict[int, Value] = dict(array_map)

    def map_value(v: Value) -> Value:
        return value_map.get(id(v), v)

    # First pass: create instruction shells so forward refs (phis) resolve.
    for block in kernel.blocks:
        target = block_map[id(block)]
        for ins in block.instrs:
            copy = Instr(ins.op, ins.ty, [], dict(ins.attrs), [], ins.name)
            copy.block = target
            target.instrs.append(copy)
            value_map[id(ins)] = copy

    # Second pass: wire operands, targets and phi incomings.
    for block in kernel.blocks:
        target = block_map[id(block)]
        for ins, copy in zip(block.instrs, target.instrs):
            copy.args = [map_value(a) for a in ins.args]
            copy.targets = [block_map[id(t)] for t in ins.targets]
            if ins.op is Opcode.PHI:
                copy.attrs["incomings"] = [
                    (block_map[id(b)], map_value(v))
                    for b, v in ins.attrs["incomings"]
                ]

    for ins, kind in kernel.directives.items():
        mapped = value_map.get(id(ins))
        if isinstance(mapped, Instr):
            new.directives[mapped] = kind
    new._name_counter = itertools.count(
        sum(len(b.instrs) for b in kernel.blocks) + 1000
    )
    return new
