"""IR verifier.

``validate(kernel)`` raises :class:`~repro.errors.IRError` on structural
problems. Both backends call it before compiling, and the builder's tests
use it as the ground truth for "did the builder produce legal SSA".

Checked invariants:

* every block has exactly one terminator, as its last instruction;
* phis appear only at block heads and their incoming edges exactly match
  the block's CFG predecessors;
* all branch targets belong to the kernel;
* operand types match each opcode's signature;
* every SSA value is defined before use (dominance, conservatively checked
  via reverse-postorder availability);
* value names are unique.
"""

from __future__ import annotations

from ..errors import IRError, TypeMismatchError
from .ir import (
    ATOMIC_OPS,
    FCMP_PREDS,
    ICMP_PREDS,
    Block,
    Const,
    Instr,
    Kernel,
    LocalArray,
    Opcode,
    Param,
    Value,
    iter_operands,
    predecessors,
    reachable_blocks,
)
from .types import BOOL, FLOAT32, INT32, is_pointer

_INT_BINOPS = {
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
    Opcode.SHL, Opcode.ASHR, Opcode.LSHR, Opcode.IMIN, Opcode.IMAX,
}
_BOOL_OR_INT_BINOPS = {Opcode.AND, Opcode.OR, Opcode.XOR}
_FLOAT_BINOPS = {
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.POW,
    Opcode.FMIN, Opcode.FMAX,
}
_FLOAT_UNOPS = {
    Opcode.FNEG, Opcode.SQRT, Opcode.EXP, Opcode.LOG, Opcode.SIN,
    Opcode.COS, Opcode.FABS, Opcode.FLOOR,
}


def validate(kernel: Kernel) -> None:
    if not kernel.blocks:
        raise IRError(f"kernel {kernel.name}: no blocks")
    _check_blocks(kernel)
    _check_names(kernel)
    _check_phis(kernel)
    _check_types(kernel)
    _check_dominance(kernel)


def _check_blocks(kernel: Kernel) -> None:
    block_ids = {id(b) for b in kernel.blocks}
    for block in kernel.blocks:
        if not block.instrs:
            raise IRError(f"{kernel.name}/{block.name}: empty block")
        term = block.instrs[-1]
        if not term.is_terminator:
            raise IRError(f"{kernel.name}/{block.name}: missing terminator")
        for ins in block.instrs[:-1]:
            if ins.is_terminator:
                raise IRError(
                    f"{kernel.name}/{block.name}: terminator {ins.op.value} "
                    "not at end of block"
                )
        for target in term.targets:
            if id(target) not in block_ids:
                raise IRError(
                    f"{kernel.name}/{block.name}: branch to foreign block "
                    f"{target.name}"
                )
        if term.op is Opcode.BR and len(term.targets) != 1:
            raise IRError(f"{kernel.name}/{block.name}: BR needs 1 target")
        if term.op is Opcode.CBR:
            if len(term.targets) != 2:
                raise IRError(f"{kernel.name}/{block.name}: CBR needs 2 targets")
            if len(term.args) != 1 or term.args[0].ty is not BOOL:
                raise TypeMismatchError(
                    f"{kernel.name}/{block.name}: CBR condition must be bool"
                )


def _check_names(kernel: Kernel) -> None:
    seen: dict[str, Value] = {}
    for p in kernel.params:
        if p.name in seen:
            raise IRError(f"{kernel.name}: duplicate name {p.name}")
        seen[p.name] = p
    for arr in kernel.arrays:
        if arr.name in seen:
            raise IRError(f"{kernel.name}: duplicate name {arr.name}")
        seen[arr.name] = arr
    for ins in kernel.instructions():
        if ins.ty is None:
            continue
        if ins.name in seen and seen[ins.name] is not ins:
            raise IRError(f"{kernel.name}: duplicate value name %{ins.name}")
        seen[ins.name] = ins


def _check_phis(kernel: Kernel) -> None:
    preds = predecessors(kernel)
    for block in kernel.blocks:
        in_head = True
        for ins in block.instrs:
            if ins.op is Opcode.PHI:
                if not in_head:
                    raise IRError(
                        f"{kernel.name}/{block.name}: phi %{ins.name} not at "
                        "block head"
                    )
                incoming_blocks = [b for b, _ in ins.attrs["incomings"]]
                if {id(b) for b in incoming_blocks} != {id(b) for b in preds[block]}:
                    raise IRError(
                        f"{kernel.name}/{block.name}: phi %{ins.name} incomings "
                        f"({[b.name for b in incoming_blocks]}) do not match "
                        f"predecessors ({[b.name for b in preds[block]]})"
                    )
                if len(incoming_blocks) != len(set(id(b) for b in incoming_blocks)):
                    raise IRError(
                        f"{kernel.name}/{block.name}: phi %{ins.name} has a "
                        "duplicate incoming block"
                    )
                for _, val in ins.attrs["incomings"]:
                    if val.ty is not ins.ty:
                        raise TypeMismatchError(
                            f"{kernel.name}/{block.name}: phi %{ins.name} "
                            f"incoming type {val.ty} != {ins.ty}"
                        )
            else:
                in_head = False


def _expect(cond: bool, msg: str) -> None:
    if not cond:
        raise TypeMismatchError(msg)


def _check_types(kernel: Kernel) -> None:
    for ins in kernel.instructions():
        where = f"{kernel.name}: %{ins.name or ins.op.value}"
        op = ins.op
        a = ins.args
        if op in _INT_BINOPS:
            _expect(len(a) == 2 and a[0].ty is INT32 and a[1].ty is INT32,
                    f"{where}: {op.value} requires two int operands")
            _expect(ins.ty is INT32, f"{where}: result must be int")
        elif op in _BOOL_OR_INT_BINOPS:
            _expect(len(a) == 2 and a[0].ty is a[1].ty
                    and a[0].ty in (INT32, BOOL),
                    f"{where}: {op.value} requires matching int/bool operands")
            _expect(ins.ty is a[0].ty, f"{where}: result type mismatch")
        elif op is Opcode.IABS:
            _expect(len(a) == 1 and a[0].ty is INT32 and ins.ty is INT32,
                    f"{where}: iabs requires an int operand")
        elif op in _FLOAT_BINOPS:
            _expect(len(a) == 2 and a[0].ty is FLOAT32 and a[1].ty is FLOAT32,
                    f"{where}: {op.value} requires two float operands")
            _expect(ins.ty is FLOAT32, f"{where}: result must be float")
        elif op in _FLOAT_UNOPS:
            _expect(len(a) == 1 and a[0].ty is FLOAT32 and ins.ty is FLOAT32,
                    f"{where}: {op.value} requires one float operand")
        elif op is Opcode.ICMP:
            _expect(len(a) == 2 and a[0].ty is INT32 and a[1].ty is INT32,
                    f"{where}: icmp requires int operands")
            _expect(ins.attrs.get("pred") in ICMP_PREDS,
                    f"{where}: bad icmp predicate {ins.attrs.get('pred')}")
            _expect(ins.ty is BOOL, f"{where}: icmp result must be bool")
        elif op is Opcode.FCMP:
            _expect(len(a) == 2 and a[0].ty is FLOAT32 and a[1].ty is FLOAT32,
                    f"{where}: fcmp requires float operands")
            _expect(ins.attrs.get("pred") in FCMP_PREDS,
                    f"{where}: bad fcmp predicate {ins.attrs.get('pred')}")
            _expect(ins.ty is BOOL, f"{where}: fcmp result must be bool")
        elif op is Opcode.SELECT:
            _expect(len(a) == 3 and a[0].ty is BOOL and a[1].ty is a[2].ty,
                    f"{where}: select(cond, x, y) with matching arms")
            _expect(ins.ty is a[1].ty, f"{where}: select result type mismatch")
        elif op is Opcode.SITOFP:
            _expect(len(a) == 1 and a[0].ty is INT32 and ins.ty is FLOAT32,
                    f"{where}: sitofp int -> float")
        elif op is Opcode.FPTOSI:
            _expect(len(a) == 1 and a[0].ty is FLOAT32 and ins.ty is INT32,
                    f"{where}: fptosi float -> int")
        elif op is Opcode.ZEXT:
            _expect(len(a) == 1 and a[0].ty is BOOL and ins.ty is INT32,
                    f"{where}: zext bool -> int")
        elif op is Opcode.LOAD:
            _expect(len(a) == 2 and is_pointer(a[0].ty) and a[1].ty is INT32,
                    f"{where}: load(ptr, int_index)")
            _expect(ins.ty is a[0].ty.element, f"{where}: load type mismatch")
        elif op is Opcode.STORE:
            _expect(len(a) == 3 and is_pointer(a[0].ty) and a[1].ty is INT32
                    and a[2].ty is a[0].ty.element,
                    f"{where}: store(ptr, int_index, elem_value)")
        elif op in ATOMIC_OPS:
            nvals = 2 if op is Opcode.ATOMIC_CAS else 1
            _expect(len(a) == 2 + nvals and is_pointer(a[0].ty)
                    and a[1].ty is INT32
                    and all(v.ty is a[0].ty.element for v in a[2:]),
                    f"{where}: {op.value} operand types")
            _expect(ins.ty is a[0].ty.element,
                    f"{where}: atomic result type mismatch")
        elif op in (Opcode.GID, Opcode.LID, Opcode.GROUP_ID, Opcode.LOCAL_SIZE,
                    Opcode.GLOBAL_SIZE, Opcode.NUM_GROUPS):
            _expect(not a and ins.attrs.get("dim") in (0, 1, 2),
                    f"{where}: work-item query needs dim attr in 0..2")
            _expect(ins.ty is INT32, f"{where}: work-item query returns int")
        elif op is Opcode.BARRIER:
            _expect(not a and ins.ty is None, f"{where}: barrier takes nothing")
        elif op is Opcode.PRINTF:
            _expect(isinstance(ins.attrs.get("fmt"), str),
                    f"{where}: printf needs a fmt attr")
        elif op is Opcode.PHI:
            pass  # handled in _check_phis
        elif op in (Opcode.BR, Opcode.CBR, Opcode.RET):
            pass  # handled in _check_blocks
        else:  # pragma: no cover - defensive, enum is closed
            raise IRError(f"{where}: unhandled opcode {op}")


def _check_dominance(kernel: Kernel) -> None:
    """Conservative def-before-use check.

    Exact dominance is computed in :mod:`repro.passes.cfg`; the verifier
    runs a cheaper data-flow: a value is available in a block if it is
    defined in every path to it. Phis consume values at the end of the
    corresponding predecessor instead.
    """
    order = reachable_blocks(kernel)
    globals_: set[int] = {id(p) for p in kernel.params}
    globals_ |= {id(arr) for arr in kernel.arrays}

    defined_out: dict[int, set[int]] = {}
    preds = predecessors(kernel)
    # Iterate to fixpoint (loops need two passes).
    for _ in range(len(order) + 1):
        changed = False
        for block in order:
            pred_sets = [
                defined_out.get(id(p), None) for p in preds[block]
            ]
            known = [s for s in pred_sets if s is not None]
            avail = set.intersection(*known) if known else set()
            avail |= globals_
            for ins in block.instrs:
                if ins.op is Opcode.PHI:
                    avail.add(id(ins))
            for ins in block.instrs:
                if ins.op is Opcode.PHI:
                    continue
                for opnd in ins.args:
                    if isinstance(opnd, Const):
                        continue
                    if id(opnd) not in avail:
                        raise IRError(
                            f"{kernel.name}/{block.name}: %{opnd.name} used in "
                            f"'{ins.format()}' before definition"
                        )
                if ins.ty is not None:
                    avail.add(id(ins))
            if defined_out.get(id(block)) != avail:
                defined_out[id(block)] = avail
                changed = True
        if not changed:
            break
