"""NDRange decomposition.

OpenCL launches an N-dimensional grid of work items partitioned into
work-groups. :class:`NDRange` validates the launch geometry (local size
must evenly divide global size, per OpenCL 1.x, which is what both the
paper's flows target) and enumerates groups / local items in row-major
order with dimension 0 fastest — the same linearisation both backends use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import RuntimeLaunchError

_MAX_DIMS = 3


def _normalize(size: int | tuple[int, ...]) -> tuple[int, int, int]:
    if isinstance(size, int):
        size = (size,)
    dims = tuple(int(d) for d in size)
    if not 1 <= len(dims) <= _MAX_DIMS:
        raise RuntimeLaunchError(f"NDRange must have 1..3 dims, got {dims}")
    if any(d <= 0 for d in dims):
        raise RuntimeLaunchError(f"NDRange dims must be positive, got {dims}")
    return dims + (1,) * (_MAX_DIMS - len(dims))


@dataclass(frozen=True)
class NDRange:
    """Launch geometry: global and local sizes, padded to 3 dimensions."""

    global_size: tuple[int, int, int]
    local_size: tuple[int, int, int]
    work_dim: int

    @staticmethod
    def create(
        global_size: int | tuple[int, ...],
        local_size: int | tuple[int, ...] | None = None,
    ) -> "NDRange":
        gsz_raw = (global_size,) if isinstance(global_size, int) else global_size
        work_dim = len(gsz_raw)
        gsz = _normalize(global_size)
        if local_size is None:
            lsz = (1, 1, 1)  # the Intel SDK's recommended single-work-item mode
        else:
            lsz = _normalize(local_size)
        for d in range(_MAX_DIMS):
            if gsz[d] % lsz[d] != 0:
                raise RuntimeLaunchError(
                    f"local size {lsz} does not divide global size {gsz} "
                    f"in dimension {d}"
                )
        return NDRange(gsz, lsz, work_dim)

    @property
    def num_groups(self) -> tuple[int, int, int]:
        return tuple(g // l for g, l in zip(self.global_size, self.local_size))  # type: ignore[return-value]

    @property
    def total_items(self) -> int:
        g = self.global_size
        return g[0] * g[1] * g[2]

    @property
    def group_count(self) -> int:
        n = self.num_groups
        return n[0] * n[1] * n[2]

    @property
    def items_per_group(self) -> int:
        l = self.local_size
        return l[0] * l[1] * l[2]

    def groups(self) -> Iterator[tuple[int, int, int]]:
        """Group ids, dimension 0 fastest (linear id = x + nx*(y + ny*z))."""
        nx, ny, nz = self.num_groups
        for z in range(nz):
            for y in range(ny):
                for x in range(nx):
                    yield (x, y, z)

    def local_items(self) -> Iterator[tuple[int, int, int]]:
        """Local ids within one group, dimension 0 fastest."""
        lx, ly, lz = self.local_size
        for z in range(lz):
            for y in range(ly):
                for x in range(lx):
                    yield (x, y, z)

    def group_linear_id(self, group: tuple[int, int, int]) -> int:
        nx, ny, _ = self.num_groups
        return group[0] + nx * (group[1] + ny * group[2])

    def local_linear_id(self, local: tuple[int, int, int]) -> int:
        lx, ly, _ = self.local_size
        return local[0] + lx * (local[1] + ly * local[2])

    def global_id(
        self, group: tuple[int, int, int], local: tuple[int, int, int]
    ) -> tuple[int, int, int]:
        return tuple(
            g * l + i for g, l, i in zip(group, self.local_size, local)
        )  # type: ignore[return-value]
