"""Reusable kernel patterns.

Factory functions building common GPU kernels against the IR — the
snippets a downstream user of this library would otherwise rewrite for
every application: map, work-group tree reduction, histogram, inclusive
scan, and gather/scatter. Every factory returns an ordinary
:class:`~repro.ocl.ir.Kernel` that runs on any backend; each is
validated on both flows in ``tests/test_patterns.py``.
"""

from __future__ import annotations

from typing import Callable

from ..errors import IRError
from .builder import KernelBuilder
from .ir import Kernel, Value
from .types import FLOAT32, GLOBAL_FLOAT32, GLOBAL_INT32, INT32, ScalarType

_GLOBAL = {INT32: GLOBAL_INT32, FLOAT32: GLOBAL_FLOAT32}


def _global_ptr(elem: ScalarType):
    try:
        return _GLOBAL[elem]
    except KeyError:  # pragma: no cover - defensive
        raise IRError(f"unsupported element type {elem}")


def build_map_kernel(
    name: str,
    elem: ScalarType,
    body: Callable[[KernelBuilder, Value], Value],
) -> Kernel:
    """``out[i] = body(in[i])`` with a bounds guard.

    ``body`` receives the builder and the loaded element and returns the
    transformed value.
    """
    b = KernelBuilder(name)
    src = b.param("src", _global_ptr(elem))
    dst = b.param("dst", _global_ptr(elem))
    n = b.param("n", INT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, n)):
        b.store(dst, gid, body(b, b.load(src, gid)))
    return b.finish()


def build_reduction_kernel(
    name: str,
    elem: ScalarType,
    combine: Callable[[KernelBuilder, Value, Value], Value],
    identity: float | int,
    group_size: int = 8,
) -> Kernel:
    """Work-group tree reduction: one partial result per group.

    The classic local-memory + barrier pattern (the host reduces the
    per-group partials). ``group_size`` must be a power of two.
    """
    if group_size & (group_size - 1):
        raise IRError("group_size must be a power of two")
    b = KernelBuilder(name)
    src = b.param("src", _global_ptr(elem))
    partials = b.param("partials", _global_ptr(elem))
    n = b.param("n", INT32)
    scratch = b.local_array("scratch", elem, group_size)
    gid = b.global_id(0)
    lid = b.local_id(0)
    grp = b.group_id(0)
    v = b.var("v", elem, init=identity)
    with b.if_(b.lt(gid, n)):
        v.set(b.load(src, gid))
    b.store(scratch, lid, v.get())
    b.barrier()
    stride = b.var("stride", INT32, init=group_size // 2)
    with b.while_(lambda: b.gt(stride.get(), 0)):
        with b.if_(b.lt(lid, stride.get())):
            a = b.load(scratch, lid)
            c = b.load(scratch, b.add(lid, stride.get()))
            b.store(scratch, lid, combine(b, a, c))
        b.barrier()
        stride.set(b.div(stride.get(), 2))
    with b.if_(b.eq(lid, 0)):
        b.store(partials, grp, b.load(scratch, 0))
    return b.finish()


def build_histogram_kernel(name: str = "histogram") -> Kernel:
    """``atomic_add(bins[value[i]], 1)`` — the hybridsort pattern (and
    therefore the kernel shape that fails HLS on HBM2 boards)."""
    b = KernelBuilder(name)
    values = b.param("values", GLOBAL_INT32)
    bins = b.param("bins", GLOBAL_INT32)
    n = b.param("n", INT32)
    nbins = b.param("nbins", INT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, n)):
        v = b.load(values, gid)
        v = b.max(b.min(v, b.sub(nbins, 1)), 0)
        b.atomic_add(bins, v, 1)
    return b.finish()


def build_inclusive_scan_kernel(
    name: str, elem: ScalarType, group_size: int = 8
) -> Kernel:
    """Work-group inclusive prefix sum (Hillis-Steele in local memory).

    Scans each ``group_size`` segment independently; the host stitches
    segments if a full-array scan is needed.
    """
    if group_size & (group_size - 1):
        raise IRError("group_size must be a power of two")
    b = KernelBuilder(name)
    src = b.param("src", _global_ptr(elem))
    dst = b.param("dst", _global_ptr(elem))
    n = b.param("n", INT32)
    scratch = b.local_array("scratch", elem, group_size)
    gid = b.global_id(0)
    lid = b.local_id(0)
    zero = 0 if elem is INT32 else 0.0
    v = b.var("v", elem, init=zero)
    with b.if_(b.lt(gid, n)):
        v.set(b.load(src, gid))
    b.store(scratch, lid, v.get())
    b.barrier()
    offset = b.var("offset", INT32, init=1)
    with b.while_(lambda: b.lt(offset.get(), group_size)):
        contrib = b.var("contrib", elem, init=zero)
        with b.if_(b.ge(lid, offset.get())):
            contrib.set(b.load(scratch, b.sub(lid, offset.get())))
        b.barrier()
        b.store(scratch, lid, b.add(b.load(scratch, lid), contrib.get()))
        b.barrier()
        offset.set(b.mul(offset.get(), 2))
    with b.if_(b.lt(gid, n)):
        b.store(dst, gid, b.load(scratch, lid))
    return b.finish()


def build_gather_kernel(name: str, elem: ScalarType) -> Kernel:
    """``out[i] = data[index[i]]`` — the indirect-access pattern whose
    LSUs dominate BFS/B+tree HLS area."""
    b = KernelBuilder(name)
    index = b.param("index", GLOBAL_INT32)
    data = b.param("data", _global_ptr(elem))
    out = b.param("out", _global_ptr(elem))
    n = b.param("n", INT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, n)):
        b.store(out, gid, b.load(data, b.load(index, gid)))
    return b.finish()


def build_scatter_kernel(name: str, elem: ScalarType) -> Kernel:
    """``out[index[i]] = data[i]``."""
    b = KernelBuilder(name)
    index = b.param("index", GLOBAL_INT32)
    data = b.param("data", _global_ptr(elem))
    out = b.param("out", _global_ptr(elem))
    n = b.param("n", INT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, n)):
        b.store(out, b.load(index, gid), b.load(data, gid))
    return b.finish()
