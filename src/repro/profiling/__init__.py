"""Unified profiling/tracing across the three executors.

One :class:`Profiler` records counters and timeline events from the
reference interpreter (``repro.ocl.interp``), the SimX cycle simulator
(``repro.vortex.simx``) and the HLS pipeline model (``repro.hls.perf``);
:class:`ProfileReport` renders them as text and exports Chrome-trace /
JSON artifacts. See ``python -m repro profile --help`` for the CLI.
"""

from .profiler import (
    NULL_PROFILER,
    NullProfiler,
    Profiler,
    TraceEvent,
    ensure_profiler,
)
from .report import ProfileReport

__all__ = [
    "NULL_PROFILER",
    "NullProfiler",
    "ProfileReport",
    "Profiler",
    "TraceEvent",
    "ensure_profiler",
]
