"""Cross-executor profiler: counters, spans, and trace events.

Every executor in the repository — the reference interpreter, the SimX
cycle simulator, and the HLS pipeline model — exposes performance
counters of its own (``RunResult.op_counts``, ``CoreStats``,
``PipelineEstimate``). The :class:`Profiler` unifies them behind one
low-overhead recording surface:

* **counters** — monotonically accumulated named values
  (``profiler.count("simx.instructions", 42)``);
* **trace events** — timestamped spans/instants/counter-samples on an
  executor-defined timeline (cycles for SimX and the HLS model, dynamic
  instruction steps for the interpreter, wall-clock microseconds for
  host-side harness code), exported in the Chrome ``chrome://tracing`` /
  Perfetto JSON format;
* **metadata** — free-form key/value context (kernel name, geometry,
  backend) carried into every report.

The **null-object fast path**: call sites hold a profiler that is either
a live :class:`Profiler` or the shared :data:`NULL_PROFILER`, and guard
instrumentation with ``if profiler.enabled:``. Disabled profiling
therefore costs one attribute test on a singleton — no allocation, no
branching in inner loops beyond the guard — which keeps the simulators'
hot paths unchanged when nobody is measuring (asserted by the overhead
benchmark in ``tests/test_profiling.py``).
"""

from __future__ import annotations

import contextlib
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

__all__ = [
    "NULL_PROFILER",
    "NullProfiler",
    "Profiler",
    "TraceEvent",
    "ensure_profiler",
]


@dataclass
class TraceEvent:
    """One Chrome-trace event (phases ``X``/``i``/``C`` are used)."""

    name: str
    cat: str
    ph: str  # "X" complete, "i" instant, "C" counter
    ts: float  # timeline units (cycles / steps / us)
    dur: float = 0.0  # only for ph == "X"
    pid: int = 0
    tid: int = 0
    args: dict[str, Any] | None = None

    def as_chrome(self) -> dict[str, Any]:
        ev: dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": float(self.ts),
            "pid": int(self.pid),
            "tid": int(self.tid),
        }
        if self.ph == "X":
            ev["dur"] = float(self.dur)
        if self.ph == "i":
            ev["s"] = "t"  # thread-scoped instant
        if self.args is not None:
            ev["args"] = self.args
        return ev


class Profiler:
    """Accumulates counters and trace events for one measured run.

    A profiler is deliberately executor-agnostic: the instrumented code
    decides what the timeline means (SimX records cycles, the HLS model
    records modelled pipeline cycles, the interpreter records dynamic
    instruction steps) and annotates the report via :meth:`set_meta`
    so renderers can label axes.
    """

    #: the single guard call sites test before doing any profiling work.
    enabled: bool = True

    #: cycle-granularity used by SimX for issue/stall/idle sampling.
    DEFAULT_CYCLE_BUCKET = 256

    def __init__(self, cycle_bucket: int = DEFAULT_CYCLE_BUCKET):
        if cycle_bucket < 1:
            raise ValueError("cycle_bucket must be >= 1")
        self.cycle_bucket = cycle_bucket
        self.counters: Counter = Counter()
        self.events: list[TraceEvent] = []
        self.meta: dict[str, Any] = {}
        self.process_names: dict[int, str] = {}
        self.thread_names: dict[tuple[int, int], str] = {}
        self._wall_origin = time.perf_counter()

    # -- counters ----------------------------------------------------------

    def count(self, name: str, delta: float = 1) -> None:
        self.counters[name] += delta

    def count_many(self, values: Mapping[str, float], prefix: str = "") -> None:
        for key, value in values.items():
            self.counters[f"{prefix}{key}"] += value

    # -- trace events ------------------------------------------------------

    def complete(self, name: str, cat: str, ts: float, dur: float,
                 pid: int = 0, tid: int = 0,
                 args: dict[str, Any] | None = None) -> None:
        """A span ``[ts, ts + dur)`` on the (pid, tid) track."""
        self.events.append(
            TraceEvent(name, cat, "X", ts, dur, pid, tid, args))

    def instant(self, name: str, cat: str, ts: float, pid: int = 0,
                tid: int = 0, args: dict[str, Any] | None = None) -> None:
        self.events.append(
            TraceEvent(name, cat, "i", ts, 0.0, pid, tid, args))

    def sample(self, name: str, ts: float, values: Mapping[str, float],
               pid: int = 0) -> None:
        """A Chrome counter-track sample (stacked area in the viewer)."""
        self.events.append(
            TraceEvent(name, "counter", "C", ts, 0.0, pid, 0,
                       {k: float(v) for k, v in values.items()}))

    # -- naming / metadata -------------------------------------------------

    def name_process(self, pid: int, name: str) -> None:
        self.process_names[pid] = name

    def name_thread(self, pid: int, tid: int, name: str) -> None:
        self.thread_names[(pid, tid)] = name

    def set_meta(self, key: str, value: Any) -> None:
        self.meta[key] = value

    # -- host-side wall-clock spans ---------------------------------------

    def wall_us(self) -> float:
        """Microseconds since profiler creation (host timeline)."""
        return (time.perf_counter() - self._wall_origin) * 1e6

    @contextlib.contextmanager
    def span(self, name: str, cat: str = "host", pid: int = 0,
             tid: int = 0, args: dict[str, Any] | None = None
             ) -> Iterator[None]:
        """Wall-clock span for host/harness phases (DSE, sweeps)."""
        start = self.wall_us()
        try:
            yield
        finally:
            self.complete(name, cat, start, self.wall_us() - start,
                          pid=pid, tid=tid, args=args)

    # -- reporting ---------------------------------------------------------

    def report(self, title: str = "profile", backend: str = "") -> Any:
        from .report import ProfileReport

        return ProfileReport(
            title=title,
            backend=backend or str(self.meta.get("backend", "")),
            counters=dict(self.counters),
            events=list(self.events),
            meta=dict(self.meta),
            process_names=dict(self.process_names),
            thread_names=dict(self.thread_names),
        )


class NullProfiler(Profiler):
    """Disabled profiler: every recording method is a no-op.

    Instrumented code may call any method unguarded, but hot paths
    should test ``profiler.enabled`` once and skip the bookkeeping that
    *produces* the arguments — that is where the real cost is.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def count(self, name: str, delta: float = 1) -> None:
        pass

    def count_many(self, values: Mapping[str, float], prefix: str = "") -> None:
        pass

    def complete(self, name: str, cat: str, ts: float, dur: float,
                 pid: int = 0, tid: int = 0,
                 args: dict[str, Any] | None = None) -> None:
        pass

    def instant(self, name: str, cat: str, ts: float, pid: int = 0,
                tid: int = 0, args: dict[str, Any] | None = None) -> None:
        pass

    def sample(self, name: str, ts: float, values: Mapping[str, float],
               pid: int = 0) -> None:
        pass

    def name_process(self, pid: int, name: str) -> None:
        pass

    def name_thread(self, pid: int, tid: int, name: str) -> None:
        pass

    def set_meta(self, key: str, value: Any) -> None:
        pass


#: Shared disabled profiler — the default for every instrumented API.
NULL_PROFILER = NullProfiler()


def ensure_profiler(profiler: Profiler | None) -> Profiler:
    """Normalise an optional profiler argument to a usable instance."""
    return NULL_PROFILER if profiler is None else profiler
