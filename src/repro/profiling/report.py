"""Unified profile report: text rendering and JSON/Chrome-trace export.

A :class:`ProfileReport` is a frozen snapshot of one measured run — the
counters, trace events and metadata a :class:`~repro.profiling.Profiler`
accumulated — detached from the executor that produced it, so sweeps can
collect one per configuration and compare them.

Export formats:

* :meth:`render` — human-readable text (metadata, then counters grouped
  by dotted prefix);
* :meth:`chrome_trace` / :meth:`save_chrome_trace` — the Chrome JSON
  Trace Event Format, loadable in ``chrome://tracing`` or
  https://ui.perfetto.dev;
* :meth:`to_json` / :meth:`save_json` — machine-readable summary for
  downstream tooling (regression tracking, sweep post-processing).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .profiler import TraceEvent

__all__ = ["ProfileReport"]


@dataclass
class ProfileReport:
    title: str
    backend: str = ""
    counters: dict[str, float] = field(default_factory=dict)
    events: list[TraceEvent] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)
    process_names: dict[int, str] = field(default_factory=dict)
    thread_names: dict[tuple[int, int], str] = field(default_factory=dict)

    # -- text --------------------------------------------------------------

    def render(self) -> str:
        """Multi-section text report."""
        width = 68
        lines = [f"== profile: {self.title} " + "=" * max(
            0, width - 13 - len(self.title))]
        if self.backend:
            lines.append(f"backend: {self.backend}")
        for key in sorted(self.meta):
            if key == "backend" and self.backend:
                continue
            lines.append(f"{key}: {self.meta[key]}")
        if self.counters:
            lines.append("")
            lines.append(f"{'counter':<44} {'value':>18}")
            lines.append("-" * (44 + 1 + 18))
            prev_group = None
            for name in sorted(self.counters):
                group = name.split(".", 1)[0]
                if prev_group is not None and group != prev_group:
                    lines.append("")
                prev_group = group
                lines.append(f"{name:<44} {_fmt(self.counters[name]):>18}")
        nspans = sum(1 for e in self.events if e.ph == "X")
        nsamples = sum(1 for e in self.events if e.ph == "C")
        ninstants = sum(1 for e in self.events if e.ph == "i")
        lines.append("")
        lines.append(
            f"trace: {nspans} spans, {nsamples} counter samples, "
            f"{ninstants} instants"
        )
        return "\n".join(lines)

    # -- chrome trace ------------------------------------------------------

    def chrome_trace(self) -> dict[str, Any]:
        """The Trace Event Format JSON object (``traceEvents`` array)."""
        events: list[dict[str, Any]] = []
        for pid, name in sorted(self.process_names.items()):
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": name},
            })
        for (pid, tid), name in sorted(self.thread_names.items()):
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": name},
            })
        events.extend(e.as_chrome() for e in self.events)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "title": self.title,
                "backend": self.backend,
                **{str(k): str(v) for k, v in self.meta.items()},
            },
        }

    def save_chrome_trace(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.chrome_trace()))
        return path

    # -- machine-readable summary -----------------------------------------

    def to_json(self) -> dict[str, Any]:
        return {
            "title": self.title,
            "backend": self.backend,
            "meta": self.meta,
            "counters": dict(self.counters),
            "events": {
                "spans": sum(1 for e in self.events if e.ph == "X"),
                "samples": sum(1 for e in self.events if e.ph == "C"),
                "instants": sum(1 for e in self.events if e.ph == "i"),
            },
        }

    def save_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=2, default=str))
        return path

    # -- lossless round-trip (result-cache storage) ------------------------

    def to_payload(self) -> dict[str, Any]:
        """Lossless JSON-serialisable form (unlike :meth:`to_json`,
        which summarises events); :meth:`from_payload` reverses it, so
        the experiment result cache can memoise whole profiled runs and
        replay byte-identical reports and traces."""
        return {
            "title": self.title,
            "backend": self.backend,
            "counters": dict(self.counters),
            "events": [
                [e.name, e.cat, e.ph, e.ts, e.dur, e.pid, e.tid,
                 _encode(e.args)]
                for e in self.events
            ],
            "meta": {k: _encode(v) for k, v in self.meta.items()},
            "process_names": [[pid, name]
                              for pid, name in self.process_names.items()],
            "thread_names": [[pid, tid, name]
                             for (pid, tid), name
                             in self.thread_names.items()],
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ProfileReport":
        return cls(
            title=payload["title"],
            backend=payload["backend"],
            counters=dict(payload["counters"]),
            events=[
                TraceEvent(name, cat, ph, ts, dur, pid, tid, _decode(args))
                for name, cat, ph, ts, dur, pid, tid, args
                in payload["events"]
            ],
            meta={k: _decode(v) for k, v in payload["meta"].items()},
            process_names={int(pid): name
                           for pid, name in payload["process_names"]},
            thread_names={(int(pid), int(tid)): name
                          for pid, tid, name in payload["thread_names"]},
        )


def _encode(value: Any) -> Any:
    """JSON-encode preserving tuples (tagged), so renders that embed
    ``str(meta_value)`` — e.g. ``global_size: (256, 1, 1)`` — come back
    byte-identical from the cache."""
    if isinstance(value, tuple):
        return {"__tuple__": [_encode(v) for v in value]}
    if isinstance(value, list):
        return [_encode(v) for v in value]
    if isinstance(value, dict):
        return {k: _encode(v) for k, v in value.items()}
    return value


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__tuple__"}:
            return tuple(_decode(v) for v in value["__tuple__"])
        return {k: _decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.4f}"
    return f"{int(value):,}"
