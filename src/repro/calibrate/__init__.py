"""Model calibration: fit the analytical predictors to ground truth.

The paper's conclusion asks for an analytical model that can stand in
for simulation when searching the configuration space; arxiv 2003.13054
shows such a model earns its place only once it is *calibrated* against
the thing it replaces. This package fits the free parameters of
:mod:`repro.vortex.analytical` (against SimX) and of the
:func:`repro.hls.perf.screen_cycles` fast path (against the full HLS
pipeline model), measures per-benchmark error bounds, and persists the
fit as a versioned JSON artifact keyed by the repro code fingerprint —
the trusted input of the hierarchical DSE in :mod:`repro.harness.dse`.

Usage::

    art = run_calibration(cache=cache, jobs=4)
    art.save(".repro-calibration.json")
    ...
    art = load_calibration(".repro-calibration.json")
    predict(profile, config, params=art.vortex)
"""

from .artifact import (
    CALIBRATION_SCHEMA,
    CalibrationArtifact,
    load_calibration,
)
from .fit import (
    HLS_CALIBRATION_SIZES,
    VORTEX_CALIBRATION_CELLS,
    CalibrationSample,
    collect_hls_samples,
    collect_vortex_samples,
    error_bounds,
    fit_hls_params,
    fit_vortex_params,
    run_calibration,
)

#: conventional artifact location (repo root / campaign directory).
DEFAULT_ARTIFACT_PATH = ".repro-calibration.json"

__all__ = [
    "CALIBRATION_SCHEMA",
    "DEFAULT_ARTIFACT_PATH",
    "CalibrationArtifact",
    "CalibrationSample",
    "HLS_CALIBRATION_SIZES",
    "VORTEX_CALIBRATION_CELLS",
    "collect_hls_samples",
    "collect_vortex_samples",
    "error_bounds",
    "fit_hls_params",
    "fit_vortex_params",
    "load_calibration",
    "run_calibration",
]
