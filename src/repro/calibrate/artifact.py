"""Versioned, fingerprint-keyed persistence of calibrated model fits.

A calibration is only meaningful for the code that produced its ground
truth: if the simulator or the analytical model changes, a stale fit
would silently skew every screening decision built on it. The artifact
therefore records the repro *code fingerprint* (the same SHA-256 the
result cache keys on) and :func:`load_calibration` refuses — by
default — to hand back a fit whose fingerprint does not match the
running code.

The JSON layout (``schema`` 1)::

    {
      "schema": 1,
      "fingerprint": "<code_fingerprint() at fit time>",
      "vortex": { ...VortexModelParams... },
      "hls": { ...HLSModelParams... },
      "error_bounds": {
        "vortex": {"vecadd": {"max_rel_err": ..., "mean_rel_err": ...,
                              "points": N}, ...},
        "hls": {...}
      },
      "meta": {"benchmarks": [...], "n": ..., ...}
    }

``error_bounds`` are *measured on the calibration set*, per benchmark
and per flow — they are what downstream consumers (the hierarchical
DSE's frontier pruning, the regression tests) treat as the model's
stated tolerance.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import CalibrationError
from ..harness.result_cache import code_fingerprint
from ..hls.perf import HLSModelParams
from ..vortex.analytical import VortexModelParams

__all__ = [
    "CALIBRATION_SCHEMA",
    "CalibrationArtifact",
    "load_calibration",
]

CALIBRATION_SCHEMA = 1


@dataclass
class CalibrationArtifact:
    """One complete fit: parameters per flow plus measured error bounds."""

    fingerprint: str
    vortex: VortexModelParams
    hls: HLSModelParams
    #: ``{"vortex": {bench: {...}}, "hls": {bench: {...}}}``
    error_bounds: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    schema: int = CALIBRATION_SCHEMA

    def bound(self, flow: str, benchmark: str | None = None) -> float:
        """The stated max relative error of ``flow`` (``"vortex"`` or
        ``"hls"``): for one benchmark, or the worst across the
        calibration set when ``benchmark`` is ``None`` (also the
        fallback for benchmarks outside the set)."""
        per_bench = self.error_bounds.get(flow, {})
        if benchmark is not None and benchmark in per_bench:
            return float(per_bench[benchmark]["max_rel_err"])
        if not per_bench:
            raise CalibrationError(
                f"artifact carries no error bounds for flow {flow!r}")
        return max(float(b["max_rel_err"]) for b in per_bench.values())

    def to_payload(self) -> dict:
        return {
            "schema": self.schema,
            "fingerprint": self.fingerprint,
            "vortex": self.vortex.to_payload(),
            "hls": self.hls.to_payload(),
            "error_bounds": self.error_bounds,
            "meta": self.meta,
        }

    @staticmethod
    def from_payload(payload: dict) -> "CalibrationArtifact":
        try:
            schema = payload["schema"]
            if schema != CALIBRATION_SCHEMA:
                raise CalibrationError(
                    f"calibration schema {schema!r} is not supported "
                    f"(this build reads schema {CALIBRATION_SCHEMA})")
            return CalibrationArtifact(
                fingerprint=str(payload["fingerprint"]),
                vortex=VortexModelParams.from_payload(payload["vortex"]),
                hls=HLSModelParams.from_payload(payload["hls"]),
                error_bounds=dict(payload.get("error_bounds", {})),
                meta=dict(payload.get("meta", {})),
                schema=schema,
            )
        except CalibrationError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CalibrationError(
                f"malformed calibration payload: {exc!r}") from exc

    def save(self, path: str | Path) -> Path:
        """Write the artifact atomically (tmp + rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(self.to_payload(), indent=1, sort_keys=True) + "\n")
        tmp.replace(path)
        return path


def load_calibration(path: str | Path,
                     strict_fingerprint: bool = True
                     ) -> CalibrationArtifact:
    """Load a saved fit, verifying it matches the running code.

    ``strict_fingerprint=False`` returns a stale artifact anyway (the
    CLI's escape hatch for inspecting old fits); everything else should
    keep the default and re-calibrate on mismatch.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise CalibrationError(
            f"no calibration artifact at {path} "
            f"(run `python -m repro calibrate` first)") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise CalibrationError(
            f"unreadable calibration artifact {path}: {exc}") from exc
    artifact = CalibrationArtifact.from_payload(payload)
    if strict_fingerprint and artifact.fingerprint != code_fingerprint():
        raise CalibrationError(
            f"calibration artifact {path} was fitted against different "
            f"code (fingerprint {artifact.fingerprint[:12]}… vs current "
            f"{code_fingerprint()[:12]}…) — re-run "
            f"`python -m repro calibrate`")
    return artifact
