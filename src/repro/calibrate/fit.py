"""Fit the analytical predictors against ground truth.

Two fits, one artifact:

* **Vortex flow** — the free parameters of
  :func:`repro.vortex.analytical.predict` (per-bound scale factors plus
  the MSHR contention coefficient) are fitted against **SimX** cycle
  counts on a small calibration set of (warps, threads) cells. Ground
  truth runs through the :class:`~repro.harness.engine.ExperimentEngine`
  with the *same content keys as the Figure 7 sweep*, so calibration
  simulations dedupe against sweeps (and vice versa) in one
  :class:`~repro.harness.result_cache.ResultCache`.

* **HLS flow** — the ``issue_scale``/``memory_scale`` of the
  millisecond screen predictor (:func:`repro.hls.perf.screen_cycles`)
  are fitted against the **full pipeline model**
  (:func:`repro.hls.perf.estimate_cycles`, which needs a functional
  interpreter run per launch size) across several problem sizes. The
  paper publishes HLS synthesis *area*, not cycle counts, so the full
  model is the best ground truth available in-repo — the fit makes the
  screen's per-item extrapolation faithful to it.

Fitting is a deterministic multiplicative coordinate descent on mean
squared log-relative error: no SciPy dependence, no RNG, same fit on
every machine. Starting from the hand-tuned defaults guarantees the
calibrated objective is never worse than the uncalibrated one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import math

import numpy as np

from ..benchmarks import get_benchmark
from ..errors import CalibrationError, PointFailure
from ..harness.engine import ExperimentEngine
from ..harness.result_cache import ResultCache, code_fingerprint
from ..harness.sweep import SWEEP_SEED, sweep_point
from ..hls.lsu import classify_kernel
from ..hls.perf import (
    HLSKernelProfile,
    HLSModelParams,
    estimate_cycles,
    screen_cycles,
)
from ..ocl.interp import interpret
from ..ocl.ndrange import NDRange
from ..vortex.analytical import KernelProfile, VortexModelParams, predict
from ..vortex.simx.config import VortexConfig
from .artifact import CalibrationArtifact

__all__ = [
    "HLS_CALIBRATION_SIZES",
    "VORTEX_CALIBRATION_CELLS",
    "CalibrationSample",
    "collect_hls_samples",
    "collect_vortex_samples",
    "error_bounds",
    "fit_hls_params",
    "fit_vortex_params",
    "run_calibration",
]

#: (warps, threads) cells SimX ground truth is collected on — the
#: corners plus the middle of the Figure 7 grid, so the fit sees issue-,
#: latency- and memory-bound regimes without simulating all 16 cells.
VORTEX_CALIBRATION_CELLS = ((2, 2), (2, 16), (4, 4), (8, 8), (16, 4),
                            (16, 16))

#: problem sizes the HLS screen predictor is fitted across (the full
#: pipeline model re-runs the interpreter per size; the screen must
#: extrapolate between them).
HLS_CALIBRATION_SIZES = (256, 1024, 4096)

#: parameter fields the descent adjusts, with multiplicative bounds.
_VORTEX_FIT_FIELDS = (
    ("issue_scale", 1.0 / 64, 64.0),
    ("memory_scale", 1.0 / 64, 64.0),
    ("latency_scale", 1.0 / 64, 64.0),
    ("contention_alpha", 1e-3, 4.0),
)
_HLS_FIT_FIELDS = (
    ("issue_scale", 1.0 / 64, 64.0),
    ("memory_scale", 1.0 / 64, 64.0),
)


@dataclass(frozen=True)
class CalibrationSample:
    """One (prediction input, ground truth) pair for either flow."""

    flow: str  # "vortex" | "hls"
    benchmark: str
    label: str  # config label / "n=4096"
    profile: object  # KernelProfile | HLSKernelProfile
    config: VortexConfig | None  # vortex flow only
    total_items: int  # hls flow only (extrapolation target)
    true_cycles: float


def _vortex_workload(benchmark: str, n: int):
    """(kernel, args, ndrange) describing exactly the launch
    :func:`~repro.harness.sweep.sweep_point` simulates, so the profile
    and the SimX ground truth measure the same work."""
    if benchmark not in ("vecadd", "transpose"):
        raise CalibrationError(
            f"no calibration workload for benchmark {benchmark!r} "
            f"(supported: vecadd, transpose)")
    rng = np.random.default_rng(SWEEP_SEED)
    bench = get_benchmark(benchmark)
    kernel = bench.build()[0]
    if benchmark == "vecadd":
        a = rng.random(n, dtype=np.float32)
        b = rng.random(n, dtype=np.float32)
        out = np.zeros(n, dtype=np.float32)
        return kernel, [a, b, out, n], NDRange.create(n, 16)
    dim = int(round(n ** 0.5))
    dim -= dim % 16
    dim = max(dim, 16)
    src = rng.random(dim * dim, dtype=np.float32)
    dst = np.zeros(dim * dim, dtype=np.float32)
    return kernel, [src, dst, dim, dim], NDRange.create((dim, dim),
                                                        (4, 4))


def collect_vortex_samples(
    benchmarks: Sequence[str] = ("vecadd", "transpose"),
    n: int = 4096,
    cores: int = 4,
    cells: Sequence[tuple[int, int]] = VORTEX_CALIBRATION_CELLS,
    base: VortexConfig | None = None,
    cache: ResultCache | None = None,
    engine: ExperimentEngine | None = None,
    jobs: int = 1,
    retries: int = 0,
    point_timeout: float | None = None,
) -> list[CalibrationSample]:
    """SimX ground truth for the Vortex fit, fanned through the engine.

    Content keys are identical to :func:`~repro.harness.sweep.run_sweep`
    cells, so a warmed sweep cache makes calibration free (and a
    calibration warms the sweep).
    """
    base = base or VortexConfig()
    profiles = {}
    for benchmark in benchmarks:
        kernel, args, ndrange = _vortex_workload(benchmark, n)
        profiles[benchmark] = KernelProfile.collect(kernel, args, ndrange)

    owns_engine = engine is None
    if owns_engine:
        engine = ExperimentEngine(jobs=jobs, cache=cache, retries=retries,
                                  point_timeout=point_timeout)
    grid = [(benchmark, w, t) for benchmark in benchmarks
            for (w, t) in cells]
    points, keys = [], []
    for benchmark, w, t in grid:
        config = base.with_geometry(cores=cores, warps=w, threads=t)
        points.append((benchmark, config, n))
        keys.append(
            None if engine.cache is None
            else engine.cache.key(kind="fig7-cell", benchmark=benchmark,
                                  config=config, n=n, seed=SWEEP_SEED))
    try:
        values = engine.run(sweep_point, points, keys=keys,
                            label="calibrate vortex")
    finally:
        if owns_engine:
            engine.close()

    samples = []
    for (benchmark, w, t), value in zip(grid, values):
        if isinstance(value, PointFailure):
            raise CalibrationError(
                f"ground-truth simulation failed for {benchmark} "
                f"w={w} t={t}: {value.brief()} — calibration needs a "
                f"complete sample set")
        config = base.with_geometry(cores=cores, warps=w, threads=t)
        samples.append(CalibrationSample(
            flow="vortex", benchmark=benchmark, label=config.label(),
            profile=profiles[benchmark], config=config,
            total_items=profiles[benchmark].total_items,
            true_cycles=float(value["cycles"])))
    return samples


def collect_hls_samples(
    benchmarks: Sequence[str] = ("vecadd", "transpose"),
    sizes: Sequence[int] = HLS_CALIBRATION_SIZES,
) -> list[CalibrationSample]:
    """Full-pipeline-model ground truth for the HLS screen fit.

    The profile is collected once per benchmark at the smallest size;
    the truth at each size comes from a fresh interpreter run through
    :func:`estimate_cycles` — exactly the cost the screen exists to
    avoid paying per design point.
    """
    samples = []
    for benchmark in benchmarks:
        profile = None
        for size in sorted(sizes):
            kernel, args, ndrange = _vortex_workload(benchmark, size)
            sites = classify_kernel(kernel)
            run = interpret(kernel, args, ndrange)
            if profile is None:
                profile = HLSKernelProfile.collect(kernel, sites, run)
            truth = estimate_cycles(kernel, sites, ndrange, run)
            samples.append(CalibrationSample(
                flow="hls", benchmark=benchmark,
                label=f"n={ndrange.total_items}", profile=profile,
                config=None, total_items=ndrange.total_items,
                true_cycles=float(truth.cycles)))
    return samples


def _sample_prediction(sample: CalibrationSample, vortex:
                       VortexModelParams | None = None,
                       hls: HLSModelParams | None = None) -> float:
    if sample.flow == "vortex":
        return predict(sample.profile, sample.config,
                       params=vortex).cycles
    return screen_cycles(sample.profile, sample.total_items, params=hls)


def _msle(samples: Sequence[CalibrationSample],
          predict_fn: Callable[[CalibrationSample], float]) -> float:
    """Mean squared log error — scale-free, so vecadd's ~9k-cycle runs
    and transpose's ~70k-cycle runs weigh equally in the fit."""
    total = 0.0
    for s in samples:
        pred = max(predict_fn(s), 1e-9)
        total += (math.log(pred) - math.log(max(s.true_cycles, 1e-9))) ** 2
    return total / max(1, len(samples))


def _coordinate_descent(
    start: dict[str, float],
    fields: Sequence[tuple[str, float, float]],
    objective: Callable[[dict[str, float]], float],
    factors: Sequence[float] = (2.0, 1.5, 1.25, 1.1, 1.05, 1.02),
) -> tuple[dict[str, float], float]:
    """Deterministic multiplicative coordinate descent.

    Starts from ``start`` (the hand-tuned defaults), so the returned
    objective is never worse than the starting one.
    """
    vals = dict(start)
    best = objective(vals)
    for factor in factors:
        improved = True
        while improved:
            improved = False
            for name, lo, hi in fields:
                for cand in (vals[name] * factor, vals[name] / factor):
                    cand = min(max(cand, lo), hi)
                    if cand == vals[name]:
                        continue
                    trial = dict(vals)
                    trial[name] = cand
                    score = objective(trial)
                    if score < best - 1e-12:
                        best, vals, improved = score, trial, True
    return vals, best


def fit_vortex_params(samples: Sequence[CalibrationSample],
                      start: VortexModelParams | None = None
                      ) -> VortexModelParams:
    """Fit the Vortex analytical model's free parameters to SimX truth."""
    samples = [s for s in samples if s.flow == "vortex"]
    if not samples:
        raise CalibrationError("no vortex samples to fit against")
    start = start or VortexModelParams()
    base = start.to_payload()

    def objective(vals: dict[str, float]) -> float:
        params = VortexModelParams.from_payload({**base, **vals})
        return _msle(samples, lambda s: _sample_prediction(s, vortex=params))

    fitted, _ = _coordinate_descent(
        {name: base[name] for name, _, _ in _VORTEX_FIT_FIELDS},
        _VORTEX_FIT_FIELDS, objective)
    return VortexModelParams.from_payload({**base, **fitted})


def fit_hls_params(samples: Sequence[CalibrationSample],
                   start: HLSModelParams | None = None) -> HLSModelParams:
    """Fit the HLS screen predictor to the full pipeline model."""
    samples = [s for s in samples if s.flow == "hls"]
    if not samples:
        raise CalibrationError("no hls samples to fit against")
    start = start or HLSModelParams()
    base = start.to_payload()

    def objective(vals: dict[str, float]) -> float:
        params = HLSModelParams.from_payload({**base, **vals})
        return _msle(samples, lambda s: _sample_prediction(s, hls=params))

    fitted, _ = _coordinate_descent(
        {name: base[name] for name, _, _ in _HLS_FIT_FIELDS},
        _HLS_FIT_FIELDS, objective)
    return HLSModelParams.from_payload({**base, **fitted})


def error_bounds(samples: Sequence[CalibrationSample],
                 vortex: VortexModelParams | None = None,
                 hls: HLSModelParams | None = None) -> dict:
    """Per-flow, per-benchmark relative-error bounds of a fit.

    ``{"vortex": {bench: {"max_rel_err", "mean_rel_err", "points"}},
    "hls": {...}}`` — the numbers the artifact states and the
    regression tests assert.
    """
    bounds: dict[str, dict[str, dict]] = {}
    for s in samples:
        pred = _sample_prediction(s, vortex=vortex, hls=hls)
        rel = abs(pred - s.true_cycles) / max(s.true_cycles, 1e-9)
        entry = bounds.setdefault(s.flow, {}).setdefault(
            s.benchmark, {"max_rel_err": 0.0, "mean_rel_err": 0.0,
                          "points": 0})
        entry["max_rel_err"] = max(entry["max_rel_err"], rel)
        entry["mean_rel_err"] += rel
        entry["points"] += 1
    for per_bench in bounds.values():
        for entry in per_bench.values():
            entry["max_rel_err"] = round(entry["max_rel_err"], 6)
            entry["mean_rel_err"] = round(
                entry["mean_rel_err"] / entry["points"], 6)
    return bounds


def run_calibration(
    benchmarks: Sequence[str] = ("vecadd", "transpose"),
    n: int = 4096,
    cores: int = 4,
    cells: Sequence[tuple[int, int]] = VORTEX_CALIBRATION_CELLS,
    hls_sizes: Sequence[int] = HLS_CALIBRATION_SIZES,
    base: VortexConfig | None = None,
    cache: ResultCache | None = None,
    engine: ExperimentEngine | None = None,
    jobs: int = 1,
    retries: int = 0,
    point_timeout: float | None = None,
) -> CalibrationArtifact:
    """Collect ground truth, fit both flows, and assemble the artifact.

    The caller persists it with :meth:`CalibrationArtifact.save`; the
    fingerprint is recorded at fit time so a later load can detect code
    drift.
    """
    vortex_samples = collect_vortex_samples(
        benchmarks=benchmarks, n=n, cores=cores, cells=cells, base=base,
        cache=cache, engine=engine, jobs=jobs, retries=retries,
        point_timeout=point_timeout)
    hls_samples = collect_hls_samples(benchmarks=benchmarks,
                                      sizes=hls_sizes)
    vortex_params = fit_vortex_params(vortex_samples)
    hls_params = fit_hls_params(hls_samples)
    bounds = error_bounds(vortex_samples + hls_samples,
                          vortex=vortex_params, hls=hls_params)
    return CalibrationArtifact(
        fingerprint=code_fingerprint(),
        vortex=vortex_params,
        hls=hls_params,
        error_bounds=bounds,
        meta={
            "benchmarks": list(benchmarks),
            "n": n,
            "cores": cores,
            "cells": [list(c) for c in cells],
            "hls_sizes": list(hls_sizes),
        },
    )
