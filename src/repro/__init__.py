"""repro: HLS vs. soft-GPU execution of GPU applications on FPGA.

A full-system Python reproduction of "Comparative Analysis of Executing
GPU Applications on FPGA: HLS vs. Soft GPU Approaches" (IPPS 2024).

Subpackages
-----------
``repro.ocl``
    Mini-OpenCL frontend: kernel IR + builder DSL, functional interpreter,
    NDRange, and an OpenCL-style host API with pluggable device backends.
``repro.passes``
    Middle-end analyses and transforms shared by both backends (CFG,
    dominators, liveness, CSE, DCE, divergence analysis, loop analysis).
``repro.hls``
    The HLS approach (Intel FPGA SDK for OpenCL model): LSU inference,
    area model, device database, synthesis failure modes, pipeline
    performance model.
``repro.vortex``
    The soft-GPU approach (Vortex model): RISC-V+SIMT ISA, assembler,
    code generator with divergence lowering, cycle-level simulator,
    runtime, and synthesis-area model.
``repro.benchmarks``
    The 28-benchmark suite from the paper's Table I.
``repro.harness``
    Experiment drivers that regenerate every table and figure.
"""

__version__ = "1.0.0"
