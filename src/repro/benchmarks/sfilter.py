"""Sfilter — 3x3 convolution filter over a 2-D image (Vortex sample
suite). Nine row-major neighbour loads per pixel."""

from __future__ import annotations

import numpy as np

from ..ocl import GLOBAL_FLOAT32, INT32, KernelBuilder
from .suite import Benchmark, register

_K = np.array([[0.0625, 0.125, 0.0625],
               [0.125, 0.25, 0.125],
               [0.0625, 0.125, 0.0625]], dtype=np.float32)


def build():
    b = KernelBuilder("sfilter")
    src = b.param("src", GLOBAL_FLOAT32)
    dst = b.param("dst", GLOBAL_FLOAT32)
    width = b.param("width", INT32)
    height = b.param("height", INT32)
    x = b.global_id(0)
    y = b.global_id(1)
    interior = b.logical_and(
        b.logical_and(b.gt(x, 0), b.lt(x, b.sub(width, 1))),
        b.logical_and(b.gt(y, 0), b.lt(y, b.sub(height, 1))),
    )
    with b.if_(interior):
        total = None
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                idx = b.add(b.mul(b.add(y, dy), width), b.add(x, dx))
                term = b.mul(b.load(src, idx),
                             float(_K[dy + 1, dx + 1]))
                total = term if total is None else b.add(total, term)
        b.store(dst, b.add(b.mul(y, width), x), total)
    return [b.finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    w = h = 16 * scale
    return {"width": w, "height": h,
            "src": rng.random(w * h, dtype=np.float32)}


def run(ctx, prog, wl) -> dict:
    w, h = wl["width"], wl["height"]
    src = ctx.buffer(wl["src"])
    dst = ctx.alloc(w * h)
    prog.launch("sfilter", [src, dst, w, h],
                global_size=(w, h), local_size=(8, 2))
    return {"dst": dst.read()}


def reference(wl) -> dict:
    w, h = wl["width"], wl["height"]
    img = wl["src"].reshape(h, w).astype(np.float32)
    out = np.zeros_like(img)
    # Match the kernel's accumulation order: rows then columns.
    for yy in range(1, h - 1):
        for xx in range(1, w - 1):
            acc = np.float32(0.0)
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    acc = np.float32(
                        acc + np.float32(img[yy + dy, xx + dx]
                                         * _K[dy + 1, dx + 1])
                    )
            out[yy, xx] = acc
    return {"dst": out.reshape(-1)}


register(Benchmark(
    name="sfilter",
    table_name="Sfilter",
    source="vortex",
    tags=frozenset({"stencil"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
))
