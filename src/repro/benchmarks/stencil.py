"""Stencil — 7-point 3-D Jacobi stencil (Parboil)."""

from __future__ import annotations

import numpy as np

from ..ocl import FLOAT32, GLOBAL_FLOAT32, INT32, KernelBuilder
from .suite import Benchmark, register


def build():
    b = KernelBuilder("stencil")
    src = b.param("src", GLOBAL_FLOAT32)
    dst = b.param("dst", GLOBAL_FLOAT32)
    nx = b.param("nx", INT32)
    ny = b.param("ny", INT32)
    nz = b.param("nz", INT32)
    c0 = b.param("c0", FLOAT32)
    c1 = b.param("c1", FLOAT32)
    x = b.global_id(0)
    y = b.global_id(1)
    z = b.global_id(2)
    inside = b.logical_and(
        b.logical_and(
            b.logical_and(b.gt(x, 0), b.lt(x, b.sub(nx, 1))),
            b.logical_and(b.gt(y, 0), b.lt(y, b.sub(ny, 1))),
        ),
        b.logical_and(b.gt(z, 0), b.lt(z, b.sub(nz, 1))),
    )
    with b.if_(inside):
        plane = b.mul(nx, ny)
        idx = b.add(b.add(b.mul(z, plane), b.mul(y, nx)), x)
        neighbours = b.add(
            b.add(
                b.add(b.load(src, b.add(idx, 1)),
                      b.load(src, b.sub(idx, 1))),
                b.add(b.load(src, b.add(idx, nx)),
                      b.load(src, b.sub(idx, nx))),
            ),
            b.add(b.load(src, b.add(idx, plane)),
                  b.load(src, b.sub(idx, plane))),
        )
        centre = b.load(src, idx)
        b.store(dst, idx, b.add(b.mul(c1, neighbours), b.mul(c0, centre)))
    return [b.finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    nx, ny, nz = 8 * scale, 8 * scale, 4 * scale
    return {
        "nx": nx, "ny": ny, "nz": nz, "c0": 0.5, "c1": 1.0 / 12.0,
        "src": rng.random(nx * ny * nz, dtype=np.float32),
    }


def run(ctx, prog, wl) -> dict:
    nx, ny, nz = wl["nx"], wl["ny"], wl["nz"]
    src = ctx.buffer(wl["src"])
    dst = ctx.alloc(nx * ny * nz)
    prog.launch("stencil", [src, dst, nx, ny, nz, wl["c0"], wl["c1"]],
                global_size=(nx, ny, nz), local_size=(8, 2, 1))
    return {"dst": dst.read()}


def reference(wl) -> dict:
    nx, ny, nz = wl["nx"], wl["ny"], wl["nz"]
    g = wl["src"].reshape(nz, ny, nx).astype(np.float32)
    out = np.zeros_like(g)
    c0, c1 = np.float32(wl["c0"]), np.float32(wl["c1"])
    neigh = (
        g[1:-1, 1:-1, 2:].astype(np.float32) + g[1:-1, 1:-1, :-2]
        + g[1:-1, 2:, 1:-1] + g[1:-1, :-2, 1:-1]
        + g[2:, 1:-1, 1:-1] + g[:-2, 1:-1, 1:-1]
    )
    out[1:-1, 1:-1, 1:-1] = c1 * neigh + c0 * g[1:-1, 1:-1, 1:-1]
    return {"dst": out.reshape(-1)}


register(Benchmark(
    name="stencil",
    table_name="Stencil",
    source="parboil",
    tags=frozenset({"stencil"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
    tolerance=1e-3,
))
