"""Streamcluster — the pgain distance kernel (Rodinia): cost of
assigning every point to a candidate centre."""

from __future__ import annotations

import numpy as np

from ..ocl import FLOAT32, GLOBAL_FLOAT32, INT32, KernelBuilder
from .suite import Benchmark, register


def build():
    b = KernelBuilder("pgain_dist")
    coords = b.param("coords", GLOBAL_FLOAT32)  # npoints x dim, row-major
    weights = b.param("weights", GLOBAL_FLOAT32)
    centre = b.param("centre", GLOBAL_FLOAT32)  # dim floats
    cost = b.param("cost", GLOBAL_FLOAT32)
    npoints = b.param("npoints", INT32)
    dim = b.param("dim", INT32)
    pt = b.global_id(0)
    with b.if_(b.lt(pt, npoints)):
        acc = b.var("acc", FLOAT32, init=0.0)
        with b.for_range(0, dim) as d:
            diff = b.sub(b.load(coords, b.add(b.mul(pt, dim), d)),
                         b.load(centre, d))
            acc.set(b.add(acc.get(), b.mul(diff, diff)))
        b.store(cost, pt, b.mul(acc.get(), b.load(weights, pt)))
    return [b.finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    npoints = 64 * scale
    dim = 4
    return {
        "npoints": npoints,
        "dim": dim,
        "coords": rng.random(npoints * dim, dtype=np.float32),
        "weights": (rng.random(npoints, dtype=np.float32) + 0.5),
        "centre": rng.random(dim, dtype=np.float32),
    }


def run(ctx, prog, wl) -> dict:
    coords = ctx.buffer(wl["coords"])
    weights = ctx.buffer(wl["weights"])
    centre = ctx.buffer(wl["centre"])
    cost = ctx.alloc(wl["npoints"])
    prog.launch(
        "pgain_dist",
        [coords, weights, centre, cost, wl["npoints"], wl["dim"]],
        global_size=wl["npoints"], local_size=16,
    )
    return {"cost": cost.read()}


def reference(wl) -> dict:
    pts = wl["coords"].reshape(wl["npoints"], wl["dim"]).astype(np.float64)
    d = ((pts - wl["centre"].astype(np.float64)) ** 2).sum(axis=1)
    return {"cost": (d * wl["weights"]).astype(np.float32)}


register(Benchmark(
    name="streamcluster",
    table_name="Streamcluster",
    source="rodinia",
    tags=frozenset({"strided"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
))
