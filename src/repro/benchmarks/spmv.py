"""SPMV — sparse matrix-vector product, CSR format (Parboil).

One work item per row; row lengths differ, so the inner loop has a
divergent trip count (PRED lowering on Vortex) and the ``x[col[j]]``
gather is the classic indirect access for the HLS LSU classifier.
"""

from __future__ import annotations

import numpy as np

from ..ocl import FLOAT32, GLOBAL_FLOAT32, GLOBAL_INT32, INT32, KernelBuilder
from .suite import Benchmark, register


def build():
    b = KernelBuilder("spmv")
    row_ptr = b.param("row_ptr", GLOBAL_INT32)
    col_idx = b.param("col_idx", GLOBAL_INT32)
    values = b.param("values", GLOBAL_FLOAT32)
    x = b.param("x", GLOBAL_FLOAT32)
    y = b.param("y", GLOBAL_FLOAT32)
    nrows = b.param("nrows", INT32)
    row = b.global_id(0)
    with b.if_(b.lt(row, nrows)):
        start = b.load(row_ptr, row)
        end = b.load(row_ptr, b.add(row, 1))
        acc = b.var("acc", FLOAT32, init=0.0)
        j = b.var("j", INT32, init=start)
        with b.while_(lambda: b.lt(j.get(), end)):
            v = b.load(values, j.get())
            xv = b.load(x, b.load(col_idx, j.get()))
            acc.set(b.add(acc.get(), b.mul(v, xv)))
            j.set(b.add(j.get(), 1))
        b.store(y, row, acc.get())
    return [b.finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    nrows = 32 * scale
    ncols = nrows
    row_ptr = [0]
    cols: list[int] = []
    vals: list[float] = []
    for _ in range(nrows):
        nnz = int(rng.integers(0, 6))
        chosen = np.sort(rng.choice(ncols, size=nnz, replace=False))
        cols.extend(int(c) for c in chosen)
        vals.extend(float(v) for v in rng.random(nnz))
        row_ptr.append(len(cols))
    return {
        "nrows": nrows,
        "row_ptr": np.array(row_ptr, dtype=np.int32),
        "col_idx": np.array(cols or [0], dtype=np.int32),
        "values": np.array(vals or [0.0], dtype=np.float32),
        "x": rng.random(ncols, dtype=np.float32),
    }


def run(ctx, prog, wl) -> dict:
    row_ptr = ctx.buffer(wl["row_ptr"])
    col_idx = ctx.buffer(wl["col_idx"])
    values = ctx.buffer(wl["values"])
    x = ctx.buffer(wl["x"])
    y = ctx.alloc(wl["nrows"])
    prog.launch("spmv", [row_ptr, col_idx, values, x, y, wl["nrows"]],
                global_size=wl["nrows"], local_size=8)
    return {"y": y.read()}


def reference(wl) -> dict:
    nrows = wl["nrows"]
    y = np.zeros(nrows, dtype=np.float32)
    for r in range(nrows):
        acc = np.float32(0.0)
        for j in range(wl["row_ptr"][r], wl["row_ptr"][r + 1]):
            acc = np.float32(
                acc + np.float32(wl["values"][j] * wl["x"][wl["col_idx"][j]])
            )
        y[r] = acc
    return {"y": y}


register(Benchmark(
    name="spmv",
    table_name="SPMV",
    source="parboil",
    tags=frozenset({"indirect", "divergent"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
))
