"""Particlefilter — the weight-update and resampling kernels (Rodinia).

The resampling ("find index") kernel scans the CDF for the first entry
covering each particle's random draw — written branch-free with
flag/select arithmetic, the restructuring real SIMT compilers expect
(and the paper's §IV-A divergence discussion motivates)."""

from __future__ import annotations

import numpy as np

from ..ocl import FLOAT32, GLOBAL_FLOAT32, INT32, KernelBuilder
from .suite import Benchmark, register


def _weights_kernel():
    b = KernelBuilder("pf_weights")
    w = b.param("w", GLOBAL_FLOAT32)
    likelihood = b.param("likelihood", GLOBAL_FLOAT32)
    n = b.param("n", INT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, n)):
        b.store(w, gid, b.mul(b.load(w, gid),
                              b.exp(b.load(likelihood, gid))))
    return b.finish()


def _find_index_kernel():
    b = KernelBuilder("pf_find_index")
    cdf = b.param("cdf", GLOBAL_FLOAT32)
    u = b.param("u", GLOBAL_FLOAT32)
    arrayX = b.param("arrayX", GLOBAL_FLOAT32)
    outX = b.param("outX", GLOBAL_FLOAT32)
    n = b.param("n", INT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, n)):
        draw = b.load(u, gid)
        idx = b.var("idx", INT32, init=b.sub(n, 1))
        with b.for_range(0, n) as j:
            jj = b.sub(b.sub(n, 1), j)  # scan backwards
            covers = b.ge(b.load(cdf, jj), draw)
            idx.set(b.select(covers, jj, idx.get()))
        b.store(outX, gid, b.load(arrayX, idx.get()))
    return b.finish()


def build():
    return [_weights_kernel(), _find_index_kernel()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    n = 32 * scale
    return {
        "n": n,
        "w": np.full(n, 1.0 / n, dtype=np.float32),
        "likelihood": (rng.random(n, dtype=np.float32) * 2 - 1),
        "arrayX": rng.random(n, dtype=np.float32) * 10,
        "u_base": float(rng.random()) / n,
    }


def run(ctx, prog, wl) -> dict:
    n = wl["n"]
    w = ctx.buffer(wl["w"])
    likelihood = ctx.buffer(wl["likelihood"])
    prog.launch("pf_weights", [w, likelihood, n],
                global_size=n, local_size=8)
    # Normalise + CDF on the host (Rodinia does the same between kernels).
    weights = w.read().astype(np.float64)
    weights /= weights.sum()
    cdf_host = np.cumsum(weights).astype(np.float32)
    u_host = (wl["u_base"] + np.arange(n) / n).astype(np.float32)
    cdf = ctx.buffer(cdf_host)
    u = ctx.buffer(u_host)
    arrayX = ctx.buffer(wl["arrayX"])
    outX = ctx.alloc(n)
    prog.launch("pf_find_index", [cdf, u, arrayX, outX, n],
                global_size=n, local_size=8)
    return {"outX": outX.read()}


def reference(wl) -> dict:
    n = wl["n"]
    weights = (wl["w"].astype(np.float64)
               * np.exp(wl["likelihood"].astype(np.float32)).astype(
                   np.float32))
    weights /= weights.sum()
    cdf = np.cumsum(weights).astype(np.float32)
    u = (wl["u_base"] + np.arange(n) / n).astype(np.float32)
    out = np.empty(n, dtype=np.float32)
    for i in range(n):
        idx = n - 1
        for j in range(n - 1, -1, -1):
            if cdf[j] >= u[i]:
                idx = j
        out[i] = wl["arrayX"][idx]
    return {"outX": out}


register(Benchmark(
    name="particlefilter",
    table_name="Particlefilter",
    source="rodinia",
    tags=frozenset({"compute", "multi_kernel"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
    tolerance=1e-3,
))
