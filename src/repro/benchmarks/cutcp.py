"""Cutcp — cutoff Coulombic potential on a 3-D lattice (Parboil): each
lattice point accumulates charge/distance over all atoms within a cutoff
radius (divergent contribution test per atom)."""

from __future__ import annotations

import numpy as np

from ..ocl import FLOAT32, GLOBAL_FLOAT32, INT32, KernelBuilder
from .suite import Benchmark, register


def build():
    b = KernelBuilder("cutcp")
    ax = b.param("ax", GLOBAL_FLOAT32)
    ay = b.param("ay", GLOBAL_FLOAT32)
    az = b.param("az", GLOBAL_FLOAT32)
    aq = b.param("aq", GLOBAL_FLOAT32)
    lattice = b.param("lattice", GLOBAL_FLOAT32)
    natoms = b.param("natoms", INT32)
    nx = b.param("nx", INT32)
    ny = b.param("ny", INT32)
    spacing = b.param("spacing", FLOAT32)
    cutoff2 = b.param("cutoff2", FLOAT32)
    gx = b.global_id(0)
    gy = b.global_id(1)
    gz = b.global_id(2)
    px = b.mul(b.itof(gx), spacing)
    py = b.mul(b.itof(gy), spacing)
    pz = b.mul(b.itof(gz), spacing)
    acc = b.var("acc", FLOAT32, init=0.0)
    with b.for_range(0, natoms) as i:
        dx = b.sub(b.load(ax, i), px)
        dy = b.sub(b.load(ay, i), py)
        dz = b.sub(b.load(az, i), pz)
        r2 = b.add(b.add(b.mul(dx, dx), b.mul(dy, dy)), b.mul(dz, dz))
        inside = b.lt(r2, cutoff2)
        # Branch-free contribution (GPU-friendly form): s*(1/sqrt(r2))*q.
        inv_r = b.div(b.const(1.0), b.sqrt(b.add(r2, b.const(1e-6))))
        contrib = b.mul(b.load(aq, i), inv_r)
        acc.set(b.add(acc.get(),
                      b.select(inside, contrib, b.const(0.0))))
    idx = b.add(b.add(b.mul(gz, b.mul(nx, ny)), b.mul(gy, nx)), gx)
    b.store(lattice, idx, acc.get())
    return [b.finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    nx = ny = nz = 4 * scale
    natoms = 16 * scale
    spacing = 0.5
    extent = nx * spacing
    return {
        "nx": nx, "ny": ny, "nz": nz, "natoms": natoms,
        "spacing": spacing, "cutoff2": 1.5,
        "ax": (rng.random(natoms, dtype=np.float32) * extent),
        "ay": (rng.random(natoms, dtype=np.float32) * extent),
        "az": (rng.random(natoms, dtype=np.float32) * extent),
        "aq": (rng.random(natoms, dtype=np.float32) * 2 - 1),
    }


def run(ctx, prog, wl) -> dict:
    nx, ny, nz = wl["nx"], wl["ny"], wl["nz"]
    bufs = [ctx.buffer(wl[k]) for k in ("ax", "ay", "az", "aq")]
    lattice = ctx.alloc(nx * ny * nz)
    prog.launch(
        "cutcp",
        bufs + [lattice, wl["natoms"], nx, ny, wl["spacing"], wl["cutoff2"]],
        global_size=(nx, ny, nz), local_size=(4, 2, 1),
    )
    return {"lattice": lattice.read()}


def reference(wl) -> dict:
    nx, ny, nz = wl["nx"], wl["ny"], wl["nz"]
    xs = np.arange(nx) * np.float32(wl["spacing"])
    ys = np.arange(ny) * np.float32(wl["spacing"])
    zs = np.arange(nz) * np.float32(wl["spacing"])
    gz, gy, gx = np.meshgrid(zs, ys, xs, indexing="ij")
    out = np.zeros((nz, ny, nx), dtype=np.float64)
    for i in range(wl["natoms"]):
        dx = wl["ax"][i] - gx
        dy = wl["ay"][i] - gy
        dz = wl["az"][i] - gz
        r2 = dx * dx + dy * dy + dz * dz
        contrib = wl["aq"][i] / np.sqrt(r2 + 1e-6)
        out += np.where(r2 < wl["cutoff2"], contrib, 0.0)
    return {"lattice": out.astype(np.float32).reshape(-1)}


register(Benchmark(
    name="cutcp",
    table_name="Cutcp",
    source="parboil",
    tags=frozenset({"compute", "divergent"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
    tolerance=5e-3,
))
