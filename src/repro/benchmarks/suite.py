"""Benchmark registry and runners.

Each of the paper's 28 Table-I benchmarks is a module in this package
exposing the same contract:

* ``build()`` — the OpenCL program: a list of kernels built once and
  consumed *unmodified* by every backend (the paper's methodology:
  "identical source code, differing only in the kernel binaries");
* ``workload(scale, seed)`` — deterministic inputs;
* ``run(ctx, prog, wl)`` — the host driver (buffers, launches, reads);
* ``reference(wl)`` — a numpy golden model.

``run_benchmark`` compiles and executes one benchmark on one backend and
validates outputs against the reference; ``coverage_row`` reduces that to
the pass/fail cell of Table I.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..errors import CompilationError, ReproError, SynthesisError
from ..ocl.host import Context, DeviceBackend, LaunchStats
from ..ocl.ir import Kernel

#: Module names in Table I order.
_MODULES = [
    "vecadd", "sgemm", "psort", "saxpy", "sfilter", "dotproduct", "spmv",
    "cutcp", "stencil", "lbm", "oclprintf", "blackscholes", "matmul",
    "transpose", "kmeans", "nearn", "gaussian", "bfs", "backprop",
    "streamcluster", "pathfinder", "nw", "btree", "lavamd", "hybridsort",
    "particlefilter", "dwt2d", "lud",
]


@dataclass(frozen=True)
class Benchmark:
    name: str  # module name
    table_name: str  # spelling used in the paper's Table I
    source: str  # "rodinia" | "nvidia_sdk" | "vortex" | "parboil"
    tags: frozenset[str]
    build: Callable[[], list[Kernel]]
    workload: Callable[[int, int], dict]
    run: Callable[[Context, Any, dict], dict]
    reference: Callable[[dict], dict]
    tolerance: float = 1e-3


@dataclass
class BenchmarkResult:
    benchmark: str
    backend: str
    status: str  # "ok" | "compile_failed" | "validation_failed" | "error"
    fail_reason: str = ""  # machine-readable (SynthesisError.reason)
    detail: str = ""
    launches: list[LaunchStats] = field(default_factory=list)
    outputs: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def total_cycles(self) -> int | None:
        cycles = [s.cycles for s in self.launches if s.cycles is not None]
        return sum(cycles) if cycles else None


_REGISTRY: dict[str, Benchmark] = {}


def register(bench: Benchmark) -> Benchmark:
    if bench.name in _REGISTRY:
        raise ValueError(f"duplicate benchmark {bench.name}")
    _REGISTRY[bench.name] = bench
    return bench


def all_benchmarks() -> list[Benchmark]:
    """All 28 benchmarks, in Table I order."""
    for module in _MODULES:
        if module not in _REGISTRY:
            importlib.import_module(f"{__package__}.{module}")
    return [_REGISTRY[m] for m in _MODULES]


def get_benchmark(name: str) -> Benchmark:
    if name not in _REGISTRY:
        importlib.import_module(f"{__package__}.{name}")
    return _REGISTRY[name]


def _validate(bench: Benchmark, outputs: dict, expected: dict) -> str | None:
    for key, want in expected.items():
        got = outputs.get(key)
        if got is None:
            return f"missing output {key!r}"
        got = np.asarray(got)
        want = np.asarray(want)
        if got.shape != want.shape:
            return f"{key}: shape {got.shape} != {want.shape}"
        if want.dtype.kind == "f":
            if not np.allclose(got, want, rtol=bench.tolerance,
                               atol=bench.tolerance):
                worst = float(np.nanmax(np.abs(got - want)))
                return f"{key}: max abs error {worst:g}"
        else:
            if not np.array_equal(got, want):
                bad = int((got != want).sum())
                return f"{key}: {bad} mismatching elements"
    return None


def run_benchmark(
    bench: Benchmark | str,
    backend: DeviceBackend,
    scale: int = 1,
    seed: int = 0,
    validate: bool = True,
) -> BenchmarkResult:
    """Compile + execute + validate one benchmark on one backend."""
    if isinstance(bench, str):
        bench = get_benchmark(bench)
    result = BenchmarkResult(benchmark=bench.table_name,
                             backend=backend.name, status="ok")
    ctx = Context(backend)
    try:
        kernels = bench.build()
        prog = ctx.program(kernels)
    except SynthesisError as exc:
        result.status = "compile_failed"
        result.fail_reason = exc.reason
        result.detail = exc.detail
        return result
    except CompilationError as exc:
        result.status = "compile_failed"
        result.fail_reason = "compile"
        result.detail = str(exc)
        return result

    launches: list[LaunchStats] = []
    original_launch = prog.launch

    def tracking_launch(*args, **kwargs):
        stats = original_launch(*args, **kwargs)
        launches.append(stats)
        return stats

    prog.launch = tracking_launch  # type: ignore[method-assign]
    wl = bench.workload(scale, seed)
    try:
        outputs = bench.run(ctx, prog, wl)
    except ReproError as exc:
        result.status = "error"
        result.detail = str(exc)
        result.launches = launches
        return result
    result.launches = launches
    result.outputs = outputs
    if validate:
        failure = _validate(bench, outputs, bench.reference(bench.workload(
            scale, seed)))
        if failure is not None:
            result.status = "validation_failed"
            result.detail = failure
    return result


def coverage_row(bench: Benchmark | str, backend: DeviceBackend,
                 scale: int = 1) -> tuple[bool, str]:
    """(passed, reason) — one cell of Table I."""
    result = run_benchmark(bench, backend, scale=scale)
    if result.ok:
        return True, ""
    if result.fail_reason == "bram":
        return False, "Not enough BRAM"
    if result.fail_reason == "atomics":
        return False, "Atomics"
    return False, result.detail or result.status
