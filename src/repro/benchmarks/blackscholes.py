"""Blackscholes — European option pricing (NVIDIA OpenCL SDK sample).

Compute-heavy: log/sqrt/exp plus a polynomial CND approximation per
option; the benchmark in the suite with the highest arithmetic density.
"""

from __future__ import annotations

import numpy as np

from ..ocl import FLOAT32, GLOBAL_FLOAT32, INT32, KernelBuilder, Value
from .suite import Benchmark, register

_A1, _A2, _A3, _A4, _A5 = (
    0.31938153, -0.356563782, 1.781477937, -1.821255978, 1.330274429)
_RSQRT2PI = 0.39894228040143267794


def _cnd(b: KernelBuilder, d: Value) -> Value:
    """Cumulative normal distribution, the SDK's polynomial form."""
    k = b.div(b.const(1.0), b.add(b.const(1.0),
                                  b.mul(b.const(0.2316419), b.abs(d))))
    poly = b.mul(
        k,
        b.add(
            b.const(_A1),
            b.mul(
                k,
                b.add(
                    b.const(_A2),
                    b.mul(
                        k,
                        b.add(
                            b.const(_A3),
                            b.mul(k, b.add(b.const(_A4),
                                           b.mul(k, b.const(_A5)))),
                        ),
                    ),
                ),
            ),
        ),
    )
    pdf = b.mul(b.const(_RSQRT2PI),
                b.exp(b.mul(b.const(-0.5), b.mul(d, d))))
    cnd = b.mul(pdf, poly)
    return b.select(b.gt(d, 0.0), b.sub(b.const(1.0), cnd), cnd)


def build():
    b = KernelBuilder("blackscholes")
    s = b.param("S", GLOBAL_FLOAT32)
    x = b.param("X", GLOBAL_FLOAT32)
    t = b.param("T", GLOBAL_FLOAT32)
    call = b.param("call", GLOBAL_FLOAT32)
    put = b.param("put", GLOBAL_FLOAT32)
    n = b.param("n", INT32)
    r = b.param("r", FLOAT32)
    v = b.param("v", FLOAT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, n)):
        sv = b.load(s, gid)
        xv = b.load(x, gid)
        tv = b.load(t, gid)
        sqrt_t = b.sqrt(tv)
        d1 = b.div(
            b.add(b.log(b.div(sv, xv)),
                  b.mul(b.add(r, b.mul(b.const(0.5), b.mul(v, v))), tv)),
            b.mul(v, sqrt_t),
        )
        d2 = b.sub(d1, b.mul(v, sqrt_t))
        cnd1 = _cnd(b, d1)
        cnd2 = _cnd(b, d2)
        exp_rt = b.exp(b.mul(b.neg(r), tv))
        callv = b.sub(b.mul(sv, cnd1), b.mul(b.mul(xv, exp_rt), cnd2))
        putv = b.sub(
            b.mul(b.mul(xv, exp_rt), b.sub(b.const(1.0), cnd2)),
            b.mul(sv, b.sub(b.const(1.0), cnd1)),
        )
        b.store(call, gid, callv)
        b.store(put, gid, putv)
    return [b.finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    n = 128 * scale
    return {
        "n": n,
        "S": (rng.random(n, dtype=np.float32) * 25 + 5),
        "X": (rng.random(n, dtype=np.float32) * 90 + 10),
        "T": (rng.random(n, dtype=np.float32) * 9.75 + 0.25),
        "r": 0.02,
        "v": 0.30,
    }


def run(ctx, prog, wl) -> dict:
    s = ctx.buffer(wl["S"])
    x = ctx.buffer(wl["X"])
    t = ctx.buffer(wl["T"])
    call = ctx.alloc(wl["n"])
    put = ctx.alloc(wl["n"])
    prog.launch("blackscholes",
                [s, x, t, call, put, wl["n"], wl["r"], wl["v"]],
                global_size=wl["n"], local_size=16)
    return {"call": call.read(), "put": put.read()}


def _cnd_np(d):
    k = 1.0 / (1.0 + 0.2316419 * np.abs(d))
    poly = k * (_A1 + k * (_A2 + k * (_A3 + k * (_A4 + k * _A5))))
    cnd = _RSQRT2PI * np.exp(-0.5 * d * d) * poly
    return np.where(d > 0, 1.0 - cnd, cnd)


def reference(wl) -> dict:
    s = wl["S"].astype(np.float64)
    x = wl["X"].astype(np.float64)
    t = wl["T"].astype(np.float64)
    r, v = wl["r"], wl["v"]
    sqrt_t = np.sqrt(t)
    d1 = (np.log(s / x) + (r + 0.5 * v * v) * t) / (v * sqrt_t)
    d2 = d1 - v * sqrt_t
    cnd1, cnd2 = _cnd_np(d1), _cnd_np(d2)
    exp_rt = np.exp(-r * t)
    call = s * cnd1 - x * exp_rt * cnd2
    put = x * exp_rt * (1.0 - cnd2) - s * (1.0 - cnd1)
    return {"call": call.astype(np.float32), "put": put.astype(np.float32)}


register(Benchmark(
    name="blackscholes",
    table_name="Blackscholes",
    source="nvidia_sdk",
    tags=frozenset({"compute", "transcendental"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
    tolerance=5e-2,
))
