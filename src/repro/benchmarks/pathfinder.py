"""Pathfinder — dynamic programming over a 2-D grid (Rodinia): each row
adds the cheapest of the three parents, staged through local memory with
a halo and a barrier."""

from __future__ import annotations

import numpy as np

from ..ocl import GLOBAL_INT32, INT32, KernelBuilder
from .suite import Benchmark, register

_LOCAL = 8


def build():
    b = KernelBuilder("pathfinder_row")
    wall = b.param("wall", GLOBAL_INT32)  # the current row's costs
    prev = b.param("prev", GLOBAL_INT32)
    out = b.param("out", GLOBAL_INT32)
    ncols = b.param("ncols", INT32)
    tile = b.local_array("tile", INT32, _LOCAL + 2)
    gid = b.global_id(0)
    lid = b.local_id(0)
    with b.if_(b.lt(gid, ncols)):
        b.store(tile, b.add(lid, 1), b.load(prev, gid))
        # Halo cells, clamped at the grid edges.
        with b.if_(b.eq(lid, 0)):
            left = b.max(b.sub(gid, 1), 0)
            b.store(tile, 0, b.load(prev, left))
        with b.if_(b.eq(lid, _LOCAL - 1)):
            right = b.min(b.add(gid, 1), b.sub(ncols, 1))
            b.store(tile, _LOCAL + 1, b.load(prev, right))
    b.barrier()
    with b.if_(b.lt(gid, ncols)):
        centre = b.load(tile, b.add(lid, 1))
        left = b.load(tile, lid)
        right = b.load(tile, b.add(lid, 2))
        best = b.min(b.min(left, centre), right)
        b.store(out, gid, b.add(b.load(wall, gid), best))
    return [b.finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    rows, cols = 8 * scale, 32 * scale
    return {
        "rows": rows,
        "cols": cols,
        "wall": rng.integers(0, 10, (rows, cols)).astype(np.int32),
    }


def run(ctx, prog, wl) -> dict:
    rows, cols = wl["rows"], wl["cols"]
    prev = ctx.buffer(wl["wall"][0])
    out = ctx.alloc(cols, np.int32)
    for r in range(1, rows):
        wall_row = ctx.buffer(wl["wall"][r])
        prog.launch("pathfinder_row", [wall_row, prev, out, cols],
                    global_size=cols, local_size=_LOCAL)
        prev.write(out.read())
    return {"result": prev.read()}


def reference(wl) -> dict:
    rows, cols = wl["rows"], wl["cols"]
    prev = wl["wall"][0].astype(np.int64)
    for r in range(1, rows):
        left = np.empty_like(prev)
        right = np.empty_like(prev)
        left[0] = prev[0]
        left[1:] = prev[:-1]
        right[-1] = prev[-1]
        right[:-1] = prev[1:]
        prev = wl["wall"][r] + np.minimum(np.minimum(left, prev), right)
    return {"result": prev.astype(np.int32)}


register(Benchmark(
    name="pathfinder",
    table_name="pathfinder",
    source="rodinia",
    tags=frozenset({"barrier", "local"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
))
