"""The 28-benchmark suite of the paper's Table I.

Benchmarks are re-implementations of the Rodinia / NVIDIA OpenCL SDK /
Parboil / Vortex-sample workloads against this repository's kernel IR,
each with a deterministic workload generator and a numpy golden model.
"""

from .suite import (
    Benchmark,
    BenchmarkResult,
    all_benchmarks,
    coverage_row,
    get_benchmark,
    run_benchmark,
)

__all__ = [
    "Benchmark",
    "BenchmarkResult",
    "all_benchmarks",
    "coverage_row",
    "get_benchmark",
    "run_benchmark",
]
