"""Nearn — nearest neighbour (Rodinia NN): Euclidean distance from every
record to a query point; the host scans for the minimum."""

from __future__ import annotations

import numpy as np

from ..ocl import FLOAT32, GLOBAL_FLOAT32, INT32, KernelBuilder
from .suite import Benchmark, register


def build():
    b = KernelBuilder("nearn")
    lat = b.param("lat", GLOBAL_FLOAT32)
    lng = b.param("lng", GLOBAL_FLOAT32)
    dist = b.param("dist", GLOBAL_FLOAT32)
    n = b.param("n", INT32)
    qlat = b.param("qlat", FLOAT32)
    qlng = b.param("qlng", FLOAT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, n)):
        dlat = b.sub(b.load(lat, gid), qlat)
        dlng = b.sub(b.load(lng, gid), qlng)
        b.store(dist, gid,
                b.sqrt(b.add(b.mul(dlat, dlat), b.mul(dlng, dlng))))
    return [b.finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    n = 256 * scale
    return {
        "n": n,
        "lat": (rng.random(n, dtype=np.float32) * 180 - 90),
        "lng": (rng.random(n, dtype=np.float32) * 360 - 180),
        "qlat": 30.0,
        "qlng": -60.0,
    }


def run(ctx, prog, wl) -> dict:
    lat = ctx.buffer(wl["lat"])
    lng = ctx.buffer(wl["lng"])
    dist = ctx.alloc(wl["n"])
    prog.launch("nearn", [lat, lng, dist, wl["n"], wl["qlat"], wl["qlng"]],
                global_size=wl["n"], local_size=16)
    out = dist.read()
    return {"dist": out, "nearest": int(np.argmin(out))}


def reference(wl) -> dict:
    dlat = wl["lat"] - np.float32(wl["qlat"])
    dlng = wl["lng"] - np.float32(wl["qlng"])
    dist = np.sqrt(dlat * dlat + dlng * dlng).astype(np.float32)
    return {"dist": dist, "nearest": int(np.argmin(dist))}


register(Benchmark(
    name="nearn",
    table_name="Nearn",
    source="rodinia",
    tags=frozenset({"streaming"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
))
