"""LUD — blocked LU decomposition without pivoting (Rodinia): the
classic three-kernel pipeline (diagonal, perimeter, internal) launched
once per diagonal tile. Its many tile-strided access sites push the HLS
synthesis far past the MX2100's BRAM (Table I)."""

from __future__ import annotations

import numpy as np

from ..ocl import FLOAT32, GLOBAL_FLOAT32, INT32, KernelBuilder
from .suite import Benchmark, register

B = 4  # tile size


def _diagonal():
    # One work item factorises the BxB diagonal tile in place.
    b = KernelBuilder("lud_diagonal")
    a = b.param("a", GLOBAL_FLOAT32)
    n = b.param("n", INT32)
    t = b.param("t", INT32)  # tile origin
    gid = b.global_id(0)
    with b.if_(b.eq(gid, 0)):
        with b.for_range(0, B) as k:
            pivot = b.load(a, b.add(b.mul(b.add(t, k), n), b.add(t, k)))
            with b.for_range(0, B) as i:
                with b.if_(b.gt(i, k)):
                    row = b.add(t, i)
                    lik = b.div(
                        b.load(a, b.add(b.mul(row, n), b.add(t, k))),
                        pivot)
                    b.store(a, b.add(b.mul(row, n), b.add(t, k)), lik)
                    with b.for_range(0, B) as j:
                        with b.if_(b.gt(j, k)):
                            col = b.add(t, j)
                            idx = b.add(b.mul(row, n), col)
                            upd = b.sub(
                                b.load(a, idx),
                                b.mul(lik, b.load(a, b.add(
                                    b.mul(b.add(t, k), n), col))))
                            b.store(a, idx, upd)
    return b.finish()


def _perimeter():
    # Items 0..rem-1 update the row panel (columns right of the tile),
    # items rem..2*rem-1 the column panel (rows below the tile).
    b = KernelBuilder("lud_perimeter")
    a = b.param("a", GLOBAL_FLOAT32)
    n = b.param("n", INT32)
    t = b.param("t", INT32)
    rem = b.param("rem", INT32)  # elements right/below the tile
    gid = b.global_id(0)
    with b.if_(b.lt(gid, rem)):
        # Row panel: column c = t+B+gid; solve L y = a[t..t+B, c].
        c = b.add(b.add(t, B), gid)
        with b.for_range(0, B) as i:
            row = b.add(t, i)
            acc = b.var("acc", FLOAT32, init=b.load(
                a, b.add(b.mul(row, n), c)))
            with b.for_range(0, B) as k:
                with b.if_(b.lt(k, i)):
                    lik = b.load(a, b.add(b.mul(row, n), b.add(t, k)))
                    ykc = b.load(a, b.add(b.mul(b.add(t, k), n), c))
                    acc.set(b.sub(acc.get(), b.mul(lik, ykc)))
            b.store(a, b.add(b.mul(row, n), c), acc.get())
    with b.if_(b.logical_and(b.ge(gid, rem), b.lt(gid, b.mul(rem, 2)))):
        # Column panel: row r = t+B+(gid-rem); a[r, t+k] = (...)/U[k,k].
        r = b.add(b.add(t, B), b.sub(gid, rem))
        with b.for_range(0, B) as k:
            col = b.add(t, k)
            acc = b.var("acc2", FLOAT32, init=b.load(
                a, b.add(b.mul(r, n), col)))
            with b.for_range(0, B) as j:
                with b.if_(b.lt(j, k)):
                    arj = b.load(a, b.add(b.mul(r, n), b.add(t, j)))
                    ujk = b.load(a, b.add(b.mul(b.add(t, j), n), col))
                    acc.set(b.sub(acc.get(), b.mul(arj, ujk)))
            ukk = b.load(a, b.add(b.mul(col, n), col))
            b.store(a, b.add(b.mul(r, n), col), b.div(acc.get(), ukk))
    return b.finish()


def _internal():
    # Item (x, y) updates a[t+B+y, t+B+x] with the rank-B product.
    b = KernelBuilder("lud_internal")
    a = b.param("a", GLOBAL_FLOAT32)
    n = b.param("n", INT32)
    t = b.param("t", INT32)
    rem = b.param("rem", INT32)
    x = b.global_id(0)
    y = b.global_id(1)
    with b.if_(b.logical_and(b.lt(x, rem), b.lt(y, rem))):
        row = b.add(b.add(t, B), y)
        col = b.add(b.add(t, B), x)
        acc = b.var("acc", FLOAT32, init=0.0)
        with b.for_range(0, B) as k:
            lrk = b.load(a, b.add(b.mul(row, n), b.add(t, k)))
            ukc = b.load(a, b.add(b.mul(b.add(t, k), n), col))
            acc.set(b.add(acc.get(), b.mul(lrk, ukc)))
        idx = b.add(b.mul(row, n), col)
        b.store(a, idx, b.sub(b.load(a, idx), acc.get()))
    return b.finish()


def build():
    return [_diagonal(), _perimeter(), _internal()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    n = 2 * B * scale
    a = rng.random((n, n), dtype=np.float32) + np.eye(
        n, dtype=np.float32) * n
    return {"n": n, "a": a.reshape(-1).copy()}


def _round_up(x: int, m: int) -> int:
    return ((x + m - 1) // m) * m


def run(ctx, prog, wl) -> dict:
    n = wl["n"]
    a = ctx.buffer(wl["a"])
    for t in range(0, n, B):
        prog.launch("lud_diagonal", [a, n, t], global_size=4, local_size=4)
        rem = n - t - B
        if rem > 0:
            prog.launch("lud_perimeter", [a, n, t, rem],
                        global_size=_round_up(2 * rem, 8), local_size=8)
            prog.launch("lud_internal", [a, n, t, rem],
                        global_size=(_round_up(rem, 4), _round_up(rem, 2)),
                        local_size=(4, 2))
    return {"a": a.read()}


def reference(wl) -> dict:
    n = wl["n"]
    a = wl["a"].reshape(n, n).astype(np.float64).copy()
    # Doolittle LU, no pivoting: L (unit diagonal) and U packed in place.
    for k in range(n):
        for i in range(k + 1, n):
            a[i, k] /= a[k, k]
            a[i, k + 1:] -= a[i, k] * a[k, k + 1:]
    return {"a": a.astype(np.float32).reshape(-1)}


register(Benchmark(
    name="lud",
    table_name="LUD",
    source="rodinia",
    tags=frozenset({"strided", "multi_kernel", "bram_heavy"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
    tolerance=2e-2,
))
