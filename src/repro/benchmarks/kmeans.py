"""Kmeans — membership assignment kernel (Rodinia): each point finds its
nearest cluster centre. The feature access ``features[pt*nfeat + f]`` is
the strided pattern the HLS LSU classifier prices at full burst-coalesced
cost."""

from __future__ import annotations

import numpy as np

from ..ocl import FLOAT32, GLOBAL_FLOAT32, GLOBAL_INT32, INT32, KernelBuilder
from .suite import Benchmark, register


def build():
    b = KernelBuilder("kmeans")
    features = b.param("features", GLOBAL_FLOAT32)
    clusters = b.param("clusters", GLOBAL_FLOAT32)
    membership = b.param("membership", GLOBAL_INT32)
    npoints = b.param("npoints", INT32)
    nclusters = b.param("nclusters", INT32)
    nfeatures = b.param("nfeatures", INT32)
    pt = b.global_id(0)
    with b.if_(b.lt(pt, npoints)):
        best = b.var("best", INT32, init=0)
        best_dist = b.var("best_dist", FLOAT32, init=3.4e38)
        with b.for_range(0, nclusters) as c:
            dist = b.var("dist", FLOAT32, init=0.0)
            with b.for_range(0, nfeatures) as f:
                fv = b.load(features, b.add(b.mul(pt, nfeatures), f))
                cv = b.load(clusters, b.add(b.mul(c, nfeatures), f))
                d = b.sub(fv, cv)
                dist.set(b.add(dist.get(), b.mul(d, d)))
            closer = b.lt(dist.get(), best_dist.get())
            best.set(b.select(closer, c, best.get()))
            best_dist.set(b.select(closer, dist.get(), best_dist.get()))
        b.store(membership, pt, best.get())
    return [b.finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    npoints = 64 * scale
    nclusters = 4
    nfeatures = 4
    return {
        "npoints": npoints,
        "nclusters": nclusters,
        "nfeatures": nfeatures,
        "features": rng.random(npoints * nfeatures, dtype=np.float32),
        "clusters": rng.random(nclusters * nfeatures, dtype=np.float32),
    }


def run(ctx, prog, wl) -> dict:
    features = ctx.buffer(wl["features"])
    clusters = ctx.buffer(wl["clusters"])
    membership = ctx.alloc(wl["npoints"], np.int32)
    prog.launch(
        "kmeans",
        [features, clusters, membership, wl["npoints"], wl["nclusters"],
         wl["nfeatures"]],
        global_size=wl["npoints"], local_size=16,
    )
    return {"membership": membership.read()}


def reference(wl) -> dict:
    pts = wl["features"].reshape(wl["npoints"], wl["nfeatures"])
    ctr = wl["clusters"].reshape(wl["nclusters"], wl["nfeatures"])
    d = ((pts[:, None, :] - ctr[None, :, :]) ** 2).sum(axis=2)
    return {"membership": d.argmin(axis=1).astype(np.int32)}


register(Benchmark(
    name="kmeans",
    table_name="Kmeans",
    source="rodinia",
    tags=frozenset({"strided", "compute"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
))
