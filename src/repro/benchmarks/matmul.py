"""Matmul — tiled matrix multiply with local-memory staging (NVIDIA
OpenCL SDK style). The tiled form is the one the paper synthesizes: the
staging tiles and barriers are what give it its Table III area
signature (2,696 BRAMs)."""

from __future__ import annotations

import numpy as np

from ..ocl import FLOAT32, GLOBAL_FLOAT32, INT32, KernelBuilder
from .suite import Benchmark, register

TILE = 4


def build():
    b = KernelBuilder("matmul")
    a = b.param("A", GLOBAL_FLOAT32)
    bb = b.param("B", GLOBAL_FLOAT32)
    c = b.param("C", GLOBAL_FLOAT32)
    n = b.param("n", INT32)  # square matrices, n % TILE == 0
    as_tile = b.local_array("As", FLOAT32, TILE * TILE)
    bs_tile = b.local_array("Bs", FLOAT32, TILE * TILE)
    lx = b.local_id(0)
    ly = b.local_id(1)
    col = b.global_id(0)
    row = b.global_id(1)
    ntiles = b.div(n, TILE)
    acc = b.var("acc", FLOAT32, init=0.0)
    with b.for_range(0, ntiles) as t:
        a_idx = b.add(b.mul(row, n), b.add(b.mul(t, TILE), lx))
        b_idx = b.add(b.mul(b.add(b.mul(t, TILE), ly), n), col)
        b.store(as_tile, b.add(b.mul(ly, TILE), lx), b.load(a, a_idx))
        b.store(bs_tile, b.add(b.mul(ly, TILE), lx), b.load(bb, b_idx))
        b.barrier()
        with b.for_range(0, TILE) as kk:
            av = b.load(as_tile, b.add(b.mul(ly, TILE), kk))
            bv = b.load(bs_tile, b.add(b.mul(kk, TILE), lx))
            acc.set(b.add(acc.get(), b.mul(av, bv)))
        b.barrier()
    b.store(c, b.add(b.mul(row, n), col), acc.get())
    return [b.finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    n = 8 * scale
    return {
        "n": n,
        "A": rng.random(n * n, dtype=np.float32),
        "B": rng.random(n * n, dtype=np.float32),
    }


def run(ctx, prog, wl) -> dict:
    n = wl["n"]
    a = ctx.buffer(wl["A"])
    bb = ctx.buffer(wl["B"])
    c = ctx.alloc(n * n)
    prog.launch("matmul", [a, bb, c, n],
                global_size=(n, n), local_size=(TILE, TILE))
    return {"C": c.read()}


def reference(wl) -> dict:
    n = wl["n"]
    a = wl["A"].reshape(n, n).astype(np.float64)
    bmat = wl["B"].reshape(n, n).astype(np.float64)
    return {"C": (a @ bmat).astype(np.float32).reshape(-1)}


register(Benchmark(
    name="matmul",
    table_name="Matmul",
    source="nvidia_sdk",
    tags=frozenset({"barrier", "local", "compute"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
    tolerance=1e-2,
))
