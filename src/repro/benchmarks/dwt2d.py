"""Dwt2d — one level of a 2-D 9/7-tap discrete wavelet transform
(Rodinia). The row and column kernels each take nine mirrored-boundary
taps per output; the clamping makes every tap a separate non-affine
(indirect) load/store unit under HLS — together far beyond the MX2100's
BRAM (Table I)."""

from __future__ import annotations

import numpy as np

from ..ocl import GLOBAL_FLOAT32, INT32, KernelBuilder
from .suite import Benchmark, register

#: Symmetric 9-tap low-pass / 7-tap high-pass analysis filters
#: (CDF 9/7 coefficients, truncated to float32).
LOW = [0.026749, -0.016864, -0.078223, 0.266864, 0.602949,
       0.266864, -0.078223, -0.016864, 0.026749]
HIGH = [0.045636, -0.028772, -0.295636, 0.557543,
        -0.295636, -0.028772, 0.045636]


def _tap_kernel(name: str, along_rows: bool) -> KernelBuilder:
    b = KernelBuilder(name)
    src = b.param("src", GLOBAL_FLOAT32)
    dst = b.param("dst", GLOBAL_FLOAT32)
    width = b.param("width", INT32)
    height = b.param("height", INT32)
    i = b.global_id(0)  # output index along the filtered axis (0..len/2)
    line = b.global_id(1)  # which row (or column)
    length = width if along_rows else height
    half = b.div(length, 2)
    with b.if_(b.logical_and(
            b.lt(i, half),
            b.lt(line, height if along_rows else width))):
        centre = b.mul(i, 2)

        def sample(offset: int):
            pos = b.add(centre, offset)
            pos = b.max(pos, 0)  # mirror-free clamp at the boundary
            pos = b.min(pos, b.sub(length, 1))
            if along_rows:
                return b.load(src, b.add(b.mul(line, width), pos))
            return b.load(src, b.add(b.mul(pos, width), line))

        low = None
        for k, coeff in enumerate(LOW):
            term = b.mul(sample(k - 4), float(coeff))
            low = term if low is None else b.add(low, term)
        high = None
        for k, coeff in enumerate(HIGH):
            term = b.mul(sample(k - 3 + 1), float(coeff))
            high = term if high is None else b.add(high, term)
        if along_rows:
            b.store(dst, b.add(b.mul(line, width), i), low)
            b.store(dst, b.add(b.mul(line, width), b.add(half, i)), high)
        else:
            b.store(dst, b.add(b.mul(i, width), line), low)
            b.store(dst, b.add(b.mul(b.add(half, i), width), line), high)
    return b


def build():
    return [_tap_kernel("fdwt_row", True).finish(),
            _tap_kernel("fdwt_col", False).finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    w = h = 16 * scale
    return {"width": w, "height": h,
            "src": rng.random(w * h, dtype=np.float32)}


def run(ctx, prog, wl) -> dict:
    w, h = wl["width"], wl["height"]
    src = ctx.buffer(wl["src"])
    tmp = ctx.alloc(w * h)
    out = ctx.alloc(w * h)
    prog.launch("fdwt_row", [src, tmp, w, h],
                global_size=(w // 2, h), local_size=(4, 2))
    prog.launch("fdwt_col", [tmp, out, w, h],
                global_size=(h // 2, w), local_size=(4, 2))
    return {"out": out.read()}


def _filter_lines(data: np.ndarray) -> np.ndarray:
    """Apply the analysis filters along axis 1 with clamped boundaries."""
    n = data.shape[1]
    half = n // 2
    out = np.zeros_like(data)
    idx = np.arange(half) * 2
    for k, coeff in enumerate(LOW):
        pos = np.clip(idx + k - 4, 0, n - 1)
        out[:, :half] += np.float32(coeff) * data[:, pos]
    for k, coeff in enumerate(HIGH):
        pos = np.clip(idx + k - 2, 0, n - 1)
        out[:, half:] += np.float32(coeff) * data[:, pos]
    return out


def reference(wl) -> dict:
    w, h = wl["width"], wl["height"]
    img = wl["src"].reshape(h, w).astype(np.float64)
    rows = _filter_lines(img)
    cols = _filter_lines(rows.T).T
    return {"out": cols.astype(np.float32).reshape(-1)}


register(Benchmark(
    name="dwt2d",
    table_name="Dwd2d",
    source="rodinia",
    tags=frozenset({"indirect", "multi_kernel", "bram_heavy"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
    tolerance=1e-3,
))
