"""B+tree — findK and findRangeK query kernels (Rodinia).

Pointer-chasing over a flattened B+tree: every level dereferences
data-dependent node offsets, so both kernels are walls of indirect
load/store units — together they exceed the MX2100's BRAM (Table I).
The traversal depth is uniform (all leaves at the same level), so the
walk is a uniform loop with branch-free child selection, exactly how the
Rodinia OpenCL kernel is structured.
"""

from __future__ import annotations

import numpy as np

from ..ocl import GLOBAL_INT32, INT32, KernelBuilder
from .suite import Benchmark, register

ORDER = 4  # keys per node


def _walk(b, keys, children, node_var, query):
    """One level: node = children[node*ORDER + #(keys <= query)]."""
    slot = b.var("slot", INT32, init=0)
    with b.for_range(0, ORDER) as i:
        kv = b.load(keys, b.add(b.mul(node_var.get(), ORDER), i))
        take = b.le(kv, query)
        slot.set(b.add(slot.get(), b.zext(take)))
    node_var.set(b.load(children,
                        b.add(b.mul(node_var.get(), ORDER + 1), slot.get())))


def _findk():
    b = KernelBuilder("findK")
    keys = b.param("keys", GLOBAL_INT32)
    children = b.param("children", GLOBAL_INT32)
    leaf_vals = b.param("leaf_vals", GLOBAL_INT32)
    queries = b.param("queries", GLOBAL_INT32)
    out = b.param("out", GLOBAL_INT32)
    height = b.param("height", INT32)
    nq = b.param("nq", INT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, nq)):
        q = b.load(queries, gid)
        node = b.var("node", INT32, init=0)
        with b.for_range(0, height):
            _walk(b, keys, children, node, q)
        # At the leaf: select the matching key's value (or -1).
        found = b.var("found", INT32, init=-1)
        with b.for_range(0, ORDER) as i:
            koff = b.add(b.mul(node.get(), ORDER), i)
            match = b.eq(b.load(keys, koff), q)
            found.set(b.select(match, b.load(leaf_vals, koff),
                               found.get()))
        b.store(out, gid, found.get())
    return b.finish()


def _find_range_k():
    b = KernelBuilder("findRangeK")
    keys = b.param("keys", GLOBAL_INT32)
    children = b.param("children", GLOBAL_INT32)
    queries_lo = b.param("queries_lo", GLOBAL_INT32)
    queries_hi = b.param("queries_hi", GLOBAL_INT32)
    count = b.param("count", GLOBAL_INT32)
    height = b.param("height", INT32)
    nq = b.param("nq", INT32)
    nleaf_base = b.param("nleaf_base", INT32)  # first leaf node id
    nleaves = b.param("nleaves", INT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, nq)):
        lo = b.load(queries_lo, gid)
        hi = b.load(queries_hi, gid)
        node_lo = b.var("node_lo", INT32, init=0)
        node_hi = b.var("node_hi", INT32, init=0)
        with b.for_range(0, height):
            _walk(b, keys, children, node_lo, lo)
            _walk(b, keys, children, node_hi, hi)
        # Count keys in [lo, hi] across the leaf span.
        total = b.var("total", INT32, init=0)
        first = b.sub(node_lo.get(), nleaf_base)
        last = b.sub(node_hi.get(), nleaf_base)
        with b.for_range(0, nleaves) as leaf:
            in_span = b.logical_and(b.ge(leaf, first), b.le(leaf, last))
            with b.for_range(0, ORDER) as i:
                node = b.add(nleaf_base, leaf)
                kv = b.load(keys, b.add(b.mul(node, ORDER), i))
                hit = b.logical_and(
                    in_span,
                    b.logical_and(b.ge(kv, lo), b.le(kv, hi)),
                )
                total.set(b.add(total.get(), b.zext(hit)))
        b.store(count, gid, total.get())
    return b.finish()


def build():
    return [_findk(), _find_range_k()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    # Two-level tree: root + ORDER+1 leaves, each with ORDER keys.
    nleaves = ORDER + 1
    nkeys = nleaves * ORDER
    keys_sorted = np.sort(rng.choice(1000, size=nkeys, replace=False)
                          ).astype(np.int32)
    nnodes = 1 + nleaves
    keys = np.full((nnodes, ORDER), 2**30, dtype=np.int32)
    children = np.zeros((nnodes, ORDER + 1), dtype=np.int32)
    leaf_vals = np.zeros((nnodes, ORDER), dtype=np.int32)
    leaves = keys_sorted.reshape(nleaves, ORDER)
    for leaf in range(nleaves):
        keys[1 + leaf] = leaves[leaf]
        leaf_vals[1 + leaf] = leaves[leaf] * 7  # value = 7 * key
    # Root separators: first key of leaves 1..ORDER.
    keys[0, :] = [int(leaves[i + 1, 0]) for i in range(ORDER)]
    children[0, :] = np.arange(1, nleaves + 1, dtype=np.int32)
    nq = 16 * scale
    queries = rng.choice(keys_sorted, size=nq).astype(np.int32)
    lo = rng.integers(0, 500, nq).astype(np.int32)
    hi = (lo + rng.integers(0, 500, nq)).astype(np.int32)
    return {
        "height": 1,
        "nleaf_base": 1,
        "nleaves": nleaves,
        "nq": nq,
        "keys": keys.reshape(-1),
        "children": children.reshape(-1),
        "leaf_vals": leaf_vals.reshape(-1),
        "queries": queries,
        "queries_lo": lo,
        "queries_hi": hi,
        "sorted_keys": keys_sorted,
    }


def run(ctx, prog, wl) -> dict:
    keys = ctx.buffer(wl["keys"])
    children = ctx.buffer(wl["children"])
    leaf_vals = ctx.buffer(wl["leaf_vals"])
    queries = ctx.buffer(wl["queries"])
    out = ctx.alloc(wl["nq"], np.int32)
    prog.launch("findK",
                [keys, children, leaf_vals, queries, out, wl["height"],
                 wl["nq"]], global_size=wl["nq"], local_size=8)
    qlo = ctx.buffer(wl["queries_lo"])
    qhi = ctx.buffer(wl["queries_hi"])
    count = ctx.alloc(wl["nq"], np.int32)
    prog.launch("findRangeK",
                [keys, children, qlo, qhi, count, wl["height"], wl["nq"],
                 wl["nleaf_base"], wl["nleaves"]],
                global_size=wl["nq"], local_size=8)
    return {"out": out.read(), "count": count.read()}


def reference(wl) -> dict:
    sk = wl["sorted_keys"]
    out = np.array([k * 7 for k in wl["queries"]], dtype=np.int32)
    count = np.array(
        [int(((sk >= lo) & (sk <= hi)).sum())
         for lo, hi in zip(wl["queries_lo"], wl["queries_hi"])],
        dtype=np.int32,
    )
    return {"out": out, "count": count}


register(Benchmark(
    name="btree",
    table_name="B+tree",
    source="rodinia",
    tags=frozenset({"indirect", "multi_kernel", "bram_heavy"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
))
