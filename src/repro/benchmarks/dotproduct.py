"""Dotproduct — partial dot products with a local-memory tree reduction
(NVIDIA OpenCL SDK sample). Exercises local arrays and barriers."""

from __future__ import annotations

import numpy as np

from ..ocl import FLOAT32, GLOBAL_FLOAT32, INT32, KernelBuilder
from .suite import Benchmark, register

_LOCAL = 8


def build():
    b = KernelBuilder("dotproduct")
    x = b.param("x", GLOBAL_FLOAT32)
    y = b.param("y", GLOBAL_FLOAT32)
    partial = b.param("partial", GLOBAL_FLOAT32)
    n = b.param("n", INT32)
    scratch = b.local_array("scratch", FLOAT32, _LOCAL)
    gid = b.global_id(0)
    lid = b.local_id(0)
    grp = b.group_id(0)
    v = b.var("v", FLOAT32, init=0.0)
    with b.if_(b.lt(gid, n)):
        v.set(b.mul(b.load(x, gid), b.load(y, gid)))
    b.store(scratch, lid, v.get())
    b.barrier()
    stride = b.var("stride", INT32, init=_LOCAL // 2)
    with b.while_(lambda: b.gt(stride.get(), 0)):
        with b.if_(b.lt(lid, stride.get())):
            a = b.load(scratch, lid)
            c = b.load(scratch, b.add(lid, stride.get()))
            b.store(scratch, lid, b.add(a, c))
        b.barrier()
        stride.set(b.div(stride.get(), 2))
    with b.if_(b.eq(lid, 0)):
        b.store(partial, grp, b.load(scratch, 0))
    return [b.finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    n = 128 * scale
    return {
        "n": n,
        "x": rng.random(n, dtype=np.float32),
        "y": rng.random(n, dtype=np.float32),
    }


def run(ctx, prog, wl) -> dict:
    n = wl["n"]
    groups = n // _LOCAL
    x = ctx.buffer(wl["x"])
    y = ctx.buffer(wl["y"])
    partial = ctx.alloc(groups)
    prog.launch("dotproduct", [x, y, partial, n],
                global_size=n, local_size=_LOCAL)
    return {"partial": partial.read()}


def reference(wl) -> dict:
    x = wl["x"].reshape(-1, _LOCAL).astype(np.float32)
    y = wl["y"].reshape(-1, _LOCAL).astype(np.float32)
    # Match the kernel's pairwise tree-reduction order within each group.
    prod = (x * y).astype(np.float32)
    stride = _LOCAL // 2
    while stride > 0:
        prod[:, :stride] = (prod[:, :stride] + prod[:, stride: 2 * stride]
                            ).astype(np.float32)
        stride //= 2
    return {"partial": prod[:, 0].copy()}


register(Benchmark(
    name="dotproduct",
    table_name="Dotproduct",
    source="nvidia_sdk",
    tags=frozenset({"barrier", "local"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
))
