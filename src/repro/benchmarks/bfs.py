"""BFS — breadth-first search (Rodinia): the two-kernel frontier
expansion with data-dependent (indirect) neighbour accesses; its HLS
area signature (Table III: 5,892 BRAMs) comes from those gathers."""

from __future__ import annotations

import numpy as np

from ..ocl import GLOBAL_INT32, INT32, KernelBuilder
from .suite import Benchmark, register


def _kernel1():
    b = KernelBuilder("bfs_kernel1")
    starts = b.param("starts", GLOBAL_INT32)
    degrees = b.param("degrees", GLOBAL_INT32)
    edges = b.param("edges", GLOBAL_INT32)
    frontier = b.param("frontier", GLOBAL_INT32)
    updating = b.param("updating", GLOBAL_INT32)
    visited = b.param("visited", GLOBAL_INT32)
    cost = b.param("cost", GLOBAL_INT32)
    nnodes = b.param("nnodes", INT32)
    tid = b.global_id(0)
    with b.if_(b.lt(tid, nnodes)):
        with b.if_(b.ne(b.load(frontier, tid), 0)):
            b.store(frontier, tid, 0)
            start = b.load(starts, tid)
            degree = b.load(degrees, tid)
            my_cost = b.load(cost, tid)
            with b.for_range(0, degree) as i:
                nbr = b.load(edges, b.add(start, i))
                with b.if_(b.eq(b.load(visited, nbr), 0)):
                    b.store(cost, nbr, b.add(my_cost, 1))
                    b.store(updating, nbr, 1)
    return b.finish()


def _kernel2():
    b = KernelBuilder("bfs_kernel2")
    frontier = b.param("frontier", GLOBAL_INT32)
    updating = b.param("updating", GLOBAL_INT32)
    visited = b.param("visited", GLOBAL_INT32)
    stop = b.param("stop", GLOBAL_INT32)
    nnodes = b.param("nnodes", INT32)
    tid = b.global_id(0)
    with b.if_(b.lt(tid, nnodes)):
        with b.if_(b.ne(b.load(updating, tid), 0)):
            b.store(frontier, tid, 1)
            b.store(visited, tid, 1)
            b.store(stop, 0, 1)
            b.store(updating, tid, 0)
    return b.finish()


def build():
    return [_kernel1(), _kernel2()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    nnodes = 32 * scale
    starts, degrees, edges = [], [], []
    for node in range(nnodes):
        deg = int(rng.integers(1, 5))
        nbrs = rng.choice(nnodes, size=deg, replace=False)
        starts.append(len(edges))
        degrees.append(deg)
        edges.extend(int(x) for x in nbrs)
    return {
        "nnodes": nnodes,
        "source": 0,
        "starts": np.array(starts, dtype=np.int32),
        "degrees": np.array(degrees, dtype=np.int32),
        "edges": np.array(edges, dtype=np.int32),
    }


def run(ctx, prog, wl) -> dict:
    n = wl["nnodes"]
    starts = ctx.buffer(wl["starts"])
    degrees = ctx.buffer(wl["degrees"])
    edges = ctx.buffer(wl["edges"])
    frontier = ctx.alloc(n, np.int32)
    updating = ctx.alloc(n, np.int32)
    visited = ctx.alloc(n, np.int32)
    cost_init = np.full(n, -1, dtype=np.int32)
    cost_init[wl["source"]] = 0
    cost = ctx.buffer(cost_init)
    f0 = np.zeros(n, dtype=np.int32)
    f0[wl["source"]] = 1
    frontier.write(f0)
    v0 = np.zeros(n, dtype=np.int32)
    v0[wl["source"]] = 1
    visited.write(v0)
    stop = ctx.alloc(1, np.int32)
    for _ in range(n):
        stop.write(np.zeros(1, dtype=np.int32))
        prog.launch("bfs_kernel1",
                    [starts, degrees, edges, frontier, updating, visited,
                     cost, n], global_size=n, local_size=8)
        prog.launch("bfs_kernel2",
                    [frontier, updating, visited, stop, n],
                    global_size=n, local_size=8)
        if stop.read()[0] == 0:
            break
    return {"cost": cost.read()}


def reference(wl) -> dict:
    n = wl["nnodes"]
    cost = np.full(n, -1, dtype=np.int32)
    cost[wl["source"]] = 0
    queue = [wl["source"]]
    while queue:
        nxt = []
        for node in queue:
            s, d = wl["starts"][node], wl["degrees"][node]
            for e in wl["edges"][s: s + d]:
                if cost[e] == -1:
                    cost[e] = cost[node] + 1
                    nxt.append(int(e))
        queue = nxt
    return {"cost": cost}


register(Benchmark(
    name="bfs",
    table_name="BFS",
    source="rodinia",
    tags=frozenset({"indirect", "divergent", "multi_kernel"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
))
