"""Sgemm — C = alpha*A·B + beta*C (Parboil-style untiled GEMM).

Each work item computes one C element by walking a row of A (strided
across work items) and a column of B (strided), the GPU-friendly code
the paper runs unmodified through both flows.
"""

from __future__ import annotations

import numpy as np

from ..ocl import FLOAT32, GLOBAL_FLOAT32, INT32, KernelBuilder
from .suite import Benchmark, register


def build():
    b = KernelBuilder("sgemm")
    a = b.param("A", GLOBAL_FLOAT32)
    bb = b.param("B", GLOBAL_FLOAT32)
    c = b.param("C", GLOBAL_FLOAT32)
    m = b.param("m", INT32)
    n = b.param("n", INT32)
    k = b.param("k", INT32)
    alpha = b.param("alpha", FLOAT32)
    beta = b.param("beta", FLOAT32)
    col = b.global_id(0)
    row = b.global_id(1)
    with b.if_(b.logical_and(b.lt(col, n), b.lt(row, m))):
        acc = b.var("acc", FLOAT32, init=0.0)
        with b.for_range(0, k) as i:
            av = b.load(a, b.add(b.mul(row, k), i))
            bv = b.load(bb, b.add(b.mul(i, n), col))
            acc.set(b.add(acc.get(), b.mul(av, bv)))
        idx = b.add(b.mul(row, n), col)
        old = b.load(c, idx)
        b.store(c, idx, b.add(b.mul(alpha, acc.get()), b.mul(beta, old)))
    return [b.finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    m = n = k = 8 * scale
    return {
        "m": m, "n": n, "k": k, "alpha": 1.5, "beta": 0.5,
        "A": rng.random(m * k, dtype=np.float32),
        "B": rng.random(k * n, dtype=np.float32),
        "C": rng.random(m * n, dtype=np.float32),
    }


def run(ctx, prog, wl) -> dict:
    a = ctx.buffer(wl["A"])
    bb = ctx.buffer(wl["B"])
    c = ctx.buffer(wl["C"])
    prog.launch(
        "sgemm",
        [a, bb, c, wl["m"], wl["n"], wl["k"], wl["alpha"], wl["beta"]],
        global_size=(wl["n"], wl["m"]), local_size=(4, 2),
    )
    return {"C": c.read()}


def reference(wl) -> dict:
    m, n, k = wl["m"], wl["n"], wl["k"]
    a = wl["A"].reshape(m, k).astype(np.float64)
    bmat = wl["B"].reshape(k, n).astype(np.float64)
    c = wl["C"].reshape(m, n).astype(np.float64)
    out = wl["alpha"] * (a @ bmat) + wl["beta"] * c
    return {"C": out.astype(np.float32).reshape(-1)}


register(Benchmark(
    name="sgemm",
    table_name="Sgemm",
    source="parboil",
    tags=frozenset({"compute"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
    tolerance=1e-2,
))
