"""Psort — parallel rank ("enumeration") sort, from the Vortex sample
suite: every work item counts how many elements precede its own and
scatters it to that rank. Duplicates are ordered by index, so ranks are
a permutation."""

from __future__ import annotations

import numpy as np

from ..ocl import GLOBAL_INT32, INT32, KernelBuilder
from .suite import Benchmark, register


def build():
    b = KernelBuilder("psort")
    src = b.param("src", GLOBAL_INT32)
    dst = b.param("dst", GLOBAL_INT32)
    n = b.param("n", INT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, n)):
        mine = b.load(src, gid)
        rank = b.var("rank", INT32, init=0)
        with b.for_range(0, n) as j:
            other = b.load(src, j)
            less = b.lt(other, mine)
            tie = b.logical_and(b.eq(other, mine), b.lt(j, gid))
            rank.set(b.add(rank.get(),
                           b.zext(b.logical_or(less, tie))))
        b.store(dst, rank.get(), mine)
    return [b.finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    n = 64 * scale
    return {"n": n, "src": rng.integers(0, 50, n).astype(np.int32)}


def run(ctx, prog, wl) -> dict:
    src = ctx.buffer(wl["src"])
    dst = ctx.alloc(wl["n"], np.int32)
    prog.launch("psort", [src, dst, wl["n"]],
                global_size=wl["n"], local_size=16)
    return {"dst": dst.read()}


def reference(wl) -> dict:
    return {"dst": np.sort(wl["src"], kind="stable")}


register(Benchmark(
    name="psort",
    table_name="Psort",
    source="vortex",
    tags=frozenset({"compute"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
))
