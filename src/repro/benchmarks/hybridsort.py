"""Hybridsort — bucket histogram + scatter (Rodinia).

The histogram kernel's ``atomic_add`` on a global bucket-count array is
exactly the feature the paper singles out: "the Intel SDK supports
32-bit integer atomic functions, [but] was unable to synthesize the
kernel source code due to the heterogeneous memory system of the target
FPGA" (§III-A) — so HLS fails with reason "Atomics" on the HBM2 board
while Vortex executes it as AMO instructions.

The scatter kernel places each element at bucket_offset + a
deterministic within-bucket rank, making the output reproducible across
backends regardless of atomic ordering.
"""

from __future__ import annotations

import numpy as np

from ..ocl import FLOAT32, GLOBAL_FLOAT32, GLOBAL_INT32, INT32, KernelBuilder
from .suite import Benchmark, register

NBUCKETS = 8


def _histogram():
    b = KernelBuilder("bucket_histogram")
    data = b.param("data", GLOBAL_FLOAT32)
    counts = b.param("counts", GLOBAL_INT32)
    n = b.param("n", INT32)
    nbuckets = b.param("nbuckets", INT32)
    vmin = b.param("vmin", FLOAT32)
    vrange = b.param("vrange", FLOAT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, n)):
        v = b.load(data, gid)
        norm = b.div(b.sub(v, vmin), vrange)
        bucket = b.ftoi(b.mul(norm, b.itof(nbuckets)))
        bucket = b.min(bucket, b.sub(nbuckets, 1))
        bucket = b.max(bucket, 0)
        b.atomic_add(counts, bucket, 1)
    return b.finish()


def _scatter():
    b = KernelBuilder("bucket_scatter")
    data = b.param("data", GLOBAL_FLOAT32)
    offsets = b.param("offsets", GLOBAL_INT32)
    out = b.param("out", GLOBAL_FLOAT32)
    n = b.param("n", INT32)
    nbuckets = b.param("nbuckets", INT32)
    vmin = b.param("vmin", FLOAT32)
    vrange = b.param("vrange", FLOAT32)
    gid = b.global_id(0)

    def bucket_of(value):
        norm = b.div(b.sub(value, vmin), vrange)
        bk = b.ftoi(b.mul(norm, b.itof(nbuckets)))
        return b.max(b.min(bk, b.sub(nbuckets, 1)), 0)

    with b.if_(b.lt(gid, n)):
        mine = b.load(data, gid)
        my_bucket = bucket_of(mine)
        # Deterministic rank: earlier elements of the same bucket.
        rank = b.var("rank", INT32, init=0)
        with b.for_range(0, gid) as j:
            same = b.eq(bucket_of(b.load(data, j)), my_bucket)
            rank.set(b.add(rank.get(), b.zext(same)))
        pos = b.add(b.load(offsets, my_bucket), rank.get())
        b.store(out, pos, mine)
    return b.finish()


def build():
    return [_histogram(), _scatter()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    n = 64 * scale
    return {
        "n": n,
        "nbuckets": NBUCKETS,
        "vmin": 0.0,
        "vrange": 1.0,
        "data": rng.random(n, dtype=np.float32),
    }


def _buckets(wl) -> np.ndarray:
    norm = (wl["data"] - np.float32(wl["vmin"])) / np.float32(wl["vrange"])
    b = (norm * wl["nbuckets"]).astype(np.int32)
    return np.clip(b, 0, wl["nbuckets"] - 1)


def run(ctx, prog, wl) -> dict:
    n = wl["n"]
    data = ctx.buffer(wl["data"])
    counts = ctx.alloc(wl["nbuckets"], np.int32)
    prog.launch("bucket_histogram",
                [data, counts, n, wl["nbuckets"], wl["vmin"], wl["vrange"]],
                global_size=n, local_size=8)
    counts_host = counts.read()
    offsets_host = np.zeros(wl["nbuckets"], dtype=np.int32)
    offsets_host[1:] = np.cumsum(counts_host)[:-1]
    offsets = ctx.buffer(offsets_host)
    out = ctx.alloc(n)
    prog.launch("bucket_scatter",
                [data, offsets, out, n, wl["nbuckets"], wl["vmin"],
                 wl["vrange"]], global_size=n, local_size=8)
    return {"counts": counts_host, "out": out.read()}


def reference(wl) -> dict:
    buckets = _buckets(wl)
    counts = np.bincount(buckets, minlength=wl["nbuckets"]).astype(np.int32)
    order = np.argsort(buckets, kind="stable")
    return {"counts": counts, "out": wl["data"][order]}


register(Benchmark(
    name="hybridsort",
    table_name="Hybridsort",
    source="rodinia",
    tags=frozenset({"atomics", "multi_kernel"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
))
