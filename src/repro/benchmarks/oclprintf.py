"""OCLPrintf — device-side printf (NVIDIA OpenCL SDK sample).

Both flows support printf (Table I shows both passing); on Vortex this
exercises the runtime-communication challenge the paper raises in §IV-A
("adding a new feature may necessitate updates in the host runtime
library, such as incorporating a communication function ... like
printing").
"""

from __future__ import annotations

import numpy as np

from ..ocl import GLOBAL_INT32, INT32, KernelBuilder
from .suite import Benchmark, register


def build():
    b = KernelBuilder("oclprintf")
    data = b.param("data", GLOBAL_INT32)
    out = b.param("out", GLOBAL_INT32)
    n = b.param("n", INT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, n)):
        v = b.load(data, gid)
        b.printf("work-item %d saw %d", gid, v)
        b.store(out, gid, b.mul(v, 2))
    return [b.finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    n = 16 * scale
    return {"n": n, "data": rng.integers(0, 100, n).astype(np.int32)}


def run(ctx, prog, wl) -> dict:
    data = ctx.buffer(wl["data"])
    out = ctx.alloc(wl["n"], np.int32)
    stats = prog.launch("oclprintf", [data, out, wl["n"]],
                        global_size=wl["n"], local_size=8)
    return {"out": out.read(), "printf_lines": len(stats.printf_output)}


def reference(wl) -> dict:
    return {"out": wl["data"] * 2, "printf_lines": wl["n"]}


register(Benchmark(
    name="oclprintf",
    table_name="OCLPrintf",
    source="nvidia_sdk",
    tags=frozenset({"printf"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
))
