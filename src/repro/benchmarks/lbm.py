"""Lbm — D3Q19 lattice-Boltzmann stream-and-collide step (Parboil).

Nineteen distribution loads (periodic pull streaming, modulo-wrapped
neighbour indices) plus nineteen stores per cell: the benchmark that most
spectacularly exhausts HLS BRAM in Table I — every one of its ~40 access
sites gets its own load/store unit.
"""

from __future__ import annotations

import numpy as np

from ..ocl import FLOAT32, GLOBAL_FLOAT32, INT32, KernelBuilder
from .suite import Benchmark, register

#: D3Q19 velocity set and weights.
C = [
    (0, 0, 0),
    (1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1),
    (1, 1, 0), (-1, -1, 0), (1, -1, 0), (-1, 1, 0),
    (1, 0, 1), (-1, 0, -1), (1, 0, -1), (-1, 0, 1),
    (0, 1, 1), (0, -1, -1), (0, 1, -1), (0, -1, 1),
]
W = [1.0 / 3.0] + [1.0 / 18.0] * 6 + [1.0 / 36.0] * 12
OMEGA = 1.2


def build():
    b = KernelBuilder("lbm_stream_collide")
    src = b.param("src", GLOBAL_FLOAT32)  # 19 x ncells
    dst = b.param("dst", GLOBAL_FLOAT32)
    nx = b.param("nx", INT32)
    ny = b.param("ny", INT32)
    nz = b.param("nz", INT32)
    x = b.global_id(0)
    y = b.global_id(1)
    z = b.global_id(2)
    ncells = b.mul(b.mul(nx, ny), nz)
    idx = b.add(b.add(b.mul(b.mul(z, ny), nx), b.mul(y, nx)), x)

    # Pull streaming: f_q(x) <- f_q(x - c_q), periodic.
    fs = []
    for q, (cx, cy, cz) in enumerate(C):
        sx = b.rem(b.add(b.sub(x, cx), nx), nx)
        sy = b.rem(b.add(b.sub(y, cy), ny), ny)
        sz = b.rem(b.add(b.sub(z, cz), nz), nz)
        sidx = b.add(b.add(b.mul(b.mul(sz, ny), nx), b.mul(sy, nx)), sx)
        fs.append(b.load(src, b.add(b.mul(q, ncells), sidx)))

    # Moments.
    rho = fs[0]
    for f in fs[1:]:
        rho = b.add(rho, f)
    ux = b.const(0.0)
    uy = b.const(0.0)
    uz = b.const(0.0)
    for q, (cx, cy, cz) in enumerate(C):
        if cx:
            ux = b.add(ux, b.mul(fs[q], float(cx)))
        if cy:
            uy = b.add(uy, b.mul(fs[q], float(cy)))
        if cz:
            uz = b.add(uz, b.mul(fs[q], float(cz)))
    inv_rho = b.div(b.const(1.0), rho)
    ux = b.mul(ux, inv_rho)
    uy = b.mul(uy, inv_rho)
    uz = b.mul(uz, inv_rho)
    usqr = b.add(b.add(b.mul(ux, ux), b.mul(uy, uy)), b.mul(uz, uz))

    # BGK collision and store.
    for q, (cx, cy, cz) in enumerate(C):
        cu = b.const(0.0)
        if cx:
            cu = b.add(cu, b.mul(ux, float(cx)))
        if cy:
            cu = b.add(cu, b.mul(uy, float(cy)))
        if cz:
            cu = b.add(cu, b.mul(uz, float(cz)))
        feq = b.mul(
            b.mul(b.const(W[q]), rho),
            b.add(
                b.add(b.const(1.0), b.mul(b.const(3.0), cu)),
                b.sub(b.mul(b.const(4.5), b.mul(cu, cu)),
                      b.mul(b.const(1.5), usqr)),
            ),
        )
        out_val = b.sub(fs[q], b.mul(b.const(OMEGA), b.sub(fs[q], feq)))
        b.store(dst, b.add(b.mul(q, ncells), idx), out_val)
    return [b.finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    nx, ny, nz = 4 * scale, 4 * scale, 2 * scale
    ncells = nx * ny * nz
    f = (rng.random((19, ncells), dtype=np.float32) * 0.1
         + np.array(W, dtype=np.float32)[:, None])
    return {"nx": nx, "ny": ny, "nz": nz, "src": f.reshape(-1).copy()}


def run(ctx, prog, wl) -> dict:
    nx, ny, nz = wl["nx"], wl["ny"], wl["nz"]
    src = ctx.buffer(wl["src"])
    dst = ctx.alloc(19 * nx * ny * nz)
    prog.launch("lbm_stream_collide", [src, dst, nx, ny, nz],
                global_size=(nx, ny, nz), local_size=(4, 2, 1))
    return {"dst": dst.read()}


def reference(wl) -> dict:
    nx, ny, nz = wl["nx"], wl["ny"], wl["nz"]
    f = wl["src"].reshape(19, nz, ny, nx).astype(np.float64)
    streamed = np.empty_like(f)
    for q, (cx, cy, cz) in enumerate(C):
        streamed[q] = np.roll(f[q], shift=(cz, cy, cx), axis=(0, 1, 2))
    rho = streamed.sum(axis=0)
    cvec = np.array(C, dtype=np.float64)
    ux = np.tensordot(cvec[:, 0], streamed, axes=(0, 0)) / rho
    uy = np.tensordot(cvec[:, 1], streamed, axes=(0, 0)) / rho
    uz = np.tensordot(cvec[:, 2], streamed, axes=(0, 0)) / rho
    usqr = ux * ux + uy * uy + uz * uz
    out = np.empty_like(streamed)
    for q, (cx, cy, cz) in enumerate(C):
        cu = cx * ux + cy * uy + cz * uz
        feq = W[q] * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * usqr)
        out[q] = streamed[q] - OMEGA * (streamed[q] - feq)
    return {"dst": out.astype(np.float32).reshape(-1)}


register(Benchmark(
    name="lbm",
    table_name="Lbm",
    source="parboil",
    tags=frozenset({"strided", "compute", "bram_heavy"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
    tolerance=1e-3,
))
