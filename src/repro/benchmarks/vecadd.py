"""Vecadd — element-wise vector addition (Vortex sample suite).

The paper's smallest benchmark: three streaming accesses, one fadd. Used
in Table I (coverage), Table III (HLS area: 1,065 BRAMs) and Figure 7
(the warp/thread sweep).
"""

from __future__ import annotations

import numpy as np

from ..ocl import GLOBAL_FLOAT32, INT32, KernelBuilder
from .suite import Benchmark, register


def build():
    b = KernelBuilder("vecadd")
    a = b.param("a", GLOBAL_FLOAT32)
    c = b.param("b", GLOBAL_FLOAT32)
    out = b.param("c", GLOBAL_FLOAT32)
    n = b.param("n", INT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, n)):
        b.store(out, gid, b.add(b.load(a, gid), b.load(c, gid)))
    return [b.finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    n = 256 * scale
    return {
        "n": n,
        "a": rng.random(n, dtype=np.float32),
        "b": rng.random(n, dtype=np.float32),
    }


def run(ctx, prog, wl) -> dict:
    a = ctx.buffer(wl["a"])
    b = ctx.buffer(wl["b"])
    c = ctx.alloc(wl["n"])
    prog.launch("vecadd", [a, b, c, wl["n"]],
                global_size=wl["n"], local_size=16)
    return {"c": c.read()}


def reference(wl) -> dict:
    return {"c": wl["a"] + wl["b"]}


register(Benchmark(
    name="vecadd",
    table_name="Vecadd",
    source="vortex",
    tags=frozenset({"streaming"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
))
