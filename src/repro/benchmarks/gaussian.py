"""Gaussian — Gaussian elimination (Rodinia): the two-kernel Fan1/Fan2
pipeline launched once per elimination step, with column-strided
accesses (the paper's Table III "Gauss" row is the area-heaviest of the
passing benchmarks)."""

from __future__ import annotations

import numpy as np

from ..ocl import GLOBAL_FLOAT32, INT32, KernelBuilder
from .suite import Benchmark, register


def _fan1():
    b = KernelBuilder("fan1")
    a = b.param("a", GLOBAL_FLOAT32)
    m = b.param("m", GLOBAL_FLOAT32)
    size = b.param("size", INT32)
    t = b.param("t", INT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, b.sub(b.sub(size, 1), t))):
        row = b.add(b.add(gid, t), 1)
        pivot = b.load(a, b.add(b.mul(t, size), t))
        below = b.load(a, b.add(b.mul(row, size), t))
        b.store(m, b.add(b.mul(row, size), t), b.div(below, pivot))
    return b.finish()


def _fan2():
    b = KernelBuilder("fan2")
    a = b.param("a", GLOBAL_FLOAT32)
    bvec = b.param("b", GLOBAL_FLOAT32)
    m = b.param("m", GLOBAL_FLOAT32)
    size = b.param("size", INT32)
    t = b.param("t", INT32)
    # Rodinia's Fan2 walks rows along dimension 0 and columns along
    # dimension 1, so every matrix access is column-strided.
    x = b.global_id(0)  # row offset
    y = b.global_id(1)  # column offset
    in_rows = b.lt(x, b.sub(b.sub(size, 1), t))
    in_cols = b.lt(y, b.sub(size, t))
    with b.if_(b.logical_and(in_rows, in_cols)):
        row = b.add(b.add(x, t), 1)
        col = b.add(y, t)
        mult = b.load(m, b.add(b.mul(row, size), t))
        pivot_row_val = b.load(a, b.add(b.mul(t, size), col))
        idx = b.add(b.mul(row, size), col)
        b.store(a, idx, b.sub(b.load(a, idx), b.mul(mult, pivot_row_val)))
        with b.if_(b.eq(y, 0)):
            bt = b.load(bvec, t)
            b.store(bvec, row,
                    b.sub(b.load(bvec, row), b.mul(mult, bt)))
    return b.finish()


def build():
    return [_fan1(), _fan2()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    size = 8 * scale
    a = rng.random((size, size), dtype=np.float32) + np.eye(
        size, dtype=np.float32) * size
    bvec = rng.random(size, dtype=np.float32)
    return {"size": size, "a": a.reshape(-1).copy(), "b": bvec}


def _round_up(x: int, m: int) -> int:
    return ((x + m - 1) // m) * m


def run(ctx, prog, wl) -> dict:
    size = wl["size"]
    a = ctx.buffer(wl["a"])
    bvec = ctx.buffer(wl["b"])
    m = ctx.alloc(size * size)
    for t in range(size - 1):
        prog.launch("fan1", [a, m, size, t],
                    global_size=_round_up(size - 1 - t, 8), local_size=8)
        prog.launch("fan2", [a, bvec, m, size, t],
                    global_size=(_round_up(size - 1 - t, 4),
                                 _round_up(size - t, 2)),
                    local_size=(4, 2))
    # Back substitution on the host (as Rodinia does).
    au = a.read().reshape(size, size).astype(np.float64)
    bu = bvec.read().astype(np.float64)
    x = np.zeros(size)
    for i in range(size - 1, -1, -1):
        x[i] = (bu[i] - au[i, i + 1:] @ x[i + 1:]) / au[i, i]
    return {"x": x.astype(np.float32)}


def reference(wl) -> dict:
    size = wl["size"]
    a = wl["a"].reshape(size, size).astype(np.float64)
    bvec = wl["b"].astype(np.float64)
    return {"x": np.linalg.solve(a, bvec).astype(np.float32)}


register(Benchmark(
    name="gaussian",
    table_name="Gaussian",
    source="rodinia",
    tags=frozenset({"strided", "multi_kernel"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
    tolerance=2e-2,
))
