"""Backprop — the paper's §III-B case study (Rodinia's
``bpnn_adjust_weights`` kernel, Fig. 6).

Three source variants mirror the paper's listings exactly:

* :func:`build` / :func:`build_original` — Listing 1: every product such
  as ``ETA * delta[index_x] * ly[index_y]`` is written out twice, so the
  kernel carries 12 burst-coalesced load sites + 4 stores and synthesizes
  to ~188% of the MX2100's BRAM — the Table I failure.
* :func:`build_o1` — Listing 2 ("variable reuse"): the main half loads
  each value once into a local variable (9 load sites, ~144%).
* :func:`build_o2` — Listing 3 ("pipelined load"): the reused loads take
  ``__pipelined_load`` units (4 burst-coalesced + 5 pipelined sites,
  ~83% — the first variant that fits the board).

The guarded half (the ``ty==0 && by==0`` bias update of the Rodinia
kernel) keeps its duplicated loads in O1, as in the paper's listings
which only rewrite the main half; O2 additionally pipelines the first
occurrence of each guarded load.
"""

from __future__ import annotations

import numpy as np

from ..ocl import FLOAT32, GLOBAL_FLOAT32, INT32, KernelBuilder
from .suite import Benchmark, register

HEIGHT = 16  # BLOCK_SIZE in Rodinia
ETA = 0.3
MOMENTUM = 0.3


def _kernel(variant: str) -> KernelBuilder:
    """variant in {"original", "o1", "o2"}."""
    b = KernelBuilder("bpnn_adjust_weights")
    delta = b.param("delta", GLOBAL_FLOAT32)
    ly = b.param("ly", GLOBAL_FLOAT32)
    w = b.param("w", GLOBAL_FLOAT32)
    oldw = b.param("oldw", GLOBAL_FLOAT32)
    hid = b.param("hid", INT32)
    by = b.group_id(1)
    tx = b.local_id(0)
    ty = b.local_id(1)
    hid1 = b.add(hid, 1)
    index = b.add(
        b.add(
            b.add(b.mul(b.mul(hid1, HEIGHT), by), b.mul(hid1, ty)),
            b.add(tx, 1),
        ),
        hid1,
    )
    index_y = b.add(b.add(b.mul(HEIGHT, by), ty), 1)
    index_x = b.add(tx, 1)

    pipe_main = variant == "o2"
    if variant == "original":
        # Listing 1: every term recomputed, every load duplicated.
        t1 = b.add(
            b.mul(b.mul(b.const(ETA), b.load(delta, index_x)),
                  b.load(ly, index_y)),
            b.mul(b.const(MOMENTUM), b.load(oldw, index)),
        )
        b.store(w, index, b.add(b.load(w, index), t1))
        t2 = b.add(
            b.mul(b.mul(b.const(ETA), b.load(delta, index_x)),
                  b.load(ly, index_y)),
            b.mul(b.const(MOMENTUM), b.load(oldw, index)),
        )
        b.store(oldw, index, t2)
    else:
        # Listings 2/3: load once, reuse (O2 adds __pipelined_load).
        delta_value = b.mul(b.load(delta, index_x, pipelined=pipe_main),
                            b.const(ETA))
        ly_value = b.load(ly, index_y, pipelined=pipe_main)
        oldw_value = b.mul(b.load(oldw, index, pipelined=pipe_main),
                           b.const(MOMENTUM))
        delta_by_ly = b.add(b.mul(delta_value, ly_value), oldw_value)
        b.store(w, index, b.add(b.load(w, index), delta_by_ly))
        b.store(oldw, index, delta_by_ly)

    # The bias update of the Rodinia kernel (kept with duplicated loads
    # in every listing; O2 pipelines the first occurrences).
    with b.if_(b.logical_and(b.eq(ty, 0), b.eq(by, 0))):
        pipe_first = variant == "o2"
        t1 = b.add(
            b.mul(b.const(ETA),
                  b.load(delta, index_x, pipelined=pipe_first)),
            b.mul(b.const(MOMENTUM),
                  b.load(oldw, index_x, pipelined=pipe_first)),
        )
        b.store(w, index_x, b.add(b.load(w, index_x), t1))
        t2 = b.add(
            b.mul(b.const(ETA), b.load(delta, index_x)),
            b.mul(b.const(MOMENTUM), b.load(oldw, index_x)),
        )
        b.store(oldw, index_x, t2)
    return b


def build():
    return [_kernel("original").finish()]


def build_original():
    return build()


def build_o1():
    return [_kernel("o1").finish()]


def build_o2():
    return [_kernel("o2").finish()]


#: Launch geometry: Vortex work-groups are bounded by W*T, so the local
#: y extent is 4 (16x4 = 64-item groups); ``by``/``ty`` in the index
#: arithmetic refer to this geometry.
LOCAL_Y = 4


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    hid = HEIGHT  # hidden units; Rodinia uses 16
    nby = 2 * max(1, scale)  # work-groups in y
    wsize = (hid + 1) * HEIGHT * nby + 1
    return {
        "hid": hid,
        "nby": nby,
        "delta": rng.random(hid + 1, dtype=np.float32),
        "ly": rng.random(HEIGHT * nby + 1, dtype=np.float32),
        "w": rng.random(wsize, dtype=np.float32),
        "oldw": rng.random(wsize, dtype=np.float32),
    }


def run(ctx, prog, wl) -> dict:
    delta = ctx.buffer(wl["delta"])
    ly = ctx.buffer(wl["ly"])
    w = ctx.buffer(wl["w"])
    oldw = ctx.buffer(wl["oldw"])
    prog.launch(
        "bpnn_adjust_weights",
        [delta, ly, w, oldw, wl["hid"]],
        global_size=(HEIGHT, LOCAL_Y * wl["nby"]),
        local_size=(HEIGHT, LOCAL_Y),
    )
    return {"w": w.read(), "oldw": oldw.read()}


def reference(wl) -> dict:
    hid, nby = wl["hid"], wl["nby"]
    w = wl["w"].astype(np.float32).copy()
    oldw = wl["oldw"].astype(np.float32).copy()
    f = np.float32
    for by in range(nby):
        for ty in range(LOCAL_Y):
            for tx in range(HEIGHT):
                index = ((hid + 1) * HEIGHT * by + (hid + 1) * ty
                         + tx + 1 + (hid + 1))
                index_y = HEIGHT * by + ty + 1
                index_x = tx + 1
                t = f(f(f(f(ETA) * wl["delta"][index_x]) * wl["ly"][index_y])
                      + f(f(MOMENTUM) * oldw[index]))
                neww = f(w[index] + t)
                t2 = f(f(f(f(ETA) * wl["delta"][index_x])
                         * wl["ly"][index_y])
                       + f(f(MOMENTUM) * oldw[index]))
                w[index] = neww
                oldw[index] = t2
    # Bias update (ty == 0, by == 0).
    for tx in range(HEIGHT):
        index_x = tx + 1
        t = f(f(f(ETA) * wl["delta"][index_x])
              + f(f(MOMENTUM) * oldw[index_x]))
        w[index_x] = f(w[index_x] + t)
        oldw[index_x] = f(f(f(ETA) * wl["delta"][index_x])
                          + f(f(MOMENTUM) * oldw[index_x]))
    return {"w": w, "oldw": oldw}


register(Benchmark(
    name="backprop",
    table_name="Backprop",
    source="rodinia",
    tags=frozenset({"strided", "case_study"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
    tolerance=1e-4,
))
