"""Saxpy — y = a*x + y (Vortex sample suite)."""

from __future__ import annotations

import numpy as np

from ..ocl import FLOAT32, GLOBAL_FLOAT32, INT32, KernelBuilder
from .suite import Benchmark, register


def build():
    b = KernelBuilder("saxpy")
    x = b.param("x", GLOBAL_FLOAT32)
    y = b.param("y", GLOBAL_FLOAT32)
    a = b.param("a", FLOAT32)
    n = b.param("n", INT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, n)):
        b.store(y, gid, b.add(b.mul(a, b.load(x, gid)), b.load(y, gid)))
    return [b.finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    n = 256 * scale
    return {
        "n": n,
        "a": 2.5,
        "x": rng.random(n, dtype=np.float32),
        "y": rng.random(n, dtype=np.float32),
    }


def run(ctx, prog, wl) -> dict:
    x = ctx.buffer(wl["x"])
    y = ctx.buffer(wl["y"])
    prog.launch("saxpy", [x, y, wl["a"], wl["n"]],
                global_size=wl["n"], local_size=16)
    return {"y": y.read()}


def reference(wl) -> dict:
    return {"y": (np.float32(wl["a"]) * wl["x"] + wl["y"]).astype(np.float32)}


register(Benchmark(
    name="saxpy",
    table_name="Saxpy",
    source="vortex",
    tags=frozenset({"streaming"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
))
