"""Transpose — out[x][y] = in[y][x] (NVIDIA OpenCL SDK sample, naive).

The paper's Figure 7 describes it as "working with a two-dimensional
array, swapping values at opposite locations": coalesced loads, strided
(uncoalesced) stores. The second subject of the warp/thread sweep.
"""

from __future__ import annotations

import numpy as np

from ..ocl import GLOBAL_FLOAT32, INT32, KernelBuilder
from .suite import Benchmark, register


def build():
    b = KernelBuilder("transpose")
    src = b.param("src", GLOBAL_FLOAT32)
    dst = b.param("dst", GLOBAL_FLOAT32)
    width = b.param("width", INT32)
    height = b.param("height", INT32)
    x = b.global_id(0)
    y = b.global_id(1)
    with b.if_(b.logical_and(b.lt(x, width), b.lt(y, height))):
        v = b.load(src, b.add(b.mul(y, width), x))
        b.store(dst, b.add(b.mul(x, height), y), v)
    return [b.finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    w = h = 16 * scale
    return {
        "width": w,
        "height": h,
        "src": rng.random(w * h, dtype=np.float32),
    }


def run(ctx, prog, wl) -> dict:
    w, h = wl["width"], wl["height"]
    src = ctx.buffer(wl["src"])
    dst = ctx.alloc(w * h)
    prog.launch("transpose", [src, dst, w, h],
                global_size=(w, h), local_size=(8, 2))
    return {"dst": dst.read()}


def reference(wl) -> dict:
    w, h = wl["width"], wl["height"]
    return {"dst": wl["src"].reshape(h, w).T.reshape(-1).copy()}


register(Benchmark(
    name="transpose",
    table_name="Transpose",
    source="nvidia_sdk",
    tags=frozenset({"strided"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
))
