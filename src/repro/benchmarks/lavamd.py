"""LavaMD — particle interactions within neighbouring boxes (Rodinia):
one work-group per home box; neighbour-box particles are staged through
local memory (as Rodinia's kernel does with ``rB_shared``), which is
what keeps the kernel inside the FPGA's BRAM budget — each staging loop
is a single load-store-unit site instead of one per component."""

from __future__ import annotations

import numpy as np

from ..ocl import FLOAT32, GLOBAL_FLOAT32, GLOBAL_INT32, INT32, KernelBuilder
from .suite import Benchmark, register

PARTICLES_PER_BOX = 8
_COMP = 4  # x, y, z, q packed per particle


def build():
    b = KernelBuilder("lavamd")
    pos4 = b.param("pos4", GLOBAL_FLOAT32)  # n x (x,y,z,q)
    nn = b.param("nn", GLOBAL_INT32)  # nboxes x max_nn neighbour ids
    nn_count = b.param("nn_count", GLOBAL_INT32)
    out = b.param("out", GLOBAL_FLOAT32)
    max_nn = b.param("max_nn", INT32)
    alpha = b.param("alpha", FLOAT32)
    home = b.local_array("home", FLOAT32, PARTICLES_PER_BOX * _COMP)
    tile = b.local_array("tile", FLOAT32, PARTICLES_PER_BOX * _COMP)
    box = b.group_id(0)
    lid = b.local_id(0)
    me = b.global_id(0)  # == box * PARTICLES_PER_BOX + lid

    # Stage the home box once (one LSU site).
    with b.for_range(0, _COMP) as c:
        b.store(home, b.add(b.mul(lid, _COMP), c),
                b.load(pos4, b.add(b.mul(me, _COMP), c)))
    b.barrier()
    mx = b.load(home, b.mul(lid, _COMP))
    my = b.load(home, b.add(b.mul(lid, _COMP), 1))
    mz = b.load(home, b.add(b.mul(lid, _COMP), 2))

    acc = b.var("acc", FLOAT32, init=0.0)
    count = b.load(nn_count, box)
    with b.for_range(0, count) as k:
        nbox = b.load(nn, b.add(b.mul(box, max_nn), k))
        # Stage the neighbour box (one LSU site), then compute from local.
        with b.for_range(0, _COMP) as c:
            src = b.add(b.mul(b.add(b.mul(nbox, PARTICLES_PER_BOX), lid),
                              _COMP), c)
            b.store(tile, b.add(b.mul(lid, _COMP), c), b.load(pos4, src))
        b.barrier()
        with b.for_range(0, PARTICLES_PER_BOX) as j:
            jx = b.load(tile, b.mul(j, _COMP))
            jy = b.load(tile, b.add(b.mul(j, _COMP), 1))
            jz = b.load(tile, b.add(b.mul(j, _COMP), 2))
            jq = b.load(tile, b.add(b.mul(j, _COMP), 3))
            dx = b.sub(mx, jx)
            dy = b.sub(my, jy)
            dz = b.sub(mz, jz)
            r2 = b.add(b.add(b.mul(dx, dx), b.mul(dy, dy)),
                       b.mul(dz, dz))
            u = b.exp(b.mul(b.neg(alpha), r2))
            acc.set(b.add(acc.get(), b.mul(jq, u)))
        b.barrier()
    b.store(out, me, acc.get())
    return [b.finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    boxes_per_dim = 2
    nboxes = boxes_per_dim ** 3
    n = nboxes * PARTICLES_PER_BOX
    max_nn = 27
    nn = np.zeros((nboxes, max_nn), dtype=np.int32)
    nn_count = np.zeros(nboxes, dtype=np.int32)

    def box_id(x, y, z):
        return (z * boxes_per_dim + y) * boxes_per_dim + x

    for z in range(boxes_per_dim):
        for y in range(boxes_per_dim):
            for x in range(boxes_per_dim):
                bid = box_id(x, y, z)
                k = 0
                for dz in (-1, 0, 1):
                    for dy in (-1, 0, 1):
                        for dx in (-1, 0, 1):
                            nx, ny, nz = x + dx, y + dy, z + dz
                            if 0 <= nx < boxes_per_dim and \
                                    0 <= ny < boxes_per_dim and \
                                    0 <= nz < boxes_per_dim:
                                nn[bid, k] = box_id(nx, ny, nz)
                                k += 1
                nn_count[bid] = k
    pos = rng.random((n, 3), dtype=np.float32) * 4
    q = rng.random((n, 1), dtype=np.float32)
    pos4 = np.concatenate([pos, q], axis=1).reshape(-1).astype(np.float32)
    return {
        "nboxes": nboxes, "max_nn": max_nn, "alpha": 0.5,
        "pos4": pos4, "nn": nn.reshape(-1), "nn_count": nn_count,
    }


def run(ctx, prog, wl) -> dict:
    n = wl["nboxes"] * PARTICLES_PER_BOX
    pos4 = ctx.buffer(wl["pos4"])
    nn = ctx.buffer(wl["nn"])
    nn_count = ctx.buffer(wl["nn_count"])
    out = ctx.alloc(n)
    prog.launch(
        "lavamd",
        [pos4, nn, nn_count, out, wl["max_nn"], wl["alpha"]],
        global_size=n, local_size=PARTICLES_PER_BOX,
    )
    return {"out": out.read()}


def reference(wl) -> dict:
    nboxes, max_nn = wl["nboxes"], wl["max_nn"]
    n = nboxes * PARTICLES_PER_BOX
    pos4 = wl["pos4"].reshape(n, _COMP).astype(np.float64)
    nn = wl["nn"].reshape(nboxes, max_nn)
    out = np.zeros(n, dtype=np.float64)
    for box in range(nboxes):
        for l in range(PARTICLES_PER_BOX):
            me = box * PARTICLES_PER_BOX + l
            acc = 0.0
            for k in range(wl["nn_count"][box]):
                nbox = nn[box, k]
                for j in range(PARTICLES_PER_BOX):
                    other = nbox * PARTICLES_PER_BOX + j
                    r2 = ((pos4[me, :3] - pos4[other, :3]) ** 2).sum()
                    acc += pos4[other, 3] * np.exp(-wl["alpha"] * r2)
            out[me] = acc
    return {"out": out.astype(np.float32)}


register(Benchmark(
    name="lavamd",
    table_name="LavaMD",
    source="rodinia",
    tags=frozenset({"indirect", "local", "barrier", "compute"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
    tolerance=5e-3,
))
