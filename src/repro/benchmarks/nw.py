"""NW — Needleman-Wunsch sequence alignment (Rodinia): the score matrix
is filled one anti-diagonal per launch; every cell reads its three
parents with row-strided accesses."""

from __future__ import annotations

import numpy as np

from ..ocl import GLOBAL_INT32, INT32, KernelBuilder
from .suite import Benchmark, register


def build():
    b = KernelBuilder("nw_diagonal")
    score = b.param("score", GLOBAL_INT32)  # (n+1) x (n+1)
    ref = b.param("ref", GLOBAL_INT32)  # n x n similarity
    n = b.param("n", INT32)
    diag = b.param("diag", INT32)  # 2..2n, i+j == diag
    penalty = b.param("penalty", INT32)
    tid = b.global_id(0)
    # Cells on this diagonal: i from max(1, diag-n) .. min(n, diag-1).
    i0 = b.max(1, b.sub(diag, n))
    i = b.add(i0, tid)
    imax = b.min(n, b.sub(diag, 1))
    with b.if_(b.le(i, imax)):
        j = b.sub(diag, i)
        w = b.add(n, 1)
        nw_ = b.load(score, b.add(b.mul(b.sub(i, 1), w), b.sub(j, 1)))
        up = b.load(score, b.add(b.mul(b.sub(i, 1), w), j))
        lf = b.load(score, b.add(b.mul(i, w), b.sub(j, 1)))
        sim = b.load(ref, b.add(b.mul(b.sub(i, 1), n), b.sub(j, 1)))
        best = b.max(
            b.add(nw_, sim),
            b.max(b.sub(up, penalty), b.sub(lf, penalty)),
        )
        b.store(score, b.add(b.mul(i, w), j), best)
    return [b.finish()]


def workload(scale: int = 1, seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    n = 16 * scale
    return {
        "n": n,
        "penalty": 10,
        "ref": rng.integers(-5, 5, n * n).astype(np.int32),
    }


def _init_score(n: int, penalty: int) -> np.ndarray:
    w = n + 1
    score = np.zeros((w, w), dtype=np.int32)
    score[0, :] = -penalty * np.arange(w)
    score[:, 0] = -penalty * np.arange(w)
    return score


def run(ctx, prog, wl) -> dict:
    n, penalty = wl["n"], wl["penalty"]
    score = ctx.buffer(_init_score(n, penalty).reshape(-1))
    ref = ctx.buffer(wl["ref"])
    for diag in range(2, 2 * n + 1):
        cells = min(n, diag - 1) - max(1, diag - n) + 1
        gsz = ((cells + 7) // 8) * 8
        prog.launch("nw_diagonal", [score, ref, n, diag, penalty],
                    global_size=gsz, local_size=8)
    return {"score": score.read()}


def reference(wl) -> dict:
    n, penalty = wl["n"], wl["penalty"]
    score = _init_score(n, penalty).astype(np.int64)
    ref = wl["ref"].reshape(n, n)
    for i in range(1, n + 1):
        for j in range(1, n + 1):
            score[i, j] = max(
                score[i - 1, j - 1] + ref[i - 1, j - 1],
                score[i - 1, j] - penalty,
                score[i, j - 1] - penalty,
            )
    return {"score": score.astype(np.int32).reshape(-1)}


register(Benchmark(
    name="nw",
    table_name="nw",
    source="rodinia",
    tags=frozenset({"strided", "wavefront"}),
    build=build,
    workload=workload,
    run=run,
    reference=reference,
))
