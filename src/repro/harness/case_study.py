"""Experiment E2 — Table II / Fig. 6: the backprop HLS area case study.

Synthesizes the three source variants of ``bpnn_adjust_weights``
(original, O1 variable reuse, O2 pipelined load) with capacity checks
disabled and reports the area sequence next to the paper's published
numbers, plus the utilisation percentages against the MX2100 (188% →
144% → 83% in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..benchmarks import backprop
from ..hls import AreaReport, STRATIX10_MX2100, aoc
from ..passes import cse
from ..ocl.ir import clone_kernel
from .tables import render_table

#: Paper Table II rows: variant -> (ALUTs, FFs, BRAMs, DSPs).
PAPER_TABLE2 = {
    "Original code": (1_000_388, 2_158_459, 12_898, 17),
    "Variable reuse (O1)": (826_993, 1_587_827, 9_882, 9),
    "Pipelined load (O2)": (451_395, 1_051_467, 5_694, 11),
}


@dataclass
class CaseStudyRow:
    label: str
    area: AreaReport
    bram_utilization: float
    fits: bool


@dataclass
class CaseStudyReport:
    rows: list[CaseStudyRow]

    def render(self) -> str:
        body = []
        for row in self.rows:
            paper = PAPER_TABLE2[row.label]
            r = row.area.as_row()
            body.append([
                row.label,
                f"{r['ALUTs']:,}", f"{r['FFs']:,}",
                f"{r['BRAMs']:,}", f"{r['DSPs']:,}",
                f"{row.bram_utilization:.0%}",
                f"{paper[2]:,}",
            ])
        return render_table(
            ["Optimization step", "ALUTs", "FFs", "BRAMs", "DSPs",
             "BRAM util", "paper BRAMs"],
            body,
            title="Table II: Backprop synthesis area (Intel HLS model)",
        )

    def bram_sequence(self) -> list[int]:
        return [row.area.brams for row in self.rows]


def run_case_study() -> CaseStudyReport:
    device = STRATIX10_MX2100
    variants = [
        ("Original code", backprop.build_original),
        ("Variable reuse (O1)", backprop.build_o1),
        ("Pipelined load (O2)", backprop.build_o2),
    ]
    rows = []
    for label, build in variants:
        area = aoc(build(), device=device, enforce_capacity=False)
        rows.append(CaseStudyRow(
            label=label,
            area=area,
            bram_utilization=area.brams / device.brams,
            fits=area.brams <= device.brams,
        ))
    return CaseStudyReport(rows=rows)


def run_auto_cse_ablation() -> dict[str, int]:
    """Ablation: what the compiler's own CSE pass recovers of O1.

    The paper's O1 is a *manual* source rewrite; our middle end contains
    the equivalent automatic transform. This compares BRAMs of (a) the
    original kernel, (b) the original after automatic CSE, (c) the manual
    O1 source.
    """
    original = backprop.build_original()[0]
    auto = clone_kernel(original)
    cse.run(auto)
    out = {
        "original": aoc(backprop.build_original(),
                        enforce_capacity=False).brams,
        "auto_cse": aoc([auto], enforce_capacity=False).brams,
        "manual_o1": aoc(backprop.build_o1(), enforce_capacity=False).brams,
    }
    return out
