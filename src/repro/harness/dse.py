"""Hierarchical design-space exploration for Vortex configurations.

The paper's conclusion calls for exactly this: "the optimal hardware
configuration in the soft GPU was found to be application-dependent.
This underscores the need for a more sophisticated approach, such as an
analytical model, to identify the optimal soft GPU configuration."

The search is *staged* so that per-point cost falls by orders of
magnitude at each stage:

1. **screen** — the synthesis-area model filters configurations that
   fit the target FPGA and the (optionally calibrated, see
   :mod:`repro.calibrate`) analytical performance model prices the
   survivors, at microseconds per point: thousands of (C, W, T) points
   per second from one configuration-independent kernel profile;
2. **frontier** — only the area x predicted-cycles Pareto frontier can
   contain the best buildable configuration, so everything dominated in
   both resources *and* predicted time is dropped without ever being
   simulated. Calibrated error bounds tighten this further: a frontier
   point predicted slower than ``best x (1 + 2*bound)`` cannot win even
   at the stated model error, so it is pruned too;
3. **confirm** — the surviving handful of frontier points are
   cycle-confirmed with SimX, fanned through the
   :class:`~repro.harness.engine.ExperimentEngine` so memoisation,
   ``--jobs``, retries, and checkpoint/preemption all apply. Confirm
   points share the Figure 7 sweep's content keys, so a warmed sweep
   cache makes confirmation free (and vice versa).

The flat "rank the grid, simulate the top K" mode is retained
(``simulate_top=``) — it is both the backwards-compatible API and the
baseline ``BENCH_dse.json`` measures the hierarchical speedup against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial

from ..errors import ExplorationError, PointFailure, SynthesisError
from ..hls.device import FPGADevice, STRATIX10_SX2800
from ..profiling import Profiler, ensure_profiler
from ..vortex.analytical import (
    KernelProfile,
    Prediction,
    VortexModelParams,
    predict,
)
from ..vortex import layout
from ..vortex.area import VortexAreaReport, synthesize
from ..vortex.simx.config import VortexConfig
from .engine import ExperimentEngine
from .result_cache import ResultCache
from .tables import render_table


@dataclass
class Candidate:
    config: VortexConfig
    area: VortexAreaReport
    prediction: Prediction
    simulated_cycles: int | None = None
    #: ``ERROR(...)`` note when the verification simulation failed
    #: (after retries) under the engine's ``keep_going`` policy.
    sim_error: str | None = None
    #: True when the candidate survived Pareto-frontier extraction
    #: (never dominated in both predicted cycles and area).
    on_frontier: bool = False

    @property
    def geometry(self) -> tuple[int, int, int]:
        c = self.config
        return (c.cores, c.warps, c.threads)


def pareto_frontier(candidates: list[Candidate]) -> list[Candidate]:
    """The (predicted cycles, ALUT area) Pareto frontier, fastest first.

    A candidate is dominated when another is at least as fast *and* at
    least as small (strictly better in one axis). Ties on both axes keep
    a single deterministic representative (smallest config label), so
    the confirmation set never wastes simulations on duplicates.
    """
    ordered = sorted(
        candidates,
        key=lambda c: (c.prediction.cycles, c.area.aluts,
                       c.config.label()))
    frontier: list[Candidate] = []
    best_area = None
    for cand in ordered:
        if best_area is None or cand.area.aluts < best_area:
            frontier.append(cand)
            best_area = cand.area.aluts
    return frontier


@dataclass
class DSEResult:
    device: FPGADevice
    candidates: list[Candidate] = field(default_factory=list)
    rejected: list[tuple[tuple[int, int, int], str]] = field(
        default_factory=list)
    #: total design points enumerated (feasible + rejected).
    screened: int = 0
    #: wall-clock spent in the analytical screen (enumerate + area +
    #: predict + frontier extraction).
    screen_seconds: float = 0.0
    #: wall-clock spent cycle-confirming candidates with SimX.
    confirm_seconds: float = 0.0

    @property
    def frontier(self) -> list[Candidate]:
        """Frontier candidates, fastest-predicted first."""
        return sorted((c for c in self.candidates if c.on_frontier),
                      key=lambda c: (c.prediction.cycles, c.area.aluts,
                                     c.config.label()))

    @property
    def screen_points_per_sec(self) -> float:
        if self.screen_seconds <= 0.0:
            return 0.0
        return self.screened / self.screen_seconds

    @property
    def best(self) -> Candidate:
        """Best verified candidate; predicted cycles and simulated cycles
        are different scales, so once anything was simulated only the
        simulated candidates compete. Ties (identical cycles) break
        deterministically toward the smaller configuration — first by
        ALUT area, then by config label — because a tie in speed should
        never cost extra fabric.

        Raises :class:`~repro.errors.ExplorationError` (naming the
        device and the rejection reasons) when the area model rejected
        every explored point — there is no best configuration to
        return.
        """
        if not self.candidates:
            raise ExplorationError(self.device.name, self.rejected)
        simulated = [c for c in self.candidates
                     if c.simulated_cycles is not None]
        if simulated:
            return min(simulated,
                       key=lambda c: (c.simulated_cycles, c.area.aluts,
                                      c.config.label()))
        return min(self.candidates,
                   key=lambda c: (c.prediction.cycles, c.area.aluts,
                                  c.config.label()))

    def to_payload(self) -> dict:
        """JSON-serialisable summary (the service's `dse` job result).

        Bounded: per-reason rejection counts instead of the full
        rejection list, and only the frontier + simulated candidates are
        itemised — a thousands-point screen must not produce a
        thousands-row payload.
        """
        reasons: dict[str, int] = {}
        for _, reason in self.rejected:
            reasons[reason] = reasons.get(reason, 0) + 1

        def row(cand: Candidate) -> dict:
            return {
                "config": cand.config.label(),
                "geometry": list(cand.geometry),
                "predicted_cycles": round(cand.prediction.cycles, 1),
                "bottleneck": cand.prediction.bottleneck,
                "aluts": cand.area.aluts,
                "brams": cand.area.brams,
                "simulated_cycles": cand.simulated_cycles,
                "sim_error": cand.sim_error,
                "on_frontier": cand.on_frontier,
            }

        interesting = [c for c in self.candidates
                       if c.on_frontier or c.simulated_cycles is not None
                       or c.sim_error is not None]
        interesting.sort(key=lambda c: (c.prediction.cycles,
                                        c.area.aluts, c.config.label()))
        try:
            best = row(self.best)
        except ExplorationError:
            best = None
        return {
            "device": self.device.name,
            "screened": self.screened,
            "feasible": len(self.candidates),
            "rejected": len(self.rejected),
            "rejected_reasons": reasons,
            "screen_seconds": round(self.screen_seconds, 6),
            "screen_points_per_sec": round(self.screen_points_per_sec, 1),
            "confirm_seconds": round(self.confirm_seconds, 6),
            "frontier_size": len(self.frontier),
            "candidates": [row(c) for c in interesting],
            "best": best,
        }

    def render(self, top: int = 8) -> str:
        ranked = sorted(self.candidates,
                        key=lambda cand: cand.prediction.cycles)
        rows = []
        for cand in ranked[:top]:
            rows.append([
                cand.config.label(),
                f"{cand.prediction.cycles:,.0f}",
                cand.prediction.bottleneck,
                f"{cand.area.aluts:,}",
                f"{cand.area.brams:,}",
                "*" if cand.on_frontier else "",
                f"{cand.simulated_cycles:,}"
                if cand.simulated_cycles is not None
                else (cand.sim_error or "-"),
            ])
        body = render_table(
            ["config", "predicted cycles", "bottleneck", "ALUTs", "BRAMs",
             "frontier", "simulated"],
            rows,
            title=(f"Design-space exploration on {self.device.name} "
                   f"({len(self.candidates)} feasible, "
                   f"{len(self.rejected)} rejected)"),
        )
        if not self.screened:
            return body
        stats = (f"screened {self.screened} points in "
                 f"{self.screen_seconds * 1000:.1f} ms "
                 f"({self.screen_points_per_sec:,.0f} points/sec), "
                 f"frontier {len(self.frontier)}")
        if self.confirm_seconds:
            stats += f", confirmed in {self.confirm_seconds:.2f} s"
        return body + "\n" + stats


#: launch-feasibility ceilings from the simulated platform's memory
#: map: concurrent group slots (one 64 KiB local window per core x warp
#: slot) and per-thread stack frames are finite regions, so a
#: configuration exceeding either cannot launch at all — screening it
#: out here keeps unlaunchable points from ever reaching SimX.
MAX_GROUP_SLOTS = ((layout.LOCAL_LIMIT - layout.LOCAL_BASE)
                   // layout.LOCAL_WINDOW_SIZE)
MAX_SIM_THREADS = ((layout.STACK_LIMIT - layout.STACK_BASE)
                   // layout.STACK_SIZE_PER_THREAD)


def launch_rejection(config: VortexConfig) -> str | None:
    """Why ``config`` cannot launch on the simulated platform, if so."""
    if config.cores * config.warps > MAX_GROUP_SLOTS:
        return "group-slots"
    if config.total_threads > MAX_SIM_THREADS:
        return "stack-region"
    return None


def workload_rejection(benchmark: str, n: int):
    """A ``config -> reason`` screen mirroring the sweep launch geometry.

    The sweep workloads size their work-groups from the configuration
    (``min(16, warps*threads)`` lanes for vecadd, a ``min(4, ...)``
    tile for transpose), and an OpenCL-style launch requires the local
    size to divide the global size. Grids that include non-power-of-two
    warp/thread counts would otherwise reach SimX only to fail with a
    launch error — screening them out keeps both the flat baseline and
    the frontier confirmation on launchable points only.
    """
    if benchmark == "vecadd":
        def reject(config: VortexConfig) -> str | None:
            local = min(16, config.warps * config.threads)
            return None if n % local == 0 else "workgroup"
        return reject
    if benchmark == "transpose":
        dim = int(round(n ** 0.5))
        dim -= dim % 16
        dim = max(dim, 16)

        def reject(config: VortexConfig) -> str | None:
            cap = config.warps * config.threads
            lx = min(4, cap)
            ly = max(1, min(4, cap // lx))
            return None if dim % lx == 0 and dim % ly == 0 else "workgroup"
        return reject
    return lambda config: None


def _sim_cycles(value) -> int:
    """Simulate callables may return raw cycles or a sweep-style
    ``{"cycles": ...}`` payload (the latter keeps DSE confirmation
    cache-compatible with Figure 7 sweep cells)."""
    if isinstance(value, dict):
        return value["cycles"]
    return value


def dse_confirm_point(config: VortexConfig, benchmark: str, n: int,
                      checkpoint: dict | None = None) -> dict:
    """One frontier confirmation — module-level and spawn-picklable.

    Delegates to :func:`~repro.harness.sweep.sweep_point`, returning its
    full payload so cached values are byte-identical to Figure 7 sweep
    cells (same content key, same value: the two campaigns dedupe
    against each other). The checkpoint ``point_id`` is derived from the
    configuration so every confirm point snapshots/resumes
    independently.
    """
    from .sweep import sweep_point

    ckpt = None
    if checkpoint is not None:
        ckpt = dict(checkpoint)
        ckpt["point_id"] = f"dse-{benchmark}-{config.label()}-n{n}"
    return sweep_point(benchmark, config, n, checkpoint=ckpt)


def explore_design_space(
    profile: KernelProfile,
    device: FPGADevice = STRATIX10_SX2800,
    core_counts: tuple[int, ...] = (1, 2, 4, 8),
    warp_sizes: tuple[int, ...] = (2, 4, 8, 16),
    thread_sizes: tuple[int, ...] = (2, 4, 8, 16),
    items_per_group: int = 16,
    base: VortexConfig | None = None,
    simulate_top: int = 0,
    simulate=None,
    params: VortexModelParams | None = None,
    reject=None,
    confirm_frontier: bool = False,
    frontier_cap: int | None = None,
    prune_rel_err: float | None = None,
    simulate_key=None,
    engine: ExperimentEngine | None = None,
    profiler: Profiler | None = None,
    jobs: int = 1,
    retries: int = 0,
    point_timeout: float | None = None,
    keep_going: bool = False,
) -> DSEResult:
    """Enumerate (C, W, T), filter by area, rank analytically, confirm.

    ``params`` supplies calibrated analytical-model constants (see
    :mod:`repro.calibrate`); ``None`` keeps the hand-tuned defaults.
    ``reject`` (optional, ``config -> reason | None``) screens out
    workload-specific unlaunchable geometries — see
    :func:`workload_rejection`.

    ``simulate`` (optional) is a callable ``config -> cycles`` (or a
    dict containing ``"cycles"``) used to cycle-confirm candidates. Two
    confirmation policies select which candidates it runs on:

    * ``simulate_top=K`` — the flat baseline: the K best-predicted
      feasible candidates;
    * ``confirm_frontier=True`` — the hierarchical mode: only the
      (predicted cycles x ALUT) Pareto frontier, optionally pruned to
      points within ``best_predicted * (1 + 2*prune_rel_err)`` (a
      calibrated error bound: anything predicted slower than that
      cannot be the true optimum even at the stated model error) and
      capped at the ``frontier_cap`` fastest-predicted points.

    With ``jobs > 1`` (or an explicit ``engine``) the confirmations —
    the only expensive part of the loop — fan out across the experiment
    engine's worker pool; ``simulate`` must then be a picklable
    module-level callable (closures still work in the default serial
    path). ``simulate_key`` (optional, ``config -> cache key``) lets the
    engine memoise each confirmation in its result cache.

    ``retries``/``point_timeout``/``keep_going`` configure the fault
    policy of those verification runs when the exploration owns the
    engine: under ``keep_going`` a failed simulation leaves the
    candidate unverified with an ``ERROR(...)`` note in
    :attr:`Candidate.sim_error` instead of aborting the exploration.

    ``profiler`` (optional) records the exploration itself: counters for
    enumerated/feasible/rejected/frontier points and wall-clock spans
    around the screen and each confirmation.
    """
    base = base or VortexConfig()
    prof = ensure_profiler(profiler)
    result = DSEResult(device=device)
    screen_started = time.perf_counter()
    with prof.span("dse: screen", cat="dse"):
        for c in core_counts:
            for w in warp_sizes:
                for t in thread_sizes:
                    config = base.with_geometry(cores=c, warps=w, threads=t)
                    result.screened += 1
                    if prof.enabled:
                        prof.count("dse.points")
                    try:
                        area = synthesize(config, device)
                    except SynthesisError as exc:
                        result.rejected.append(((c, w, t), exc.reason))
                        if prof.enabled:
                            prof.count("dse.rejected")
                            prof.count(f"dse.rejected.{exc.reason}")
                        continue
                    reason = launch_rejection(config)
                    if reason is None and reject is not None:
                        reason = reject(config)
                    if reason is not None:
                        result.rejected.append(((c, w, t), reason))
                        if prof.enabled:
                            prof.count("dse.rejected")
                            prof.count(f"dse.rejected.{reason}")
                        continue
                    prediction = predict(profile, config,
                                         items_per_group=items_per_group,
                                         params=params)
                    if prof.enabled:
                        prof.count("dse.feasible")
                    result.candidates.append(
                        Candidate(config=config, area=area,
                                  prediction=prediction))
        for cand in pareto_frontier(result.candidates):
            cand.on_frontier = True
    result.screen_seconds = time.perf_counter() - screen_started
    if prof.enabled:
        prof.count("dse.frontier", len(result.frontier))

    # -- select the confirmation set --------------------------------------
    to_confirm: list[Candidate] = []
    if simulate is not None:
        if confirm_frontier:
            to_confirm = result.frontier
            if prune_rel_err is not None and to_confirm:
                cutoff = (to_confirm[0].prediction.cycles
                          * (1.0 + 2.0 * prune_rel_err))
                kept = [c for c in to_confirm
                        if c.prediction.cycles <= cutoff]
                # never confirm fewer than 3 frontier points: the
                # stated bound is measured on the calibration set, and
                # held-out cells can exceed it — a small floor hedges
                # against over-trusting the model.
                floor = min(3, len(to_confirm))
                to_confirm = (kept if len(kept) >= floor
                              else to_confirm[:floor])
            if frontier_cap is not None:
                to_confirm = to_confirm[:frontier_cap]
        elif simulate_top:
            ranked = sorted(result.candidates,
                            key=lambda cand: (cand.prediction.cycles,
                                              cand.area.aluts,
                                              cand.config.label()))
            to_confirm = ranked[:simulate_top]

    if not to_confirm:
        return result

    confirm_started = time.perf_counter()
    use_engine = engine is not None or (jobs > 1 and len(to_confirm) > 1)
    if use_engine:
        owns_engine = engine is None
        if owns_engine:
            engine = ExperimentEngine(jobs=jobs, profiler=profiler,
                                      retries=retries,
                                      point_timeout=point_timeout,
                                      keep_going=keep_going)
        keys = None
        if simulate_key is not None and engine.cache is not None:
            keys = [simulate_key(cand.config) for cand in to_confirm]
        try:
            values = engine.run(simulate,
                                [(cand.config,) for cand in to_confirm],
                                keys=keys, label="dse verify")
        finally:
            if owns_engine:
                engine.close()
        for cand, value in zip(to_confirm, values):
            if isinstance(value, PointFailure):
                cand.sim_error = f"ERROR({value.exc_type})"
            else:
                cand.simulated_cycles = _sim_cycles(value)
        if prof.enabled:
            prof.count("dse.simulated", len(to_confirm))
    else:
        for cand in to_confirm:
            with prof.span(f"dse: simulate {cand.config.label()}",
                           cat="dse"):
                try:
                    cand.simulated_cycles = _sim_cycles(
                        simulate(cand.config))
                except Exception as exc:
                    if not keep_going:
                        raise
                    cand.sim_error = f"ERROR({type(exc).__name__})"
            if prof.enabled:
                prof.count("dse.simulated")
    result.confirm_seconds = time.perf_counter() - confirm_started
    return result


def run_dse(
    benchmark: str,
    n: int = 4096,
    device: FPGADevice = STRATIX10_SX2800,
    core_counts: tuple[int, ...] = (1, 2, 4, 8),
    warp_sizes: tuple[int, ...] = (2, 4, 8, 16),
    thread_sizes: tuple[int, ...] = (2, 4, 8, 16),
    base: VortexConfig | None = None,
    calibration=None,
    confirm: str = "frontier",
    frontier_cap: int | None = 8,
    simulate_top: int = 8,
    cache: ResultCache | None = None,
    engine: ExperimentEngine | None = None,
    profiler: Profiler | None = None,
    jobs: int = 1,
    retries: int = 0,
    point_timeout: float | None = None,
    keep_going: bool = False,
    checkpoint_dir=None,
    checkpoint_every: int | None = None,
    checkpoint_deadline_s: float | None = None,
    checkpoint_stop_file: str | None = None,
) -> DSEResult:
    """End-to-end hierarchical DSE for one benchmark workload.

    Profiles the benchmark once with the functional interpreter, screens
    the grid with the (calibrated, when ``calibration`` is a
    :class:`~repro.calibrate.CalibrationArtifact`) analytical model, and
    confirms according to ``confirm``:

    * ``"frontier"`` — hierarchical: SimX on the pruned Pareto frontier
      (the calibrated error bound drives the pruning cutoff);
    * ``"top"`` — the flat baseline: SimX on the ``simulate_top``
      best-predicted candidates;
    * ``"none"`` — screen only (milliseconds end to end).

    Confirmations run :func:`dse_confirm_point` (SimX via
    ``sweep_point``) through the engine, memoised under the same
    content keys as Figure 7 sweep cells. ``checkpoint_dir`` makes each
    confirmation preemptible exactly as in
    :func:`~repro.harness.sweep.run_sweep`;
    ``checkpoint_deadline_s``/``checkpoint_stop_file`` let a hosting
    service (the daemon's ``dse`` job kind) impose its own preemption
    deadline and cooperative stop file on every confirmation.
    """
    if confirm not in ("frontier", "top", "none"):
        raise ValueError("confirm must be 'frontier', 'top', or 'none'")
    from ..calibrate.fit import _vortex_workload

    kernel, args, ndrange = _vortex_workload(benchmark, n)
    profile = KernelProfile.collect(kernel, args, ndrange)

    params = None
    prune_rel_err = None
    if calibration is not None:
        params = calibration.vortex
        prune_rel_err = calibration.bound("vortex", benchmark)

    owns_engine = engine is None
    if owns_engine and confirm != "none":
        engine = ExperimentEngine(jobs=jobs, cache=cache, retries=retries,
                                  point_timeout=point_timeout,
                                  keep_going=keep_going,
                                  profiler=profiler)

    ckpt_spec = None
    if checkpoint_dir is not None and confirm != "none":
        from ..vortex.simx.checkpoint import CheckpointStore
        CheckpointStore(str(checkpoint_dir), sweep_age_s=0.0)
        budget = getattr(engine, "point_timeout", None) or point_timeout
        deadline_s = checkpoint_deadline_s
        if deadline_s is None and budget:
            deadline_s = budget * 0.8
        ckpt_spec = {
            "dir": str(checkpoint_dir),
            "point_id": "dse",  # overridden per point
            "every": checkpoint_every,
            "deadline_s": deadline_s,
        }
        if checkpoint_stop_file is not None:
            ckpt_spec["stop_file"] = checkpoint_stop_file

    simulate = partial(dse_confirm_point, benchmark=benchmark, n=n,
                       checkpoint=ckpt_spec)

    def simulate_key(config: VortexConfig):
        from .sweep import SWEEP_SEED
        if engine is None or engine.cache is None:
            return None
        return engine.cache.key(kind="fig7-cell", benchmark=benchmark,
                                config=config, n=n, seed=SWEEP_SEED)

    try:
        return explore_design_space(
            profile, device=device, core_counts=core_counts,
            warp_sizes=warp_sizes, thread_sizes=thread_sizes, base=base,
            params=params,
            reject=workload_rejection(benchmark, n),
            simulate=None if confirm == "none" else simulate,
            confirm_frontier=confirm == "frontier",
            frontier_cap=frontier_cap,
            prune_rel_err=prune_rel_err,
            simulate_top=simulate_top if confirm == "top" else 0,
            simulate_key=simulate_key,
            engine=engine, profiler=profiler, jobs=jobs,
            retries=retries, point_timeout=point_timeout,
            keep_going=keep_going,
        )
    finally:
        if owns_engine and engine is not None:
            engine.close()
