"""Design-space exploration for Vortex configurations.

The paper's conclusion calls for exactly this: "the optimal hardware
configuration in the soft GPU was found to be application-dependent.
This underscores the need for a more sophisticated approach, such as an
analytical model, to identify the optimal soft GPU configuration."

:func:`explore_design_space` combines three repro components:

1. the **synthesis-area model** filters configurations to those that fit
   the target FPGA (no Quartus run per point);
2. the **analytical performance model** ranks the survivors from one
   configuration-independent kernel profile (no cycle simulation per
   point);
3. optionally, the **SimX cycle simulator** verifies the top candidates.

The result is the paper's exploration loop at a cost of one interpreter
run plus `verify_top` simulations, instead of synthesizing or simulating
the full grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ExplorationError, PointFailure, SynthesisError
from ..hls.device import FPGADevice, STRATIX10_SX2800
from ..profiling import Profiler, ensure_profiler
from ..vortex.analytical import KernelProfile, Prediction, predict
from ..vortex.area import VortexAreaReport, synthesize
from ..vortex.simx.config import VortexConfig
from .engine import ExperimentEngine
from .tables import render_table


@dataclass
class Candidate:
    config: VortexConfig
    area: VortexAreaReport
    prediction: Prediction
    simulated_cycles: int | None = None
    #: ``ERROR(...)`` note when the verification simulation failed
    #: (after retries) under the engine's ``keep_going`` policy.
    sim_error: str | None = None

    @property
    def geometry(self) -> tuple[int, int, int]:
        c = self.config
        return (c.cores, c.warps, c.threads)


@dataclass
class DSEResult:
    device: FPGADevice
    candidates: list[Candidate] = field(default_factory=list)
    rejected: list[tuple[tuple[int, int, int], str]] = field(
        default_factory=list)

    @property
    def best(self) -> Candidate:
        """Best verified candidate; predicted cycles and simulated cycles
        are different scales, so once anything was simulated only the
        simulated candidates compete.

        Raises :class:`~repro.errors.ExplorationError` (naming the
        device and the rejection reasons) when the area model rejected
        every explored point — there is no best configuration to
        return.
        """
        if not self.candidates:
            raise ExplorationError(self.device.name, self.rejected)
        simulated = [c for c in self.candidates
                     if c.simulated_cycles is not None]
        if simulated:
            return min(simulated, key=lambda c: c.simulated_cycles)
        return min(self.candidates, key=lambda c: c.prediction.cycles)

    def render(self, top: int = 8) -> str:
        ranked = sorted(self.candidates,
                        key=lambda cand: cand.prediction.cycles)
        rows = []
        for cand in ranked[:top]:
            rows.append([
                cand.config.label(),
                f"{cand.prediction.cycles:,.0f}",
                cand.prediction.bottleneck,
                f"{cand.area.aluts:,}",
                f"{cand.area.brams:,}",
                f"{cand.simulated_cycles:,}"
                if cand.simulated_cycles is not None
                else (cand.sim_error or "-"),
            ])
        return render_table(
            ["config", "predicted cycles", "bottleneck", "ALUTs", "BRAMs",
             "simulated"],
            rows,
            title=(f"Design-space exploration on {self.device.name} "
                   f"({len(self.candidates)} feasible, "
                   f"{len(self.rejected)} rejected)"),
        )


def explore_design_space(
    profile: KernelProfile,
    device: FPGADevice = STRATIX10_SX2800,
    core_counts: tuple[int, ...] = (1, 2, 4, 8),
    warp_sizes: tuple[int, ...] = (2, 4, 8, 16),
    thread_sizes: tuple[int, ...] = (2, 4, 8, 16),
    items_per_group: int = 16,
    base: VortexConfig | None = None,
    simulate_top: int = 0,
    simulate=None,
    profiler: Profiler | None = None,
    jobs: int = 1,
    retries: int = 0,
    point_timeout: float | None = None,
    keep_going: bool = False,
) -> DSEResult:
    """Enumerate (C, W, T), filter by area, rank analytically.

    ``simulate`` (optional) is a callable ``config -> cycles`` used to
    verify the ``simulate_top`` best-predicted candidates. With
    ``jobs > 1`` the verification simulations — the only expensive part
    of the loop — fan out across the experiment engine's worker pool;
    ``simulate`` must then be a picklable module-level callable
    (closures still work in the default serial path).

    ``retries``/``point_timeout``/``keep_going`` configure the fault
    policy of those verification runs: under ``keep_going`` a failed
    simulation leaves the candidate unverified with an ``ERROR(...)``
    note in :attr:`Candidate.sim_error` instead of aborting the
    exploration.

    ``profiler`` (optional) records the exploration itself: counters for
    enumerated/feasible/rejected points and wall-clock spans around the
    enumeration and each verification simulation.
    """
    base = base or VortexConfig()
    prof = ensure_profiler(profiler)
    result = DSEResult(device=device)
    with prof.span("dse: enumerate+rank", cat="dse"):
        for c in core_counts:
            for w in warp_sizes:
                for t in thread_sizes:
                    config = base.with_geometry(cores=c, warps=w, threads=t)
                    if prof.enabled:
                        prof.count("dse.points")
                    try:
                        area = synthesize(config, device)
                    except SynthesisError as exc:
                        result.rejected.append(((c, w, t), exc.reason))
                        if prof.enabled:
                            prof.count("dse.rejected")
                            prof.count(f"dse.rejected.{exc.reason}")
                        continue
                    prediction = predict(profile, config,
                                         items_per_group=items_per_group)
                    if prof.enabled:
                        prof.count("dse.feasible")
                    result.candidates.append(
                        Candidate(config=config, area=area,
                                  prediction=prediction))
    if simulate_top and simulate is not None:
        ranked = sorted(result.candidates,
                        key=lambda cand: cand.prediction.cycles)
        top = ranked[:simulate_top]
        if jobs > 1 and len(top) > 1:
            with ExperimentEngine(jobs=jobs, profiler=profiler,
                                  retries=retries,
                                  point_timeout=point_timeout,
                                  keep_going=keep_going) as engine:
                cycles = engine.run(simulate,
                                    [(cand.config,) for cand in top],
                                    label="dse verify")
            for cand, sim_cycles in zip(top, cycles):
                if isinstance(sim_cycles, PointFailure):
                    cand.sim_error = f"ERROR({sim_cycles.exc_type})"
                else:
                    cand.simulated_cycles = sim_cycles
            if prof.enabled:
                prof.count("dse.simulated", len(top))
        else:
            for cand in top:
                with prof.span(f"dse: simulate {cand.config.label()}",
                               cat="dse"):
                    try:
                        cand.simulated_cycles = simulate(cand.config)
                    except Exception as exc:
                        if not keep_going:
                            raise
                        cand.sim_error = f"ERROR({type(exc).__name__})"
                if prof.enabled:
                    prof.count("dse.simulated")
    return result
