"""Profile one benchmark on one executor and build a unified report.

This is the harness behind ``python -m repro profile``: it wires a
:class:`~repro.profiling.Profiler` into the chosen backend (reference
interpreter, SimX cycle simulator, or the HLS pipeline model), runs one
Table-I benchmark end-to-end through the standard ``run_benchmark``
driver, and returns the :class:`~repro.profiling.ProfileReport` next to
the benchmark result, so callers can both inspect counters and save a
Chrome-trace file.
"""

from __future__ import annotations

from ..benchmarks import BenchmarkResult, get_benchmark, run_benchmark
from ..errors import ReproError
from ..hls import HLSBackend
from ..ocl.host import ReferenceBackend
from ..profiling import ProfileReport, Profiler
from ..vortex import VortexBackend, VortexConfig
from .result_cache import MISS, ResultCache

#: CLI spelling -> backend factory.
PROFILE_BACKENDS = ("interp", "simx", "hls")


def make_profiled_backend(backend: str, profiler: Profiler,
                          config: VortexConfig | None = None):
    """Build a backend of the given kind with ``profiler`` attached."""
    if backend == "interp":
        return ReferenceBackend(profiler=profiler)
    if backend == "simx":
        return VortexBackend(config or VortexConfig(), profiler=profiler)
    if backend == "hls":
        # Profiling is about observing execution; a capacity failure
        # would only hide the pipeline numbers the user asked for.
        return HLSBackend(profiler=profiler, enforce_capacity=False)
    raise ValueError(
        f"unknown backend {backend!r} (choose from {PROFILE_BACKENDS})")


def run_profile(
    benchmark: str,
    backend: str = "simx",
    scale: int = 1,
    config: VortexConfig | None = None,
    cycle_bucket: int = Profiler.DEFAULT_CYCLE_BUCKET,
    validate: bool = True,
) -> tuple[ProfileReport, BenchmarkResult]:
    """Run ``benchmark`` once on ``backend`` with profiling enabled."""
    try:
        bench = get_benchmark(benchmark)
    except (ImportError, KeyError) as exc:
        raise ReproError(f"unknown benchmark {benchmark!r}") from exc
    profiler = Profiler(cycle_bucket=cycle_bucket)
    profiler.set_meta("benchmark", bench.table_name)
    profiler.set_meta("scale", scale)
    with profiler.span(f"run {bench.name}", cat="harness", pid=1000):
        result = run_benchmark(
            bench, make_profiled_backend(backend, profiler, config),
            scale=scale, validate=validate,
        )
    profiler.name_process(1000, "harness (wall-clock, us)")
    if not result.ok:
        raise ReproError(
            f"profiling {benchmark} on {backend} failed: "
            f"{result.status} {result.detail}"
        )
    report = profiler.report(
        title=f"{bench.name} [{backend}]", backend=backend)
    return report, result


def run_profile_cached(
    benchmark: str,
    backend: str = "simx",
    scale: int = 1,
    config: VortexConfig | None = None,
    cycle_bucket: int = Profiler.DEFAULT_CYCLE_BUCKET,
    validate: bool = True,
    cache: ResultCache | None = None,
    retries: int = 0,
) -> tuple[ProfileReport, dict, bool]:
    """:func:`run_profile` behind the experiment result cache.

    ``retries`` re-runs a failed profile up to that many extra times
    (the same transient-fault policy the experiment engine applies per
    point) before letting the failure propagate.

    Returns ``(report, summary, cache_hit)`` where ``summary`` carries
    the launch count and total cycles the CLI prints (the full
    :class:`BenchmarkResult` holds live buffers and is not cached). The
    report round-trips losslessly through
    :meth:`~repro.profiling.ProfileReport.to_payload`, so a cached run
    emits byte-identical trace and summary files.

    The profiler's wall-clock harness span is excluded from the cache
    key inputs but *included* in the cached report — a cached run
    replays the originally measured wall time rather than remeasuring a
    run that never happened.
    """
    key = None
    if cache is not None:
        key = cache.key(
            kind="profile", benchmark=benchmark, backend=backend,
            scale=scale, config=config, cycle_bucket=cycle_bucket,
            validate=validate,
        )
        payload = cache.get(key)
        if payload is not MISS:
            return (ProfileReport.from_payload(payload["report"]),
                    payload["summary"], True)
    attempt = 0
    while True:
        attempt += 1
        try:
            report, result = run_profile(
                benchmark, backend=backend, scale=scale, config=config,
                cycle_bucket=cycle_bucket, validate=validate,
            )
            break
        except ReproError:
            if attempt > retries:
                raise
    summary = {
        "launches": len(result.launches),
        "total_cycles": result.total_cycles,
    }
    if cache is not None and key is not None:
        cache.put(key, {"report": report.to_payload(), "summary": summary})
    return report, summary, False
