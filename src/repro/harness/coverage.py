"""Experiment E1 — Table I: benchmark coverage of both flows.

Runs every Table-I benchmark through the Vortex backend (SX2800, DDR4)
and the Intel-HLS model (MX2100, HBM2 — the board each flow used in the
paper) and records pass/fail with the failure reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..benchmarks import all_benchmarks, get_benchmark, run_benchmark
from ..errors import PointFailure
from ..hls import HLSBackend, STRATIX10_MX2100
from ..vortex import VortexBackend, VortexConfig
from .engine import EngineStats, ExperimentEngine
from .result_cache import ResultCache
from .tables import render_table

#: The paper's Table I: benchmark -> (vortex_ok, hls_ok, reason).
PAPER_TABLE1: dict[str, tuple[bool, bool, str]] = {
    "Vecadd": (True, True, ""),
    "Sgemm": (True, True, ""),
    "Psort": (True, True, ""),
    "Saxpy": (True, True, ""),
    "Sfilter": (True, True, ""),
    "Dotproduct": (True, True, ""),
    "SPMV": (True, True, ""),
    "Cutcp": (True, True, ""),
    "Stencil": (True, True, ""),
    "Lbm": (True, False, "Not enough BRAM"),
    "OCLPrintf": (True, True, ""),
    "Blackscholes": (True, True, ""),
    "Matmul": (True, True, ""),
    "Transpose": (True, True, ""),
    "Kmeans": (True, True, ""),
    "Nearn": (True, True, ""),
    "Gaussian": (True, True, ""),
    "BFS": (True, True, ""),
    "Backprop": (True, False, "Not enough BRAM"),
    "Streamcluster": (True, True, ""),
    "pathfinder": (True, True, ""),
    "nw": (True, True, ""),
    "B+tree": (True, False, "Not enough BRAM"),
    "LavaMD": (True, True, ""),
    "Hybridsort": (True, False, "Atomics"),
    "Particlefilter": (True, True, ""),
    "Dwd2d": (True, False, "Not enough BRAM"),
    "LUD": (True, False, "Not enough BRAM"),
}


@dataclass
class CoverageCell:
    passed: bool
    reason: str = ""
    detail: str = ""
    #: the experiment point itself failed (crash/timeout), as opposed
    #: to the benchmark legitimately failing on the flow.
    error: bool = False

    @property
    def mark(self) -> str:
        if self.error:
            return "E"
        return "O" if self.passed else "X"


@dataclass
class CoverageReport:
    rows: dict[str, tuple[CoverageCell, CoverageCell]] = field(
        default_factory=dict
    )
    #: execution/cache bookkeeping from the engine that ran the rows.
    engine_stats: EngineStats | None = None

    @property
    def vortex_passes(self) -> int:
        return sum(1 for v, _ in self.rows.values() if v.passed)

    @property
    def hls_passes(self) -> int:
        return sum(1 for _, h in self.rows.values() if h.passed)

    @property
    def errors(self) -> int:
        """Rows whose experiment point failed (engine-level ERROR)."""
        return sum(1 for v, h in self.rows.values() if v.error or h.error)

    def matches_paper(self) -> bool:
        """True if every pass/fail cell and failure reason matches the
        published Table I."""
        for name, (vortex, hls) in self.rows.items():
            want_v, want_h, want_reason = PAPER_TABLE1[name]
            if vortex.passed != want_v or hls.passed != want_h:
                return False
            if not hls.passed and hls.reason != want_reason:
                return False
        return True

    def render(self) -> str:
        rows = []
        for name, (vortex, hls) in self.rows.items():
            reason = hls.reason if not hls.passed else (
                vortex.reason if not vortex.passed else "")
            rows.append([name, vortex.mark, hls.mark, reason])
        return render_table(
            ["Benchmark Name", "Vortex", "Intel SDK", "Reason to Fail"],
            rows,
            title="Table I: Benchmark Coverage",
        )


def _cell(result) -> CoverageCell:
    if result.ok:
        return CoverageCell(passed=True)
    if result.fail_reason == "bram":
        return CoverageCell(False, "Not enough BRAM", result.detail)
    if result.fail_reason == "atomics":
        return CoverageCell(False, "Atomics", result.detail)
    return CoverageCell(False, result.status, result.detail)


def _cell_payload(cell: CoverageCell) -> dict:
    return {"passed": cell.passed, "reason": cell.reason,
            "detail": cell.detail, "error": cell.error}


def _cell_from_payload(payload: dict) -> CoverageCell:
    return CoverageCell(passed=payload["passed"], reason=payload["reason"],
                        detail=payload["detail"],
                        error=payload.get("error", False))


def _error_cell(failure: PointFailure) -> CoverageCell:
    return CoverageCell(passed=False, reason=f"ERROR({failure.exc_type})",
                        detail=failure.message, error=True)


def coverage_point(bench_name: str, scale: int, validate: bool,
                   vortex_config: VortexConfig | None) -> dict:
    """One Table-I row (both flows) — the engine's unit of work."""
    bench = get_benchmark(bench_name)
    vortex_result = run_benchmark(
        bench, VortexBackend(vortex_config or VortexConfig()),
        scale=scale, validate=validate,
    )
    hls_result = run_benchmark(
        bench, HLSBackend(device=STRATIX10_MX2100),
        scale=scale, validate=validate,
    )
    return {
        "table_name": bench.table_name,
        "vortex": _cell_payload(_cell(vortex_result)),
        "hls": _cell_payload(_cell(hls_result)),
    }


def run_coverage(
    scale: int = 1,
    vortex_config: VortexConfig | None = None,
    validate: bool = True,
    jobs: int = 1,
    cache: ResultCache | None = None,
    retries: int = 0,
    point_timeout: float | None = None,
    keep_going: bool = False,
) -> CoverageReport:
    """Regenerate Table I (validating outputs on both flows).

    The 28 benchmark rows are independent experiment points: ``jobs``
    fans them across worker processes and ``cache`` memoises each row
    (the row payload is plain JSON, so it round-trips losslessly).

    ``retries``/``point_timeout``/``keep_going`` configure the engine's
    fault-tolerance policy: under ``keep_going`` a row whose point
    crashed or timed out (after retries) renders as ``E`` cells with an
    ``ERROR(...)`` reason and counts in :attr:`CoverageReport.errors`,
    instead of aborting the whole table.
    """
    benches = all_benchmarks()
    points = [(bench.name, scale, validate, vortex_config)
              for bench in benches]
    keys = [
        None if cache is None else cache.key(
            kind="table1-row", benchmark=bench.name, scale=scale,
            validate=validate, vortex_config=vortex_config,
        )
        for bench in benches
    ]
    with ExperimentEngine(jobs=jobs, cache=cache, retries=retries,
                          point_timeout=point_timeout,
                          keep_going=keep_going) as engine:
        values = engine.run(coverage_point, points, keys=keys,
                            label="table1")
    report = CoverageReport(engine_stats=engine.stats)
    for bench, value in zip(benches, values):
        if isinstance(value, PointFailure):
            report.rows[bench.table_name] = (_error_cell(value),
                                             _error_cell(value))
            continue
        report.rows[value["table_name"]] = (
            _cell_from_payload(value["vortex"]),
            _cell_from_payload(value["hls"]),
        )
    return report
