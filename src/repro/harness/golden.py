"""Golden-trace regression harness for the SimX cycle simulator.

The SimX hot loop is aggressively optimized (decode caching, lane
vectorization, batched LSU/DRAM event handling, all-stalled
fast-forwarding), and every one of those optimizations is required to be
*behaviour-preserving*: the machine must retire the same instructions,
count the same cycles, move the same cache/DRAM traffic and leave the
same bytes in device memory as the straightforward cycle-by-cycle
implementation. This module pins that contract.

A **golden digest** is a small JSON document per benchmark/configuration
point recording everything the optimized simulator must reproduce
exactly:

* the final device-memory image (SHA-256 per launch),
* total and per-launch cycle counts,
* retired-instruction counts (including the SIMT-op split),
* cache and DRAM counter totals (accesses/hits/misses, row hits/misses),
* LSU stall/replay, scoreboard-stall and barrier-wait totals,
* dispatched-group counts and the kernel's printf output,
* a SHA-256 of every validated output buffer.

Digests are committed under ``tests/golden/`` and regenerated only via

    python -m repro golden --update

which is an *explicit etiquette point*: regenerating goldens means "I
intend to change simulated behaviour" and must be called out in review;
an optimization PR must never need it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..benchmarks.suite import all_benchmarks, get_benchmark, run_benchmark
from ..vortex import VortexBackend, VortexConfig

#: Digest schema version; bump when the digest *format* changes (which
#: forces a regeneration but is not itself a behaviour change).
DIGEST_VERSION = 1

#: Repository-relative home of the committed digests.
GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"


@dataclass(frozen=True)
class GoldenPoint:
    """One benchmark/configuration point of the golden suite."""

    benchmark: str
    scale: int = 1
    cores: int = 4
    warps: int = 8
    threads: int = 8
    hbm: bool = False

    @property
    def name(self) -> str:
        tag = f"{self.benchmark}_s{self.scale}" \
              f"_{self.cores}c{self.warps}w{self.threads}t"
        return tag + ("_hbm" if self.hbm else "")

    def config(self) -> VortexConfig:
        cfg = VortexConfig(cores=self.cores, warps=self.warps,
                           threads=self.threads)
        return cfg.hbm() if self.hbm else cfg


def golden_points() -> list[GoldenPoint]:
    """The committed golden suite: every Table-I benchmark at scale 1 on
    the default geometry, plus Fig. 7's pair at a larger scale and a few
    deliberately awkward geometries (multi-beat issue, tiny machine,
    HBM timing) that exercise the fast-forward and dispatch corners."""
    points = [GoldenPoint(b.name) for b in all_benchmarks()]
    points += [
        GoldenPoint("vecadd", scale=4),
        GoldenPoint("transpose", scale=4),
        # threads > issue_lanes: every instruction issues in 4 beats.
        GoldenPoint("vecadd", cores=2, warps=4, threads=16),
        # minimal machine: dispatch pressure and long stall windows.
        GoldenPoint("transpose", cores=1, warps=2, threads=2),
        # alternative DRAM timing model.
        GoldenPoint("backprop", hbm=True),
        GoldenPoint("bfs", cores=2, warps=4, threads=4),
    ]
    return points


def _sha256(raw: bytes) -> str:
    return hashlib.sha256(raw).hexdigest()


def compute_digest(point: GoldenPoint) -> dict:
    """Run one golden point on SimX and digest the machine state."""
    launches: list[dict] = []

    def hook(machine, result) -> None:
        launches.append({
            "cycles": result.cycles,
            "instructions": result.instructions,
            "groups_dispatched": result.groups_dispatched,
            "memory_sha256": _sha256(machine.memory.data.tobytes()),
            "dcache": {
                "accesses": sum(c.dcache.stats.accesses
                                for c in machine.cores),
                "hits": sum(c.dcache.stats.hits for c in machine.cores),
                "misses": sum(c.dcache.stats.misses for c in machine.cores),
            },
            "dram": {
                "requests": machine.dram.stats.requests,
                "row_hits": machine.dram.stats.row_hits,
                "row_misses": machine.dram.stats.row_misses,
            },
            "stalls": {
                "lsu": sum(c.stats.lsu_stalls for c in machine.cores),
                "lsu_replays": sum(c.stats.lsu_replays
                                   for c in machine.cores),
                "scoreboard": sum(c.stats.scoreboard_stalls
                                  for c in machine.cores),
                "barrier_waits": sum(c.stats.barrier_waits
                                     for c in machine.cores),
            },
            "simt_instructions": sum(c.stats.simt_instructions
                                     for c in machine.cores),
            "printf": list(result.printf_output),
        })

    backend = VortexBackend(point.config(), launch_hook=hook)
    result = run_benchmark(point.benchmark, backend, scale=point.scale)
    if not result.ok:
        raise RuntimeError(
            f"golden point {point.name} failed on SimX: "
            f"{result.status}: {result.detail}"
        )
    outputs = {
        key: _sha256(np.ascontiguousarray(np.asarray(val)).tobytes())
        for key, val in sorted(result.outputs.items())
    }
    return {
        "version": DIGEST_VERSION,
        "point": point.name,
        "benchmark": point.benchmark,
        "scale": point.scale,
        "config": point.config().label() + ("+hbm" if point.hbm else ""),
        "total_cycles": result.total_cycles,
        "launches": launches,
        "outputs": outputs,
    }


def digest_path(point: GoldenPoint, directory: Path | None = None) -> Path:
    return (directory or GOLDEN_DIR) / f"{point.name}.json"


def load_digest(point: GoldenPoint,
                directory: Path | None = None) -> dict | None:
    path = digest_path(point, directory)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def write_digest(point: GoldenPoint, digest: dict,
                 directory: Path | None = None) -> Path:
    path = digest_path(point, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(digest, indent=1, sort_keys=True) + "\n")
    return path


def diff_digest(golden: dict, fresh: dict) -> list[str]:
    """Human-readable differences between two digests (empty == match).

    Walks both documents structurally so a mismatch names the exact
    counter that moved (``launches[0].dram.row_hits: 10 != 12``) instead
    of dumping two JSON blobs.
    """
    diffs: list[str] = []

    def walk(path: str, a, b) -> None:
        if isinstance(a, dict) and isinstance(b, dict):
            for key in sorted(set(a) | set(b)):
                walk(f"{path}.{key}" if path else str(key),
                     a.get(key), b.get(key))
        elif isinstance(a, list) and isinstance(b, list):
            if len(a) != len(b):
                diffs.append(f"{path}: length {len(a)} != {len(b)}")
                return
            for i, (x, y) in enumerate(zip(a, b)):
                walk(f"{path}[{i}]", x, y)
        elif a != b:
            diffs.append(f"{path}: {a!r} != {b!r}")

    walk("", golden, fresh)
    return diffs


@dataclass
class GoldenReport:
    checked: int = 0
    updated: int = 0
    missing: list[str] = None  # type: ignore[assignment]
    mismatched: dict = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.missing = [] if self.missing is None else self.missing
        self.mismatched = {} if self.mismatched is None else self.mismatched

    @property
    def ok(self) -> bool:
        return not self.missing and not self.mismatched

    def render(self) -> str:
        lines = [f"golden suite: {self.checked} point(s) checked"
                 + (f", {self.updated} written" if self.updated else "")]
        for name in self.missing:
            lines.append(f"  MISSING {name} (run `python -m repro golden "
                         f"--update`)")
        for name, diffs in self.mismatched.items():
            lines.append(f"  MISMATCH {name}:")
            lines.extend(f"    {d}" for d in diffs[:12])
            if len(diffs) > 12:
                lines.append(f"    ... and {len(diffs) - 12} more")
        if self.ok:
            lines.append("  all digests match")
        return "\n".join(lines)


def run_golden(update: bool = False, only: list[str] | None = None,
               directory: Path | None = None) -> GoldenReport:
    """Verify (or, with ``update=True``, regenerate) the golden suite."""
    report = GoldenReport()
    for point in golden_points():
        if only and point.benchmark not in only and point.name not in only:
            continue
        # Touch the registry early so a typo in ``only`` fails loudly.
        get_benchmark(point.benchmark)
        fresh = compute_digest(point)
        report.checked += 1
        if update:
            write_digest(point, fresh, directory)
            report.updated += 1
            continue
        golden = load_digest(point, directory)
        if golden is None:
            report.missing.append(point.name)
            continue
        diffs = diff_digest(golden, fresh)
        if diffs:
            report.mismatched[point.name] = diffs
    return report


__all__ = [
    "DIGEST_VERSION",
    "GOLDEN_DIR",
    "GoldenPoint",
    "GoldenReport",
    "compute_digest",
    "diff_digest",
    "digest_path",
    "golden_points",
    "load_digest",
    "run_golden",
    "write_digest",
]
