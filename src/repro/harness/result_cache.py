"""Content-addressed on-disk memoisation for experiment points.

Every experiment the harness runs — one cell of the Figure 7 sweep, one
Table I coverage row, one profiled benchmark run — is a deterministic
function of (benchmark, configuration, problem size, seed) *and of the
simulator code itself*. :class:`ResultCache` memoises such points on
disk keyed by a SHA-256 digest over a canonical JSON encoding of those
inputs plus a fingerprint of every ``repro`` source file, so

* repeated invocations of ``table1``/``fig7``/``profile`` return
  instantly from the cache, and
* any edit to the package source changes the fingerprint and therefore
  every key — stale entries are never *returned*; they are simply
  unreachable (and cheap to garbage-collect by deleting the directory).

Entries are plain JSON files named by their key under two-level fan-out
directories (``ab/ab12....json``), written atomically (temp file +
``os.replace``) so concurrent writers — the parallel experiment engine
runs points from several worker processes — can never expose a torn
entry. Corrupt or unreadable entries are treated as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

__all__ = ["MISS", "ResultCache", "code_fingerprint"]

#: Sentinel returned by :meth:`ResultCache.get` on a miss (``None`` is a
#: legitimate cached value).
MISS = object()

_fingerprint_cache: dict[str, str] = {}


def code_fingerprint() -> str:
    """SHA-256 over every ``*.py`` file of the installed ``repro`` package.

    Computed once per process; any source change (a new timing model, a
    cache bugfix) yields a new fingerprint and silently invalidates all
    previously cached results.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    key = str(root)
    cached = _fingerprint_cache.get(key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    fingerprint = digest.hexdigest()
    _fingerprint_cache[key] = fingerprint
    return fingerprint


def _canonical(value: Any) -> Any:
    """Reduce key parts to canonical JSON-able primitives.

    Dataclasses (``VortexConfig`` and friends) become sorted dicts,
    tuples become lists, so logically-equal inputs hash identically.
    """
    import dataclasses

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class ResultCache:
    """On-disk memo cache for experiment points.

    Parameters
    ----------
    root:
        Directory to store entries in (created on first write).
    fingerprint:
        Code fingerprint mixed into every key; defaults to
        :func:`code_fingerprint`. Tests override it to simulate source
        changes.
    """

    def __init__(self, root: str | Path, fingerprint: str | None = None):
        self.root = Path(root)
        self.fingerprint = (code_fingerprint() if fingerprint is None
                            else fingerprint)
        self.hits = 0
        self.misses = 0

    # -- keys --------------------------------------------------------------

    def key(self, **parts: Any) -> str:
        """Content-addressed key for one experiment point.

        ``parts`` name the inputs that determine the result (benchmark
        name, config, problem size, seed, ...); the code fingerprint is
        mixed in automatically.
        """
        payload = json.dumps(
            {"fingerprint": self.fingerprint, "parts": _canonical(parts)},
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- storage -----------------------------------------------------------

    def get(self, key: str) -> Any:
        """The cached JSON value for ``key``, or :data:`MISS`."""
        path = self._path(key)
        try:
            with path.open("r") as fh:
                value = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return MISS
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Atomically store a JSON-serialisable ``value`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        encoded = json.dumps(value)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(encoded)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- bookkeeping -------------------------------------------------------

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> None:
        for entry in self.root.glob("*/*.json"):
            try:
                entry.unlink()
            except OSError:
                pass
