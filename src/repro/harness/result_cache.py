"""Content-addressed on-disk memoisation for experiment points.

Every experiment the harness runs — one cell of the Figure 7 sweep, one
Table I coverage row, one profiled benchmark run — is a deterministic
function of (benchmark, configuration, problem size, seed) *and of the
simulator code itself*. :class:`ResultCache` memoises such points on
disk keyed by a SHA-256 digest over a canonical JSON encoding of those
inputs plus a fingerprint of every ``repro`` source file, so

* repeated invocations of ``table1``/``fig7``/``profile`` return
  instantly from the cache, and
* any edit to the package source changes the fingerprint and therefore
  every key — stale entries are never *returned*; they are simply
  unreachable (and cheap to garbage-collect by deleting the directory).

Entries are plain JSON files named by their key under two-level fan-out
directories (``ab/ab12....json``), written atomically (temp file +
``os.replace``) so concurrent writers — the parallel experiment engine
runs points from several worker processes — can never expose a torn
entry. Corrupt or unreadable entries are treated as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any

__all__ = ["MISS", "ResultCache", "code_fingerprint"]

#: Sentinel returned by :meth:`ResultCache.get` on a miss (``None`` is a
#: legitimate cached value).
MISS = object()

_fingerprint_cache: dict[str, str] = {}


def code_fingerprint() -> str:
    """SHA-256 over every ``*.py`` file of the installed ``repro`` package.

    Computed once per process; any source change (a new timing model, a
    cache bugfix) yields a new fingerprint and silently invalidates all
    previously cached results.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    key = str(root)
    cached = _fingerprint_cache.get(key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    fingerprint = digest.hexdigest()
    _fingerprint_cache[key] = fingerprint
    return fingerprint


def _canonical(value: Any) -> Any:
    """Reduce key parts to canonical JSON-able primitives.

    Dataclasses (``VortexConfig`` and friends) become sorted dicts,
    tuples become lists, so logically-equal inputs hash identically.
    """
    import dataclasses

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class ResultCache:
    """On-disk memo cache for experiment points.

    Parameters
    ----------
    root:
        Directory to store entries in (created on first write).
    fingerprint:
        Code fingerprint mixed into every key; defaults to
        :func:`code_fingerprint`. Tests override it to simulate source
        changes.
    durable:
        ``True`` fsyncs every entry to disk before the atomic rename —
        a ``kill -9`` can then never lose a committed entry (the
        experiment-service daemon turns this on; the default ``False``
        keeps batch runs fast and still crash-*consistent*, just not
        crash-*durable* for the very last writes).

    A crashed writer (``kill -9`` between ``mkstemp`` and
    ``os.replace``) leaves an orphaned ``*.tmp`` file behind;
    :meth:`vacuum` garbage-collects those, and construction sweeps any
    orphan older than :data:`TMP_GC_AGE_S` (old enough that no live
    writer can still own it).
    """

    #: age (seconds) past which an orphaned ``*.tmp`` is fair game for
    #: the constructor's sweep — generous, so a slow concurrent writer
    #: mid-``put`` is never robbed of its temp file.
    TMP_GC_AGE_S = 3600.0

    def __init__(self, root: str | Path, fingerprint: str | None = None,
                 durable: bool = False):
        self.root = Path(root)
        self.fingerprint = (code_fingerprint() if fingerprint is None
                            else fingerprint)
        self.durable = durable
        self.hits = 0
        self.misses = 0
        if self.root.is_dir():
            self.vacuum(self.TMP_GC_AGE_S)

    # -- keys --------------------------------------------------------------

    def key(self, **parts: Any) -> str:
        """Content-addressed key for one experiment point.

        ``parts`` name the inputs that determine the result (benchmark
        name, config, problem size, seed, ...); the code fingerprint is
        mixed in automatically.
        """
        payload = json.dumps(
            {"fingerprint": self.fingerprint, "parts": _canonical(parts)},
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- storage -----------------------------------------------------------

    def get(self, key: str) -> Any:
        """The cached JSON value for ``key``, or :data:`MISS`."""
        path = self._path(key)
        try:
            with path.open("r") as fh:
                value = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return MISS
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Atomically store a JSON-serialisable ``value`` under ``key``.

        The temp file is unlinked on *every* path that does not commit
        it (encoding error, full disk, interrupt), so failed writes can
        never accumulate orphans — only a hard process kill can, and
        :meth:`vacuum` reaps those.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        encoded = json.dumps(value)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        committed = False
        try:
            try:
                fh = os.fdopen(fd, "w")
            except BaseException:
                os.close(fd)
                raise
            with fh:
                fh.write(encoded)
                if self.durable:
                    fh.flush()
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
            committed = True
        finally:
            if not committed:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    # -- bookkeeping -------------------------------------------------------

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> None:
        for entry in self.root.glob("*/*.json"):
            try:
                entry.unlink()
            except OSError:
                pass

    def vacuum(self, max_age_s: float = 0.0) -> int:
        """Reap orphaned ``*.tmp`` files left by crashed writers.

        Only temp files whose mtime is at least ``max_age_s`` seconds
        old are removed (``0`` reaps everything — safe when the caller
        knows no writer is live, e.g. the service daemon at startup).
        Returns the number of files removed.
        """
        if not self.root.is_dir():
            return 0
        removed = 0
        now = time.time()
        for tmp in self.root.glob("*/*.tmp"):
            try:
                if now - tmp.stat().st_mtime >= max_age_s:
                    tmp.unlink()
                    removed += 1
            except OSError:
                continue
        return removed
