"""Experiment E3 — Figure 7: Vortex warp/thread configuration sweep.

Runs vecadd and transpose on the SimX model with 4 cores and every
(warps, threads) combination in {2,4,8,16}^2, normalizing cycles to the
per-benchmark minimum — the paper's heatmap. Work-group sizes adapt to
the configuration (PoCL clamps the group size to what the device
supports), exactly as a real launch would.

The paper's quoted shape: vecadd reaches its optimum at 4 warps / 4
threads and degrades ~27% at 8/8 and ~11% at 8 warps / 4 threads (more
LSU stalls from its higher load density); transpose peaks at 8/8 and
loses ~44% at 4/4 and ~17% at 8 warps / 4 threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..benchmarks import get_benchmark
from ..ocl import Context
from ..profiling import NULL_PROFILER, Profiler
from ..vortex import VortexBackend, VortexConfig
from .tables import render_heatmap, render_table

WARP_SIZES = (2, 4, 8, 16)
THREAD_SIZES = (2, 4, 8, 16)

#: Ratios quoted in §III-C, relative to each benchmark's optimum.
PAPER_FIG7 = {
    "vecadd": {"best": (4, 4), (8, 8): 1.27, (8, 4): 1.11},
    "transpose": {"best": (8, 8), (4, 4): 1.44, (8, 4): 1.17},
}


@dataclass
class SweepResult:
    benchmark: str
    cycles: dict[tuple[int, int], int] = field(default_factory=dict)
    #: LSU stalls: loads bounced off full MSHRs (replays).
    lsu_stalls: dict[tuple[int, int], int] = field(default_factory=dict)

    @property
    def best(self) -> tuple[int, int]:
        return min(self.cycles, key=self.cycles.get)

    def normalized(self) -> dict[tuple[int, int], float]:
        floor = self.cycles[self.best]
        return {k: v / floor for k, v in self.cycles.items()}

    def ratio(self, warps: int, threads: int) -> float:
        return self.cycles[(warps, threads)] / self.cycles[self.best]

    def render(self) -> str:
        return render_heatmap(
            self.normalized(),
            title=(f"Figure 7 ({self.benchmark}): normalized cycles, "
                   f"4 cores (best = {self.best})"),
        )


def _launch_vecadd(config: VortexConfig, n: int,
                   profiler: Profiler = NULL_PROFILER) -> "tuple[int, int]":
    bench = get_benchmark("vecadd")
    ctx = Context(VortexBackend(config, profiler=profiler))
    prog = ctx.program(bench.build())
    rng = np.random.default_rng(0)
    a = ctx.buffer(rng.random(n, dtype=np.float32))
    b = ctx.buffer(rng.random(n, dtype=np.float32))
    c = ctx.alloc(n)
    local = min(16, config.warps * config.threads)
    stats = prog.launch("vecadd", [a, b, c, n], n, local)
    return stats.cycles, stats.extra.get("lsu_replays", 0)


def _launch_transpose(config: VortexConfig, dim: int,
                      profiler: Profiler = NULL_PROFILER) -> "tuple[int, int]":
    bench = get_benchmark("transpose")
    ctx = Context(VortexBackend(config, profiler=profiler))
    prog = ctx.program(bench.build())
    rng = np.random.default_rng(0)
    src = ctx.buffer(rng.random(dim * dim, dtype=np.float32))
    dst = ctx.alloc(dim * dim)
    cap = config.warps * config.threads
    lx = min(4, cap)
    ly = max(1, min(4, cap // lx))
    stats = prog.launch("transpose", [src, dst, dim, dim],
                        (dim, dim), (lx, ly))
    return stats.cycles, stats.extra.get("lsu_replays", 0)


def run_sweep(
    benchmark: str = "vecadd",
    cores: int = 4,
    n: int = 4096,
    warp_sizes: tuple[int, ...] = WARP_SIZES,
    thread_sizes: tuple[int, ...] = THREAD_SIZES,
    base_config: VortexConfig | None = None,
    profile_dir: str | Path | None = None,
) -> SweepResult:
    """Sweep one benchmark over the (warps, threads) grid.

    When ``profile_dir`` is given, every configuration runs under its own
    :class:`~repro.profiling.Profiler` and its Chrome trace plus summary
    JSON land in that directory (``<bench>_w<warps>_t<threads>.*``), so
    any cell of the Figure 7 heatmap can be inspected cycle by cycle.
    """
    if benchmark not in ("vecadd", "transpose"):
        raise ValueError("the Figure 7 sweep covers vecadd and transpose")
    base = base_config or VortexConfig()
    result = SweepResult(benchmark=benchmark)
    if profile_dir is not None:
        profile_dir = Path(profile_dir)
        profile_dir.mkdir(parents=True, exist_ok=True)
    for w in warp_sizes:
        for t in thread_sizes:
            config = base.with_geometry(cores=cores, warps=w, threads=t)
            profiler = NULL_PROFILER if profile_dir is None else Profiler()
            if benchmark == "vecadd":
                cycles, stalls = _launch_vecadd(config, n, profiler)
            else:
                dim = int(round(n ** 0.5))
                dim -= dim % 16
                cycles, stalls = _launch_transpose(
                    config, max(dim, 16), profiler)
            result.cycles[(w, t)] = cycles
            result.lsu_stalls[(w, t)] = stalls
            if profile_dir is not None:
                report = profiler.report(
                    title=f"{benchmark} w={w} t={t}", backend="simx")
                stem = profile_dir / f"{benchmark}_w{w}_t{t}"
                report.save_chrome_trace(stem.with_suffix(".trace.json"))
                report.save_json(stem.with_suffix(".json"))
    return result


def render_comparison(results: list[SweepResult]) -> str:
    """Side-by-side measured-vs-paper ratio table."""
    rows = []
    for res in results:
        paper = PAPER_FIG7[res.benchmark]
        rows.append([
            res.benchmark,
            f"{res.best}",
            f"{paper['best']}",
            f"{res.ratio(8, 8):.2f} / {paper.get((8, 8), float('nan')):.2f}"
            if res.benchmark == "vecadd" else
            f"{res.ratio(4, 4):.2f} / {paper.get((4, 4), float('nan')):.2f}",
            f"{res.ratio(8, 4):.2f} / {paper.get((8, 4), float('nan')):.2f}",
        ])
    return render_table(
        ["benchmark", "best (measured)", "best (paper)",
         "suboptimal ratio (meas/paper)", "8w4t ratio (meas/paper)"],
        rows,
        title="Figure 7 sweep vs paper",
    )
