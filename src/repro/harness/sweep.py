"""Experiment E3 — Figure 7: Vortex warp/thread configuration sweep.

Runs vecadd and transpose on the SimX model with 4 cores and every
(warps, threads) combination in {2,4,8,16}^2, normalizing cycles to the
per-benchmark minimum — the paper's heatmap. Work-group sizes adapt to
the configuration (PoCL clamps the group size to what the device
supports), exactly as a real launch would.

The paper's quoted shape: vecadd reaches its optimum at 4 warps / 4
threads and degrades ~27% at 8/8 and ~11% at 8 warps / 4 threads (more
LSU stalls from its higher load density); transpose peaks at 8/8 and
loses ~44% at 4/4 and ~17% at 8 warps / 4 threads.

The grid is embarrassingly parallel: each cell is an independent SimX
run, so ``run_sweep(jobs=N)`` fans the cells across the
:class:`~repro.harness.engine.ExperimentEngine`'s worker pool, and
``cache=`` memoises each cell on disk keyed by (benchmark, config,
problem size, seed, code fingerprint).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..benchmarks import get_benchmark
from ..errors import PointFailure, ReproError
from ..ocl import Context
from ..profiling import NULL_PROFILER, Profiler
from ..vortex import VortexBackend, VortexConfig
from .engine import EngineStats, ExperimentEngine
from .result_cache import ResultCache
from .tables import render_heatmap, render_table

WARP_SIZES = (2, 4, 8, 16)
THREAD_SIZES = (2, 4, 8, 16)

#: the deterministic workload seed every cell uses.
SWEEP_SEED = 0

#: Ratios quoted in §III-C, relative to each benchmark's optimum.
PAPER_FIG7 = {
    "vecadd": {"best": (4, 4), (8, 8): 1.27, (8, 4): 1.11},
    "transpose": {"best": (8, 8), (4, 4): 1.44, (8, 4): 1.17},
}


@dataclass
class SweepResult:
    benchmark: str
    cycles: dict[tuple[int, int], int] = field(default_factory=dict)
    #: LSU stalls: loads bounced off full MSHRs (replays).
    lsu_stalls: dict[tuple[int, int], int] = field(default_factory=dict)
    #: cells whose point failed (after retries) under ``keep_going``.
    failures: dict[tuple[int, int], PointFailure] = field(
        default_factory=dict)
    #: execution/cache bookkeeping from the engine that ran the grid.
    engine_stats: EngineStats | None = None

    @property
    def best(self) -> tuple[int, int]:
        if not self.cycles:
            raise ReproError(
                f"every cell of the {self.benchmark} sweep failed "
                f"({len(self.failures)} failures) — no best configuration"
            )
        return min(self.cycles, key=self.cycles.get)

    def normalized(self) -> dict[tuple[int, int], float]:
        floor = self.cycles[self.best]
        return {k: v / floor for k, v in self.cycles.items()}

    def ratio(self, warps: int, threads: int) -> float:
        """Cycles at (warps, threads) relative to the sweep's best cell.

        NaN when the sweep did not cover that cell (custom
        ``warp_sizes``/``thread_sizes`` grids), so renderers can show
        ``-`` instead of crashing on the paper's quoted cells.
        """
        cycles = self.cycles.get((warps, threads))
        if cycles is None:
            return float("nan")
        return cycles / self.cycles[self.best]

    def render(self) -> str:
        if self.cycles:
            body = render_heatmap(
                self.normalized(),
                title=(f"Figure 7 ({self.benchmark}): normalized cycles, "
                       f"4 cores (best = {self.best})"),
            )
        else:
            body = (f"Figure 7 ({self.benchmark}): all "
                    f"{len(self.failures)} cells failed")
        if not self.failures:
            return body
        lines = [body, f"{len(self.failures)} cell(s) failed:"]
        for (w, t), failure in sorted(self.failures.items()):
            lines.append(f"  w={w} t={t}: {failure.brief()}")
        return "\n".join(lines)


def _launch_vecadd(config: VortexConfig, n: int,
                   profiler: Profiler = NULL_PROFILER,
                   checkpoint=None) -> "tuple[int, int]":
    bench = get_benchmark("vecadd")
    ctx = Context(VortexBackend(config, profiler=profiler,
                                checkpoint=checkpoint))
    prog = ctx.program(bench.build())
    rng = np.random.default_rng(SWEEP_SEED)
    a = ctx.buffer(rng.random(n, dtype=np.float32))
    b = ctx.buffer(rng.random(n, dtype=np.float32))
    c = ctx.alloc(n)
    local = min(16, config.warps * config.threads)
    stats = prog.launch("vecadd", [a, b, c, n], n, local)
    return stats.cycles, stats.extra.get("lsu_replays", 0)


def _launch_transpose(config: VortexConfig, dim: int,
                      profiler: Profiler = NULL_PROFILER,
                      checkpoint=None) -> "tuple[int, int]":
    bench = get_benchmark("transpose")
    ctx = Context(VortexBackend(config, profiler=profiler,
                                checkpoint=checkpoint))
    prog = ctx.program(bench.build())
    rng = np.random.default_rng(SWEEP_SEED)
    src = ctx.buffer(rng.random(dim * dim, dtype=np.float32))
    dst = ctx.alloc(dim * dim)
    cap = config.warps * config.threads
    lx = min(4, cap)
    ly = max(1, min(4, cap // lx))
    stats = prog.launch("transpose", [src, dst, dim, dim],
                        (dim, dim), (lx, ly))
    return stats.cycles, stats.extra.get("lsu_replays", 0)


def sweep_point(benchmark: str, config: VortexConfig, n: int,
                profile: bool = False, checkpoint: dict | None = None
                ) -> dict:
    """One grid cell — the engine's (picklable, module-level) unit of work.

    Returns ``{"cycles", "lsu_stalls"}`` plus, when ``profile`` is set, a
    ``"report"`` :class:`~repro.profiling.ProfileReport` recorded by a
    profiler private to this point (per-worker profiling: each parallel
    worker builds its own profiler and ships the report back, so the
    collected traces are identical to a serial run's).

    ``checkpoint`` is the engine's picklable checkpoint spec (see
    :meth:`~repro.vortex.simx.checkpoint.CheckpointPlan.from_spec`);
    the point then snapshots/resumes mid-simulation and may raise
    :class:`~repro.errors.SimulationPreempted` past its deadline. The
    result payload is unaffected — cache keys and cached values stay
    byte-identical to an uncheckpointed run. Profiled points ignore it
    (sampler state is not snapshotted; profiled runs bypass the cache
    anyway).
    """
    profiler = Profiler() if profile else NULL_PROFILER
    plan = None
    if checkpoint is not None and not profile:
        from ..vortex.simx.checkpoint import CheckpointPlan
        plan = CheckpointPlan.from_spec(checkpoint)
    if benchmark == "vecadd":
        cycles, stalls = _launch_vecadd(config, n, profiler, plan)
    else:
        dim = int(round(n ** 0.5))
        dim -= dim % 16
        cycles, stalls = _launch_transpose(config, max(dim, 16), profiler,
                                           plan)
    result = {"cycles": cycles, "lsu_stalls": stalls}
    if profile:
        result["report"] = profiler.report(
            title=f"{benchmark} w={config.warps} t={config.threads}",
            backend="simx")
    return result


def run_sweep(
    benchmark: str = "vecadd",
    cores: int = 4,
    n: int = 4096,
    warp_sizes: tuple[int, ...] = WARP_SIZES,
    thread_sizes: tuple[int, ...] = THREAD_SIZES,
    base_config: VortexConfig | None = None,
    profile_dir: str | Path | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    engine: ExperimentEngine | None = None,
    retries: int = 0,
    point_timeout: float | None = None,
    keep_going: bool = False,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every: int | None = None,
) -> SweepResult:
    """Sweep one benchmark over the (warps, threads) grid.

    When ``profile_dir`` is given, every configuration runs under its own
    :class:`~repro.profiling.Profiler` and its Chrome trace plus summary
    JSON land in that directory (``<bench>_w<warps>_t<threads>.*``), so
    any cell of the Figure 7 heatmap can be inspected cycle by cycle.

    ``jobs`` fans the grid cells across worker processes and ``cache``
    memoises them on disk; both default to the serial, uncached
    behaviour. Profiled runs bypass the cache — the traces are the
    point, and they must be regenerated. Passing ``engine`` reuses an
    existing :class:`ExperimentEngine` (its stats accumulate across
    sweeps, and its fault-tolerance policy applies).

    ``retries``/``point_timeout``/``keep_going`` configure the engine's
    fault-tolerance policy when the sweep owns the engine: under
    ``keep_going`` a cell whose point fails (after retries) lands in
    :attr:`SweepResult.failures` and renders as an ``ERROR(...)`` line
    instead of aborting the whole grid.

    ``checkpoint_dir`` makes every (non-profiled) cell preemptible:
    workers snapshot machine state every ``checkpoint_every`` simulated
    cycles (default ``DEFAULT_EVERY_CYCLES``), retries resume from the
    latest snapshot, and when ``point_timeout`` is also set each cell
    yields a snapshot at 80% of the budget instead of waiting for the
    watchdog kill (which stays armed as the hard fallback). Cache keys
    and cached values are unchanged by checkpointing.
    """
    if benchmark not in ("vecadd", "transpose"):
        raise ValueError("the Figure 7 sweep covers vecadd and transpose")
    base = base_config or VortexConfig()
    profile = profile_dir is not None
    if profile:
        profile_dir = Path(profile_dir)
        profile_dir.mkdir(parents=True, exist_ok=True)
    owns_engine = engine is None
    if owns_engine:
        engine = ExperimentEngine(jobs=jobs,
                                  cache=None if profile else cache,
                                  retries=retries,
                                  point_timeout=point_timeout,
                                  keep_going=keep_going)

    checkpointing = checkpoint_dir is not None and not profile
    deadline_s = None
    if checkpointing:
        from ..vortex.simx.checkpoint import CheckpointStore
        # mkdir up front + sweep orphaned tmp files from crashed runs
        # (the ResultCache.vacuum discipline, at engine startup).
        CheckpointStore(str(checkpoint_dir), sweep_age_s=0.0)
        budget = (point_timeout if owns_engine
                  else getattr(engine, "point_timeout", None))
        if budget:
            deadline_s = budget * 0.8

    grid = [(w, t) for w in warp_sizes for t in thread_sizes]
    points = []
    keys: list[str | None] = []
    for w, t in grid:
        config = base.with_geometry(cores=cores, warps=w, threads=t)
        ckpt = None
        if checkpointing:
            ckpt = {
                "dir": str(checkpoint_dir),
                "point_id": (f"fig7-{benchmark}-c{cores}"
                             f"-w{w}-t{t}-n{n}"),
                "every": checkpoint_every,
                "deadline_s": deadline_s,
            }
        points.append((benchmark, config, n, profile, ckpt))
        keys.append(
            None if engine.cache is None or profile
            else engine.cache.key(
                kind="fig7-cell", benchmark=benchmark, config=config,
                n=n, seed=SWEEP_SEED,
            )
        )
    try:
        values = engine.run(sweep_point, points, keys=keys,
                            label=f"fig7 {benchmark}")
    finally:
        if owns_engine:
            engine.close()

    result = SweepResult(benchmark=benchmark, engine_stats=engine.stats)
    for (w, t), value in zip(grid, values):
        if isinstance(value, PointFailure):
            result.failures[(w, t)] = value
            continue
        result.cycles[(w, t)] = value["cycles"]
        result.lsu_stalls[(w, t)] = value["lsu_stalls"]
        if profile:
            stem = profile_dir / f"{benchmark}_w{w}_t{t}"
            report = value["report"]
            report.save_chrome_trace(stem.with_suffix(".trace.json"))
            report.save_json(stem.with_suffix(".json"))
    return result


def _ratio_cell(measured: float, paper: float) -> str:
    meas = "-" if math.isnan(measured) else f"{measured:.2f}"
    ref = "-" if math.isnan(paper) else f"{paper:.2f}"
    return f"{meas} / {ref}"


def render_comparison(results: list[SweepResult]) -> str:
    """Side-by-side measured-vs-paper ratio table.

    Cells the sweep did not cover (custom grids) render as ``-``.
    """
    rows = []
    for res in results:
        paper = PAPER_FIG7[res.benchmark]
        subopt = (8, 8) if res.benchmark == "vecadd" else (4, 4)
        if not res.cycles:  # every cell failed: nothing to compare
            rows.append([res.benchmark, "ERROR", f"{paper['best']}",
                         "-", "-"])
            continue
        rows.append([
            res.benchmark,
            f"{res.best}",
            f"{paper['best']}",
            _ratio_cell(res.ratio(*subopt),
                        paper.get(subopt, float("nan"))),
            _ratio_cell(res.ratio(8, 4), paper.get((8, 4), float("nan"))),
        ])
    return render_table(
        ["benchmark", "best (measured)", "best (paper)",
         "suboptimal ratio (meas/paper)", "8w4t ratio (meas/paper)"],
        rows,
        title="Figure 7 sweep vs paper",
    )
