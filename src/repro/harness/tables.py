"""ASCII rendering helpers shared by the experiment harnesses."""

from __future__ import annotations


def render_table(
    header: list[str], rows: list[list[str]], title: str = ""
) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def fmt(cells: list[str]) -> str:
        return " | ".join(
            str(c).ljust(w) if i == 0 else str(c).rjust(w)
            for i, (c, w) in enumerate(zip(cells, widths))
        )

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(fmt(header))
    out.append(sep)
    out.extend(fmt(r) for r in rows)
    return "\n".join(out)


def render_heatmap(
    values: dict[tuple[int, int], float],
    row_label: str = "warps",
    col_label: str = "threads",
    title: str = "",
    shades: str = " .:-=+*#%@",
) -> str:
    """Render a Figure 7-style normalized-cycles heatmap.

    ``values`` maps (row, col) -> normalized cycles (1.0 = best). Light
    characters mean fewer cycles, matching the paper's colour scale.
    A grid hole (a cell whose point failed and was dropped from
    ``values``) renders as ``ERROR``.
    """
    rows = sorted({r for r, _ in values})
    cols = sorted({c for _, c in values})
    vmax = max(values.values())
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{row_label} \\ {col_label}: " + ", ".join(map(str, cols)))
    header = [""] + [str(c) for c in cols]
    body = []
    for r in rows:
        cells = [f"{row_label[0]}={r}"]
        for c in cols:
            v = values.get((r, c))
            if v is None:
                cells.append("ERROR")
                continue
            # Normalise into the shade ramp (1.0 -> lightest).
            frac = 0.0 if vmax <= 1.0 else (v - 1.0) / (vmax - 1.0)
            shade = shades[min(len(shades) - 1, int(frac * (len(shades) - 1)))]
            cells.append(f"{v:5.2f}{shade}")
        body.append(cells)
    lines.append(render_table(header, body))
    return "\n".join(lines)
