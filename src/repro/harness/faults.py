"""Deterministic, seed-addressable fault injection for the engine.

The fault-tolerance claims of the experiment engine (retries recover
transient faults, a killed worker respawns the pool, a hung point is
cancelled by the watchdog, an interrupted sweep resumes from the cache)
are only claims until something actually injects those faults. This
module is the injector: a *fault plan* is parsed from the
``REPRO_FAULT_PLAN`` environment variable — which spawned worker
processes inherit, so the same plan reaches every execution mode — and
:func:`maybe_fault` is called by the engine at the top of every point
attempt with a stable *site* name (``"<label>#<index>"``).

A plan is a semicolon-separated list of specs::

    kind:match[:times[:arg]]

* ``kind`` — ``raise`` (raise :class:`FaultInjected`), ``sleep``
  (sleep ``arg`` seconds, then run the point — drives the watchdog
  timeout), or ``kill`` (``os._exit`` the worker process — drives
  ``BrokenProcessPool`` recovery; raises instead when running inline).
* ``match`` — substring matched against the site name, e.g.
  ``"fig7 vecadd#2"`` addresses exactly one grid cell.
* ``times`` — fire at most this many times (default 1). Firings are
  counted in the ``REPRO_FAULT_STATE`` directory via atomic
  ``O_CREAT|O_EXCL`` file creation, so the budget is shared across
  *all* worker processes and a ``times=1`` fault fires exactly once no
  matter how the points are scheduled — which is what makes serial and
  parallel runs of the same plan produce identical results.
* ``arg`` — sleep duration for ``sleep``, extra message for ``raise``.

Without ``REPRO_FAULT_STATE`` the firing counters are per-process
(fine for serial runs and unit tests; parallel runs should set it).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from ..errors import ReproError

__all__ = [
    "FAULT_PLAN_ENV",
    "FAULT_STATE_ENV",
    "FaultInjected",
    "FaultSpec",
    "corrupt_cache_entry",
    "corrupt_checkpoint",
    "maybe_fault",
    "parse_plan",
]

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"
FAULT_STATE_ENV = "REPRO_FAULT_STATE"

KINDS = ("raise", "sleep", "kill")

#: exit code of a ``kill`` fault, distinguishable from a real crash.
KILL_EXIT_CODE = 86


class FaultInjected(ReproError):
    """Raised by an injected ``raise`` (or inline ``kill``) fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``kind:match[:times[:arg]]`` fault."""

    kind: str
    match: str
    times: int = 1
    arg: str = ""


def parse_plan(text: str) -> list[FaultSpec]:
    """Parse a ``REPRO_FAULT_PLAN`` value into :class:`FaultSpec` s."""
    specs: list[FaultSpec] = []
    for chunk in text.split(";"):
        if not chunk.strip():
            continue
        parts = chunk.split(":", 3)
        if len(parts) < 2:
            raise ValueError(
                f"bad fault spec {chunk!r} (want kind:match[:times[:arg]])"
            )
        kind = parts[0].strip()
        if kind not in KINDS:
            raise ValueError(
                f"bad fault kind {kind!r} (choose from {KINDS})")
        times = 1
        if len(parts) > 2 and parts[2].strip():
            times = int(parts[2])
        arg = parts[3] if len(parts) > 3 else ""
        specs.append(FaultSpec(kind=kind, match=parts[1], times=times,
                               arg=arg))
    return specs


_plan_cache: tuple[str, list[FaultSpec]] | None = None
_local_counts: dict[int, int] = {}


def _active_plan(text: str) -> list[FaultSpec]:
    global _plan_cache
    if _plan_cache is None or _plan_cache[0] != text:
        _plan_cache = (text, parse_plan(text))
    return _plan_cache[1]


def _claim_firing(state_dir: str, index: int, times: int) -> bool:
    """Atomically claim one of the spec's ``times`` firings.

    With a state directory the claim is an ``O_CREAT|O_EXCL`` file
    creation — atomic across processes, so concurrent workers can never
    over-fire a budgeted fault. Without one, a per-process counter.
    """
    if not state_dir:
        count = _local_counts.get(index, 0)
        if count >= times:
            return False
        _local_counts[index] = count + 1
        return True
    os.makedirs(state_dir, exist_ok=True)
    for k in range(times):
        path = os.path.join(state_dir, f"fault{index}.{k}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        return True
    return False


def maybe_fault(site: str) -> None:
    """Fire any planned fault whose ``match`` occurs in ``site``.

    Called by the engine's point wrapper at the top of every attempt,
    in the worker process (parallel) or inline (serial); a no-op unless
    ``REPRO_FAULT_PLAN`` is set.
    """
    text = os.environ.get(FAULT_PLAN_ENV, "")
    if not text:
        return
    state_dir = os.environ.get(FAULT_STATE_ENV, "")
    for index, spec in enumerate(_active_plan(text)):
        if spec.match not in site:
            continue
        if not _claim_firing(state_dir, index, spec.times):
            continue
        _fire(spec, site)


def _fire(spec: FaultSpec, site: str) -> None:
    if spec.kind == "sleep":
        time.sleep(float(spec.arg or 0.2))
        return
    if spec.kind == "kill":
        import multiprocessing

        if multiprocessing.parent_process() is not None:
            os._exit(KILL_EXIT_CODE)
        raise FaultInjected(
            f"injected worker kill at {site} "
            f"(inline mode raises instead of exiting)"
        )
    detail = f": {spec.arg}" if spec.arg else ""
    raise FaultInjected(f"injected fault at {site}{detail}")


def corrupt_cache_entry(cache, key: str) -> None:
    """Overwrite a result-cache entry with bytes that cannot parse.

    Models on-disk corruption (torn write, bit rot) of a memoised
    point; :meth:`~repro.harness.result_cache.ResultCache.get` must
    treat the entry as a miss and the engine must re-execute and heal
    it.
    """
    path = cache._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{corrupt-cache-entry")


def corrupt_checkpoint(store, point_id: str) -> None:
    """Garble a simulation snapshot's payload in place.

    The header (magic, version, fingerprint, payload digest) is kept
    intact so the corruption is only detectable by the payload
    checksum — exactly the torn-write case
    :meth:`~repro.vortex.simx.checkpoint.CheckpointStore.load` must
    catch, drop, and count, degrading the resume to a clean re-run.
    """
    path = store.path(point_id)
    with open(path, "rb") as fh:
        blob = fh.read()
    header_end = blob.index(b"\n") + 1
    body = bytearray(blob[header_end:])
    if not body:
        body = bytearray(b"\x00")
    body[len(body) // 2] ^= 0xFF
    with open(path, "wb") as fh:
        fh.write(blob[:header_end])
        fh.write(bytes(body))
