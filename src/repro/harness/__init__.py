"""Experiment harnesses: one module per table/figure of the paper.

* :mod:`repro.harness.coverage` — Table I (benchmark coverage),
* :mod:`repro.harness.case_study` — Table II / Fig. 6 (backprop O1/O2),
* :mod:`repro.harness.area_tables` — Tables III and IV (area reports),
* :mod:`repro.harness.sweep` — Figure 7 (warp/thread sweep on SimX),
* :mod:`repro.harness.profile` — unified per-benchmark profiling
  (``python -m repro profile``).
"""

from .area_tables import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    Table3Report,
    Table4Report,
    run_table3,
    run_table4,
)
from .case_study import (
    PAPER_TABLE2,
    CaseStudyReport,
    run_auto_cse_ablation,
    run_case_study,
)
from ..errors import ExperimentAborted, PointFailure
from .coverage import PAPER_TABLE1, CoverageReport, run_coverage
from .dse import (
    Candidate,
    DSEResult,
    dse_confirm_point,
    explore_design_space,
    launch_rejection,
    pareto_frontier,
    run_dse,
    workload_rejection,
)
from .engine import (
    EngineStats,
    ExperimentEngine,
    close_all_engines,
    resolve_jobs,
)
from .faults import (
    FAULT_PLAN_ENV,
    FAULT_STATE_ENV,
    FaultInjected,
    FaultSpec,
    corrupt_cache_entry,
    maybe_fault,
    parse_plan,
)
from .profile import (
    PROFILE_BACKENDS,
    make_profiled_backend,
    run_profile,
    run_profile_cached,
)
from .golden import GoldenPoint, GoldenReport, golden_points, run_golden
from .result_cache import ResultCache, code_fingerprint
from .sweep import PAPER_FIG7, SweepResult, render_comparison, run_sweep
from .tables import render_heatmap, render_table

__all__ = [
    "CaseStudyReport",
    "Candidate",
    "CoverageReport",
    "DSEResult",
    "EngineStats",
    "ExperimentAborted",
    "ExperimentEngine",
    "FAULT_PLAN_ENV",
    "FAULT_STATE_ENV",
    "FaultInjected",
    "FaultSpec",
    "GoldenPoint",
    "GoldenReport",
    "PointFailure",
    "ResultCache",
    "close_all_engines",
    "corrupt_cache_entry",
    "maybe_fault",
    "parse_plan",
    "code_fingerprint",
    "resolve_jobs",
    "run_profile_cached",
    "golden_points",
    "run_golden",
    "PAPER_FIG7",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PROFILE_BACKENDS",
    "SweepResult",
    "Table3Report",
    "Table4Report",
    "dse_confirm_point",
    "launch_rejection",
    "explore_design_space",
    "make_profiled_backend",
    "pareto_frontier",
    "run_dse",
    "workload_rejection",
    "render_comparison",
    "render_heatmap",
    "render_table",
    "run_auto_cse_ablation",
    "run_case_study",
    "run_coverage",
    "run_profile",
    "run_sweep",
    "run_table3",
    "run_table4",
]
