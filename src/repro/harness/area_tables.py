"""Experiments E4 and E5 — Tables III and IV: synthesis area reports.

Table III: per-benchmark HLS areas (the application *is* the hardware).
Table IV: per-configuration Vortex areas (the hardware is fixed; any
application runs on it) — the paper's structural contrast in §III-D.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..benchmarks import get_benchmark
from ..hls import AreaReport, aoc
from ..vortex import VortexConfig
from ..vortex.area import VortexAreaReport, estimate as vortex_estimate
from .tables import render_table

#: Paper Table III rows: benchmark -> (ALUTs, FFs, BRAMs, DSPs).
PAPER_TABLE3 = {
    "Vecadd": (83_792, 263_632, 1_065, 1),
    "Matmul": (250_218, 415_893, 2_696, 5),
    "Gauss": (537_571, 1_174_446, 6_384, 10),
    "BFS": (256_690, 1_172_664, 5_892, 6),
}

_TABLE3_BENCHMARKS = {
    "Vecadd": "vecadd",
    "Matmul": "matmul",
    "Gauss": "gaussian",
    "BFS": "bfs",
}

#: Paper Table IV rows: (C, W, T) -> (ALUTs, FFs, BRAMs, DSPs).
PAPER_TABLE4 = {
    (2, 4, 16): (332_143, 459_349, 1_275, 896),
    (2, 8, 16): (336_568, 459_353, 1_299, 896),
    (2, 16, 16): (341_134, 478_735, 1_299, 896),
    (4, 8, 16): (617_748, 793_976, 2_235, 1_792),
    (4, 16, 16): (626_688, 827_757, 2_235, 1_792),
}


@dataclass
class Table3Report:
    rows: dict[str, AreaReport]

    def render(self) -> str:
        body = []
        for name, area in self.rows.items():
            r = area.as_row()
            paper = PAPER_TABLE3[name]
            body.append([
                name, f"{r['ALUTs']:,}", f"{r['FFs']:,}",
                f"{r['BRAMs']:,}", f"{r['DSPs']:,}", f"{paper[2]:,}",
            ])
        return render_table(
            ["Benchmark name", "ALUTs", "FFs", "BRAMs", "DSPs",
             "paper BRAMs"],
            body,
            title="Table III: Synthesis area report (Intel HLS model)",
        )


def run_table3() -> Table3Report:
    rows = {}
    for label, module in _TABLE3_BENCHMARKS.items():
        bench = get_benchmark(module)
        rows[label] = aoc(bench.build(), enforce_capacity=False)
    return Table3Report(rows=rows)


@dataclass
class Table4Report:
    rows: dict[tuple[int, int, int], VortexAreaReport]

    def render(self) -> str:
        body = []
        for (c, w, t), report in self.rows.items():
            paper = PAPER_TABLE4[(c, w, t)]
            body.append([
                f"{c}", f"{w}", f"{t}",
                f"{report.aluts:,}", f"{report.ffs:,}",
                f"{report.brams:,}", f"{report.dsps:,}",
                f"{paper[0]:,}",
            ])
        return render_table(
            ["C", "W", "T", "ALUTs", "FFs", "BRAMs", "DSPs",
             "paper ALUTs"],
            body,
            title="Table IV: Synthesis area report (Vortex model)",
        )

    def max_relative_error(self) -> float:
        worst = 0.0
        for key, report in self.rows.items():
            paper = PAPER_TABLE4[key]
            got = (report.aluts, report.ffs, report.brams, report.dsps)
            for g, p in zip(got, paper):
                worst = max(worst, abs(g - p) / p)
        return worst


def run_table4() -> Table4Report:
    rows = {}
    for (c, w, t) in PAPER_TABLE4:
        config = VortexConfig(cores=c, warps=w, threads=t)
        rows[(c, w, t)] = vortex_estimate(config)
    return Table4Report(rows=rows)
