"""Parallel, memoised experiment engine.

The paper's experiment grids are embarrassingly parallel: the Figure 7
sweep is 16 independent SimX runs per benchmark, Table I is 28
independent benchmark rows, and the conclusion's design-space
exploration verifies its top candidates with independent simulations.
:class:`ExperimentEngine` fans such *experiment points* across a
``concurrent.futures.ProcessPoolExecutor`` and memoises each point in a
:class:`~repro.harness.result_cache.ResultCache`, so

* ``--jobs N`` scales a sweep across cores with **bit-identical**
  results to a serial run (points are pure functions of their pickled
  arguments, and results are reassembled in submission order), and
* ``--cache-dir`` makes repeated invocations return instantly, with
  automatic invalidation when the simulator source changes.

Point functions must be **module-level callables with picklable
arguments** — the engine uses the ``spawn`` start method by default so
workers import a fresh interpreter (fork-safety with numpy/BLAS thread
pools is not assumed), which is also what CI runners and macOS default
to. With ``jobs=1`` everything runs inline in the calling process and
no pickling is required, which keeps closures (e.g. test fakes) usable
in the serial path.

Profiling composes per point, not per engine: a profiled point function
creates its own :class:`~repro.profiling.Profiler` inside the worker
and returns the (picklable) :class:`~repro.profiling.ProfileReport`,
which the caller saves exactly as a serial run would — profile output
is byte-identical whether ``jobs=1`` or ``jobs=8``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable, Sequence

from ..profiling import Profiler, ensure_profiler
from .result_cache import MISS, ResultCache

__all__ = ["EngineStats", "ExperimentEngine", "resolve_jobs"]


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``0``/``None`` means one per CPU."""
    if not jobs:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError("jobs must be >= 0")
    return jobs


@dataclass
class EngineStats:
    """Bookkeeping for one engine invocation (or several, merged)."""

    jobs: int = 1
    points: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_stores: int = 0
    wall_s: float = 0.0
    cache_dir: str = ""

    def merge(self, other: "EngineStats") -> "EngineStats":
        self.jobs = max(self.jobs, other.jobs)
        self.points += other.points
        self.executed += other.executed
        self.cache_hits += other.cache_hits
        self.cache_stores += other.cache_stores
        self.wall_s += other.wall_s
        self.cache_dir = self.cache_dir or other.cache_dir
        return self

    def summary(self) -> str:
        """One-line run summary (the cache-hit counter the CLI prints)."""
        parts = [
            f"{self.points} points",
            f"{self.executed} executed",
            f"{self.cache_hits} cache hits",
            f"jobs={self.jobs}",
            f"{self.wall_s:.1f}s",
        ]
        if self.cache_dir:
            parts.append(f"cache={self.cache_dir}")
        return "engine: " + ", ".join(parts)


@dataclass
class _Point:
    index: int
    args: tuple
    key: str | None = None
    value: Any = None
    cached: bool = False


class ExperimentEngine:
    """Runs independent experiment points, in parallel and memoised.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` runs inline (no pool, no pickling),
        ``0`` means one per CPU.
    cache:
        Optional :class:`ResultCache`. Points that provide a cache key
        are looked up before execution and stored after.
    start_method:
        ``multiprocessing`` start method for the pool (default
        ``"spawn"``; see module docstring).
    profiler:
        Optional profiler recording host-side spans and counters for
        the engine run itself.
    """

    def __init__(self, jobs: int = 1, cache: ResultCache | None = None,
                 start_method: str = "spawn",
                 profiler: Profiler | None = None):
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.start_method = start_method
        self.profiler = ensure_profiler(profiler)
        self.stats = EngineStats(
            jobs=self.jobs,
            cache_dir=str(cache.root) if cache is not None else "",
        )
        self._pool: ProcessPoolExecutor | None = None

    # -- worker-pool lifecycle --------------------------------------------

    def _get_pool(self) -> ProcessPoolExecutor:
        """The engine's worker pool, created lazily and kept across
        :meth:`run` calls — spawned workers pay their interpreter/numpy
        import once per engine, not once per sweep."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=get_context(self.start_method))
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution ---------------------------------------------------------

    def run(
        self,
        fn: Callable[..., Any],
        points: Sequence[tuple],
        *,
        keys: Sequence[str | None] | None = None,
        encode: Callable[[Any], Any] | None = None,
        decode: Callable[[Any], Any] | None = None,
        label: str = "experiment",
    ) -> list[Any]:
        """Evaluate ``fn(*point)`` for every point, in input order.

        ``keys`` (parallel to ``points``) are cache keys from
        :meth:`ResultCache.key`; a ``None`` key skips the cache for
        that point. ``encode``/``decode`` convert between the point
        result and its JSON-serialisable cached form (identity by
        default, for results that are already plain JSON values).
        """
        if keys is not None and len(keys) != len(points):
            raise ValueError("keys must parallel points")
        started = time.perf_counter()
        prof = self.profiler
        work = [
            _Point(index=i, args=tuple(p),
                   key=None if keys is None else keys[i])
            for i, p in enumerate(points)
        ]
        self.stats.points += len(work)

        pending: list[_Point] = []
        for point in work:
            value = MISS
            if self.cache is not None and point.key is not None:
                value = self.cache.get(point.key)
            if value is MISS:
                pending.append(point)
            else:
                point.value = value if decode is None else decode(value)
                point.cached = True
        self.stats.cache_hits += len(work) - len(pending)
        if prof.enabled:
            prof.count(f"engine.{label}.points", len(work))
            prof.count(f"engine.{label}.cache_hits",
                       len(work) - len(pending))

        with prof.span(f"engine: {label} ({len(pending)} of {len(work)})",
                       cat="engine"):
            if pending:
                self._execute(fn, pending)
        self.stats.executed += len(pending)
        if prof.enabled:
            prof.count(f"engine.{label}.executed", len(pending))

        if self.cache is not None:
            for point in pending:
                if point.key is not None:
                    stored = (point.value if encode is None
                              else encode(point.value))
                    self.cache.put(point.key, stored)
                    self.stats.cache_stores += 1
        self.stats.wall_s += time.perf_counter() - started
        return [point.value for point in work]

    def _execute(self, fn: Callable[..., Any],
                 pending: list[_Point]) -> None:
        if self.jobs <= 1 or len(pending) <= 1:
            for point in pending:
                point.value = fn(*point.args)
            return
        pool = self._get_pool()
        futures = [(point, pool.submit(fn, *point.args))
                   for point in pending]
        for point, future in futures:
            point.value = future.result()
