"""Parallel, memoised, fault-tolerant experiment engine.

The paper's experiment grids are embarrassingly parallel: the Figure 7
sweep is 16 independent SimX runs per benchmark, Table I is 28
independent benchmark rows, and the conclusion's design-space
exploration verifies its top candidates with independent simulations.
:class:`ExperimentEngine` fans such *experiment points* across a
``concurrent.futures.ProcessPoolExecutor`` and memoises each point in a
:class:`~repro.harness.result_cache.ResultCache`, so

* ``--jobs N`` scales a sweep across cores with **bit-identical**
  results to a serial run (points are pure functions of their pickled
  arguments, and results are reassembled in submission order), and
* ``--cache-dir`` makes repeated invocations return instantly, with
  automatic invalidation when the simulator source changes.

The paper's headline result is *coverage* — which of 28 benchmarks each
flow survives — so the engine must degrade per point rather than die
mid-campaign. Fault tolerance is built in:

* **structured failure capture** — a failing point becomes a
  :class:`~repro.errors.PointFailure` (exception type, message,
  traceback, attempt count) in the result list instead of a propagated
  exception (``keep_going=True``), or raises
  :class:`~repro.errors.ExperimentAborted` wrapping that payload
  (the default fail-fast policy);
* **bounded retries with exponential backoff** — ``retries=N`` re-runs
  a failed point up to N more times before recording the failure;
* **per-point watchdog timeout** — ``point_timeout=T`` cancels a point
  running longer than T seconds (the stuck worker pool is torn down,
  its processes terminated, and the innocent in-flight points
  resubmitted on a fresh pool without being charged an attempt);
* **worker-crash recovery** — a died worker (``BrokenProcessPool``)
  poisons every in-flight future without naming the culprit, so the
  engine respawns the pool and re-runs the lost points **solo** (one in
  flight at a time): a repeat crash then identifies the killer exactly,
  which is charged an attempt (and eventually recorded as a
  ``WorkerCrashed`` failure), while the innocent bystanders complete
  untouched;
* **incremental cache commit** — every point's result is stored the
  moment it completes, so an interrupted run resumes from where it
  died, not from zero (failures are never cached: a re-run retries
  them).

Failure payloads are produced by the same wrapper
(:func:`_call_point`) whether the point ran inline or in a worker, so a
serial and a parallel run of the same fault plan yield **identical**
``PointFailure`` payloads. Fault injection for tests hooks in at the
same wrapper via :mod:`repro.harness.faults` (``REPRO_FAULT_PLAN``),
which spawned workers inherit through the environment.

Point functions must be **module-level callables with picklable
arguments** — the engine uses the ``spawn`` start method by default so
workers import a fresh interpreter (fork-safety with numpy/BLAS thread
pools is not assumed), which is also what CI runners and macOS default
to. With ``jobs=1`` everything runs inline in the calling process and
no pickling is required, which keeps closures (e.g. test fakes) usable
in the serial path. Inline execution cannot preempt a hung point, so
there ``point_timeout`` is enforced *post hoc*: an overrunning point is
recorded as the same ``PointTimeout`` failure, after it returns.

Profiling composes per point, not per engine: a profiled point function
creates its own :class:`~repro.profiling.Profiler` inside the worker
and returns the (picklable) :class:`~repro.profiling.ProfileReport`,
which the caller saves exactly as a serial run would — profile output
is byte-identical whether ``jobs=1`` or ``jobs=8``.
"""

from __future__ import annotations

import os
import random
import time
import traceback as _tb
import weakref
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Callable, Sequence

from ..errors import ExperimentAborted, PointFailure
from ..profiling import Profiler, ensure_profiler
from .faults import FAULT_PLAN_ENV
from .result_cache import MISS, ResultCache

__all__ = ["EngineStats", "ExperimentEngine", "close_all_engines",
           "resolve_jobs"]

#: every constructed engine, tracked weakly so interrupt handlers
#: (``python -m repro`` on SIGINT/SIGTERM) can tear down worker pools
#: instead of leaking orphaned worker processes.
_LIVE_ENGINES: "weakref.WeakSet[ExperimentEngine]" = weakref.WeakSet()


def close_all_engines() -> int:
    """Terminate the worker pools of every live engine (signal cleanup).

    Uses the pool-teardown path (which *terminates* worker processes)
    rather than a graceful ``shutdown(wait=True)``, because the caller
    is an interrupt handler: a stuck point must not block process exit.
    Returns the number of pools torn down.
    """
    closed = 0
    for engine in list(_LIVE_ENGINES):
        if engine._pool is not None:
            engine._respawn_pool()
            closed += 1
    return closed


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``0``/``None`` means one per CPU."""
    if not jobs:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError("jobs must be >= 0")
    return jobs


@dataclass
class EngineStats:
    """Bookkeeping for one engine invocation (or several, merged)."""

    jobs: int = 1
    points: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_stores: int = 0
    #: points that exhausted their retry budget and were recorded as
    #: :class:`~repro.errors.PointFailure`.
    failed: int = 0
    #: retry attempts made (each resubmission of a charged point).
    retried: int = 0
    #: cooperative preemptions requeued for resume (never charged as
    #: retries: the point snapshotted its progress and yielded).
    preempted: int = 0
    wall_s: float = 0.0
    cache_dir: str = ""

    def merge(self, other: "EngineStats") -> "EngineStats":
        self.jobs = max(self.jobs, other.jobs)
        self.points += other.points
        self.executed += other.executed
        self.cache_hits += other.cache_hits
        self.cache_stores += other.cache_stores
        self.failed += other.failed
        self.retried += other.retried
        self.preempted += other.preempted
        self.wall_s += other.wall_s
        self.cache_dir = self.cache_dir or other.cache_dir
        return self

    def summary(self) -> str:
        """One-line run summary (the cache-hit counter the CLI prints)."""
        parts = [
            f"{self.points} points",
            f"{self.executed} executed",
            f"{self.cache_hits} cache hits",
            f"failed={self.failed}",
            f"retried={self.retried}",
            f"preempted={self.preempted}",
            f"jobs={self.jobs}",
            f"{self.wall_s:.1f}s",
        ]
        if self.cache_dir:
            parts.append(f"cache={self.cache_dir}")
        return "engine: " + ", ".join(parts)


@dataclass
class _Point:
    index: int
    args: tuple
    key: str | None = None
    value: Any = None
    cached: bool = False
    #: fault-injection / diagnostics site name ("<label>#<index>").
    site: str = ""
    #: attempts made so far (submissions, serial or parallel).
    attempts: int = 0
    #: True once the point was finalised as a PointFailure.
    failed: bool = False
    #: True once the run's ``on_result`` hook saw this point.
    notified: bool = False
    #: highest simulated cycle a preemption snapshot of this point
    #: reported; a requeue is only free while this strictly advances.
    last_preempt_cycle: int = -1


_OK, _ERR = "ok", "err"


def _failure_payload(exc: BaseException) -> dict:
    payload = {
        "exc_type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(_tb.format_exception(exc)),
    }
    # SimulationPreempted carries the snapshot cycle; the engine's
    # requeue logic uses it as the forward-progress guarantee.
    cycle = getattr(exc, "cycle", None)
    if cycle is not None:
        payload["cycle"] = int(cycle)
    return payload


def _timeout_payload(timeout: float) -> dict:
    return {
        "exc_type": "PointTimeout",
        "message": f"point exceeded {timeout:g}s point-timeout",
        "traceback": "",
    }


def _crash_payload() -> dict:
    return {
        "exc_type": "WorkerCrashed",
        "message": "worker process died before the point completed "
                   "(BrokenProcessPool)",
        "traceback": "",
    }


def _noop() -> None:
    """Warm-up task: booting a spawned worker is not point execution."""


def _call_point(fn: Callable[..., Any], args: tuple, site: str):
    """One attempt at one point, with structured failure capture.

    Runs in the worker process under ``jobs > 1`` and inline otherwise,
    so a failing point serialises to the same ``("err", payload)``
    either way — same exception type, message and traceback, which is
    what makes serial and parallel failure results byte-identical.
    """
    try:
        if os.environ.get(FAULT_PLAN_ENV):
            from .faults import maybe_fault
            maybe_fault(site)
        return _OK, fn(*args)
    except Exception as exc:
        return _ERR, _failure_payload(exc)


class ExperimentEngine:
    """Runs independent experiment points: parallel, memoised, and
    fault-tolerant (see the module docstring for the failure model).

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` runs inline (no pool, no pickling),
        ``0`` means one per CPU.
    cache:
        Optional :class:`ResultCache`. Points that provide a cache key
        are looked up before execution and committed incrementally the
        moment they complete (failures are never cached).
    start_method:
        ``multiprocessing`` start method for the pool (default
        ``"spawn"``; see module docstring).
    profiler:
        Optional profiler recording host-side spans and counters for
        the engine run itself.
    retries:
        Re-run a failed point up to this many extra times before
        recording the failure (default 0).
    point_timeout:
        Watchdog seconds per point; ``None`` disables (default).
    keep_going:
        ``True`` turns exhausted failures into
        :class:`~repro.errors.PointFailure` result values; ``False``
        (default) raises :class:`~repro.errors.ExperimentAborted` on
        the first exhausted failure.
    retry_backoff:
        Base of the exponential backoff slept before retry attempt
        ``k`` (``retry_backoff * 2**(k-2)`` seconds, jittered to
        ``[0.5x, 1.5x)`` so parallel retries decorrelate, capped at
        2s).
    """

    def __init__(self, jobs: int = 1, cache: ResultCache | None = None,
                 start_method: str = "spawn",
                 profiler: Profiler | None = None,
                 retries: int = 0,
                 point_timeout: float | None = None,
                 keep_going: bool = False,
                 retry_backoff: float = 0.05):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if point_timeout is not None and point_timeout <= 0:
            raise ValueError("point_timeout must be positive")
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.start_method = start_method
        self.profiler = ensure_profiler(profiler)
        self.retries = retries
        self.point_timeout = point_timeout
        self.keep_going = keep_going
        self.retry_backoff = retry_backoff
        #: backoff jitter source; sleeps never influence results, so an
        #: unseeded RNG does not threaten reproducibility.
        self._backoff_rng = random.Random()
        #: while True a SimulationPreempted point is requeued to resume
        #: from its snapshot; a draining daemon flips this off so
        #: preemptions finalise instead of looping.
        self._preempt_requeue = True
        self.stats = EngineStats(
            jobs=self.jobs,
            cache_dir=str(cache.root) if cache is not None else "",
        )
        self._pool: ProcessPoolExecutor | None = None
        _LIVE_ENGINES.add(self)

    # -- worker-pool lifecycle --------------------------------------------

    def _get_pool(self) -> ProcessPoolExecutor:
        """The engine's worker pool, created lazily and kept across
        :meth:`run` calls — spawned workers pay their interpreter/numpy
        import once per engine, not once per sweep."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=get_context(self.start_method))
            if self.point_timeout is not None:
                # The watchdog deadline is armed at submit time, so boot
                # every worker first: spawning an interpreter can cost a
                # sizeable fraction of a tight timeout, and that boot
                # latency must not be charged to the first points.
                try:
                    wait([self._pool.submit(_noop)
                          for _ in range(self.jobs)])
                except BrokenProcessPool:
                    pass
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent).

        ``cancel_futures`` drops queued points immediately, so Ctrl-C
        or a fail-fast abort does not block on a full submission queue
        draining through the pool first.
        """
        if self._pool is not None:
            self._pool.shutdown(cancel_futures=True)
            self._pool = None

    def _respawn_pool(self) -> None:
        """Tear down a broken or stuck pool; terminate its workers so a
        runaway point cannot outlive its cancellation. The next submit
        spawns a fresh pool."""
        if self._pool is None:
            return
        procs = dict(getattr(self._pool, "_processes", None) or {})
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = None
        for proc in procs.values():
            try:
                proc.terminate()
            except (OSError, ValueError, AttributeError):
                pass

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution ---------------------------------------------------------

    def run(
        self,
        fn: Callable[..., Any],
        points: Sequence[tuple],
        *,
        keys: Sequence[str | None] | None = None,
        encode: Callable[[Any], Any] | None = None,
        decode: Callable[[Any], Any] | None = None,
        label: str = "experiment",
        on_result: Callable[[int, Any], None] | None = None,
    ) -> list[Any]:
        """Evaluate ``fn(*point)`` for every point, in input order.

        ``keys`` (parallel to ``points``) are cache keys from
        :meth:`ResultCache.key`; a ``None`` key skips the cache for
        that point. ``encode``/``decode`` convert between the point
        result and its JSON-serialisable cached form (identity by
        default, for results that are already plain JSON values).

        ``on_result(index, value)`` streams results back as they
        finalise — called exactly once per point (cache hits
        immediately, executed points the moment they complete and are
        committed, exhausted failures with their
        :class:`~repro.errors.PointFailure`), in *completion* order,
        from the calling thread. The experiment-service daemon uses it
        to mark jobs done incrementally instead of at batch barriers.

        Under ``keep_going`` a returned element may be a
        :class:`~repro.errors.PointFailure`; otherwise the first
        exhausted failure raises
        :class:`~repro.errors.ExperimentAborted` (points that completed
        before the abort are already committed to the cache).
        """
        if keys is not None and len(keys) != len(points):
            raise ValueError("keys must parallel points")
        started = time.perf_counter()
        prof = self.profiler
        work = [
            _Point(index=i, args=tuple(p),
                   key=None if keys is None else keys[i],
                   site=f"{label}#{i}")
            for i, p in enumerate(points)
        ]
        self.stats.points += len(work)

        def notify(point: _Point) -> None:
            """Stream a finalised point to ``on_result`` exactly once."""
            if on_result is not None and not point.notified:
                point.notified = True
                on_result(point.index, point.value)

        pending: list[_Point] = []
        for point in work:
            value = MISS
            if self.cache is not None and point.key is not None:
                value = self.cache.get(point.key)
            if value is MISS:
                pending.append(point)
            else:
                point.value = value if decode is None else decode(value)
                point.cached = True
                notify(point)
        self.stats.cache_hits += len(work) - len(pending)
        if prof.enabled:
            prof.count(f"engine.{label}.points", len(work))
            prof.count(f"engine.{label}.cache_hits",
                       len(work) - len(pending))

        def commit(point: _Point) -> None:
            """Incremental cache commit: store a completed point the
            moment it finishes, so an interrupted run resumes from the
            last completed point. Failures are never cached (but still
            stream to ``on_result``)."""
            if (self.cache is not None and point.key is not None
                    and not point.failed):
                stored = (point.value if encode is None
                          else encode(point.value))
                self.cache.put(point.key, stored)
                self.stats.cache_stores += 1
            notify(point)

        failed_before = self.stats.failed
        try:
            with prof.span(
                    f"engine: {label} ({len(pending)} of {len(work)})",
                    cat="engine"):
                if pending:
                    self._execute(fn, pending, commit, label)
        finally:
            self.stats.executed += sum(
                1 for p in pending if p.attempts > 0)
            self.stats.wall_s += time.perf_counter() - started
        if prof.enabled:
            prof.count(f"engine.{label}.executed", len(pending))
            failures = self.stats.failed - failed_before
            if failures:
                prof.count(f"engine.{label}.failed", failures)
        return [point.value for point in work]

    # -- failure plumbing --------------------------------------------------

    def _sleep_backoff(self, attempt: int) -> None:
        delay = self.retry_backoff * (2 ** (attempt - 2))
        delay *= 0.5 + self._backoff_rng.random()  # jitter: [0.5x, 1.5x)
        if delay > 0:
            time.sleep(min(delay, 2.0))

    def stop_preempting(self) -> None:
        """Stop requeueing preempted points: from now on a
        ``SimulationPreempted`` finalises as a failure. The daemon's
        hard-stop path uses this so the stop file cannot turn shutdown
        into an endless preempt/resume loop inside one batch."""
        self._preempt_requeue = False

    def _note_preempt(self, point: _Point, payload: dict) -> bool:
        """True if ``payload`` is a forward-progress preemption and the
        point should be resubmitted uncharged (attempt refunded)."""
        if payload.get("exc_type") != "SimulationPreempted":
            return False
        cycle = payload.get("cycle")
        if not (self._preempt_requeue and isinstance(cycle, int)
                and cycle > point.last_preempt_cycle):
            # no snapshot progress since the last preemption (or the
            # engine is shutting down): finalise instead of looping.
            return False
        point.last_preempt_cycle = cycle
        point.attempts -= 1  # cooperative yield, not a failure
        self.stats.preempted += 1
        return True

    def _finalize_failure(self, point: _Point, payload: dict,
                          label: str) -> None:
        payload = dict(payload)
        payload.pop("cycle", None)  # not a PointFailure field
        point.failed = True
        point.value = PointFailure(attempts=point.attempts, **payload)
        self.stats.failed += 1
        if not self.keep_going:
            raise ExperimentAborted(label, point.value)

    def _handle_error(self, point: _Point, payload: dict,
                      retry_queue: deque, label: str) -> None:
        """Retry ``point`` (onto ``retry_queue``) if it has attempts
        left, else finalise it as a failure. A forward-progress
        preemption is requeued without charging an attempt — resuming
        from a snapshot is scheduling, not failure recovery."""
        if self._note_preempt(point, payload):
            retry_queue.append(point)
            return
        if point.attempts > self.retries:
            self._finalize_failure(point, payload, label)
        else:
            self.stats.retried += 1
            retry_queue.append(point)

    # -- execution backends ------------------------------------------------

    def _execute(self, fn: Callable[..., Any], pending: list[_Point],
                 commit: Callable[[_Point], None], label: str) -> None:
        # A single point normally runs inline (no pool spin-up), but a
        # watchdog timeout needs a worker it can actually cancel.
        if self.jobs <= 1 or (len(pending) <= 1
                              and self.point_timeout is None):
            self._execute_serial(fn, pending, commit, label)
        else:
            self._execute_parallel(fn, pending, commit, label)

    def _execute_serial(self, fn: Callable[..., Any],
                        pending: list[_Point],
                        commit: Callable[[_Point], None],
                        label: str) -> None:
        for point in pending:
            payload: dict | None = None
            resumed = False
            while True:
                point.attempts += 1
                if point.attempts > 1 and not resumed:
                    self.stats.retried += 1
                    self._sleep_backoff(point.attempts)
                resumed = False
                started = time.monotonic()
                status, value = _call_point(fn, point.args, point.site)
                elapsed = time.monotonic() - started
                if status == _OK and (self.point_timeout is None
                                      or elapsed <= self.point_timeout):
                    point.value = value
                    payload = None
                    break
                # inline timeouts are post hoc (no preemption without a
                # pool) but record the same payload a parallel watchdog
                # cancellation would.
                payload = (value if status == _ERR
                           else _timeout_payload(self.point_timeout))
                if self._note_preempt(point, payload):
                    # re-run immediately: the next attempt resumes from
                    # the snapshot the preemption just wrote, uncharged.
                    payload = None
                    resumed = True
                    continue
                if point.attempts > self.retries:
                    break
            if payload is not None:
                self._finalize_failure(point, payload, label)
            commit(point)

    def _execute_parallel(self, fn: Callable[..., Any],
                          pending: list[_Point],
                          commit: Callable[[_Point], None],
                          label: str) -> None:
        waiting: deque[_Point] = deque(pending)
        #: crash suspects, re-run one at a time to isolate the culprit.
        solo: deque[_Point] = deque()
        inflight: dict = {}
        deadlines: dict = {}

        def submit(point: _Point) -> bool:
            pool = self._get_pool()
            point.attempts += 1
            if point.attempts > 1:
                self._sleep_backoff(point.attempts)
            try:
                fut = pool.submit(_call_point, fn, point.args,
                                  point.site)
            except BrokenProcessPool:
                point.attempts -= 1  # resubmission re-charges it
                self._respawn_pool()
                return False
            inflight[fut] = point
            if self.point_timeout is not None:
                deadlines[fut] = time.monotonic() + self.point_timeout
            return True

        try:
            while waiting or solo or inflight:
                if solo:
                    # quarantine: exactly one suspect in flight, so a
                    # repeat crash names the culprit instead of taking
                    # innocent points down with it.
                    if not inflight:
                        point = solo.popleft()
                        if not submit(point):
                            solo.appendleft(point)
                else:
                    while waiting and len(inflight) < self.jobs:
                        point = waiting.popleft()
                        if not submit(point):
                            waiting.appendleft(point)
                            break
                if not inflight:
                    continue
                timeout = None
                if deadlines:
                    timeout = max(
                        0.0, min(deadlines.values()) - time.monotonic()
                    ) + 0.02
                done, _ = wait(set(inflight), timeout=timeout,
                               return_when=FIRST_COMPLETED)
                crashed: list[_Point] = []
                for fut in done:
                    point = inflight.pop(fut)
                    deadlines.pop(fut, None)
                    try:
                        status, value = fut.result()
                    except BrokenProcessPool:
                        crashed.append(point)
                        continue
                    except Exception as exc:  # submission/pickling faults
                        status, value = _ERR, _failure_payload(exc)
                    if status == _OK:
                        point.value = value
                        commit(point)
                    else:
                        self._handle_error(point, value, waiting, label)
                        if point.failed:
                            commit(point)
                if crashed:
                    # the pool died; every in-flight future was lost.
                    crashed.extend(inflight.values())
                    inflight.clear()
                    deadlines.clear()
                    self._respawn_pool()
                    if len(crashed) == 1:
                        # ran solo: this point killed the worker.
                        self._handle_error(crashed[0], _crash_payload(),
                                           solo, label)
                        if crashed[0].failed:
                            commit(crashed[0])
                    else:
                        # ambiguous: re-run each suspect solo, uncharged.
                        for point in crashed:
                            point.attempts -= 1
                            solo.append(point)
                    continue
                if deadlines:
                    now = time.monotonic()
                    expired = [f for f, dl in deadlines.items()
                               if dl <= now]
                    if expired:
                        for fut in expired:
                            point = inflight.pop(fut)
                            deadlines.pop(fut)
                            self._handle_error(
                                point,
                                _timeout_payload(self.point_timeout),
                                waiting, label)
                            if point.failed:
                                commit(point)
                        # watchdog cancellation: a stuck worker cannot
                        # be interrupted in-band — tear the pool down
                        # (terminating its processes) and reschedule
                        # the innocent in-flight points uncharged.
                        for fut, point in list(inflight.items()):
                            point.attempts -= 1
                            waiting.append(point)
                        inflight.clear()
                        deadlines.clear()
                        self._respawn_pool()
        except ExperimentAborted:
            self.close()
            raise
