"""HLS pipeline performance model.

The Intel SDK's NDRange mode streams work items through a deeply
pipelined datapath (§II-B): throughput is set by the initiation interval
(II) of the innermost pipelined structure, latency by the pipeline depth,
and everything is bounded by the memory interface. We model:

``cycles = depth + max(issue_cycles, memory_cycles)``

* ``depth`` — pipeline depth, proportional to the static instruction
  count (every operator adds stages).
* ``issue_cycles`` — one *iteration* (a work item, or one innermost-loop
  trip of a work item) enters the pipeline every II cycles. Dynamic
  iteration counts come from the reference interpreter's branch counters.
  Kernels containing atomics serialise the RMW point (II += 7).
* ``memory_cycles`` — the external interface moves one 512-bit line per
  cycle: coalesced (streaming) accesses amortise 16 words per cycle,
  strided/indirect accesses pay a word each, ``__pipelined_load`` units
  serialise at 4 cycles per access — the "area efficiency at the expense
  of performance" trade of Listing 3.

This is a first-order model: adequate for the paper's qualitative claims
(HLS wins on streaming kernels, loses once LSUs serialise), not a gate-
level simulation. Absolute numbers are indicative only.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ocl.interp import RunResult
from ..ocl.ir import ATOMIC_OPS, Kernel, Opcode
from ..ocl.ndrange import NDRange
from ..profiling import Profiler, ensure_profiler
from .lsu import LSUKind, LSUSite

#: Words per cycle for a coalesced 512-bit interface (16 x float32).
COALESCED_WORDS_PER_CYCLE = 16
#: Cycles per word for word-granular (strided / indirect) access.
STRIDED_CYCLES_PER_WORD = 1.0
#: Cycles per word for a pipelined (serialising) LSU.
PIPELINED_CYCLES_PER_WORD = 4.0
#: Extra II for kernels with atomic RMW serialisation.
ATOMIC_II_PENALTY = 7
#: Pipeline stages per static instruction plus fixed front/back end.
STAGES_PER_INSTR = 3
BASE_DEPTH = 50


@dataclass(frozen=True)
class HLSModelParams:
    """The pipeline model's free parameters, exposed for calibration.

    Defaults reproduce the historical module-level constants exactly;
    every ``params=None`` call site is unchanged. ``issue_scale`` and
    ``memory_scale`` are pure fitting degrees of freedom used by the
    millisecond screen predictor (:func:`screen_cycles`), whose per-item
    extrapolation :mod:`repro.calibrate` fits against this full model.
    """

    coalesced_words_per_cycle: float = COALESCED_WORDS_PER_CYCLE
    strided_cycles_per_word: float = STRIDED_CYCLES_PER_WORD
    pipelined_cycles_per_word: float = PIPELINED_CYCLES_PER_WORD
    atomic_ii_penalty: int = ATOMIC_II_PENALTY
    stages_per_instr: int = STAGES_PER_INSTR
    base_depth: int = BASE_DEPTH
    issue_scale: float = 1.0
    memory_scale: float = 1.0

    def to_payload(self) -> dict:
        return {
            "coalesced_words_per_cycle": self.coalesced_words_per_cycle,
            "strided_cycles_per_word": self.strided_cycles_per_word,
            "pipelined_cycles_per_word": self.pipelined_cycles_per_word,
            "atomic_ii_penalty": self.atomic_ii_penalty,
            "stages_per_instr": self.stages_per_instr,
            "base_depth": self.base_depth,
            "issue_scale": self.issue_scale,
            "memory_scale": self.memory_scale,
        }

    @staticmethod
    def from_payload(payload: dict) -> "HLSModelParams":
        ints = {"atomic_ii_penalty", "stages_per_instr", "base_depth"}
        return HLSModelParams(**{
            k: (int(payload[k]) if k in ints else float(payload[k]))
            for k in HLSModelParams().to_payload()
        })


DEFAULT_HLS_PARAMS = HLSModelParams()


@dataclass
class PipelineEstimate:
    depth: int
    initiation_interval: int
    issue_cycles: int
    memory_cycles: int
    cycles: int

    def time_us(self, fmax_mhz: float) -> float:
        return self.cycles / fmax_mhz


def _site_cost(kind: LSUKind, p: HLSModelParams) -> float:
    if kind in (LSUKind.STREAMING, LSUKind.UNIFORM,
                LSUKind.CONSTANT_CACHE):
        return 1.0 / p.coalesced_words_per_cycle
    if kind is LSUKind.PIPELINED:
        return p.pipelined_cycles_per_word
    if kind is LSUKind.LOCAL_PORT:
        return 0.0  # on-chip, overlapped
    return p.strided_cycles_per_word


@dataclass(frozen=True)
class HLSKernelProfile:
    """Scale-free summary of one HLS launch, for millisecond screening.

    :func:`estimate_cycles` needs a functional interpreter run per
    launch size — fine for one compile, too slow for a DSE loop that
    screens thousands of points. This profile normalises the dynamic
    counts *per work item* so :func:`screen_cycles` can extrapolate the
    pipeline model to any problem size without re-running the
    interpreter. The extrapolation error (loop trip counts and integer
    truncation do not scale perfectly linearly) is what
    :mod:`repro.calibrate` fits ``issue_scale``/``memory_scale``
    against, with measured per-benchmark bounds.
    """

    static_instrs: int
    has_atomics: bool
    total_items: int
    branches_per_item: float
    atomics_per_item: float
    #: dynamic memory words per item, bucketed by LSU cost class
    #: (coalesced = streaming/uniform/constant-cache; local-port words
    #: are free and not recorded).
    coalesced_words_per_item: float
    strided_words_per_item: float
    pipelined_words_per_item: float

    @staticmethod
    def collect(kernel: Kernel, sites: list[LSUSite], run: RunResult
                ) -> "HLSKernelProfile":
        items = max(1, run.items_executed)
        loads_dyn = run.op_counts.get(Opcode.LOAD, 0)
        stores_dyn = run.op_counts.get(Opcode.STORE, 0)
        buckets = {"coalesced": 0.0, "strided": 0.0, "pipelined": 0.0}

        def bucket_of(kind: LSUKind) -> str | None:
            if kind in (LSUKind.STREAMING, LSUKind.UNIFORM,
                        LSUKind.CONSTANT_CACHE):
                return "coalesced"
            if kind is LSUKind.PIPELINED:
                return "pipelined"
            if kind is LSUKind.LOCAL_PORT:
                return None
            return "strided"

        # Same uniform per-site apportioning as estimate_cycles, so the
        # screen agrees with the full model at the collection scale.
        for is_store, dyn in ((False, loads_dyn), (True, stores_dyn)):
            group = [s for s in sites if s.is_store == is_store]
            if not group or not dyn:
                continue
            per_site = dyn / len(group)
            for s in group:
                name = bucket_of(s.kind)
                if name is not None:
                    buckets[name] += per_site
        return HLSKernelProfile(
            static_instrs=sum(1 for _ in kernel.instructions()),
            has_atomics=any(ins.op in ATOMIC_OPS
                            for ins in kernel.instructions()),
            total_items=items,
            branches_per_item=run.op_counts.get(Opcode.BR, 0) / items,
            atomics_per_item=sum(run.op_counts.get(op, 0)
                                 for op in ATOMIC_OPS) / items,
            coalesced_words_per_item=buckets["coalesced"] / items,
            strided_words_per_item=buckets["strided"] / items,
            pipelined_words_per_item=buckets["pipelined"] / items,
        )


def screen_cycles(profile: HLSKernelProfile, total_items: int,
                  params: HLSModelParams | None = None) -> float:
    """Millisecond-path cycle prediction from a collected profile.

    Same ``depth + max(issue, memory)`` shape as
    :func:`estimate_cycles`, extrapolated to ``total_items`` work items
    from the profile's per-item rates — no interpreter run, suitable
    for screening thousands of design points.
    """
    p = params or DEFAULT_HLS_PARAMS
    depth = p.base_depth + p.stages_per_instr * profile.static_instrs
    ii = 1 + (p.atomic_ii_penalty if profile.has_atomics else 0)
    iterations = total_items * (1.0 + profile.branches_per_item)
    issue = iterations * ii * p.issue_scale
    per_item_mem = (
        profile.coalesced_words_per_item / p.coalesced_words_per_cycle
        + profile.strided_words_per_item * p.strided_cycles_per_word
        + profile.pipelined_words_per_item * p.pipelined_cycles_per_word
        + profile.atomics_per_item * (p.strided_cycles_per_word
                                      + p.atomic_ii_penalty)
    )
    memory = total_items * per_item_mem * p.memory_scale
    return depth + max(issue, memory)


def estimate_cycles(
    kernel: Kernel,
    sites: list[LSUSite],
    ndrange: NDRange,
    run: RunResult,
    profiler: Profiler | None = None,
    params: HLSModelParams | None = None,
) -> PipelineEstimate:
    """Estimate the execution cycles of one launch from its dynamic
    profile (``run`` comes from the functional execution of the launch).

    ``params`` supplies calibrated model constants (see
    :mod:`repro.calibrate`); ``None`` keeps the hand-tuned defaults.

    When ``profiler`` is enabled, records II accounting, per-LSU-kind
    memory traffic, and pipeline stage occupancy on a modelled-cycle
    timeline."""
    p = params or DEFAULT_HLS_PARAMS
    static_instrs = sum(1 for _ in kernel.instructions())
    depth = p.base_depth + p.stages_per_instr * static_instrs

    ii = 1
    if any(ins.op in ATOMIC_OPS for ins in kernel.instructions()):
        ii += p.atomic_ii_penalty

    # Iterations: every work item is one iteration, plus every dynamic
    # back-edge (loop trip) re-circulates the item through the pipeline.
    iterations = ndrange.total_items + run.op_counts.get(Opcode.BR, 0)
    issue_cycles = iterations * ii

    # Dynamic memory traffic split by static site kind. The interpreter
    # reports aggregate load/store counts; apportion them to sites by
    # static weight (uniform split per opcode class).
    loads_dyn = run.op_counts.get(Opcode.LOAD, 0)
    stores_dyn = run.op_counts.get(Opcode.STORE, 0)
    load_sites_all = [s for s in sites if not s.is_store]
    store_sites_all = [s for s in sites if s.is_store]

    def site_cost(kind: LSUKind) -> float:
        return _site_cost(kind, p)

    memory_cycles = 0.0
    #: per-LSU-kind (words, cycles) breakdown, kept for profiling.
    kind_traffic: dict[str, list[float]] = {}

    def account(kind: LSUKind, words: float) -> float:
        cost = words * site_cost(kind)
        entry = kind_traffic.setdefault(kind.value, [0.0, 0.0])
        entry[0] += words
        entry[1] += cost
        return cost

    if load_sites_all and loads_dyn:
        per_site = loads_dyn / len(load_sites_all)
        for s in load_sites_all:
            memory_cycles += account(s.kind, per_site)
    if store_sites_all and stores_dyn:
        per_site = stores_dyn / len(store_sites_all)
        for s in store_sites_all:
            memory_cycles += account(s.kind, per_site)
    atomics_dyn = sum(run.op_counts.get(op, 0) for op in ATOMIC_OPS)
    atomic_cycles = atomics_dyn * (p.strided_cycles_per_word
                                   + p.atomic_ii_penalty)
    memory_cycles += atomic_cycles

    cycles = depth + max(issue_cycles, int(memory_cycles))
    est = PipelineEstimate(
        depth=depth,
        initiation_interval=ii,
        issue_cycles=issue_cycles,
        memory_cycles=int(memory_cycles),
        cycles=cycles,
    )
    prof = ensure_profiler(profiler)
    if prof.enabled:
        _record_estimate(prof, kernel, est, iterations, kind_traffic,
                         atomics_dyn, atomic_cycles)
    return est


def _record_estimate(
    prof: Profiler,
    kernel: Kernel,
    est: PipelineEstimate,
    iterations: int,
    kind_traffic: dict[str, list[float]],
    atomics_dyn: int,
    atomic_cycles: float,
) -> None:
    """Fold one pipeline estimate into profiler counters and a modelled
    timeline: fill, steady-state issue, and the memory interface as
    overlapping spans, stage occupancy as derived counters."""
    prof.set_meta("timeline", "modelled pipeline cycles")
    prof.count_many({
        "depth": est.depth,
        "initiation_interval": est.initiation_interval,
        "iterations": iterations,
        "issue_cycles": est.issue_cycles,
        "memory_cycles": est.memory_cycles,
        "cycles": est.cycles,
        "atomics": atomics_dyn,
        "atomic_serialisation_cycles": atomic_cycles,
    }, prefix="hls.")
    for kind, (words, cost) in sorted(kind_traffic.items()):
        prof.count(f"hls.lsu.{kind}.words", words)
        prof.count(f"hls.lsu.{kind}.cycles", cost)
    # Occupancy: the fraction of the modelled runtime each bound keeps
    # its stage busy; the larger one is the reported bottleneck.
    if est.cycles:
        prof.count("hls.occupancy.issue", est.issue_cycles / est.cycles)
        prof.count("hls.occupancy.memory", est.memory_cycles / est.cycles)
    pid = 0
    prof.name_process(pid, f"hls pipeline: {kernel.name}")
    prof.name_thread(pid, 0, "wavefront")
    prof.name_thread(pid, 1, "issue (II)")
    prof.name_thread(pid, 2, "memory interface")
    bottleneck = ("memory" if est.memory_cycles > est.issue_cycles
                  else "issue")
    prof.complete("pipeline fill", "hls.stage", ts=0, dur=est.depth,
                  pid=pid, tid=0, args={"depth": est.depth})
    prof.complete(
        "steady-state issue", "hls.stage", ts=est.depth,
        dur=max(1, est.issue_cycles), pid=pid, tid=1,
        args={"II": est.initiation_interval, "iterations": iterations},
    )
    prof.complete(
        "memory interface", "hls.stage", ts=est.depth,
        dur=max(1, est.memory_cycles), pid=pid, tid=2,
        args={k: v[1] for k, v in kind_traffic.items()},
    )
    prof.instant(f"bottleneck: {bottleneck}", "hls.stage", ts=est.cycles,
                 pid=pid, tid=0)
