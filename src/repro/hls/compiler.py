"""The AOC-style HLS compiler entry point.

``HLSBackend`` models one invocation of the Intel FPGA SDK for OpenCL
compiling an OpenCL program (all of its kernels) into a single bitstream
for one device. Failure modes mirror Table I:

* kernels containing atomic functions cannot be synthesized against a
  device with a heterogeneous (HBM2) memory system →
  ``SynthesisError(reason="atomics")`` (the hybridsort case);
* the accumulated area of the program's kernels exceeding a device
  resource, BRAMs above all → ``SynthesisError(reason="bram")`` (the
  lbm / backprop / b+tree / dwt2d / lud cases).

The backend is *stateful across builds*, like a real bitstream: every
kernel built through one ``HLSBackend`` instance lands in the same FPGA
image and the capacity check applies to the running total.

Execution of a built kernel is functional (the reference interpreter)
plus the pipeline timing model of :mod:`repro.hls.perf`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import SynthesisError
from ..ocl.host import CompiledKernel, DeviceBackend, LaunchStats
from ..ocl.interp import interpret
from ..ocl.ir import Kernel, clone_kernel
from ..ocl.ndrange import NDRange
from ..ocl.validate import validate
from ..passes import cse
from .area import AreaReport, estimate
from .device import FPGADevice, STRATIX10_MX2100
from .perf import estimate_cycles


@dataclass
class SynthesisRecord:
    """What one kernel contributed to the bitstream."""

    kernel: Kernel
    area: AreaReport
    #: Area accumulated in the bitstream after this kernel.
    cumulative_brams: int


class HLSCompiledKernel(CompiledKernel):
    """A kernel synthesized into the current bitstream."""

    def __init__(self, kernel: Kernel, backend: "HLSBackend", area: AreaReport):
        super().__init__(kernel)
        self.backend = backend
        self.area = area

    def launch(self, args: list[Any], ndrange: NDRange) -> LaunchStats:
        profiler = self.backend.profiler
        if profiler is not None and profiler.enabled:
            profiler.set_meta("backend", self.backend.name)
            profiler.set_meta("kernel", self.kernel.name)
            profiler.set_meta("device", self.backend.device.name)
        run = interpret(self.kernel, args, ndrange)
        est = estimate_cycles(self.kernel, self.area.lsu_sites, ndrange, run,
                              profiler=profiler)
        return LaunchStats(
            kernel_name=self.kernel.name,
            backend=self.backend.name,
            cycles=est.cycles,
            dynamic_instructions=run.dynamic_instructions,
            printf_output=run.printf_output,
            extra={
                "pipeline_depth": est.depth,
                "initiation_interval": est.initiation_interval,
                "issue_cycles": est.issue_cycles,
                "memory_cycles": est.memory_cycles,
                "time_us": est.time_us(self.backend.device.fmax_mhz),
                "area": self.area.as_row(),
            },
        )


class HLSBackend(DeviceBackend):
    """Intel FPGA SDK for OpenCL model (the "aoc" flow of Figure 3)."""

    name = "intel_hls"

    def __init__(
        self,
        device: FPGADevice = STRATIX10_MX2100,
        auto_cse: bool = False,
        enforce_capacity: bool = True,
        profiler=None,
    ):
        self.device = device
        self.auto_cse = auto_cse
        self.enforce_capacity = enforce_capacity
        #: optional :class:`repro.profiling.Profiler`; launches record
        #: pipeline-stage occupancy and II accounting.
        self.profiler = profiler
        self.records: list[SynthesisRecord] = []
        self.total = AreaReport()

    # -- compilation -------------------------------------------------------

    def build(self, kernel: Kernel) -> HLSCompiledKernel:
        validate(kernel)
        if kernel.uses_atomics() and self.device.memory.heterogeneous:
            raise SynthesisError(
                reason="atomics",
                detail=(
                    f"kernel {kernel.name!r} uses atomic functions, which "
                    f"cannot be synthesized for the heterogeneous memory "
                    f"system of {self.device.name}"
                ),
            )
        if self.auto_cse:
            kernel = clone_kernel(kernel)
            cse.run(kernel)
        area = estimate(kernel)
        new_total = self.total.merge(area)
        if self.enforce_capacity:
            self._check_capacity(kernel, new_total)
        self.total = new_total
        self.records.append(
            SynthesisRecord(
                kernel=kernel, area=area, cumulative_brams=new_total.brams
            )
        )
        return HLSCompiledKernel(kernel, self, area)

    def _check_capacity(self, kernel: Kernel, total: AreaReport) -> None:
        dev = self.device
        if total.brams > dev.brams:
            raise SynthesisError(
                reason="bram",
                detail=(
                    f"kernel {kernel.name!r}: program requires {total.brams} "
                    f"BRAM blocks, {dev.name} provides {dev.brams} "
                    f"({100.0 * total.brams / dev.brams:.0f}% of capacity)"
                ),
            )
        if total.aluts > dev.aluts:
            raise SynthesisError(
                reason="aluts",
                detail=(
                    f"kernel {kernel.name!r}: program requires {total.aluts} "
                    f"ALUTs, {dev.name} provides {dev.aluts}"
                ),
            )
        if total.ffs > dev.ffs:
            raise SynthesisError(
                reason="ffs",
                detail=f"program requires {total.ffs} FFs, device has {dev.ffs}",
            )
        if total.dsps > dev.dsps:
            raise SynthesisError(
                reason="dsps",
                detail=f"program requires {total.dsps} DSPs, device has {dev.dsps}",
            )


def aoc(
    kernels: Kernel | list[Kernel],
    device: FPGADevice = STRATIX10_MX2100,
    auto_cse: bool = False,
    enforce_capacity: bool = True,
) -> AreaReport:
    """One-shot "aoc" invocation: synthesize a whole program and return
    its area report; raises :class:`SynthesisError` like the SDK."""
    if isinstance(kernels, Kernel):
        kernels = [kernels]
    backend = HLSBackend(
        device=device, auto_cse=auto_cse, enforce_capacity=enforce_capacity
    )
    for kernel in kernels:
        backend.build(kernel)
    return backend.total
