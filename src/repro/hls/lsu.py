"""Load/store unit (LSU) inference.

The dominant HLS area mechanism in the paper is that **each static global
array access site is synthesized into its own load/store unit**, and the
flavour of that unit decides its cost: the default burst-coalesced unit
instantiates 32 parallel load units with deep reorder buffers ("each array
access ... was synthesized into 32 load units", §III-A, consuming "over
1,000 BRAM blocks per line", §III-B), while the area-efficient
``__pipelined_load`` unit (Listing 3) is tiny but serialises
non-consecutive accesses.

The LSU kind is chosen from the access pattern, recovered by an affine
analysis of the index expression:

* ``UNIFORM``    — index invariant across work items and loop iterations;
* ``STREAMING``  — unit stride in ``get_global_id(0)`` with no other
  varying term: consecutive work items touch consecutive elements, so the
  access coalesces into a cheap streaming unit. A unit-stride innermost
  loop induction with no thread-varying term (single-work-item style) also
  streams;
* ``STRIDED``    — affine but not coalescable (non-unit stride, or varying
  in several dimensions, e.g. backprop's ``w[index]``);
* ``INDIRECT``   — non-affine (data-dependent, e.g. BFS edge lists);
* ``PIPELINED``  — user-directed ``__pipelined_load``;
* ``LOCAL_PORT`` / ``CONSTANT_CACHE`` — on-chip accesses.

STRIDED and INDIRECT map to the expensive burst-coalesced unit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..ocl.ir import (
    ATOMIC_OPS,
    Const,
    Instr,
    Kernel,
    LocalArray,
    MEMORY_READS,
    MEMORY_WRITES,
    Opcode,
    Param,
    Value,
)
from ..ocl.types import AddressSpace
from ..passes import loops as loop_analysis


class LSUKind(enum.Enum):
    UNIFORM = "uniform"
    STREAMING = "streaming"
    STRIDED = "strided"
    INDIRECT = "indirect"
    PIPELINED = "pipelined"
    ATOMIC = "atomic"
    LOCAL_PORT = "local_port"
    CONSTANT_CACHE = "constant_cache"


#: Kinds synthesized as the expensive 32-unit burst-coalesced LSU.
BURST_COALESCED_KINDS = frozenset({LSUKind.STRIDED, LSUKind.INDIRECT})

#: Number of parallel load units inside one burst-coalesced LSU (§III-A).
BURST_COALESCED_UNITS = 32


# ---------------------------------------------------------------------------
# Affine analysis of index expressions.
# ---------------------------------------------------------------------------

#: Affine form: {symbol: coefficient} + {None: constant}. Symbols are
#: ("gid", d) / ("lid", d) / ("grp", d) for thread ids, ("iv", block_id)
#: for loop inductions, ("u", value_id) for other uniform unknowns.
#: Coefficients are ints, or the sentinel ``UNKNOWN`` for a nonzero
#: coefficient of statically unknown magnitude (e.g. ``gid1 * width``
#: where width is a runtime scalar).
Affine = dict

#: Nonzero coefficient of unknown magnitude.
UNKNOWN = "?"


def _aff_const(c: int) -> Affine:
    return {None: c}


def _aff_sym(sym: tuple) -> Affine:
    return {sym: 1, None: 0}


def _coeff_add(a, b):
    if a == 0:
        return b
    if b == 0:
        return a
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    return a + b


def _coeff_mul(a, c):
    if a == 0 or c == 0:
        return 0
    if a == UNKNOWN or c == UNKNOWN:
        return UNKNOWN
    return a * c


def _aff_add(a: Affine, b: Affine, sign: int = 1) -> Affine:
    out = dict(a)
    for k, v in b.items():
        out[k] = _coeff_add(out.get(k, 0), _coeff_mul(v, sign))
    return out


def _aff_scale(a: Affine, c) -> Affine:
    return {k: _coeff_mul(v, c) for k, v in a.items()}


def _is_pure_const(a: Affine) -> bool:
    """Constant affine with a *known* integer value."""
    return all(k is None or v == 0 for k, v in a.items()) and a.get(None, 0) != UNKNOWN


def _varying_syms(a: Affine) -> dict:
    return {
        k: v
        for k, v in a.items()
        if k is not None and k[0] in _VARYING_PREFIXES and v != 0
    }


class AffineIndexAnalysis:
    """Computes affine forms for int32 values in one kernel."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.loop_info = loop_analysis.analyze(kernel)
        self._cache: dict[int, Affine | None] = {}
        self._phi_stack: set[int] = set()

    def affine(self, value: Value) -> Affine | None:
        """Affine form of ``value``, or None if non-affine."""
        vid = id(value)
        if vid in self._cache:
            return self._cache[vid]
        result = self._compute(value)
        self._cache[vid] = result
        return result

    def _compute(self, value: Value) -> Affine | None:
        if isinstance(value, Const):
            return _aff_const(int(value.value))
        if isinstance(value, Param):
            # Uniform runtime scalar: a unique symbol.
            return _aff_sym(("u", id(value)))
        if not isinstance(value, Instr):
            return None
        op = value.op
        if op is Opcode.GID:
            return _aff_sym(("gid", value.attrs["dim"]))
        if op is Opcode.LID:
            return _aff_sym(("lid", value.attrs["dim"]))
        if op is Opcode.GROUP_ID:
            return _aff_sym(("grp", value.attrs["dim"]))
        if op in (Opcode.LOCAL_SIZE, Opcode.GLOBAL_SIZE, Opcode.NUM_GROUPS):
            return _aff_sym(("u", id(value)))
        if op is Opcode.ADD or op is Opcode.SUB:
            a = self.affine(value.args[0])
            b = self.affine(value.args[1])
            if a is None or b is None:
                return None
            return _aff_add(a, b, 1 if op is Opcode.ADD else -1)
        if op is Opcode.MUL:
            a = self.affine(value.args[0])
            b = self.affine(value.args[1])
            if a is None or b is None:
                return None
            if _is_pure_const(a):
                return _aff_scale(b, a.get(None, 0))
            if _is_pure_const(b):
                return _aff_scale(a, b.get(None, 0))
            a_var = _varying_syms(a)
            b_var = _varying_syms(b)
            if a_var and b_var:
                return None  # product of two thread/loop-varying values
            if not a_var and not b_var:
                # uniform * uniform: a fresh uniform symbol.
                return _aff_sym(("u", id(value)))
            # varying * uniform: stride magnitudes become unknown.
            varying_side = a if a_var else b
            out: Affine = {
                k: UNKNOWN for k, v in _varying_syms(varying_side).items()
            }
            out[("u", id(value))] = 1
            out[None] = UNKNOWN
            return out
        if op is Opcode.SHL:
            b = self.affine(value.args[1])
            a = self.affine(value.args[0])
            if a is None or b is None or not _is_pure_const(b):
                return None
            return _aff_scale(a, 2 ** (b.get(None, 0) & 31))
        if op is Opcode.PHI:
            return self._phi_affine(value)
        if op in (Opcode.IMIN, Opcode.IMAX, Opcode.SELECT, Opcode.IABS):
            return None
        if op is Opcode.LOAD:
            return None  # data-dependent → indirect
        if op in ATOMIC_OPS:
            return None
        return None

    def _phi_affine(self, phi: Instr) -> Affine | None:
        """Loop-induction phis get an ("iv", header_id) symbol; other phis
        are non-affine (we cannot express path-dependence)."""
        if id(phi) in self._phi_stack:
            return None
        block = phi.block
        if block is None:
            return None
        loop = self.loop_info.innermost(block)
        if loop is not None and loop.header is block:
            # Check the classic induction shape: one incoming is phi+const.
            self._phi_stack.add(id(phi))
            try:
                for pred, val in phi.attrs["incomings"]:
                    if id(pred) in loop.blocks:
                        if (
                            isinstance(val, Instr)
                            and val.op is Opcode.ADD
                            and val.args[0] is phi
                            and isinstance(val.args[1], Const)
                        ):
                            return _aff_sym(("iv", id(block)))
                return None
            finally:
                self._phi_stack.discard(id(phi))
        return None


# ---------------------------------------------------------------------------
# LSU classification per access site.
# ---------------------------------------------------------------------------

_VARYING_PREFIXES = ("gid", "lid", "grp", "iv")


@dataclass
class LSUSite:
    """One static memory access site and its inferred LSU."""

    instr: Instr
    kind: LSUKind
    is_store: bool
    space: AddressSpace

    @property
    def is_burst_coalesced(self) -> bool:
        return self.kind in BURST_COALESCED_KINDS


def classify_kernel(kernel: Kernel) -> list[LSUSite]:
    """Infer one LSU per static LOAD/STORE/atomic site in the kernel."""
    analysis = AffineIndexAnalysis(kernel)
    sites: list[LSUSite] = []
    for ins in kernel.instructions():
        if ins.op not in (MEMORY_READS | MEMORY_WRITES):
            continue
        root = ins.args[0]
        space = root.ty.space  # type: ignore[union-attr]
        is_store = ins.op is Opcode.STORE
        if ins.op in ATOMIC_OPS:
            kind = LSUKind.ATOMIC
        elif isinstance(root, LocalArray) or space in (
            AddressSpace.LOCAL,
            AddressSpace.PRIVATE,
        ):
            kind = LSUKind.LOCAL_PORT
        elif space is AddressSpace.CONSTANT:
            kind = LSUKind.CONSTANT_CACHE
        elif kernel.directives.get(ins) == "pipelined_load":
            kind = LSUKind.PIPELINED
        else:
            kind = _classify_global(analysis, ins)
        sites.append(LSUSite(instr=ins, kind=kind, is_store=is_store, space=space))
    return sites


def _classify_global(analysis: AffineIndexAnalysis, ins: Instr) -> LSUKind:
    aff = analysis.affine(ins.args[1])
    if aff is None:
        return LSUKind.INDIRECT
    varying = _varying_syms(aff)
    if not varying:
        return LSUKind.UNIFORM
    # Row-major streaming: unit stride along get_global_id(0); slower
    # dimensions (gid1/gid2) may carry any coefficient — the access is
    # still contiguous within a row of work items.
    if varying.get(("gid", 0)) == 1 and all(
        k[0] == "gid" for k in varying
    ):
        return LSUKind.STREAMING
    # Single-work-item style sequential burst: exactly one unit-stride
    # loop induction and no thread-varying term.
    iv_terms = [(k, v) for k, v in varying.items() if k[0] == "iv"]
    thread_terms = [k for k in varying if k[0] in ("gid", "lid", "grp")]
    if len(iv_terms) == 1 and iv_terms[0][1] == 1 and not thread_terms:
        return LSUKind.STREAMING
    return LSUKind.STRIDED
