"""FPGA device database.

Resource capacities for the two Intel Stratix 10 boards used in the
paper's evaluation (§III): the **MX2100** (HBM2 — the "heterogeneous
memory system" that makes the SDK reject global atomics, per the
hybridsort row of Table I) on which the Intel SDK flow was synthesized,
and the **SX2800** (DDR4) on which Vortex was synthesized.

BRAM capacities are the M20K block counts of the parts; the paper's
percentages confirm them: backprop's 12,898 BRAMs are reported as 188% of
capacity and 12,898 / 6,847 = 188.4%, so the HLS target exposes 6,847
M20Ks.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemorySystem:
    """Off-chip memory profile (also consumed by the Vortex DRAM model)."""

    kind: str  # "ddr4" | "hbm2"
    peak_bandwidth_gbs: float
    latency_ns: float
    channels: int

    @property
    def heterogeneous(self) -> bool:
        """HBM2 boards expose a heterogeneous (multi-stack) memory system;
        the Intel SDK cannot synthesize global atomics against it."""
        return self.kind == "hbm2"


DDR4 = MemorySystem(kind="ddr4", peak_bandwidth_gbs=19.2, latency_ns=80.0, channels=1)
HBM2 = MemorySystem(kind="hbm2", peak_bandwidth_gbs=409.6, latency_ns=110.0, channels=16)


@dataclass(frozen=True)
class FPGADevice:
    """One FPGA part: resource capacities and its memory system."""

    name: str
    family: str
    aluts: int
    ffs: int
    brams: int  # M20K blocks
    dsps: int
    memory: MemorySystem
    fmax_mhz: float  # typical achievable kernel clock

    def utilization(self, aluts: int, ffs: int, brams: int, dsps: int) -> dict[str, float]:
        """Fractional utilisation per resource class."""
        return {
            "aluts": aluts / self.aluts,
            "ffs": ffs / self.ffs,
            "brams": brams / self.brams,
            "dsps": dsps / self.dsps,
        }


#: Stratix 10 MX2100: 702,720 ALMs (2 ALUTs + 4 FFs each), HBM2.
STRATIX10_MX2100 = FPGADevice(
    name="Stratix 10 MX2100",
    family="Stratix 10",
    aluts=1_405_440,
    ffs=2_810_880,
    brams=6_847,
    dsps=3_960,
    memory=HBM2,
    fmax_mhz=260.0,
)

#: Stratix 10 SX2800: 933,120 ALMs, DDR4. Vortex's synthesis target.
STRATIX10_SX2800 = FPGADevice(
    name="Stratix 10 SX2800",
    family="Stratix 10",
    aluts=1_866_240,
    ffs=3_732_480,
    brams=11_721,
    dsps=5_760,
    memory=DDR4,
    fmax_mhz=260.0,
)

DEVICES = {
    "mx2100": STRATIX10_MX2100,
    "sx2800": STRATIX10_SX2800,
}


def get_device(name: str) -> FPGADevice:
    key = name.lower().replace("stratix10_", "").replace("stratix 10 ", "")
    if key not in DEVICES:
        raise KeyError(f"unknown device {name!r}; have {sorted(DEVICES)}")
    return DEVICES[key]
