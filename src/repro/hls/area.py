"""HLS area estimation.

``estimate(kernel)`` walks the IR, infers LSUs (:mod:`repro.hls.lsu`),
counts operators, local-array storage, loops and barriers, and prices
everything with the calibrated constants in
:mod:`repro.hls.calibration`. ``estimate_program`` sums over the kernels
of a benchmark, matching how the Intel SDK synthesizes every kernel of a
``.cl`` file into one bitstream (which is why multi-kernel benchmarks are
the ones that exhaust BRAM in Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..ocl.ir import Instr, Kernel, Opcode, TRANSCENDENTAL
from ..ocl.types import AddressSpace
from ..passes import loops as loop_analysis
from . import calibration as cal
from .lsu import LSUSite, classify_kernel


@dataclass
class AreaReport:
    """Synthesis-style area report (the unit of Tables II and III)."""

    aluts: int = 0
    ffs: int = 0
    brams: int = 0
    dsps: int = 0
    #: Breakdown: component label -> (aluts, ffs, brams, dsps).
    breakdown: dict[str, tuple[int, int, int, int]] = field(default_factory=dict)
    #: Inferred LSU sites (for reports and tests).
    lsu_sites: list[LSUSite] = field(default_factory=list)

    def add(self, label: str, cost: cal.SiteCost, count: int = 1) -> None:
        if count == 0:
            return
        self.aluts += cost.aluts * count
        self.ffs += cost.ffs * count
        self.brams += cost.brams * count
        self.dsps += cost.dsps * count
        prev = self.breakdown.get(label, (0, 0, 0, 0))
        self.breakdown[label] = (
            prev[0] + cost.aluts * count,
            prev[1] + cost.ffs * count,
            prev[2] + cost.brams * count,
            prev[3] + cost.dsps * count,
        )

    def merge(self, other: "AreaReport") -> "AreaReport":
        out = AreaReport(
            aluts=self.aluts + other.aluts,
            ffs=self.ffs + other.ffs,
            brams=self.brams + other.brams,
            dsps=self.dsps + other.dsps,
        )
        out.breakdown = dict(self.breakdown)
        for label, (a, f, b, d) in other.breakdown.items():
            prev = out.breakdown.get(label, (0, 0, 0, 0))
            out.breakdown[label] = (prev[0] + a, prev[1] + f, prev[2] + b, prev[3] + d)
        out.lsu_sites = self.lsu_sites + other.lsu_sites
        return out

    def as_row(self) -> dict[str, int]:
        return {
            "ALUTs": self.aluts,
            "FFs": self.ffs,
            "BRAMs": self.brams,
            "DSPs": self.dsps,
        }


_INT_ALU_OPS = frozenset(
    {
        Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
        Opcode.SHL, Opcode.ASHR, Opcode.LSHR, Opcode.IMIN, Opcode.IMAX,
        Opcode.IABS, Opcode.ICMP, Opcode.ZEXT,
    }
)
_FP_ADD_OPS = frozenset(
    {Opcode.FADD, Opcode.FSUB, Opcode.FNEG, Opcode.FABS, Opcode.FLOOR,
     Opcode.FMIN, Opcode.FMAX, Opcode.FCMP}
)


def _op_label(ins: Instr) -> str | None:
    op = ins.op
    if op in _INT_ALU_OPS:
        return "int_alu"
    if op is Opcode.MUL:
        return "int_mul"
    if op in (Opcode.DIV, Opcode.REM):
        return "int_div"
    if op in _FP_ADD_OPS:
        return "fp_add"
    if op is Opcode.FMUL:
        return "fp_mul"
    if op is Opcode.FDIV:
        return "fp_div"
    if op in TRANSCENDENTAL:
        return "fp_transcendental"
    if op is Opcode.SELECT:
        return "select"
    if op in (Opcode.SITOFP, Opcode.FPTOSI):
        return "convert"
    return None


def estimate(kernel: Kernel) -> AreaReport:
    """Estimate synthesis area of a single kernel."""
    report = AreaReport()
    report.add("kernel_base", cal.KERNEL_BASE)

    sites = classify_kernel(kernel)
    report.lsu_sites = sites
    for site in sites:
        cost = cal.LSU_COSTS[(site.kind, site.is_store)]
        report.add(f"lsu_{site.kind.value}", cost)

    for ins in kernel.instructions():
        label = _op_label(ins)
        if label is not None:
            report.add(label, cal.OP_COSTS[label])
        elif ins.op is Opcode.BARRIER:
            report.add("barrier", cal.BARRIER_COST)
        elif ins.op is Opcode.PRINTF:
            report.add("printf", cal.PRINTF_COST)

    for arr in kernel.arrays:
        blocks = -(-arr.size * arr.ty.element.size_bytes // cal.M20K_BYTES)
        replication = (
            cal.LOCAL_REPLICATION if arr.space is AddressSpace.LOCAL else 1
        )
        storage = cal.SiteCost(aluts=120, ffs=260, brams=blocks * replication)
        report.add("local_storage", storage)

    nblocks = len(kernel.blocks)
    report.add("control", cal.BLOCK_COST, count=nblocks)
    info = loop_analysis.analyze(kernel)
    report.add("loop_orchestration", cal.LOOP_COST, count=len(info.loops))
    return report


def estimate_program(kernels: Iterable[Kernel]) -> AreaReport:
    """Sum kernel areas: the SDK synthesizes all kernels of a program into
    one bitstream."""
    total = AreaReport()
    for kernel in kernels:
        total = total.merge(estimate(kernel))
    return total
