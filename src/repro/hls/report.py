"""Rendering of synthesis-style area reports as ASCII tables."""

from __future__ import annotations

from .area import AreaReport
from .device import FPGADevice

_COLUMNS = ("ALUTs", "FFs", "BRAMs", "DSPs")


def format_table(rows: dict[str, AreaReport], title: str = "") -> str:
    """Render a Table III-style report: one row per benchmark/kernel."""
    header = ["Name"] + list(_COLUMNS)
    body = []
    for name, report in rows.items():
        r = report.as_row()
        body.append([name] + [f"{r[c]:,}" for c in _COLUMNS])
    return _render(header, body, title)


def format_utilization(
    report: AreaReport, device: FPGADevice, title: str = ""
) -> str:
    """Render one report with per-resource percentages of the device."""
    util = device.utilization(report.aluts, report.ffs, report.brams, report.dsps)
    header = ["Resource", "Used", "Available", "Utilization"]
    body = [
        ["ALUTs", f"{report.aluts:,}", f"{device.aluts:,}", f"{util['aluts']:.1%}"],
        ["FFs", f"{report.ffs:,}", f"{device.ffs:,}", f"{util['ffs']:.1%}"],
        ["BRAMs", f"{report.brams:,}", f"{device.brams:,}", f"{util['brams']:.1%}"],
        ["DSPs", f"{report.dsps:,}", f"{device.dsps:,}", f"{util['dsps']:.1%}"],
    ]
    return _render(header, body, title or device.name)


def format_breakdown(report: AreaReport, title: str = "") -> str:
    """Render the per-component breakdown of one area report."""
    header = ["Component", "ALUTs", "FFs", "BRAMs", "DSPs"]
    body = []
    for label, (a, f, b, d) in sorted(
        report.breakdown.items(), key=lambda kv: -kv[1][2]
    ):
        body.append([label, f"{a:,}", f"{f:,}", f"{b:,}", f"{d:,}"])
    body.append(
        ["TOTAL", f"{report.aluts:,}", f"{report.ffs:,}",
         f"{report.brams:,}", f"{report.dsps:,}"]
    )
    return _render(header, body, title)


def _render(header: list[str], body: list[list[str]], title: str) -> str:
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: list[str]) -> str:
        return " | ".join(c.rjust(w) if i else c.ljust(w)
                          for i, (c, w) in enumerate(zip(cells, widths)))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(header))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in body)
    return "\n".join(lines)
