"""The HLS approach: a model of the Intel FPGA SDK for OpenCL.

Pipeline (paper Figure 3): kernel IR → LSU inference → area estimation →
capacity check against a Stratix 10 device → pipelined execution model.
Failure modes reproduce Table I: ``SynthesisError("bram")`` for programs
exceeding M20K capacity, ``SynthesisError("atomics")`` for atomic
functions on the HBM2 (heterogeneous-memory) board.
"""

from .area import AreaReport, estimate, estimate_program
from .compiler import HLSBackend, HLSCompiledKernel, aoc
from .device import (
    DDR4,
    DEVICES,
    HBM2,
    STRATIX10_MX2100,
    STRATIX10_SX2800,
    FPGADevice,
    MemorySystem,
    get_device,
)
from .lsu import (
    BURST_COALESCED_UNITS,
    AffineIndexAnalysis,
    LSUKind,
    LSUSite,
    classify_kernel,
)
from .perf import (
    HLSKernelProfile,
    HLSModelParams,
    PipelineEstimate,
    estimate_cycles,
    screen_cycles,
)
from .report import format_breakdown, format_table, format_utilization

__all__ = [
    "AffineIndexAnalysis",
    "AreaReport",
    "BURST_COALESCED_UNITS",
    "DDR4",
    "DEVICES",
    "FPGADevice",
    "HBM2",
    "HLSBackend",
    "HLSCompiledKernel",
    "HLSKernelProfile",
    "HLSModelParams",
    "LSUKind",
    "LSUSite",
    "MemorySystem",
    "PipelineEstimate",
    "STRATIX10_MX2100",
    "STRATIX10_SX2800",
    "aoc",
    "classify_kernel",
    "estimate",
    "estimate_cycles",
    "estimate_program",
    "screen_cycles",
    "format_breakdown",
    "format_table",
    "format_utilization",
    "get_device",
]
