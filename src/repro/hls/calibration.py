"""Calibrated cost constants for the HLS area model.

The area model is *mechanistic* (costs attach to inferred LSUs, arithmetic
operators, local arrays, barriers and control) but its coefficients are
*calibrated* against the synthesis reports published in the paper (Tables
II and III), because we cannot run Quartus. The BRAM column is the one
the paper's failure analysis hinges on, and its coefficients reproduce the
published backprop sequence almost exactly:

==================  ======  =====================================
site kind            BRAM    paper evidence
==================  ======  =====================================
strided/indirect     1,005   "over 1,000 BRAM blocks per line" (§III-B)
pipelined load         167   Listing 3 / Table II O2 delta
streaming load         338   vecadd row of Table III
global store           150   Table II store residual
kernel base            239   vecadd row residual
==================  ======  =====================================

``tools/fit_calibration.py`` refits the ALUT/FF coefficients from the
published rows by non-negative least squares given the benchmark IRs in
this repository; the values below are its output, frozen for
reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass

from .lsu import LSUKind


@dataclass(frozen=True)
class SiteCost:
    aluts: int
    ffs: int
    brams: int
    dsps: int = 0


#: Per-LSU-site costs, keyed by inferred kind and store-ness.
LSU_COSTS: dict[tuple[LSUKind, bool], SiteCost] = {
    # (kind, is_store): cost
    (LSUKind.STREAMING, False): SiteCost(aluts=10_800, ffs=36_000, brams=338),
    (LSUKind.STREAMING, True): SiteCost(aluts=8_600, ffs=28_000, brams=150),
    (LSUKind.STRIDED, False): SiteCost(aluts=52_400, ffs=131_000, brams=1_005),
    (LSUKind.STRIDED, True): SiteCost(aluts=11_400, ffs=36_500, brams=150),
    (LSUKind.INDIRECT, False): SiteCost(aluts=52_400, ffs=131_000, brams=1_005),
    (LSUKind.INDIRECT, True): SiteCost(aluts=11_400, ffs=36_500, brams=150),
    (LSUKind.PIPELINED, False): SiteCost(aluts=5_200, ffs=15_600, brams=167, dsps=1),
    (LSUKind.PIPELINED, True): SiteCost(aluts=4_100, ffs=12_400, brams=96),
    (LSUKind.UNIFORM, False): SiteCost(aluts=2_400, ffs=6_200, brams=64),
    (LSUKind.UNIFORM, True): SiteCost(aluts=2_200, ffs=5_600, brams=64),
    (LSUKind.ATOMIC, False): SiteCost(aluts=14_800, ffs=31_000, brams=180),
    (LSUKind.ATOMIC, True): SiteCost(aluts=14_800, ffs=31_000, brams=180),
    (LSUKind.LOCAL_PORT, False): SiteCost(aluts=900, ffs=2_400, brams=4),
    (LSUKind.LOCAL_PORT, True): SiteCost(aluts=900, ffs=2_400, brams=4),
    (LSUKind.CONSTANT_CACHE, False): SiteCost(aluts=2_600, ffs=7_400, brams=96),
    (LSUKind.CONSTANT_CACHE, True): SiteCost(aluts=2_600, ffs=7_400, brams=96),
}

#: Fixed per-kernel cost: NDRange dispatch, kernel interface, CSRs.
KERNEL_BASE = SiteCost(aluts=42_000, ffs=148_000, brams=239)

#: Arithmetic operator costs (per static operator instance).
OP_COSTS: dict[str, SiteCost] = {
    "int_alu": SiteCost(aluts=96, ffs=160, brams=0),  # add/sub/logic/shift/cmp
    "int_mul": SiteCost(aluts=210, ffs=340, brams=0, dsps=1),
    "int_div": SiteCost(aluts=2_400, ffs=3_900, brams=0),
    "fp_add": SiteCost(aluts=720, ffs=1_200, brams=0, dsps=1),
    "fp_mul": SiteCost(aluts=640, ffs=1_050, brams=0, dsps=1),
    "fp_div": SiteCost(aluts=3_800, ffs=6_400, brams=2, dsps=2),
    "fp_transcendental": SiteCost(aluts=6_200, ffs=10_800, brams=4, dsps=4),
    "select": SiteCost(aluts=64, ffs=96, brams=0),
    "convert": SiteCost(aluts=220, ffs=380, brams=0),
}

#: Control costs.
BLOCK_COST = SiteCost(aluts=450, ffs=900, brams=0)
LOOP_COST = SiteCost(aluts=3_800, ffs=8_200, brams=6)
#: Barriers force work-item context buffering in the pipeline.
BARRIER_COST = SiteCost(aluts=16_000, ffs=42_000, brams=72)
PRINTF_COST = SiteCost(aluts=9_800, ffs=21_000, brams=48)

#: Local array storage: one M20K per 2,560 bytes, replicated for the
#: second port (HLS double-pumps local memories for NDRange pipelines).
M20K_BYTES = 2_560
LOCAL_REPLICATION = 2
