"""Client for the experiment-service daemon.

Finds the daemon through the state directory's ``daemon.json``
discovery file and speaks the JSON-lines protocol over localhost TCP,
one connection per request (connections are cheap on loopback, and a
connectionless client has no stuck-socket failure mode to manage).

The robustness posture mirrors the daemon's:

* **bounded retries with jittered exponential backoff** — transient
  failures (daemon restarting, connection refused) and backpressure
  rejections (``queue-full`` / ``client-limit``) are retried up to
  ``retries`` times, honouring the server's ``retry_after`` hint and
  jittering the delay so a thundering herd of rejected clients does not
  re-arrive in lockstep;
* **idempotency keys** — :meth:`submit` attaches one (auto-generated
  per call, stable across that call's retries), so a retried
  submission whose first attempt actually landed maps onto the same
  job instead of enqueueing twice;
* **typed failures** — error replies surface as the exceptions their
  codes pin (:class:`~repro.errors.QueueFull`,
  :class:`~repro.errors.JobNotFound`, :class:`~repro.errors.ServiceError`
  with ``code`` set), never as string-matching exercises.
"""

from __future__ import annotations

import json
import os
import random
import socket
import time
import uuid
from pathlib import Path
from typing import Any

from ..errors import ServiceError
from . import protocol

__all__ = ["ServiceClient", "resolve_state_dir"]


def resolve_state_dir(state_dir: str | Path | None = None) -> Path:
    """The service state directory: explicit arg, else
    ``$REPRO_SERVICE_DIR``, else ``./.repro-service``."""
    if state_dir:
        return Path(state_dir)
    return Path(os.environ.get(protocol.SERVICE_DIR_ENV, "")
                or protocol.DEFAULT_STATE_DIR)


class ServiceClient:
    """Talks to one daemon. Safe to share across threads (no mutable
    per-request state beyond the RNG, which is lock-free and only
    feeds jitter)."""

    #: codes worth retrying: the daemon said "later", not "never".
    RETRYABLE_CODES = ("unavailable", "queue-full", "client-limit")

    def __init__(self, state_dir: str | Path | None = None,
                 client_id: str | None = None, retries: int = 5,
                 backoff: float = 0.05, backoff_cap: float = 2.0,
                 timeout: float = 60.0,
                 rng: random.Random | None = None):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.state_dir = resolve_state_dir(state_dir)
        self.client_id = client_id or f"client-{uuid.uuid4().hex[:12]}"
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.timeout = timeout
        self._rng = rng or random.Random()

    # -- transport ---------------------------------------------------------

    def _daemon_info(self) -> dict:
        path = self.state_dir / protocol.DAEMON_INFO_NAME
        try:
            info = json.loads(path.read_text())
            host, port = str(info["host"]), int(info["port"])
        except (OSError, ValueError, KeyError, TypeError):
            raise ServiceError(
                f"no experiment daemon found under {self.state_dir} "
                f"(start one with `python -m repro serve`)",
                code="unavailable")
        return {"host": host, "port": port}

    def _request_once(self, payload: dict) -> dict:
        info = self._daemon_info()
        try:
            with socket.create_connection(
                    (info["host"], info["port"]),
                    timeout=self.timeout) as sock:
                with sock.makefile("rwb") as stream:
                    protocol.write_message(stream, payload)
                    reply = protocol.read_message(stream)
        except OSError as exc:
            raise ServiceError(f"daemon unreachable: {exc}",
                               code="unavailable")
        if reply is None:
            raise ServiceError("daemon closed the connection",
                               code="unavailable")
        return reply

    def request(self, payload: dict) -> dict:
        """One request with bounded, jittered retries; returns the
        ``ok`` reply or raises the typed exception of the final
        error."""
        attempt = 0
        while True:
            attempt += 1
            try:
                reply = self._request_once(payload)
            except ServiceError as exc:
                if (exc.code in self.RETRYABLE_CODES
                        and attempt <= self.retries):
                    self._sleep(attempt, exc.retry_after)
                    continue
                raise
            if reply.get("ok"):
                return reply
            exc = protocol.exception_for_reply(reply)
            if (exc.code in self.RETRYABLE_CODES
                    and attempt <= self.retries):
                self._sleep(attempt, exc.retry_after)
                continue
            raise exc

    def _sleep(self, attempt: int, retry_after: float | None) -> None:
        delay = min(self.backoff_cap,
                    self.backoff * (2 ** (attempt - 1)))
        delay *= 0.5 + self._rng.random()  # jitter: [0.5x, 1.5x)
        if retry_after:
            delay = max(delay, retry_after)
        time.sleep(delay)

    # -- operations --------------------------------------------------------

    def submit(self, job: dict,
               idempotency_key: str | None = None) -> dict:
        """Submit one job; returns the ``{"job_id", "state",
        "coalesced"}`` reply. An idempotency key is auto-generated per
        call (stable across this call's internal retries) unless the
        caller pins one."""
        payload = {
            "op": "submit",
            "client": self.client_id,
            "job": job,
            "idempotency_key": idempotency_key or uuid.uuid4().hex,
        }
        return self.request(payload)

    def status(self, job_id: str | None = None) -> dict:
        if job_id is None:
            return self.health()
        return self.request({"op": "status", "job_id": job_id})

    def results(self, job_id: str) -> dict:
        return self.request({"op": "results", "job_id": job_id})

    def health(self) -> dict:
        return self.request({"op": "health"})

    def drain(self) -> dict:
        return self.request({"op": "drain"})

    # -- conveniences ------------------------------------------------------

    def wait(self, job_id: str, timeout: float = 600.0,
             poll_s: float = 0.05) -> dict:
        """Poll until ``job_id`` finishes; returns its ``results``
        reply (state ``done`` or ``failed``). The poll interval backs
        off geometrically to 0.5s so long waits stay cheap."""
        deadline = time.monotonic() + timeout
        delay = poll_s
        while True:
            reply = self.results(job_id)
            if reply.get("state") in ("done", "failed"):
                return reply
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout:g}s waiting for "
                    f"{job_id} (last state {reply.get('state')!r})",
                    code="timeout")
            time.sleep(delay)
            delay = min(0.5, delay * 1.5)

    def wait_all(self, job_ids: list[str],
                 timeout: float = 600.0) -> dict[str, dict]:
        """Wait for every job; returns ``{job_id: results-reply}``."""
        deadline = time.monotonic() + timeout
        replies: dict[str, dict] = {}
        for job_id in job_ids:
            remaining = max(0.1, deadline - time.monotonic())
            replies[job_id] = self.wait(job_id, timeout=remaining)
        return replies

    def wait_gone(self, timeout: float = 60.0) -> None:
        """Block until the daemon is unreachable (post-drain helper)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                self._request_once({"op": "health"})
            except ServiceError:
                return
            time.sleep(0.1)
        raise ServiceError("daemon still reachable after drain",
                           code="timeout")
