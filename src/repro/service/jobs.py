"""Job kinds the experiment service executes, and their validation.

A *job* is one experiment point expressed as a plain JSON object, so it
can cross the wire, live in the write-ahead journal, and be handed to
the engine's worker pool. Validation is strict and typed: unknown
kinds, unknown fields, wrong types, and out-of-range values are all
rejected at admission with a ``bad-request`` reply — a malformed spec
must never reach (let alone crash) a worker.

Kinds
-----

``fig7-cell``
    One cell of the paper's Figure 7 warp/thread sweep: ``benchmark``
    (vecadd or transpose), ``warps``, ``threads``, plus optional
    ``cores`` and ``n``. The content key is **identical** to the one
    :func:`repro.harness.sweep.run_sweep` uses, so service results,
    batch-CLI results, and resumed campaigns all deduplicate against
    the same :class:`~repro.harness.result_cache.ResultCache` entries.

``dse``
    One hierarchical design-space exploration (see
    :func:`repro.harness.dse.run_dse`): screen a ``cores`` x ``warps``
    x ``threads`` grid with the analytical model, then confirm the
    Pareto frontier (or the flat top-K, per ``confirm``) on SimX.
    ``calibrated`` fits the model against SimX first, so the job's
    frontier pruning uses measured error bounds. The result payload is
    :meth:`~repro.harness.dse.DSEResult.to_payload`.

``probe``
    A synthetic point for smoke/chaos testing the service itself:
    echoes ``value`` after an optional ``sleep_s``, or raises when
    ``boom`` is set. ``nonce`` forces distinct content keys for
    otherwise identical probes.

:func:`execute_job` is the single module-level (spawn-picklable)
dispatch the engine fans across workers, so the daemon batches *mixed*
kinds into one worker-pool campaign.
"""

from __future__ import annotations

import numbers
import time
from typing import Any

from ..errors import ServiceError

__all__ = ["JOB_KINDS", "execute_job", "job_key", "validate_job"]

#: admission bounds for fig7-cell geometry/problem size — generous
#: enough for any sweep the harness can run, tight enough that a typo
#: (warps=80000) cannot wedge a worker for hours.
MAX_GEOMETRY = 64
MIN_N, MAX_N = 16, 1 << 20

#: longest sleep a probe may request (probes exist to *test* the
#: service; an unbounded sleep would be a self-inflicted hang).
MAX_PROBE_SLEEP_S = 600.0

SWEEP_BENCHMARKS = ("vecadd", "transpose")

#: admission bounds for dse jobs: SimX caps threads at 32 per warp, a
#: grid bigger than this screens in well under a second but signals a
#: typo, and the confirmation budget bounds the expensive part.
MAX_DSE_THREADS = 32
MAX_DSE_POINTS = 4096
MAX_DSE_CONFIRM = 64
DSE_CONFIRM_MODES = ("frontier", "top", "none")

JOB_KINDS = ("fig7-cell", "dse", "probe")


def _bad(message: str) -> ServiceError:
    return ServiceError(message, code="bad-request")


def _require_int(spec: dict, field: str, lo: int, hi: int,
                 default: int | None = None) -> int:
    value = spec.get(field, default)
    if value is None:
        raise _bad(f"job field {field!r} is required")
    if isinstance(value, bool) or not isinstance(value, int):
        raise _bad(f"job field {field!r} must be an integer, "
                   f"got {type(value).__name__}")
    if not lo <= value <= hi:
        raise _bad(f"job field {field!r} must be in [{lo}, {hi}], "
                   f"got {value}")
    return value


def _require_int_list(spec: dict, field: str, lo: int, hi: int,
                      default: list[int]) -> list[int]:
    """A non-empty list of bounded integers, canonicalised to sorted
    unique values (so logically-equal grids share one content key)."""
    value = spec.get(field, default)
    if not isinstance(value, (list, tuple)) or not value:
        raise _bad(f"job field {field!r} must be a non-empty list "
                   f"of integers")
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int):
            raise _bad(f"job field {field!r} entries must be integers, "
                       f"got {item!r}")
        if not lo <= item <= hi:
            raise _bad(f"job field {field!r} entries must be in "
                       f"[{lo}, {hi}], got {item}")
    return sorted(set(value))


def _check_fields(spec: dict, allowed: set[str]) -> None:
    unknown = set(spec) - allowed - {"kind"}
    if unknown:
        raise _bad(f"unknown job field(s): {sorted(unknown)} "
                   f"(allowed: {sorted(allowed)})")


def validate_job(spec: Any) -> dict:
    """Validate and normalise one job spec (fill defaults, fix field
    order), raising ``bad-request`` :class:`ServiceError` on any
    malformed input. The returned dict is the canonical spec used for
    keying, journalling, and execution."""
    if not isinstance(spec, dict):
        raise _bad("job must be a JSON object")
    kind = spec.get("kind")
    if kind not in JOB_KINDS:
        raise _bad(f"unknown job kind {kind!r} "
                   f"(choose from {list(JOB_KINDS)})")
    if kind == "fig7-cell":
        _check_fields(spec, {"benchmark", "warps", "threads", "cores",
                             "n"})
        benchmark = spec.get("benchmark")
        if benchmark not in SWEEP_BENCHMARKS:
            raise _bad(f"fig7-cell benchmark must be one of "
                       f"{list(SWEEP_BENCHMARKS)}, got {benchmark!r}")
        return {
            "kind": "fig7-cell",
            "benchmark": benchmark,
            "warps": _require_int(spec, "warps", 1, MAX_GEOMETRY),
            "threads": _require_int(spec, "threads", 1, MAX_GEOMETRY),
            "cores": _require_int(spec, "cores", 1, MAX_GEOMETRY, 4),
            "n": _require_int(spec, "n", MIN_N, MAX_N, 4096),
        }
    if kind == "dse":
        _check_fields(spec, {"benchmark", "n", "cores", "warps",
                             "threads", "confirm", "frontier_cap",
                             "simulate_top", "calibrated"})
        benchmark = spec.get("benchmark")
        if benchmark not in SWEEP_BENCHMARKS:
            raise _bad(f"dse benchmark must be one of "
                       f"{list(SWEEP_BENCHMARKS)}, got {benchmark!r}")
        cores = _require_int_list(spec, "cores", 1, MAX_GEOMETRY,
                                  [1, 2, 4, 8])
        warps = _require_int_list(spec, "warps", 1, MAX_GEOMETRY,
                                  [2, 4, 8, 16])
        threads = _require_int_list(spec, "threads", 1, MAX_DSE_THREADS,
                                    [2, 4, 8, 16])
        points = len(cores) * len(warps) * len(threads)
        if points > MAX_DSE_POINTS:
            raise _bad(f"dse grid has {points} points "
                       f"(cap: {MAX_DSE_POINTS})")
        confirm = spec.get("confirm", "frontier")
        if confirm not in DSE_CONFIRM_MODES:
            raise _bad(f"dse confirm must be one of "
                       f"{list(DSE_CONFIRM_MODES)}, got {confirm!r}")
        calibrated = spec.get("calibrated", True)
        if not isinstance(calibrated, bool):
            raise _bad("dse calibrated must be a boolean")
        return {
            "kind": "dse",
            "benchmark": benchmark,
            "n": _require_int(spec, "n", MIN_N, MAX_N, 4096),
            "cores": cores,
            "warps": warps,
            "threads": threads,
            "confirm": confirm,
            "frontier_cap": _require_int(spec, "frontier_cap", 1,
                                         MAX_DSE_CONFIRM, 8),
            "simulate_top": _require_int(spec, "simulate_top", 1,
                                         MAX_DSE_CONFIRM, 8),
            "calibrated": calibrated,
        }
    # probe
    _check_fields(spec, {"value", "sleep_s", "boom", "nonce"})
    value = spec.get("value", 0)
    if not (value is None or isinstance(value, (str, bool))
            or isinstance(value, numbers.Real)):
        raise _bad("probe value must be a JSON scalar")
    sleep_s = spec.get("sleep_s", 0.0)
    if isinstance(sleep_s, bool) or not isinstance(
            sleep_s, numbers.Real):
        raise _bad("probe sleep_s must be a number")
    sleep_s = float(sleep_s)
    if not 0.0 <= sleep_s <= MAX_PROBE_SLEEP_S:
        raise _bad(f"probe sleep_s must be in "
                   f"[0, {MAX_PROBE_SLEEP_S:g}], got {sleep_s!r}")
    boom = spec.get("boom", False)
    if not isinstance(boom, bool):
        raise _bad("probe boom must be a boolean")
    nonce = spec.get("nonce", "")
    if not isinstance(nonce, str):
        raise _bad("probe nonce must be a string")
    return {"kind": "probe", "value": value, "sleep_s": sleep_s,
            "boom": boom, "nonce": nonce}


def job_key(cache, spec: dict) -> str:
    """The content-addressed cache key of a validated job spec.

    ``fig7-cell`` keys reproduce :func:`~repro.harness.sweep.run_sweep`
    exactly (same parts, same canonical :class:`VortexConfig`), which
    is what lets the service dedupe against sweeps run by the batch
    CLI — and vice versa. Other kinds (``dse``, ``probe``) key on their
    canonical spec directly: :func:`validate_job` already normalised
    field order, defaults, and grid lists, so equal requests collide.
    """
    if spec["kind"] == "fig7-cell":
        from ..vortex import VortexConfig
        from ..harness.sweep import SWEEP_SEED

        config = VortexConfig().with_geometry(
            cores=spec["cores"], warps=spec["warps"],
            threads=spec["threads"])
        return cache.key(kind="fig7-cell", benchmark=spec["benchmark"],
                         config=config, n=spec["n"], seed=SWEEP_SEED)
    return cache.key(**spec)


def execute_job(spec: dict, checkpoint: dict | None = None) -> dict:
    """Run one validated job spec — the engine's unit of work.

    Module-level and called with plain-dict arguments, so it is
    picklable into spawned workers and a batch may mix job kinds.
    Returns a JSON-serialisable result (the engine memoises it in the
    result cache).

    ``checkpoint`` is an optional snapshot spec (see
    :meth:`~repro.vortex.simx.checkpoint.CheckpointPlan.from_spec`) the
    daemon attaches per job; it changes *scheduling* (the simulation can
    yield mid-flight and resume), never the result, so it is
    deliberately not part of the job spec or its content key.
    """
    kind = spec["kind"]
    if kind == "probe":
        if spec["sleep_s"]:
            time.sleep(spec["sleep_s"])
        if spec["boom"]:
            raise RuntimeError("probe boom requested")
        return {"value": spec["value"]}
    if kind == "fig7-cell":
        from ..harness.sweep import sweep_point
        from ..vortex import VortexConfig

        config = VortexConfig().with_geometry(
            cores=spec["cores"], warps=spec["warps"],
            threads=spec["threads"])
        return sweep_point(spec["benchmark"], config, spec["n"],
                           checkpoint=checkpoint)
    if kind == "dse":
        from ..harness.dse import run_dse

        calibration = None
        if spec["calibrated"]:
            from ..calibrate import run_calibration

            # a small-n fit keeps the calibration sims a fraction of
            # the job; the fitted constants transfer across n (the
            # regression tests bound the held-out error).
            calibration = run_calibration(
                benchmarks=(spec["benchmark"],),
                n=min(spec["n"], 1024))
        result = run_dse(
            spec["benchmark"], n=spec["n"],
            core_counts=tuple(spec["cores"]),
            warp_sizes=tuple(spec["warps"]),
            thread_sizes=tuple(spec["threads"]),
            calibration=calibration,
            confirm=spec["confirm"],
            frontier_cap=spec["frontier_cap"],
            simulate_top=spec["simulate_top"],
            checkpoint_dir=(checkpoint or {}).get("dir"),
            checkpoint_every=(checkpoint or {}).get("every"),
            checkpoint_deadline_s=(checkpoint or {}).get("deadline_s"),
            checkpoint_stop_file=(checkpoint or {}).get("stop_file"),
        )
        return result.to_payload()
    raise ServiceError(f"unexecutable job kind {kind!r}",
                       code="internal")
