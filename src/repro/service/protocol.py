"""Wire protocol of the experiment service: JSON lines over localhost TCP.

One request per line, one reply per line, UTF-8 JSON objects, newline
terminated; a connection may issue any number of requests before
closing. The framing is deliberately boring — every robustness property
lives in the *handling*:

* a request line longer than :data:`MAX_LINE_BYTES` is rejected with a
  typed error before it is buffered whole, so a hostile or broken
  client cannot balloon daemon memory;
* a line that is not valid JSON, not an object, or not a known ``op``
  yields an ``{"ok": false, "code": "bad-request", ...}`` reply — the
  daemon never crashes (or even logs a traceback) on malformed input;
* every error reply carries a stable machine-readable ``code`` (and,
  for backpressure rejections, a ``retry_after`` hint in seconds), so
  clients and tests branch on codes, never message strings.

Requests::

    {"op": "submit", "client": "...", "job": {...},
     "idempotency_key": "..."}        -> {"ok": true, "job_id": ...,
                                          "state": ..., "coalesced": ...}
    {"op": "status", "job_id": "..."} -> {"ok": true, "state": ...}
    {"op": "status"}                  -> health payload
    {"op": "results", "job_id": ...}  -> {"ok": true, "state": "done",
                                          "value": ...} (or "failed"
                                          with a PointFailure payload)
    {"op": "health"}                  -> queue/worker/cache statistics
    {"op": "drain"}                   -> finish queued jobs, then exit

Error replies::

    {"ok": false, "code": "<stable-code>", "error": "<human text>",
     "retry_after": <seconds, only on backpressure codes>}
"""

from __future__ import annotations

import json
from typing import Any, BinaryIO

from ..errors import JobNotFound, QueueFull, ServiceError

__all__ = [
    "CODES",
    "DAEMON_INFO_NAME",
    "DEFAULT_STATE_DIR",
    "MAX_LINE_BYTES",
    "OPS",
    "SERVICE_DIR_ENV",
    "ProtocolError",
    "error_reply",
    "exception_for_reply",
    "ok_reply",
    "read_message",
    "write_message",
]

#: hard cap on one request/reply line (framing-level memory bound).
MAX_LINE_BYTES = 1 << 20

#: environment variable naming the service state directory (journal,
#: result cache, daemon address file) — the CLI's ``--state-dir``
#: default, shared by daemon and clients.
SERVICE_DIR_ENV = "REPRO_SERVICE_DIR"
DEFAULT_STATE_DIR = ".repro-service"

#: discovery file the daemon writes (atomically) into the state
#: directory after binding: ``{"pid", "host", "port", "started_unix"}``.
DAEMON_INFO_NAME = "daemon.json"

#: every operation the daemon understands.
OPS = ("submit", "status", "results", "health", "drain")

#: the stable error codes of the protocol — additions are fine,
#: renames are a breaking change.
CODES = (
    "bad-request",      # malformed line / unknown op / invalid job spec
    "queue-full",       # global admission queue at capacity
    "client-limit",     # this client's in-flight cap reached
    "job-not-found",    # unknown or evicted job id
    "shutting-down",    # daemon is draining; no new admissions
    "result-unavailable",  # job recorded done but its cache entry is gone
    "unavailable",      # client-side: daemon unreachable
    "internal",         # unexpected daemon-side failure (bug)
)


class ProtocolError(ServiceError):
    """A connection-level framing violation (oversized or torn line).

    Raised by :func:`read_message`; the daemon replies with the error
    and closes that connection, the client surfaces it.
    """

    code = "bad-request"


def read_message(stream: BinaryIO) -> dict | None:
    """Read one JSON-object line; ``None`` on a clean EOF.

    Raises :class:`ProtocolError` for an oversized line, a torn line
    (EOF before the newline), non-JSON bytes, or a non-object payload.
    """
    line = stream.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"request line exceeds {MAX_LINE_BYTES} bytes")
    if not line.endswith(b"\n"):
        raise ProtocolError("connection closed mid-line")
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        raise ProtocolError("request is not valid JSON")
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    return message


def write_message(stream: BinaryIO, message: dict) -> None:
    """Write one JSON-object line and flush it."""
    stream.write(json.dumps(message, separators=(",", ":")).encode()
                 + b"\n")
    stream.flush()


def ok_reply(**fields: Any) -> dict:
    reply = {"ok": True}
    reply.update(fields)
    return reply


def error_reply(code: str, message: str,
                retry_after: float | None = None) -> dict:
    reply = {"ok": False, "code": code, "error": message}
    if retry_after is not None:
        reply["retry_after"] = round(float(retry_after), 3)
    return reply


def exception_for_reply(reply: dict) -> ServiceError:
    """Map an error reply to the typed exception its code pins.

    ``queue-full``/``client-limit`` become :class:`QueueFull`,
    ``job-not-found`` becomes :class:`JobNotFound`, everything else a
    plain :class:`ServiceError` carrying the code verbatim — so tests
    assert ``exc.code``, never message strings.
    """
    code = str(reply.get("code", "internal"))
    message = str(reply.get("error", "unknown service error"))
    retry_after = reply.get("retry_after")
    if retry_after is not None:
        retry_after = float(retry_after)
    if code in ("queue-full", "client-limit"):
        return QueueFull(message, code=code, retry_after=retry_after)
    if code == "job-not-found":
        return JobNotFound(message, retry_after=retry_after)
    return ServiceError(message, code=code, retry_after=retry_after)
