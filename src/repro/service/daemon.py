"""The experiment-service daemon: a crash-safe job queue over the engine.

``python -m repro serve`` turns the PR 2/PR 4 parallel, fault-tolerant
batch engine into an always-on service. Robustness is the design
headline; every mechanism below exists to survive a specific failure:

**Malformed input** — every request is validated at the protocol layer
(framing, JSON, op) and at admission (typed job specs); violations get
stable-coded error replies and the daemon keeps serving.

**Client floods** — admission control bounds all daemon memory: a
bounded queue (``queue-full`` rejections with a ``retry_after`` hint),
a per-client in-flight cap (``client-limit``), a framing-level line
cap, and an LRU bound on retained finished jobs. Identical requests
(by content key) coalesce onto one execution, and idempotency keys
make client-side retries safe, so a retry storm cannot multiply work.

**Worker crashes and hangs** — jobs run through
:class:`~repro.harness.engine.ExperimentEngine` with ``keep_going``
retries/watchdog/quarantine, so a killed or wedged worker costs at most
one job its retry budget, never the daemon. ``REPRO_FAULT_PLAN``
injection reaches service workers through the same environment
inheritance as batch runs (sites ``service#<index>``).

**Daemon death** — a write-ahead journal (append + ``fsync`` *before*
the client's ``ok``) plus the durable result cache make ``kill -9``
recoverable: ``serve --resume`` replays the journal, re-queues every
job without a ``done`` record, and the content-addressed cache
short-circuits any point whose result already committed — only
genuinely unfinished points re-execute.

**Operator shutdown** — SIGINT/SIGTERM stop admissions, let the
in-flight batch checkpoint through the engine's incremental commits,
flush the journal, and exit; a second signal hard-exits immediately
(safe: the journal is durable at every instant). A client ``drain``
finishes all queued work first.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socketserver
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import PointFailure, ServiceError
from ..harness.engine import ExperimentEngine
from ..harness.result_cache import MISS, ResultCache
from ..profiling import Profiler
from . import protocol
from .jobs import execute_job, job_key, validate_job
from .journal import Journal

__all__ = ["ExperimentDaemon"]

QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"

_JOB_ID_RE = re.compile(r"^j(\d+)-[0-9a-f]+$")


@dataclass
class _Job:
    """One admitted job: the daemon-side record of a queued point."""

    id: str
    spec: dict
    key: str
    seq: int
    state: str = QUEUED
    #: every client coalesced onto this execution.
    clients: set[str] = field(default_factory=set)
    idem: str | None = None
    result: Any = None
    failure: dict | None = None


class _Server(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    #: set by the daemon after construction.
    experiment_daemon: "ExperimentDaemon"


class _Handler(socketserver.StreamRequestHandler):
    #: per-connection socket timeout: a stalled client cannot pin its
    #: handler thread forever.
    timeout = 120

    def handle(self) -> None:  # pragma: no cover - exercised via TCP
        daemon = self.server.experiment_daemon
        while True:
            try:
                message = protocol.read_message(self.rfile)
            except protocol.ProtocolError as exc:
                self._reply(protocol.error_reply(exc.code, str(exc)))
                return
            except OSError:
                return
            if message is None:
                return
            if not self._reply(daemon.handle_request(message)):
                return

    def _reply(self, reply: dict) -> bool:
        try:
            protocol.write_message(self.wfile, reply)
            return True
        except (OSError, ValueError):
            return False


class ExperimentDaemon:
    """Crash-safe job-queue daemon over the experiment engine.

    Parameters
    ----------
    state_dir:
        Directory holding the write-ahead journal, the durable result
        cache, and the ``daemon.json`` discovery file.
    jobs:
        Engine worker processes (``1`` = inline, ``0`` = per CPU).
    max_queue:
        Admission bound on *queued* (not yet running) jobs; beyond it
        submissions are rejected with ``queue-full`` + ``retry_after``.
    per_client:
        In-flight (queued + running) job cap per client id; beyond it
        submissions are rejected with ``client-limit``.
    batch_max:
        Jobs per engine campaign — the scheduler drains up to this many
        queued jobs into one ``engine.run`` call; results still stream
        back per job via the engine's ``on_result`` hook.
    max_done:
        Finished jobs retained in memory for ``status``/``results``
        (oldest evicted first; their values remain reachable through
        the content-addressed cache by resubmitting the same spec).
    resume:
        Replay the journal on startup, re-queueing unfinished jobs.
    retries / point_timeout:
        Engine fault-tolerance policy for service campaigns.
    checkpoint_dir / checkpoint_every:
        When ``checkpoint_dir`` is set, every ``fig7-cell`` (and every
        ``dse`` confirmation) simulation
        snapshots its machine state there on a ``checkpoint_every``
        cycle cadence (default
        :data:`~repro.vortex.simx.checkpoint.DEFAULT_EVERY_CYCLES`) and
        yields cooperatively before the engine watchdog would kill it.
        A stop request drops a ``STOP`` file in the directory so
        running simulations checkpoint out at the next poll; a later
        ``serve --resume`` re-queues them and they resume mid-flight
        from their snapshots.
    """

    def __init__(self, state_dir: str | Path, jobs: int = 1,
                 host: str = "127.0.0.1", port: int = 0,
                 max_queue: int = 256, per_client: int = 32,
                 batch_max: int = 16, max_done: int = 4096,
                 resume: bool = False, retries: int = 1,
                 point_timeout: float | None = None,
                 compact_every: int = 4096,
                 checkpoint_dir: str | Path | None = None,
                 checkpoint_every: int | None = None):
        if max_queue < 1 or per_client < 1 or batch_max < 1:
            raise ValueError("max_queue, per_client and batch_max must "
                             "be >= 1")
        if max_done < 1:
            raise ValueError("max_done must be >= 1")
        self.state_dir = Path(state_dir)
        self.host, self.port = host, port
        self.max_queue = max_queue
        self.per_client = per_client
        self.batch_max = batch_max
        self.max_done = max_done
        self.resume = resume
        self.compact_every = compact_every
        self.point_timeout = point_timeout
        self.checkpoint_dir = (Path(checkpoint_dir)
                               if checkpoint_dir is not None else None)
        self.checkpoint_every = checkpoint_every
        #: store handle for health reporting; built in :meth:`start`.
        self._ckpt_store = None

        self.profiler = Profiler()
        self.cache = ResultCache(self.state_dir / "cache", durable=True)
        self.journal = Journal(self.state_dir / "journal.jsonl")
        self.engine = ExperimentEngine(
            jobs=jobs, cache=self.cache, keep_going=True,
            retries=retries, point_timeout=point_timeout,
            profiler=self.profiler)

        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._jobs: dict[str, _Job] = {}
        self._queue: deque[_Job] = deque()
        self._by_key: dict[str, str] = {}
        self._idem: dict[str, str] = {}
        self._inflight: dict[str, int] = {}
        self._done_order: deque[str] = deque()
        self._seq = 0
        self._running = 0
        self._accepted_total = 0
        self._done_total = 0
        self._failed_total = 0
        self._draining = False
        self._stop_now = False
        self._stopped = threading.Event()
        self._started = False
        self._started_at = 0.0
        self._signalled: int | None = None
        self._server: _Server | None = None
        self._threads: list[threading.Thread] = []

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise ServiceError("daemon not started", code="unavailable")
        return self._server.server_address[:2]

    def start(self) -> None:
        """Bind, recover state, write ``daemon.json``, start threads."""
        if self._started:
            raise ServiceError("daemon already started",
                               code="already-running")
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self._refuse_second_daemon()
        # startup is the one moment no cache writer can be live, so a
        # full zero-age vacuum of crashed writers' temp files is safe.
        self.cache.vacuum(0.0)
        if self.checkpoint_dir is not None:
            from ..vortex.simx.checkpoint import CheckpointStore

            # Same reasoning as the cache vacuum: no snapshot writer is
            # live yet, so sweep *all* orphaned snapshot temp files a
            # kill -9 may have stranded mid-write.
            self._ckpt_store = CheckpointStore(self.checkpoint_dir,
                                               sweep_age_s=0.0)
            try:
                # a STOP file is a one-shot shutdown signal; a leftover
                # from the previous daemon's death must not preempt the
                # resumed run immediately.
                self._stop_file_path().unlink()
            except OSError:
                pass
        if self.resume:
            self._recover()
        else:
            # an explicit fresh start supersedes any leftover journal.
            self.journal.compact([])
        self._server = _Server((self.host, self.port), _Handler)
        self._server.experiment_daemon = self
        self._write_daemon_info()
        self._started = True
        self._started_at = time.monotonic()
        server_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-service-server", daemon=True)
        scheduler_thread = threading.Thread(
            target=self._scheduler_loop,
            name="repro-service-scheduler", daemon=True)
        self._threads = [server_thread, scheduler_thread]
        for thread in self._threads:
            thread.start()

    def serve(self) -> int:
        """CLI entry: start, install signal handlers, block until the
        daemon stops. Returns the process exit code (130 when stopped
        by a signal — the interrupted-by-operator convention every
        ``python -m repro`` subcommand follows — else 0)."""
        if not self._started:
            self.start()

        def _on_signal(signum, frame):
            if self._signalled is not None:
                # second signal: the operator means NOW. Safe, because
                # the journal and cache are durably consistent at every
                # instant — the next --resume picks up where we died.
                os._exit(130)
            self._signalled = signum
            self.request_stop()

        previous = {s: signal.signal(s, _on_signal)
                    for s in (signal.SIGINT, signal.SIGTERM)}
        try:
            while not self.wait(0.2):
                pass
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        return 130 if self._signalled is not None else 0

    def request_stop(self) -> None:
        """Graceful shutdown: stop admitting, finish the in-flight
        batch (its points checkpoint incrementally), flush, exit.
        Queued-but-unrun jobs stay journalled for ``--resume``.

        With checkpointing enabled the in-flight batch does not have to
        *finish*: dropping the ``STOP`` file makes running simulations
        snapshot and yield at their next poll, the engine finalises the
        preemptions (requeueing is switched off), and the yielded jobs
        go back to the queue — journalled accepted-without-done, so
        ``serve --resume`` resumes them mid-flight."""
        if self.checkpoint_dir is not None:
            self.engine.stop_preempting()
            try:
                self._stop_file_path().touch()
            except OSError:
                pass
        with self._cond:
            self._stop_now = True
            self._cond.notify_all()

    def request_drain(self) -> None:
        """Stop admitting, run every queued job to completion, exit."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    def wait(self, timeout: float | None = None) -> bool:
        return self._stopped.wait(timeout)

    # -- startup helpers ---------------------------------------------------

    def _info_path(self) -> Path:
        return self.state_dir / protocol.DAEMON_INFO_NAME

    def _stop_file_path(self) -> Path:
        return self.checkpoint_dir / "STOP"

    def _job_checkpoint(self, job: _Job) -> dict | None:
        """The per-job checkpoint spec shipped to the worker (see
        :meth:`CheckpointPlan.from_spec`), or ``None``.

        The point id is derived from the job's *content key*, so a
        coalesced resubmission — or the same job re-queued by
        ``--resume`` after a crash — finds the snapshot of its earlier
        incarnation. The deadline is 80% of the engine watchdog budget:
        the simulation yields a snapshot before the watchdog would have
        killed it without one.
        """
        if (self.checkpoint_dir is None
                or job.spec.get("kind") not in ("fig7-cell", "dse")):
            return None
        deadline_s = (self.point_timeout * 0.8
                      if self.point_timeout else None)
        return {
            "dir": str(self.checkpoint_dir),
            "point_id": f"job-{job.key[:16]}",
            "every": self.checkpoint_every,
            "deadline_s": deadline_s,
            "stop_file": str(self._stop_file_path()),
        }

    def _refuse_second_daemon(self) -> None:
        try:
            info = json.loads(self._info_path().read_text())
            pid = int(info["pid"])
        except (OSError, ValueError, KeyError, TypeError):
            return  # absent or stale garbage: ours to overwrite
        try:
            os.kill(pid, 0)
        except OSError:
            return  # recorded daemon is dead: stale file
        raise ServiceError(
            f"an experiment daemon (pid {pid}) already serves "
            f"{self.state_dir} — drain it first or pick another "
            f"--state-dir", code="already-running")

    def _write_daemon_info(self) -> None:
        info = {"pid": os.getpid(), "host": self.address[0],
                "port": self.address[1], "started_unix": time.time()}
        tmp = self._info_path().with_suffix(".tmp")
        tmp.write_text(json.dumps(info))
        os.replace(tmp, self._info_path())

    def _recover(self) -> None:
        """Rebuild job state from the journal (``--resume``).

        Jobs without a ``done``/``failed`` record re-queue; ``done``
        jobs whose cache entry vanished (source change re-keyed the
        cache, or the cache was cleared) re-queue too — the journal
        promises *at-least-once* execution, the cache provides the
        at-most-once half. Content keys are recomputed against the
        current code fingerprint, never trusted from disk.
        """
        records = self.journal.replay()
        order: list[str] = []
        for record in records:
            tag = record.get("t")
            if tag == "accepted":
                job_id = record.get("id")
                if not isinstance(job_id, str) or job_id in self._jobs:
                    continue
                try:
                    spec = validate_job(record.get("spec"))
                except ServiceError:
                    continue
                client = str(record.get("client") or "recovered")
                idem = record.get("idem")
                job = _Job(id=job_id, spec=spec,
                           key=job_key(self.cache, spec),
                           seq=self._parse_seq(job_id),
                           clients={client},
                           idem=idem if isinstance(idem, str) else None)
                self._jobs[job_id] = job
                order.append(job_id)
            elif tag in ("done", "failed"):
                job = self._jobs.get(record.get("id"))
                if job is None:
                    continue
                if tag == "done":
                    job.state = DONE
                else:
                    job.state = FAILED
                    failure = record.get("failure")
                    job.failure = (failure if isinstance(failure, dict)
                                   else {"exc_type": "Unknown",
                                         "message": "journalled failure "
                                                    "without payload"})
        for job_id in order:
            job = self._jobs[job_id]
            self._seq = max(self._seq, job.seq)
            if job.state == DONE and self.cache.get(job.key) is MISS:
                job.state = QUEUED  # result lost: run it again
            if job.idem:
                self._idem[job.idem] = job.id
            if job.state == FAILED:
                # failed specs must not swallow fresh identical
                # submissions, so they stay out of the dedup index.
                self._failed_total += 1
                continue
            self._by_key.setdefault(job.key, job.id)
            if job.state == QUEUED:
                self._queue.append(job)
                for client in job.clients:
                    self._inflight[client] = (
                        self._inflight.get(client, 0) + 1)
            else:  # DONE with an intact cache entry
                self._done_order.append(job.id)
                self._done_total += 1
        self._accepted_total = len(order)
        self.journal.compact(self._live_records())
        if self.journal.skipped:
            self.profiler.count("service.journal.torn_lines",
                                self.journal.skipped)

    @staticmethod
    def _parse_seq(job_id: str) -> int:
        match = _JOB_ID_RE.match(job_id)
        return int(match.group(1)) if match else 0

    # -- request handling (server threads) ---------------------------------

    def handle_request(self, message: dict) -> dict:
        """Dispatch one request; never raises (bugs become typed
        ``internal`` replies so one bad request cannot poison the
        connection loop, let alone the daemon)."""
        try:
            op = message.get("op")
            if op == "submit":
                return self._op_submit(message)
            if op == "status":
                if message.get("job_id") is None:
                    return self._op_health()
                return self._op_status(message)
            if op == "results":
                return self._op_results(message)
            if op == "health":
                return self._op_health()
            if op == "drain":
                return self._op_drain()
            return protocol.error_reply(
                "bad-request",
                f"unknown op {op!r} (choose from {list(protocol.OPS)})")
        except ServiceError as exc:
            return protocol.error_reply(exc.code, str(exc),
                                        exc.retry_after)
        except Exception as exc:  # noqa: BLE001 - daemon must survive
            self.profiler.count("service.internal_errors")
            return protocol.error_reply(
                "internal", f"{type(exc).__name__}: {exc}")

    def _op_submit(self, message: dict) -> dict:
        client = message.get("client", "anonymous")
        if not isinstance(client, str) or not client:
            raise ServiceError("client must be a non-empty string",
                               code="bad-request")
        idem = message.get("idempotency_key")
        if idem is not None and not isinstance(idem, str):
            raise ServiceError("idempotency_key must be a string",
                               code="bad-request")
        spec = validate_job(message.get("job"))
        key = job_key(self.cache, spec)
        with self._cond:
            if self._stop_now or self._draining:
                self.profiler.count("service.rejected.shutting-down")
                raise ServiceError(
                    "daemon is shutting down; not admitting jobs",
                    code="shutting-down")
            # idempotent replay: the same submission (retried by a
            # client that never saw our first reply) maps to the same
            # job, and a *different* job under a reused key is a bug
            # worth a loud typed error.
            if idem is not None and idem in self._idem:
                job = self._jobs.get(self._idem[idem])
                if job is not None:
                    if job.key != key:
                        raise ServiceError(
                            f"idempotency key {idem!r} was already used "
                            f"for a different job", code="bad-request")
                    job.clients.add(client)
                    self.profiler.count("service.idempotent_replays")
                    return protocol.ok_reply(job_id=job.id,
                                             state=job.state,
                                             coalesced=True)
            # content dedup: identical work coalesces onto one
            # execution (or straight onto its finished result).
            existing = self._by_key.get(key)
            if existing is not None and existing in self._jobs:
                job = self._jobs[existing]
                if job.state in (QUEUED, RUNNING):
                    job.clients.add(client)
                if idem is not None:
                    self._idem[idem] = job.id
                self.profiler.count("service.coalesced")
                return protocol.ok_reply(job_id=job.id, state=job.state,
                                         coalesced=True)
            # admission control: bounded per-client and global queues.
            if self._inflight.get(client, 0) >= self.per_client:
                self.profiler.count("service.rejected.client-limit")
                raise ServiceError(
                    f"client {client!r} already has "
                    f"{self.per_client} job(s) in flight",
                    code="client-limit", retry_after=0.25)
            if len(self._queue) >= self.max_queue:
                self.profiler.count("service.rejected.queue-full")
                raise ServiceError(
                    f"admission queue is full "
                    f"({self.max_queue} queued jobs)",
                    code="queue-full",
                    retry_after=self._retry_after_hint())
            self._seq += 1
            job = _Job(id=f"j{self._seq:06d}-{key[:10]}", spec=spec,
                       key=key, seq=self._seq, clients={client},
                       idem=idem)
            # WAL discipline: the accepted record hits disk before the
            # client ever hears "ok".
            self.journal.append({"t": "accepted", "id": job.id,
                                 "spec": spec, "key": key,
                                 "client": client, "idem": idem})
            self._jobs[job.id] = job
            self._by_key[key] = job.id
            if idem is not None:
                self._idem[idem] = job.id
            self._queue.append(job)
            self._inflight[client] = self._inflight.get(client, 0) + 1
            self._accepted_total += 1
            self.profiler.count("service.accepted")
            self._cond.notify_all()
            return protocol.ok_reply(job_id=job.id, state=QUEUED,
                                     coalesced=False)

    def _retry_after_hint(self) -> float:
        """Backpressure hint: scale with how oversubscribed we are."""
        per_worker = len(self._queue) / max(1, self.engine.jobs)
        return min(5.0, 0.05 * (1.0 + per_worker))

    def _get_job(self, message: dict) -> _Job:
        job_id = message.get("job_id")
        if not isinstance(job_id, str):
            raise ServiceError("job_id must be a string",
                               code="bad-request")
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(
                f"no job {job_id!r} (never submitted, or evicted after "
                f"completion — identical resubmission is a cache hit)",
                code="job-not-found")
        return job

    def _op_status(self, message: dict) -> dict:
        job = self._get_job(message)
        with self._lock:
            return protocol.ok_reply(job_id=job.id, state=job.state,
                                     kind=job.spec.get("kind"))

    def _op_results(self, message: dict) -> dict:
        job = self._get_job(message)
        with self._lock:
            state, result, failure = job.state, job.result, job.failure
            key = job.key
        if state == FAILED:
            return protocol.ok_reply(job_id=job.id, state=FAILED,
                                     failure=failure)
        if state != DONE:
            return protocol.ok_reply(job_id=job.id, state=state)
        if result is None:
            result = self.cache.get(key)  # recovered jobs load lazily
            if result is MISS:
                raise ServiceError(
                    f"job {job.id} is done but its cached result was "
                    f"evicted; resubmit the job to recompute",
                    code="result-unavailable")
            with self._lock:
                job.result = result
        return protocol.ok_reply(job_id=job.id, state=DONE,
                                 value=result)

    def _op_health(self) -> dict:
        with self._lock:
            stats = self.engine.stats
            return protocol.ok_reply(
                pid=os.getpid(),
                uptime_s=round(time.monotonic() - self._started_at, 3)
                         if self._started else 0.0,
                draining=self._draining or self._stop_now,
                queue_depth=len(self._queue),
                running=self._running,
                jobs_tracked=len(self._jobs),
                accepted_total=self._accepted_total,
                done_total=self._done_total,
                failed_total=self._failed_total,
                limits={"max_queue": self.max_queue,
                        "per_client": self.per_client,
                        "batch_max": self.batch_max,
                        "max_done": self.max_done},
                workers=self.engine.jobs,
                engine={"points": stats.points,
                        "executed": stats.executed,
                        "cache_hits": stats.cache_hits,
                        "cache_stores": stats.cache_stores,
                        "failed": stats.failed,
                        "retried": stats.retried,
                        "preempted": stats.preempted},
                checkpoints=(
                    {"dir": str(self.checkpoint_dir),
                     "hits": self._ckpt_store.hit_count()}
                    if self._ckpt_store is not None else None),
                cache={"hits": self.cache.hits,
                       "misses": self.cache.misses},
                journal={"appended": self.journal.appended,
                         "torn_lines_skipped": self.journal.skipped},
                counters={k: v for k, v in
                          sorted(self.profiler.counters.items())
                          if k.startswith("service.")},
            )

    def _op_drain(self) -> dict:
        with self._lock:
            queued = len(self._queue)
        self.request_drain()
        return protocol.ok_reply(draining=True, queued=queued)

    # -- scheduler (its own thread) ----------------------------------------

    def _scheduler_loop(self) -> None:
        try:
            while True:
                with self._cond:
                    while (not self._queue and not self._stop_now
                           and not self._draining):
                        self._cond.wait(0.5)
                    if self._stop_now:
                        return
                    if not self._queue:
                        if self._draining:
                            return
                        continue
                    batch: list[_Job] = []
                    while self._queue and len(batch) < self.batch_max:
                        job = self._queue.popleft()
                        job.state = RUNNING
                        batch.append(job)
                    self._running += len(batch)
                self._run_batch(batch)
                if self.journal.appended >= self.compact_every:
                    with self._lock:
                        self.journal.compact(self._live_records())
        finally:
            self._finish()

    def _run_batch(self, batch: list[_Job]) -> None:
        """One engine campaign over a mixed batch of queued jobs.

        Results stream back through ``on_result`` as each point
        finalises — a job is journalled done and visible to clients
        the moment *it* finishes, not when its batch does.
        """
        def on_result(index: int, value: Any) -> None:
            self._job_finished(batch[index], value)

        try:
            self.engine.run(
                execute_job,
                [(job.spec, self._job_checkpoint(job)) for job in batch],
                keys=[job.key for job in batch], label="service",
                on_result=on_result)
        except Exception as exc:  # noqa: BLE001 - engine bug guard
            payload = {"exc_type": type(exc).__name__,
                       "message": f"engine campaign failed: {exc}",
                       "traceback": ""}
            with self._lock:
                for job in batch:
                    if job.state == RUNNING:
                        self._job_finished(
                            job, PointFailure(**payload))

    def _job_finished(self, job: _Job, value: Any) -> None:
        with self._cond:
            if job.state != RUNNING:
                return
            if (isinstance(value, PointFailure)
                    and value.exc_type == "SimulationPreempted"):
                # Cooperative yield (shutdown stop file): the job's
                # snapshot is on disk, so put it back at the head of
                # the queue. No journal record — it stays accepted-
                # without-done, exactly what ``--resume`` re-queues —
                # and its clients keep their in-flight slots.
                job.state = QUEUED
                job.failure = None
                self._running -= 1
                self._queue.appendleft(job)
                self.profiler.count("service.jobs_preempted")
                self._cond.notify_all()
                return
            self._running -= 1
            for client in job.clients:
                remaining = self._inflight.get(client, 1) - 1
                if remaining > 0:
                    self._inflight[client] = remaining
                else:
                    self._inflight.pop(client, None)
            if isinstance(value, PointFailure):
                job.state = FAILED
                job.failure = value.to_payload()
                self._failed_total += 1
                # a failed spec must be resubmittable as a fresh run.
                if self._by_key.get(job.key) == job.id:
                    del self._by_key[job.key]
                self.journal.append({"t": "failed", "id": job.id,
                                     "failure": job.failure})
                self.profiler.count("service.jobs_failed")
            else:
                job.state = DONE
                job.result = value
                self._done_total += 1
                self.journal.append({"t": "done", "id": job.id})
                self._done_order.append(job.id)
                self.profiler.count("service.jobs_done")
                self._evict_done()
            self._cond.notify_all()

    def _evict_done(self) -> None:
        """LRU bound on finished jobs kept for status/results lookups
        (their values stay reachable via the content-addressed cache)."""
        while len(self._done_order) > self.max_done:
            job_id = self._done_order.popleft()
            job = self._jobs.pop(job_id, None)
            if job is None:
                continue
            if self._by_key.get(job.key) == job_id:
                del self._by_key[job.key]
            if job.idem and self._idem.get(job.idem) == job_id:
                del self._idem[job.idem]
            self.profiler.count("service.jobs_evicted")

    def _live_records(self) -> list[dict]:
        """The compacted journal image of the current job table."""
        records: list[dict] = []
        for job in sorted(self._jobs.values(), key=lambda j: j.seq):
            records.append({"t": "accepted", "id": job.id,
                            "spec": job.spec, "key": job.key,
                            "client": next(iter(job.clients), ""),
                            "idem": job.idem})
            if job.state == DONE:
                records.append({"t": "done", "id": job.id})
            elif job.state == FAILED:
                records.append({"t": "failed", "id": job.id,
                                "failure": job.failure})
        return records

    def _finish(self) -> None:
        """Scheduler-exit cleanup: close the engine pool, compact and
        close the journal, stop the TCP server, drop the discovery
        file, and release :meth:`wait`-ers."""
        try:
            self.engine.close()
            with self._lock:
                try:
                    self.journal.compact(self._live_records())
                finally:
                    self.journal.close()
            if self._server is not None:
                self._server.shutdown()
                self._server.server_close()
            try:
                self._info_path().unlink()
            except OSError:
                pass
        finally:
            self._stopped.set()
