"""Hardened experiment service: a crash-safe job queue over the engine.

``python -m repro serve`` runs :class:`ExperimentDaemon`;
``python -m repro submit/status/results/drain`` talk to it through
:class:`ServiceClient`. See :mod:`repro.service.daemon` for the
robustness design (admission control, write-ahead journal, graceful
shutdown) and :mod:`repro.service.protocol` for the wire format.
"""

from .client import ServiceClient, resolve_state_dir
from .daemon import ExperimentDaemon
from .jobs import JOB_KINDS, execute_job, job_key, validate_job
from .journal import Journal
from .protocol import (
    CODES,
    DAEMON_INFO_NAME,
    DEFAULT_STATE_DIR,
    OPS,
    SERVICE_DIR_ENV,
    ProtocolError,
)

__all__ = [
    "CODES",
    "DAEMON_INFO_NAME",
    "DEFAULT_STATE_DIR",
    "ExperimentDaemon",
    "JOB_KINDS",
    "Journal",
    "OPS",
    "ProtocolError",
    "SERVICE_DIR_ENV",
    "ServiceClient",
    "execute_job",
    "job_key",
    "resolve_state_dir",
    "validate_job",
]
