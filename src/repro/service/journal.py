"""Crash-safe write-ahead journal for the experiment-service daemon.

An append-only file of JSON lines under the daemon's state directory.
Every accepted job is journalled (append + flush + ``fsync``) *before*
the client sees its ``ok`` reply, and every completion/failure is
journalled the moment the engine streams it back — so a ``kill -9`` at
any instant loses at most work, never bookkeeping: ``serve --resume``
replays the journal and re-runs exactly the jobs with no ``done``
record (and of those, the result cache short-circuits any whose value
was already committed, so only genuinely unfinished points execute).

Records are small dicts with a ``t`` tag::

    {"t": "accepted", "id": ..., "spec": {...}, "key": ...,
     "client": ..., "idem": ...}
    {"t": "done",   "id": ...}          # value lives in the ResultCache
    {"t": "failed", "id": ..., "failure": {...PointFailure payload...}}

Torn tails are expected: a crash mid-append leaves a partial last line,
which :meth:`Journal.replay` skips (and counts) instead of refusing to
start. Compaction rewrites the live records through a temp file +
``fsync`` + atomic ``os.replace`` — the same discipline as
:meth:`ResultCache.put` — so the journal is never observed in a
half-rewritten state and cannot grow without bound.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["Journal"]


def _fsync_dir(path: Path) -> None:
    """Best-effort fsync of a directory (persists renames/creates)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class Journal:
    """Append-mostly JSON-lines journal with atomic compaction."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh = None
        #: appends since the last compaction (compaction trigger).
        self.appended = 0
        #: torn/corrupt lines skipped by the last :meth:`replay`.
        self.skipped = 0

    # -- writing -----------------------------------------------------------

    def _handle(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def append(self, record: dict) -> None:
        """Durably append one record: write, flush, ``fsync``."""
        fh = self._handle()
        fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
        self.appended += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- reading -----------------------------------------------------------

    def replay(self) -> list[dict]:
        """Every intact record, in append order.

        Lines that fail to parse (the torn tail of a crashed append —
        or genuine corruption) are skipped and counted in
        :attr:`skipped`, never fatal: a daemon that survived a crash
        must not be killed by the crash's own debris.
        """
        self.skipped = 0
        records: list[dict] = []
        try:
            with open(self.path, "r", encoding="utf-8",
                      errors="replace") as fh:
                for line in fh:
                    try:
                        record = json.loads(line)
                    except ValueError:
                        self.skipped += 1
                        continue
                    if isinstance(record, dict):
                        records.append(record)
                    else:
                        self.skipped += 1
        except OSError:
            return []
        return records

    # -- compaction --------------------------------------------------------

    def compact(self, records: list[dict]) -> None:
        """Atomically replace the journal with ``records``.

        Same crash discipline as an append: the new content is fsynced
        in a temp file first, then renamed over the journal, then the
        directory entry is fsynced — a crash at any point leaves either
        the old journal or the new one, never a hybrid.
        """
        self.close()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".compact.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, separators=(",", ":"))
                         + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        _fsync_dir(self.path.parent)
        self.appended = 0
