"""Tests for NDRange geometry, including hypothesis-backed invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RuntimeLaunchError
from repro.ocl import NDRange


class TestCreate:
    def test_scalar_sizes(self):
        ndr = NDRange.create(64, 16)
        assert ndr.global_size == (64, 1, 1)
        assert ndr.local_size == (16, 1, 1)
        assert ndr.work_dim == 1

    def test_default_local_is_single_item(self):
        # Intel's recommended single-work-item configuration (1,1,1).
        ndr = NDRange.create(8)
        assert ndr.local_size == (1, 1, 1)

    def test_2d(self):
        ndr = NDRange.create((8, 4), (2, 2))
        assert ndr.num_groups == (4, 2, 1)
        assert ndr.total_items == 32
        assert ndr.items_per_group == 4
        assert ndr.work_dim == 2

    def test_indivisible_raises(self):
        with pytest.raises(RuntimeLaunchError):
            NDRange.create(10, 4)

    def test_zero_size_raises(self):
        with pytest.raises(RuntimeLaunchError):
            NDRange.create(0)

    def test_too_many_dims_raises(self):
        with pytest.raises(RuntimeLaunchError):
            NDRange.create((2, 2, 2, 2))


class TestEnumeration:
    def test_groups_dimension0_fastest(self):
        ndr = NDRange.create((4, 4), (2, 2))
        groups = list(ndr.groups())
        assert groups == [(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0)]

    def test_local_items_cover_group(self):
        ndr = NDRange.create((4, 4), (2, 2))
        items = list(ndr.local_items())
        assert len(items) == 4
        assert set(items) == {(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0)}

    def test_global_id_composition(self):
        ndr = NDRange.create((8, 8), (4, 2))
        assert ndr.global_id((1, 2, 0), (3, 1, 0)) == (7, 5, 0)


sizes = st.sampled_from([1, 2, 3, 4, 6, 8, 16])


class TestInvariants:
    @given(sizes, sizes)
    def test_group_enumeration_is_complete(self, groups_x, local_x):
        ndr = NDRange.create(groups_x * local_x, local_x)
        seen = set()
        for group in ndr.groups():
            for local in ndr.local_items():
                seen.add(ndr.global_id(group, local))
        assert len(seen) == ndr.total_items

    @given(sizes, sizes, sizes)
    def test_linear_ids_are_bijective(self, gx, gy, lx):
        ndr = NDRange.create((gx * lx, gy), (lx, 1))
        lin = [ndr.group_linear_id(g) for g in ndr.groups()]
        assert sorted(lin) == list(range(ndr.group_count))
        lin_local = [ndr.local_linear_id(l) for l in ndr.local_items()]
        assert sorted(lin_local) == list(range(ndr.items_per_group))

    @given(sizes, sizes)
    def test_totals_consistent(self, gx, lx):
        ndr = NDRange.create(gx * lx, lx)
        assert ndr.group_count * ndr.items_per_group == ndr.total_items
