"""Tests for the functional interpreter: arithmetic semantics, barriers,
atomics, printf, and error detection."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InterpreterError, RuntimeLaunchError
from repro.ocl import (
    FLOAT32,
    GLOBAL_FLOAT32,
    GLOBAL_INT32,
    INT32,
    KernelBuilder,
    NDRange,
    interpret,
)
from repro.ocl.interp import f32, wrap32

i32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)


class TestWrap32:
    @given(i32s)
    def test_identity_in_range(self, x):
        assert wrap32(x) == x

    @given(st.integers())
    def test_always_in_range(self, x):
        assert -(2**31) <= wrap32(x) <= 2**31 - 1

    @given(i32s, i32s)
    def test_matches_numpy_add(self, a, b):
        with np.errstate(over="ignore"):
            expected = int(np.int32(a) + np.int32(b))
        assert wrap32(a + b) == expected

    @given(i32s, i32s)
    def test_matches_numpy_mul(self, a, b):
        with np.errstate(over="ignore"):
            expected = int(np.int32(a) * np.int32(b))
        assert wrap32(a * b) == expected


def _binop_kernel(name, op_name, ty):
    b = KernelBuilder(name)
    x = b.param("x", GLOBAL_FLOAT32 if ty is FLOAT32 else GLOBAL_INT32)
    y = b.param("y", GLOBAL_FLOAT32 if ty is FLOAT32 else GLOBAL_INT32)
    out = b.param("out", GLOBAL_FLOAT32 if ty is FLOAT32 else GLOBAL_INT32)
    gid = b.global_id(0)
    res = getattr(b, op_name)(b.load(x, gid), b.load(y, gid))
    b.store(out, gid, res)
    return b.finish()


class TestIntSemantics:
    def test_division_truncates_toward_zero(self):
        kernel = _binop_kernel("divk", "div", INT32)
        x = np.array([7, -7, 7, -7], dtype=np.int32)
        y = np.array([2, 2, -2, -2], dtype=np.int32)
        out = np.zeros(4, dtype=np.int32)
        interpret(kernel, [x, y, out], NDRange.create(4))
        np.testing.assert_array_equal(out, [3, -3, -3, 3])

    def test_remainder_sign_follows_dividend(self):
        kernel = _binop_kernel("remk", "rem", INT32)
        x = np.array([7, -7, 7, -7], dtype=np.int32)
        y = np.array([3, 3, -3, -3], dtype=np.int32)
        out = np.zeros(4, dtype=np.int32)
        interpret(kernel, [x, y, out], NDRange.create(4))
        np.testing.assert_array_equal(out, [1, -1, 1, -1])

    def test_division_by_zero_raises(self):
        kernel = _binop_kernel("divz", "div", INT32)
        x = np.ones(1, dtype=np.int32)
        y = np.zeros(1, dtype=np.int32)
        out = np.zeros(1, dtype=np.int32)
        with pytest.raises(InterpreterError):
            interpret(kernel, [x, y, out], NDRange.create(1))

    def test_add_overflow_wraps(self):
        kernel = _binop_kernel("addk", "add", INT32)
        x = np.array([2**31 - 1], dtype=np.int32)
        y = np.array([1], dtype=np.int32)
        out = np.zeros(1, dtype=np.int32)
        interpret(kernel, [x, y, out], NDRange.create(1))
        assert out[0] == -(2**31)

    def test_shifts(self):
        b = KernelBuilder("shifts")
        out = b.param("out", GLOBAL_INT32)
        b.store(out, 0, b.shl(1, 4))
        b.store(out, 1, b.ashr(-16, 2))
        b.store(out, 2, b.lshr(-16, 28))
        kernel = b.finish()
        out_arr = np.zeros(3, dtype=np.int32)
        interpret(kernel, [out_arr], NDRange.create(1))
        np.testing.assert_array_equal(out_arr, [16, -4, 15])


class TestFloatSemantics:
    @given(st.floats(min_value=-1e6, max_value=1e6),
           st.floats(min_value=-1e6, max_value=1e6))
    @settings(max_examples=30, deadline=None)
    def test_fadd_matches_float32(self, a, b):
        assert f32(f32(a) + f32(b)) == float(np.float32(a) + np.float32(b))

    def test_sqrt_of_negative_is_nan(self):
        b = KernelBuilder("sq")
        x = b.param("x", GLOBAL_FLOAT32)
        out = b.param("out", GLOBAL_FLOAT32)
        b.store(out, 0, b.sqrt(b.load(x, 0)))
        kernel = b.finish()
        x_arr = np.array([-1.0], dtype=np.float32)
        out_arr = np.zeros(1, dtype=np.float32)
        interpret(kernel, [x_arr, out_arr], NDRange.create(1))
        assert math.isnan(out_arr[0])

    def test_math_builtins(self):
        b = KernelBuilder("m")
        x = b.param("x", GLOBAL_FLOAT32)
        out = b.param("out", GLOBAL_FLOAT32)
        v = b.load(x, 0)
        b.store(out, 0, b.exp(v))
        b.store(out, 1, b.log(v))
        b.store(out, 2, b.sin(v))
        b.store(out, 3, b.cos(v))
        b.store(out, 4, b.floor(v))
        b.store(out, 5, b.pow(v, b.const(2.0)))
        kernel = b.finish()
        x_arr = np.array([1.5], dtype=np.float32)
        out_arr = np.zeros(6, dtype=np.float32)
        interpret(kernel, [x_arr, out_arr], NDRange.create(1))
        expected = [math.exp(1.5), math.log(1.5), math.sin(1.5),
                    math.cos(1.5), 1.0, 2.25]
        np.testing.assert_allclose(out_arr, np.float32(expected), rtol=1e-6)


class TestAtomics:
    def test_atomic_add_histogram(self):
        b = KernelBuilder("hist")
        data = b.param("data", GLOBAL_INT32)
        bins = b.param("bins", GLOBAL_INT32)
        gid = b.global_id(0)
        b.atomic_add(bins, b.load(data, gid), 1)
        kernel = b.finish()
        rng = np.random.default_rng(0)
        data_arr = rng.integers(0, 4, 64).astype(np.int32)
        bins_arr = np.zeros(4, dtype=np.int32)
        interpret(kernel, [data_arr, bins_arr], NDRange.create(64, 8))
        np.testing.assert_array_equal(bins_arr, np.bincount(data_arr, minlength=4))

    def test_atomic_returns_old_value(self):
        b = KernelBuilder("old")
        cell = b.param("cell", GLOBAL_INT32)
        out = b.param("out", GLOBAL_INT32)
        old = b.atomic_add(cell, 0, 5)
        b.store(out, 0, old)
        kernel = b.finish()
        cell_arr = np.array([100], dtype=np.int32)
        out_arr = np.zeros(1, dtype=np.int32)
        interpret(kernel, [cell_arr, out_arr], NDRange.create(1))
        assert out_arr[0] == 100 and cell_arr[0] == 105

    def test_atomic_min_max(self):
        b = KernelBuilder("mm")
        data = b.param("data", GLOBAL_INT32)
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        v = b.load(data, gid)
        b.atomic_min(out, 0, v)
        b.atomic_max(out, 1, v)
        kernel = b.finish()
        data_arr = np.array([5, -3, 9, 2], dtype=np.int32)
        out_arr = np.array([2**31 - 1, -(2**31)], dtype=np.int32)
        interpret(kernel, [data_arr, out_arr], NDRange.create(4))
        assert out_arr[0] == -3 and out_arr[1] == 9

    def test_atomic_cas(self):
        b = KernelBuilder("cas")
        cell = b.param("cell", GLOBAL_INT32)
        b.atomic_cas(cell, 0, 7, 99)
        kernel = b.finish()
        cell_arr = np.array([7], dtype=np.int32)
        interpret(kernel, [cell_arr], NDRange.create(1))
        assert cell_arr[0] == 99
        cell_arr = np.array([8], dtype=np.int32)
        interpret(kernel, [cell_arr], NDRange.create(1))
        assert cell_arr[0] == 8


class TestBarriers:
    def test_barrier_divergence_detected(self):
        b = KernelBuilder("diverge")
        lid = b.local_id(0)
        with b.if_(b.lt(lid, 2)):
            b.barrier()
        kernel = b.finish()
        with pytest.raises(InterpreterError, match="barrier divergence"):
            interpret(kernel, [], NDRange.create(4, 4))

    def test_barrier_counts(self):
        b = KernelBuilder("bk")
        b.barrier()
        b.barrier()
        kernel = b.finish()
        result = interpret(kernel, [], NDRange.create(8, 4))
        assert result.barriers_executed == 4  # 2 groups x 2 barriers


class TestErrors:
    def test_out_of_bounds_load(self):
        b = KernelBuilder("oob")
        data = b.param("data", GLOBAL_INT32)
        out = b.param("out", GLOBAL_INT32)
        b.store(out, 0, b.load(data, 100))
        kernel = b.finish()
        with pytest.raises(InterpreterError, match="out-of-bounds"):
            interpret(kernel, [np.zeros(4, dtype=np.int32),
                               np.zeros(1, dtype=np.int32)], NDRange.create(1))

    def test_runaway_loop_detected(self):
        b = KernelBuilder("spin")
        with b.while_(lambda: b.const(True)):
            pass
        kernel = b.finish()
        with pytest.raises(InterpreterError, match="exceeded"):
            interpret(kernel, [], NDRange.create(1), max_steps_per_item=1000)

    def test_wrong_arg_count(self):
        b = KernelBuilder("k")
        b.param("x", GLOBAL_INT32)
        kernel = b.finish()
        with pytest.raises(RuntimeLaunchError):
            interpret(kernel, [], NDRange.create(1))

    def test_wrong_dtype(self):
        b = KernelBuilder("k")
        b.param("x", GLOBAL_INT32)
        kernel = b.finish()
        with pytest.raises(RuntimeLaunchError, match="dtype"):
            interpret(kernel, [np.zeros(4, dtype=np.float32)], NDRange.create(1))


class TestPrintf:
    def test_printf_collects_output(self):
        b = KernelBuilder("hello")
        gid = b.global_id(0)
        b.printf("item %d", gid)
        kernel = b.finish()
        result = interpret(kernel, [], NDRange.create(3))
        assert result.printf_output == ["item 0", "item 1", "item 2"]

    def test_bad_format_raises(self):
        b = KernelBuilder("bad")
        b.printf("%d %d", b.global_id(0))
        kernel = b.finish()
        with pytest.raises(InterpreterError, match="printf"):
            interpret(kernel, [], NDRange.create(1))


class TestWorkItemQueries:
    def test_2d_ids(self):
        b = KernelBuilder("ids2d")
        out = b.param("out", GLOBAL_INT32)
        gx = b.global_id(0)
        gy = b.global_id(1)
        w = b.global_size(0)
        idx = b.add(b.mul(gy, w), gx)
        packed = b.add(b.mul(b.group_id(1), 100), b.local_id(0))
        b.store(out, idx, packed)
        kernel = b.finish()
        out_arr = np.zeros(16, dtype=np.int32)
        interpret(kernel, [out_arr], NDRange.create((4, 4), (2, 2)))
        # Row 0: groups (0..1, 0): group_id(1)=0, local ids 0,1,0,1
        np.testing.assert_array_equal(out_arr[:4], [0, 1, 0, 1])
        # Row 2: group_id(1)=1 → +100
        np.testing.assert_array_equal(out_arr[8:12], [100, 101, 100, 101])

    def test_num_groups_and_sizes(self):
        b = KernelBuilder("q")
        out = b.param("out", GLOBAL_INT32)
        b.store(out, 0, b.num_groups(0))
        b.store(out, 1, b.local_size(0))
        b.store(out, 2, b.global_size(0))
        kernel = b.finish()
        out_arr = np.zeros(3, dtype=np.int32)
        interpret(kernel, [out_arr], NDRange.create(12, 4))
        np.testing.assert_array_equal(out_arr, [3, 4, 12])
