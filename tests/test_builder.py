"""Tests for the KernelBuilder DSL and on-the-fly SSA construction."""

import numpy as np
import pytest

from repro.errors import IRError, TypeMismatchError
from repro.ocl import (
    FLOAT32,
    GLOBAL_FLOAT32,
    GLOBAL_INT32,
    INT32,
    KernelBuilder,
    NDRange,
    Opcode,
    interpret,
    validate,
)


def build_vecadd():
    b = KernelBuilder("vecadd")
    a = b.param("a", GLOBAL_FLOAT32)
    c = b.param("b", GLOBAL_FLOAT32)
    out = b.param("out", GLOBAL_FLOAT32)
    gid = b.global_id(0)
    b.store(out, gid, b.add(b.load(a, gid), b.load(c, gid)))
    return b.finish()


class TestBasics:
    def test_straightline_kernel_validates(self):
        kernel = build_vecadd()
        validate(kernel)
        assert kernel.name == "vecadd"
        assert len(kernel.blocks) == 1
        assert kernel.blocks[0].terminator.op is Opcode.RET

    def test_params_are_ordered(self):
        kernel = build_vecadd()
        assert [p.name for p in kernel.params] == ["a", "b", "out"]
        assert [p.index for p in kernel.params] == [0, 1, 2]

    def test_interprets_correctly(self):
        kernel = build_vecadd()
        a = np.arange(8, dtype=np.float32)
        c = np.full(8, 2.0, dtype=np.float32)
        out = np.zeros(8, dtype=np.float32)
        interpret(kernel, [a, c, out], NDRange.create(8, 4))
        np.testing.assert_array_equal(out, a + c)

    def test_finish_twice_raises(self):
        b = KernelBuilder("k")
        b.finish()
        with pytest.raises(IRError):
            b.finish()

    def test_emit_after_finish_raises(self):
        b = KernelBuilder("k")
        b.finish()
        with pytest.raises(IRError):
            b.global_id(0)

    def test_implicit_return(self):
        b = KernelBuilder("k")
        kernel = b.finish()
        assert kernel.entry.terminator.op is Opcode.RET


class TestTypeDispatch:
    def test_add_dispatches_float(self):
        b = KernelBuilder("k")
        x = b.const(1.0)
        v = b.add(x, 2.0)
        assert v.op is Opcode.FADD

    def test_add_dispatches_int(self):
        b = KernelBuilder("k")
        v = b.add(b.const(1), 2)
        assert v.op is Opcode.ADD

    def test_int_literal_coerces_to_float(self):
        b = KernelBuilder("k")
        v = b.mul(b.const(1.5), 2)
        assert v.op is Opcode.FMUL

    def test_mixed_types_raise(self):
        b = KernelBuilder("k")
        with pytest.raises(TypeMismatchError):
            b.add(b.const(1, INT32), b.const(1.0, FLOAT32))

    def test_rem_on_float_raises(self):
        b = KernelBuilder("k")
        with pytest.raises(TypeMismatchError):
            b.rem(b.const(1.0), b.const(2.0))

    def test_cmp_dispatch(self):
        b = KernelBuilder("k")
        assert b.lt(b.const(1), 2).op is Opcode.ICMP
        assert b.lt(b.const(1.0), 2.0).op is Opcode.FCMP

    def test_store_type_check(self):
        b = KernelBuilder("k")
        p = b.param("p", GLOBAL_INT32)
        with pytest.raises(TypeMismatchError):
            b.store(p, 0, b.const(1.5))

    def test_load_requires_pointer(self):
        b = KernelBuilder("k")
        n = b.param("n", INT32)
        with pytest.raises(TypeMismatchError):
            b.load(n, 0)


class TestControlFlow:
    def test_if_guard(self):
        b = KernelBuilder("guarded")
        out = b.param("out", GLOBAL_INT32)
        n = b.param("n", INT32)
        gid = b.global_id(0)
        with b.if_(b.lt(gid, n)):
            b.store(out, gid, gid)
        kernel = b.finish()
        validate(kernel)
        out_arr = np.zeros(8, dtype=np.int32)
        interpret(kernel, [out_arr, 4], NDRange.create(8))
        np.testing.assert_array_equal(out_arr, [0, 1, 2, 3, 0, 0, 0, 0])

    def test_if_else_both_arms(self):
        b = KernelBuilder("clamp")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        v = b.var("v", INT32)
        with b.if_else(b.lt(gid, 4)) as (then, otherwise):
            with then:
                v.set(1)
            with otherwise:
                v.set(2)
        b.store(out, gid, v.get())
        kernel = b.finish()
        validate(kernel)
        out_arr = np.zeros(8, dtype=np.int32)
        interpret(kernel, [out_arr], NDRange.create(8))
        np.testing.assert_array_equal(out_arr, [1, 1, 1, 1, 2, 2, 2, 2])

    def test_if_else_requires_both_arms(self):
        b = KernelBuilder("k")
        with pytest.raises(IRError):
            with b.if_else(b.lt(b.global_id(0), 4)) as (then, otherwise):
                with then:
                    pass

    def test_for_range_accumulates(self):
        b = KernelBuilder("sum_n")
        out = b.param("out", GLOBAL_INT32)
        n = b.param("n", INT32)
        acc = b.var("acc", INT32, init=0)
        with b.for_range(0, n) as i:
            acc.set(b.add(acc.get(), i))
        b.store(out, 0, acc.get())
        kernel = b.finish()
        validate(kernel)
        out_arr = np.zeros(1, dtype=np.int32)
        interpret(kernel, [out_arr, 10], NDRange.create(1))
        assert out_arr[0] == 45

    def test_for_range_negative_step(self):
        b = KernelBuilder("countdown")
        out = b.param("out", GLOBAL_INT32)
        with b.for_range(4, 0, step=-1) as i:
            b.store(out, b.sub(4, i), i)
        kernel = b.finish()
        out_arr = np.zeros(4, dtype=np.int32)
        interpret(kernel, [out_arr], NDRange.create(1))
        np.testing.assert_array_equal(out_arr, [4, 3, 2, 1])

    def test_for_range_zero_step_raises(self):
        b = KernelBuilder("k")
        with pytest.raises(IRError):
            with b.for_range(0, 4, step=0):
                pass

    def test_for_range_zero_trip(self):
        b = KernelBuilder("empty")
        out = b.param("out", GLOBAL_INT32)
        acc = b.var("acc", INT32, init=7)
        with b.for_range(5, 5) as i:
            acc.set(b.add(acc.get(), 100))
        b.store(out, 0, acc.get())
        kernel = b.finish()
        out_arr = np.zeros(1, dtype=np.int32)
        interpret(kernel, [out_arr], NDRange.create(1))
        assert out_arr[0] == 7

    def test_nested_loops(self):
        b = KernelBuilder("nested")
        out = b.param("out", GLOBAL_INT32)
        acc = b.var("acc", INT32, init=0)
        with b.for_range(0, 3):
            with b.for_range(0, 4):
                acc.set(b.add(acc.get(), 1))
        b.store(out, 0, acc.get())
        kernel = b.finish()
        validate(kernel)
        out_arr = np.zeros(1, dtype=np.int32)
        interpret(kernel, [out_arr], NDRange.create(1))
        assert out_arr[0] == 12

    def test_while_loop(self):
        b = KernelBuilder("collatz_steps")
        out = b.param("out", GLOBAL_INT32)
        n = b.param("n", INT32)
        x = b.var("x", INT32, init=n)
        steps = b.var("steps", INT32, init=0)
        with b.while_(lambda: b.gt(x.get(), 1)):
            with b.if_else(b.eq(b.rem(x.get(), 2), 0)) as (even, odd):
                with even:
                    x.set(b.div(x.get(), 2))
                with odd:
                    x.set(b.add(b.mul(x.get(), 3), 1))
            steps.set(b.add(steps.get(), 1))
        b.store(out, 0, steps.get())
        kernel = b.finish()
        validate(kernel)
        out_arr = np.zeros(1, dtype=np.int32)
        interpret(kernel, [out_arr, 6], NDRange.create(1))
        assert out_arr[0] == 8  # 6→3→10→5→16→8→4→2→1

    def test_break(self):
        b = KernelBuilder("find_first")
        data = b.param("data", GLOBAL_INT32)
        out = b.param("out", GLOBAL_INT32)
        n = b.param("n", INT32)
        found = b.var("found", INT32, init=-1)
        with b.for_range(0, n) as i:
            with b.if_(b.eq(b.load(data, i), 42)):
                found.set(i)
                b.break_()
        b.store(out, 0, found.get())
        kernel = b.finish()
        validate(kernel)
        data_arr = np.array([5, 42, 42, 1], dtype=np.int32)
        out_arr = np.zeros(1, dtype=np.int32)
        interpret(kernel, [data_arr, out_arr, 4], NDRange.create(1))
        assert out_arr[0] == 1

    def test_continue(self):
        b = KernelBuilder("sum_even")
        out = b.param("out", GLOBAL_INT32)
        acc = b.var("acc", INT32, init=0)
        with b.for_range(0, 10) as i:
            with b.if_(b.eq(b.rem(i, 2), 1)):
                b.continue_()
            acc.set(b.add(acc.get(), i))
        b.store(out, 0, acc.get())
        kernel = b.finish()
        validate(kernel)
        out_arr = np.zeros(1, dtype=np.int32)
        interpret(kernel, [out_arr], NDRange.create(1))
        assert out_arr[0] == 0 + 2 + 4 + 6 + 8

    def test_break_outside_loop_raises(self):
        b = KernelBuilder("k")
        with pytest.raises(IRError):
            b.break_()

    def test_continue_outside_loop_raises(self):
        b = KernelBuilder("k")
        with pytest.raises(IRError):
            b.continue_()

    def test_var_read_before_write_raises(self):
        b = KernelBuilder("k")
        v = b.var("v", INT32)
        with pytest.raises(IRError):
            v.get()


class TestSSAConstruction:
    def test_loop_carried_variable_gets_phi(self):
        b = KernelBuilder("k")
        acc = b.var("acc", INT32, init=0)
        with b.for_range(0, 10):
            acc.set(b.add(acc.get(), 1))
        kernel = b.finish()
        phis = [i for i in kernel.instructions() if i.op is Opcode.PHI]
        # The induction variable and acc each need a phi in the header.
        assert len(phis) >= 2
        validate(kernel)

    def test_variable_unmodified_in_loop_has_no_phi(self):
        b = KernelBuilder("k")
        c = b.var("c", INT32, init=5)
        sink = b.param("sink", GLOBAL_INT32)
        with b.for_range(0, 10) as i:
            b.store(sink, i, c.get())
        kernel = b.finish()
        # Trivial phi for c is removed; only the induction phi remains.
        phis = [i for i in kernel.instructions() if i.op is Opcode.PHI]
        assert len(phis) == 1
        validate(kernel)

    def test_diamond_merge_phi(self):
        b = KernelBuilder("k")
        out = b.param("out", GLOBAL_INT32)
        v = b.var("v", INT32, init=0)
        with b.if_else(b.lt(b.global_id(0), 4)) as (t, e):
            with t:
                v.set(10)
            with e:
                v.set(20)
        b.store(out, 0, v.get())
        kernel = b.finish()
        validate(kernel)
        merge_phis = [i for i in kernel.instructions() if i.op is Opcode.PHI]
        assert len(merge_phis) == 1
        assert len(merge_phis[0].attrs["incomings"]) == 2


class TestArrays:
    def test_local_array_shared_within_group(self):
        b = KernelBuilder("reverse_tile")
        data = b.param("data", GLOBAL_INT32)
        out = b.param("out", GLOBAL_INT32)
        tile = b.local_array("tile", INT32, 4)
        lid = b.local_id(0)
        gid = b.global_id(0)
        b.store(tile, lid, b.load(data, gid))
        b.barrier()
        rev = b.sub(3, lid)
        b.store(out, gid, b.load(tile, rev))
        kernel = b.finish()
        validate(kernel)
        data_arr = np.arange(8, dtype=np.int32)
        out_arr = np.zeros(8, dtype=np.int32)
        interpret(kernel, [data_arr, out_arr], NDRange.create(8, 4))
        np.testing.assert_array_equal(out_arr, [3, 2, 1, 0, 7, 6, 5, 4])

    def test_private_array_is_per_item(self):
        b = KernelBuilder("priv")
        out = b.param("out", GLOBAL_INT32)
        scratch = b.private_array("scratch", INT32, 2)
        gid = b.global_id(0)
        b.store(scratch, 0, gid)
        b.store(out, gid, b.load(scratch, 0))
        kernel = b.finish()
        out_arr = np.zeros(4, dtype=np.int32)
        interpret(kernel, [out_arr], NDRange.create(4, 4))
        np.testing.assert_array_equal(out_arr, [0, 1, 2, 3])

    def test_array_size_must_be_positive(self):
        b = KernelBuilder("k")
        with pytest.raises(IRError):
            b.local_array("t", INT32, 0)


class TestDirectives:
    def test_pipelined_load_recorded(self):
        b = KernelBuilder("k")
        p = b.param("p", GLOBAL_FLOAT32)
        v = b.load(p, 0, pipelined=True)
        w = b.load(p, 1)
        kernel = b.finish()
        assert kernel.directives[v] == "pipelined_load"
        assert w not in kernel.directives


class TestPrinter:
    def test_format_is_stable(self):
        kernel = build_vecadd()
        text = kernel.format()
        assert "kernel vecadd" in text
        assert "get_global_id" in text
        assert text.count("load") == 2
