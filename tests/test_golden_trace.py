"""Golden-trace regression suite: the optimized SimX hot loop must be
byte-identical to the committed pre-optimization digests.

Every point under ``tests/golden/`` pins final device memory, cycle
counts, retired instructions, cache/DRAM counter totals, stall totals
and output-buffer hashes for one benchmark/configuration. A mismatch
here means an optimization changed simulated *behaviour*, not just
wall-clock — which is exactly what this suite exists to catch.

Regenerate with ``python -m repro golden --update`` (and say so in
review: goldens only move when a behaviour change is intended).
"""

import json

import pytest

from repro.harness.golden import (
    GOLDEN_DIR,
    compute_digest,
    diff_digest,
    digest_path,
    golden_points,
    load_digest,
)

_POINTS = golden_points()


def test_every_golden_point_has_a_committed_digest():
    missing = [p.name for p in _POINTS if not digest_path(p).exists()]
    assert not missing, (
        f"no committed digest for {missing}; run "
        f"`python -m repro golden --update`"
    )


def test_no_stale_digest_files():
    expected = {f"{p.name}.json" for p in _POINTS}
    on_disk = {f.name for f in GOLDEN_DIR.glob("*.json")}
    assert on_disk <= expected, (
        f"stale digest files: {sorted(on_disk - expected)}"
    )


def test_digests_are_normalised_json():
    # --update writes sorted, indented JSON so review diffs are stable;
    # a hand-edited digest that re-serialises differently is suspect.
    for point in _POINTS:
        path = digest_path(point)
        if not path.exists():
            continue
        doc = json.loads(path.read_text())
        assert path.read_text() == json.dumps(
            doc, indent=1, sort_keys=True) + "\n"


@pytest.mark.parametrize("point", _POINTS, ids=lambda p: p.name)
def test_golden_digest_matches(point):
    golden = load_digest(point)
    if golden is None:
        pytest.fail(f"missing digest for {point.name}")
    fresh = compute_digest(point)
    diffs = diff_digest(golden, fresh)
    assert not diffs, (
        f"{point.name}: optimized simulator diverged from golden "
        f"digest:\n  " + "\n  ".join(diffs)
    )
