"""Tests for the HLS pipeline performance model."""

import numpy as np
import pytest

from repro.hls import HLSBackend, STRATIX10_SX2800, classify_kernel
from repro.hls.perf import estimate_cycles
from repro.ocl import (
    Context,
    GLOBAL_FLOAT32,
    GLOBAL_INT32,
    INT32,
    KernelBuilder,
    NDRange,
    interpret,
)


def _streaming_kernel():
    b = KernelBuilder("stream")
    x = b.param("x", GLOBAL_FLOAT32)
    y = b.param("y", GLOBAL_FLOAT32)
    gid = b.global_id(0)
    b.store(y, gid, b.mul(b.load(x, gid), 2.0))
    return b.finish()


def _estimate(kernel, args, n, local=16):
    ndr = NDRange.create(n, local)
    run = interpret(kernel, args, ndr)
    return estimate_cycles(kernel, classify_kernel(kernel), ndr, run)


class TestPipelineModel:
    def test_cycles_scale_with_items(self):
        kernel = _streaming_kernel()
        small = _estimate(kernel, [np.zeros(64, np.float32),
                                   np.zeros(64, np.float32)], 64)
        big = _estimate(kernel, [np.zeros(1024, np.float32),
                                 np.zeros(1024, np.float32)], 1024)
        assert big.cycles > small.cycles
        # Pipelined: roughly one item per cycle once full.
        assert big.cycles - small.cycles == pytest.approx(1024 - 64, rel=0.2)

    def test_depth_grows_with_kernel_size(self):
        small = _streaming_kernel()

        b = KernelBuilder("big")
        x = b.param("x", GLOBAL_FLOAT32)
        y = b.param("y", GLOBAL_FLOAT32)
        gid = b.global_id(0)
        v = b.load(x, gid)
        for _ in range(20):
            v = b.add(b.mul(v, 1.5), 0.25)
        b.store(y, gid, v)
        big = b.finish()

        args = [np.zeros(64, np.float32), np.zeros(64, np.float32)]
        assert _estimate(big, args, 64).depth > \
            _estimate(small, args, 64).depth

    def test_atomics_raise_initiation_interval(self):
        b = KernelBuilder("atom")
        bins = b.param("bins", GLOBAL_INT32)
        b.atomic_add(bins, 0, 1)
        kernel = b.finish()
        est = _estimate(kernel, [np.zeros(4, np.int32)], 64)
        assert est.initiation_interval > 1

    def test_loops_multiply_issue_cycles(self):
        b = KernelBuilder("looped")
        out = b.param("out", GLOBAL_FLOAT32)
        gid = b.global_id(0)
        acc = b.var("acc", INT32, init=0)
        with b.for_range(0, 32):
            acc.set(b.add(acc.get(), 1))
        b.store(out, gid, b.itof(acc.get()))
        kernel = b.finish()
        est = _estimate(kernel, [np.zeros(64, np.float32)], 64)
        flat = _estimate(_streaming_kernel(),
                         [np.zeros(64, np.float32),
                          np.zeros(64, np.float32)], 64)
        assert est.issue_cycles > flat.issue_cycles * 10

    def test_time_us_uses_fmax(self):
        kernel = _streaming_kernel()
        est = _estimate(kernel, [np.zeros(64, np.float32),
                                 np.zeros(64, np.float32)], 64)
        assert est.time_us(200.0) == pytest.approx(est.cycles / 200.0)


class TestBackendIntegration:
    def test_launch_reports_model_fields(self):
        ctx = Context(HLSBackend(device=STRATIX10_SX2800))
        prog = ctx.program([_streaming_kernel()])
        x = ctx.buffer(np.arange(128, dtype=np.float32))
        y = ctx.alloc(128)
        stats = prog.launch("stream", [x, y], 128, 16)
        np.testing.assert_allclose(y.read(), np.arange(128) * 2.0)
        for key in ("pipeline_depth", "initiation_interval", "time_us",
                    "area"):
            assert key in stats.extra
