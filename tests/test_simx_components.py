"""Unit and property tests for the SimX components: memory, DRAM,
cache, warp state, instruction metadata, and configuration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError, TrapError
from repro.vortex.isa import Instruction
from repro.vortex.simx.cache import Cache
from repro.vortex.simx.config import DDR4_DRAM, HBM2_DRAM, VortexConfig
from repro.vortex.simx.core import instr_meta
from repro.vortex.simx.dram import DRAM
from repro.vortex.simx.mem import Memory
from repro.vortex.simx.warp import Warp


class TestMemory:
    def test_word_roundtrip(self):
        mem = Memory(size=4096)
        mem.write_word(128, -42)
        assert mem.read_word(128) == -42

    def test_gather_scatter_i32(self):
        mem = Memory(size=4096)
        addrs = np.array([0, 8, 16], dtype=np.int64)
        mem.scatter_i32(addrs, np.array([1, 2, 3], dtype=np.int32))
        np.testing.assert_array_equal(mem.gather_i32(addrs), [1, 2, 3])

    def test_gather_f32_bit_faithful(self):
        mem = Memory(size=4096)
        vals = np.array([1.5, -2.25, 3e-8], dtype=np.float32)
        addrs = np.array([4, 8, 12], dtype=np.int64)
        mem.scatter_f32(addrs, vals)
        np.testing.assert_array_equal(mem.gather_f32(addrs), vals)

    def test_unaligned_access_traps(self):
        mem = Memory(size=4096)
        with pytest.raises(TrapError, match="unaligned"):
            mem.gather_i32(np.array([2], dtype=np.int64))

    def test_out_of_range_traps(self):
        mem = Memory(size=4096)
        with pytest.raises(TrapError, match="out of range"):
            mem.read_word(4096)
        with pytest.raises(TrapError):
            mem.gather_i32(np.array([-4], dtype=np.int64))

    def test_cstring(self):
        mem = Memory(size=4096)
        mem.write_bytes(100, b"hello\x00world")
        assert mem.read_cstring(100) == "hello"

    def test_unterminated_cstring_traps(self):
        mem = Memory(size=256)
        mem.write_bytes(0, b"\x01" * 256)
        with pytest.raises(TrapError, match="unterminated"):
            mem.read_cstring(0)


class TestDRAM:
    def test_row_hit_cheaper_than_miss(self):
        dram = DRAM(DDR4_DRAM, line_size=64)
        t1 = dram.access(0, now=0)  # cold: row miss
        t2 = dram.access(64 * DDR4_DRAM.banks, now=t1)  # same bank+row
        assert (t2 - t1) < t1
        assert dram.stats.row_hits >= 1

    def test_bank_serialisation(self):
        dram = DRAM(DDR4_DRAM, line_size=64)
        # Two back-to-back requests to the same bank serialise.
        t1 = dram.access(0, now=0)
        t2 = dram.access(64 * DDR4_DRAM.banks * DDR4_DRAM.lines_per_row * 7,
                         now=0)
        assert t2 > t1  # second waits for the bank + pays a row miss

    def test_different_banks_parallel(self):
        dram = DRAM(DDR4_DRAM, line_size=64)
        t1 = dram.access(0, now=0)
        t2 = dram.access(64, now=0)  # adjacent line -> different bank
        assert t2 == t1  # same service time, in parallel

    def test_completion_monotone_in_now(self):
        dram = DRAM(DDR4_DRAM, line_size=64)
        t_early = dram.access(0, now=0)
        dram2 = DRAM(DDR4_DRAM, line_size=64)
        t_late = dram2.access(0, now=1000)
        assert t_late > t_early

    @given(st.lists(st.integers(0, 2**20), min_size=1, max_size=50))
    @settings(max_examples=25, deadline=None)
    def test_completions_always_after_request(self, line_addrs):
        dram = DRAM(DDR4_DRAM, line_size=64)
        now = 0
        for addr in line_addrs:
            done = dram.access(addr * 64, now)
            assert done > now
            now += 1

    def test_row_table_evicts_deterministically(self):
        d1 = DRAM(DDR4_DRAM, line_size=64)
        d2 = DRAM(DDR4_DRAM, line_size=64)
        seq = [i * 64 * DDR4_DRAM.banks * DDR4_DRAM.lines_per_row
               for i in range(20)]
        for a in seq:
            d1.access(a, 0)
            d2.access(a, 0)
        assert d1.open_rows == d2.open_rows

    def test_hbm_profile_has_more_banks(self):
        assert HBM2_DRAM.banks > DDR4_DRAM.banks


class TestCache:
    def test_hit_after_fill(self):
        c = Cache(size=1024, ways=2, line_size=64)
        assert not c.lookup(0)
        c.fill(0)
        assert c.lookup(0)

    def test_lru_eviction(self):
        c = Cache(size=256, ways=2, line_size=64)  # 2 sets x 2 ways
        # Lines 0, 128, 256 all map to set 0 (line_index % 2 == 0).
        c.fill(0)
        c.fill(128)
        c.lookup(0)  # refresh 0
        c.fill(256)  # evicts 128 (LRU)
        assert c.lookup(0)
        assert not c.lookup(128)

    def test_invalidate_all(self):
        c = Cache(size=1024, ways=2, line_size=64)
        c.fill(0)
        c.invalidate_all()
        assert not c.lookup(0)

    def test_double_fill_does_not_duplicate_line(self):
        # Two outstanding misses on the same line both fill on return;
        # the second fill must refresh the resident way, not allocate
        # the tag into a second one (which would silently halve the
        # set's effective associativity).
        c = Cache(size=256, ways=2, line_size=64)  # 2 sets x 2 ways
        c.fill(0)
        c.fill(0)
        assert c.tags[0].count(0) == 1
        c.fill(128)  # second distinct line fits in the same set
        assert c.lookup(0)
        assert c.lookup(128)

    def test_refill_refreshes_lru(self):
        c = Cache(size=256, ways=2, line_size=64)
        c.fill(0)    # way A <- tag of line 0
        c.fill(128)  # way B <- tag of line 128
        c.fill(0)    # refreshes way A
        c.fill(256)  # evicts the LRU line, which is now 128
        assert c.lookup(0)
        assert not c.lookup(128)

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_stats_consistency(self, lines):
        c = Cache(size=2048, ways=4, line_size=64)
        for ln in lines:
            if not c.lookup(ln * 64):
                c.fill(ln * 64)
        assert c.stats.hits + c.stats.misses == len(lines)
        assert 0.0 <= c.stats.hit_rate <= 1.0


class TestWarp:
    def test_ipdom_lifo(self):
        w = Warp(0, 4)
        w.tmask[:] = True
        w.push_uniform_marker()
        w.push_divergence(np.array([1, 1, 1, 1], dtype=bool),
                          np.array([0, 0, 1, 1], dtype=bool), 0x100)
        top = w.pop_join()
        assert top.pc == 0x100
        mid = w.pop_join()
        assert mid.pc is None and mid.mask is not None
        marker = w.pop_join()
        assert marker.uniform

    def test_join_on_empty_stack_raises(self):
        w = Warp(0, 4)
        with pytest.raises(SimulationError, match="IPDOM"):
            w.pop_join()

    def test_tmask_bits_roundtrip(self):
        w = Warp(0, 8)
        w.set_tmask_bits(0b10110001)
        assert w.tmask_bits() == 0b10110001

    def test_first_active_lane(self):
        w = Warp(0, 8)
        w.set_tmask_bits(0b00101000)
        assert w.first_active_lane() == 3

    def test_no_active_lanes_raises(self):
        w = Warp(0, 4)
        w.set_tmask_bits(0)
        with pytest.raises(SimulationError):
            w.first_active_lane()

    def test_reset_for_group_clears_state(self):
        w = Warp(0, 4)
        w.x[5] = 99
        w.ipdom.append(object())
        w.reset_for_group(0x1000, np.ones(4, dtype=bool), {1: 2},
                          np.zeros(4, dtype=np.int32))
        assert (w.x[5] == 0).all()
        assert not w.ipdom
        assert w.pc == 0x1000 and w.active


class TestInstrMeta:
    def test_alu_sources(self):
        meta = instr_meta(Instruction("add", rd=5, rs1=6, rs2=7))
        assert meta.srcs_x == (6, 7)
        assert meta.dst == ("x", 5)
        assert meta.kind == "alu"

    def test_float_sources(self):
        meta = instr_meta(Instruction("fadd.s", rd=2, rs1=3, rs2=4))
        assert meta.srcs_f == (3, 4)
        assert meta.dst == ("f", 2)
        assert meta.kind == "fpu"

    def test_load_is_mem(self):
        meta = instr_meta(Instruction("flw", rd=2, rs1=5, imm=0))
        assert meta.is_mem
        assert meta.srcs_x == (5,)
        assert meta.dst == ("f", 2)

    def test_store_has_no_dst(self):
        meta = instr_meta(Instruction("sw", rs1=5, rs2=6, imm=0))
        assert meta.dst is None
        assert meta.srcs_x == (5, 6)

    def test_amocas_reads_rd(self):
        meta = instr_meta(Instruction("amocas.w", rd=5, rs1=6, rs2=7))
        assert 5 in meta.srcs_x

    def test_x0_dst_dropped(self):
        meta = instr_meta(Instruction("addi", rd=0, rs1=1, imm=4))
        assert meta.dst is None

    def test_simt_kinds(self):
        for m in ("tmc", "split", "join", "bar", "pred", "halt"):
            assert instr_meta(Instruction(m)).kind == "simt"


class TestConfig:
    def test_invalid_geometry_rejected(self):
        with pytest.raises(SimulationError):
            VortexConfig(threads=0)
        with pytest.raises(SimulationError):
            VortexConfig(warps=0)

    def test_with_geometry(self):
        cfg = VortexConfig()
        new = cfg.with_geometry(warps=2, threads=16)
        assert (new.warps, new.threads) == (2, 16)
        assert new.cores == cfg.cores

    def test_label(self):
        assert VortexConfig(cores=4, warps=8, threads=2).label() == "4c8w2t"

    def test_hbm_swaps_dram(self):
        assert VortexConfig().hbm().dram.kind == "hbm2"


class TestDeterminism:
    def test_same_launch_same_cycles(self):
        import numpy as np
        from repro.benchmarks import get_benchmark
        from repro.ocl import Context
        from repro.vortex import VortexBackend

        def run():
            bench = get_benchmark("vecadd")
            ctx = Context(VortexBackend(VortexConfig(cores=2, warps=4,
                                                     threads=4)))
            prog = ctx.program(bench.build())
            rng = np.random.default_rng(0)
            a = ctx.buffer(rng.random(256, dtype=np.float32))
            b = ctx.buffer(rng.random(256, dtype=np.float32))
            c = ctx.alloc(256)
            return prog.launch("vecadd", [a, b, c, 256], 256, 16).cycles

        assert run() == run()


class TestRiscvDivisionSemantics:
    """RISC-V M-extension corner cases (div-by-zero never traps on the
    device; the reference interpreter treats it as a kernel bug)."""

    def _run_div(self, a, b, op):
        import numpy as np
        from repro.vortex.simx.core import _sdiv, _srem

        x = np.array([a], dtype=np.int32)
        y = np.array([b], dtype=np.int32)
        fn = _sdiv if op == "div" else _srem
        return int(fn(x, y)[0])

    def test_div_by_zero_returns_minus_one(self):
        assert self._run_div(7, 0, "div") == -1

    def test_rem_by_zero_returns_dividend(self):
        assert self._run_div(7, 0, "rem") == 7

    def test_int_min_overflow(self):
        assert self._run_div(-(2**31), -1, "div") == -(2**31)
        assert self._run_div(-(2**31), -1, "rem") == 0

    def test_truncating_division(self):
        assert self._run_div(-7, 2, "div") == -3
        assert self._run_div(-7, 2, "rem") == -1


class TestWarpStateDump:
    """Stuck-machine diagnostics: a deadlocked or cycle-limit-overrun
    simulation must die with a per-warp state dump attached, so an
    ERROR row in a sweep is debuggable without a traced re-run."""

    def test_cycle_overrun_error_carries_warp_dump(self):
        from repro.benchmarks import get_benchmark
        from repro.ocl import Context
        from repro.vortex import VortexBackend

        config = VortexConfig(cores=2, warps=2, threads=2)
        ctx = Context(VortexBackend(config, max_cycles=5))
        prog = ctx.program(get_benchmark("vecadd").build())
        n = 64
        a = ctx.buffer(np.zeros(n, dtype=np.float32))
        b = ctx.buffer(np.zeros(n, dtype=np.float32))
        c = ctx.alloc(n)
        with pytest.raises(SimulationError) as excinfo:
            prog.launch("vecadd", [a, b, c, n], n, 4)
        exc = excinfo.value
        assert "simulation exceeded 5 cycles" in str(exc)
        assert "warp states at cycle" in str(exc)
        assert exc.warp_dump  # machine state travels with the error
        assert "core 0 warp 0:" in exc.warp_dump
        assert "core 1 warp 1:" in exc.warp_dump
        assert "pc=0x" in exc.warp_dump

    def test_describe_warp_states_covers_every_status(self):
        from repro.vortex.simx.machine import Machine
        from repro.vortex.simx.warp import BLOCKED

        machine = Machine(VortexConfig(cores=1, warps=4, threads=2))
        core = machine.cores[0]
        w0, w1, w2, w3 = core.warps
        w0.active = True
        w0.pc = 0x80
        w0.tmask[:] = True
        w0.group_key = 7
        w0.at_barrier = True
        core.barriers[3] = [w0.wid]
        w1.active = True
        w1.ready_at = BLOCKED
        w2.active = True
        w2.ready_at = 50
        w3.active = True
        w3.ready_at = 0  # <= now: can issue (BLOCKED while inactive)
        lines = machine.describe_warp_states(now=10).splitlines()
        assert len(lines) == 4
        assert "core 0 warp 0: pc=0x0080 mask=0x3 group=7" in lines[0]
        assert "waiting at barrier 3" in lines[0]
        assert "blocked" in lines[1]
        assert "stalled until cycle 50" in lines[2]
        assert "ready" in lines[3]

    def test_halted_warps_render_as_halted(self):
        from repro.vortex.simx.machine import Machine

        machine = Machine(VortexConfig(cores=1, warps=2, threads=2))
        dump = machine.describe_warp_states(now=0)
        assert dump.count("halted") == 2
