"""Differential property tests for the vectorized SimX execution path.

The decoded handlers execute whole warp rows with numpy (taking unmasked
fast paths when every lane is active); a per-lane scalar reference path
is kept behind ``REPRO_SIMX_SCALAR=1`` exactly for this check. Random
kernels — arithmetic over int/float variables with divergent if/else
regions and loops, i.e. the constructs that produce partial thread
masks — must leave bit-identical device memory, register files and
timing under both paths. The decode-once instruction cache is also
property-checked: every static instruction must be fetchable from the
shared per-PC table.
"""

import os

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ocl import (
    Context,
    GLOBAL_FLOAT32,
    GLOBAL_INT32,
    FLOAT32,
    INT32,
    KernelBuilder,
    NDRange,
)
from repro.vortex import VortexBackend, VortexConfig
from repro.vortex.simx.decode import SCALAR_ENV, scalar_path_enabled
from repro.vortex.simx.machine import Machine
from repro.vortex.simx.warp import TINYFAST_ENV

N_ITEMS = 16
LOCAL = 8
CONFIG = VortexConfig(cores=2, warps=2, threads=4)

_BINOPS = ("add", "sub", "mul", "and_", "or_", "xor", "min", "max")
_FLOAT_OPS = ("add", "sub", "mul", "min", "max")
_CMPS = ("lt", "le", "gt", "ge", "eq", "ne")


# -- program generator (divergence-heavy) ------------------------------------


@st.composite
def programs(draw, float_ops=False):
    """Statements over 2 variables; if/else and loops diverge on gid."""
    ops = _FLOAT_OPS if float_ops else _BINOPS

    def stmts(depth):
        n = draw(st.integers(1, 3 if depth == 0 else 2))
        out = []
        for _ in range(n):
            kind = draw(st.sampled_from(
                ["assign", "assign", "if", "loop"] if depth < 2
                else ["assign"]))
            if kind == "assign":
                out.append((
                    "assign",
                    draw(st.integers(0, 1)),
                    draw(st.sampled_from(ops)),
                    draw(st.integers(0, 2)),  # 2 = gid
                    draw(st.one_of(
                        st.integers(0, 2),
                        st.integers(-8, 8).map(lambda c: ("c", c)),
                    )),
                ))
            elif kind == "if":
                out.append((
                    "if",
                    draw(st.sampled_from(_CMPS)),
                    draw(st.integers(-4, N_ITEMS + 2)),
                    stmts(depth + 1),
                    stmts(depth + 1) if draw(st.booleans()) else None,
                ))
            else:
                out.append(("loop", draw(st.integers(1, 3)),
                            stmts(depth + 1)))
        return out

    return stmts(0)


def build_kernel(program, float_ops=False):
    ty, gty = (FLOAT32, GLOBAL_FLOAT32) if float_ops else (INT32, GLOBAL_INT32)
    b = KernelBuilder("diff")
    out0 = b.param("out0", gty)
    out1 = b.param("out1", gty)
    gid = b.global_id(0)

    def lift(c):
        return b.itof(b.const(c)) if float_ops else b.const(c)

    vars_ = [b.var(f"v{i}", ty) for i in range(2)]
    for i, v in enumerate(vars_):
        v.set(lift(i + 1))

    def operand(spec):
        if isinstance(spec, tuple) and spec[0] == "c":
            return lift(spec[1])
        if spec == 2:
            return b.itof(gid) if float_ops else gid
        return vars_[spec].get()

    def emit(stmts):
        for s in stmts:
            if s[0] == "assign":
                _, tgt, op, a, c = s
                val = getattr(b, op)(operand(a), operand(c))
                if float_ops:
                    # keep every value finite: clamp to +/-1e6
                    val = b.min(b.max(val, lift(-10 ** 6)), lift(10 ** 6))
                vars_[tgt].set(val)
            elif s[0] == "if":
                _, cmp_, c, then_s, else_s = s
                cond = getattr(b, cmp_)(gid, b.const(c))
                if else_s is None:
                    with b.if_(cond):
                        emit(then_s)
                else:
                    with b.if_else(cond) as (t, e):
                        with t:
                            emit(then_s)
                        with e:
                            emit(else_s)
            else:
                _, trips, body = s
                with b.for_range(0, trips):
                    emit(body)

    emit(program)
    b.store(out0, gid, vars_[0].get())
    b.store(out1, gid, vars_[1].get())
    return b.finish()


# -- execution capture -------------------------------------------------------


class _Capture:
    """launch_hook: snapshot device memory and register files."""

    def __call__(self, machine: Machine, result) -> None:
        self.memory = machine.memory.data.copy()
        self.cycles = result.cycles
        self.instructions = result.instructions
        self.x = np.stack([w.x for c in machine.cores for w in c.warps])
        self.f = np.stack([w.f for c in machine.cores for w in c.warps])


def _run(kernel, scalar: bool, float_ops=False, config=CONFIG,
         local=LOCAL, extra_env=()):
    cap = _Capture()
    backend = VortexBackend(config, launch_hook=cap)
    sets = {SCALAR_ENV: "1" if scalar else "0", **dict(extra_env)}
    old = {k: os.environ.get(k) for k in sets}
    os.environ.update(sets)
    try:
        assert scalar_path_enabled() is scalar
        ctx = Context(backend)
        prog = ctx.program([kernel])
        dtype = np.float32 if float_ops else np.int32
        bufs = [ctx.alloc(N_ITEMS, dtype) for _ in range(2)]
        prog.launch("diff", bufs, N_ITEMS, local)
        outs = [b.read().copy() for b in bufs]
    finally:
        for k, v in old.items():
            if v is None:
                del os.environ[k]
            else:
                os.environ[k] = v
    return cap, outs


def _assert_identical(kernel, float_ops=False):
    vec, vec_outs = _run(kernel, scalar=False, float_ops=float_ops)
    sca, sca_outs = _run(kernel, scalar=True, float_ops=float_ops)
    for v, s in zip(vec_outs, sca_outs):
        np.testing.assert_array_equal(v, s)
    # Full device memory and every warp's register file must match
    # bit-for-bit — inactive lanes included.
    assert np.array_equal(vec.memory, sca.memory)
    np.testing.assert_array_equal(vec.x, sca.x)
    np.testing.assert_array_equal(
        vec.f.view(np.int32), sca.f.view(np.int32))
    # The scalar path only changes *how* lanes execute, never the
    # timing model: cycle counts must agree exactly.
    assert vec.cycles == sca.cycles
    assert vec.instructions == sca.instructions
    # x0 is architecturally zero; no handler may ever write it.
    assert (vec.x[:, 0, :] == 0).all()
    assert (sca.x[:, 0, :] == 0).all()


# -- properties --------------------------------------------------------------


@given(programs())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_scalar_vector_identical_int(program):
    _assert_identical(build_kernel(program))


@given(programs(float_ops=True))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_scalar_vector_identical_float(program):
    _assert_identical(build_kernel(program, float_ops=True),
                      float_ops=True)


@given(programs())
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_decode_cache_covers_program(program):
    """Every static instruction is fetchable from the decode-once cache,
    the cache is shared by all cores, and cached entries are what the
    fetch path returns (identity, not just equality)."""
    kernel = build_kernel(program)
    backend = VortexBackend(CONFIG)
    ndrange = NDRange.create(N_ITEMS, LOCAL)
    image = backend.compile_for(kernel, ndrange)
    machine = Machine(CONFIG)
    machine.load_image(image)
    base = machine.program.code_base
    assert len(machine._decoded) == len(machine.program.instructions)
    for i, d in enumerate(machine._decoded):
        pc = base + 4 * i
        assert machine.fetch(pc) is d
        assert machine.cores[0]._fetch(pc) is d
        assert d.pc == pc
    for core in machine.cores:
        assert core._decoded is machine._decoded
        assert core._code_base == base


@given(programs())
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_tiny_warp_paths_identical(program):
    """Warps of <= 2 threads take the Python-int fast path in the
    integer handlers; it must be bit-identical (memory, registers,
    timing) to both the numpy vector path (REPRO_SIMX_NO_TINYFAST=1)
    and the per-lane scalar reference path."""
    kernel = build_kernel(program)
    for threads in (1, 2):
        config = VortexConfig(cores=2, warps=2, threads=threads)
        tiny, tiny_outs = _run(kernel, scalar=False, config=config,
                               local=2)
        runs = [
            _run(kernel, scalar=False, config=config, local=2,
                 extra_env={TINYFAST_ENV: "1"}),
            _run(kernel, scalar=True, config=config, local=2),
        ]
        for cap, outs in runs:
            for t, o in zip(tiny_outs, outs):
                np.testing.assert_array_equal(t, o)
            assert np.array_equal(tiny.memory, cap.memory)
            np.testing.assert_array_equal(tiny.x, cap.x)
            assert tiny.cycles == cap.cycles
            assert tiny.instructions == cap.instructions


def test_py_int_ops_match_numpy():
    """The tiny-warp Python-int kernels agree with the numpy kernels on
    every mnemonic, including the RISC-V division corner cases
    (div-by-zero, INT_MIN/-1, shift-amount masking, unsigned
    comparisons)."""
    from repro.vortex.simx.decode import (_INT_BIN_OPS, _PY_INT_BIN_OPS,
                                          _make_imm_op, _make_py_imm_op)

    values = [0, 1, -1, 2, -2, 5, -7, 31, 32, 33, 0x55,
              2**31 - 1, -(2**31), 12345678, -12345678]
    for m, np_op in _INT_BIN_OPS.items():
        py_op = _PY_INT_BIN_OPS[m]
        for a in values:
            for b in values:
                av = np.array([a], dtype=np.int32)
                bv = np.array([b], dtype=np.int32)
                expect = int(np_op(av, bv)[0])
                got = py_op(a, b)
                assert got == expect, (m, a, b, got, expect)
                assert -(2**31) <= got < 2**31, (m, a, b, got)
    imm_mnemonics = ("addi", "slti", "sltiu", "xori", "ori", "andi",
                     "slli", "srli", "srai")
    for m in imm_mnemonics:
        for imm in (-2048, -1, 0, 1, 7, 31, 2047):
            np_op = _make_imm_op(m, imm)
            py_op = _make_py_imm_op(m, imm)
            for a in values:
                av = np.array([a], dtype=np.int32)
                expect = int(np_op(av)[0])
                got = py_op(a)
                assert got == expect, (m, imm, a, got, expect)
                assert -(2**31) <= got < 2**31, (m, imm, a, got)


def test_tinyfast_env_gates_flag(monkeypatch):
    from repro.vortex.simx.warp import Warp

    monkeypatch.delenv(TINYFAST_ENV, raising=False)
    assert Warp(0, 1)._tiny and Warp(0, 2)._tiny
    assert not Warp(0, 4)._tiny
    monkeypatch.setenv(TINYFAST_ENV, "1")
    assert not Warp(0, 1)._tiny and not Warp(0, 2)._tiny


def test_scalar_env_parsing(monkeypatch):
    monkeypatch.delenv(SCALAR_ENV, raising=False)
    assert scalar_path_enabled() is False
    monkeypatch.setenv(SCALAR_ENV, "0")
    assert scalar_path_enabled() is False
    monkeypatch.setenv(SCALAR_ENV, "1")
    assert scalar_path_enabled() is True
