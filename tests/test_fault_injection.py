"""Fault-injection tests: every recovery path of the experiment engine,
driven by deterministic fault plans (``REPRO_FAULT_PLAN``).

Each test arms a plan plus a fresh ``REPRO_FAULT_STATE`` directory (the
cross-process firing budget), runs a real engine campaign, and checks
the promised recovery: a retried transient fault succeeds, a killed
worker respawns the pool, a hung point trips the watchdog, an
interrupted run resumes from the incremental cache, and a corrupted
cache entry heals.
"""

import os

import pytest

from repro.harness import (
    FAULT_PLAN_ENV,
    FAULT_STATE_ENV,
    ExperimentAborted,
    ExperimentEngine,
    FaultInjected,
    FaultSpec,
    PointFailure,
    ResultCache,
    corrupt_cache_entry,
    maybe_fault,
    parse_plan,
    run_sweep,
)
from repro.harness import faults


def _triple(x):
    """Module-level (spawn-picklable) point function."""
    return x * 3


@pytest.fixture
def arm(monkeypatch, tmp_path):
    """Arm a fault plan with a fresh cross-process state directory.

    Returns the armer; calling it again re-arms with separate state
    (for serial-vs-parallel comparisons of the same plan).
    """
    counter = iter(range(100))

    def _arm(plan):
        monkeypatch.setenv(FAULT_PLAN_ENV, plan)
        state = tmp_path / f"fault-state-{next(counter)}"
        monkeypatch.setenv(FAULT_STATE_ENV, str(state))
        return state

    return _arm


# -- plan parsing and firing budgets ----------------------------------------

class TestPlan:
    def test_parse_plan(self):
        specs = parse_plan(
            "raise:experiment#1;kill:fig7 vecadd#2:3;sleep:slow#0:1:0.5")
        assert specs == [
            FaultSpec(kind="raise", match="experiment#1"),
            FaultSpec(kind="kill", match="fig7 vecadd#2", times=3),
            FaultSpec(kind="sleep", match="slow#0", times=1, arg="0.5"),
        ]

    def test_parse_plan_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_plan("explode:everywhere")
        with pytest.raises(ValueError):
            parse_plan("raise")

    def test_empty_chunks_ignored(self):
        assert parse_plan(";;raise:x;") == [FaultSpec("raise", "x")]

    def test_local_firing_budget(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "raise:point#:2")
        monkeypatch.delenv(FAULT_STATE_ENV, raising=False)
        faults._local_counts.clear()
        fired = 0
        for _ in range(4):
            try:
                maybe_fault("point#0")
            except FaultInjected:
                fired += 1
        assert fired == 2
        faults._local_counts.clear()

    def test_state_dir_budget_is_shared(self, tmp_path):
        state = str(tmp_path / "state")
        claims = [faults._claim_firing(state, 0, times=2)
                  for _ in range(3)]
        assert claims == [True, True, False]

    def test_no_plan_is_a_noop(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        maybe_fault("experiment#0")  # must not raise


# -- engine recovery paths ---------------------------------------------------

POINTS = [(i,) for i in range(6)]
VALUES = [i * 3 for i in range(6)]


class TestEngineRecovery:
    def test_retry_recovers_injected_raise(self, arm):
        arm("raise:experiment#1:1")
        engine = ExperimentEngine(jobs=1, retries=1, retry_backoff=0.0)
        assert engine.run(_triple, POINTS) == VALUES
        assert engine.stats.failed == 0
        assert "retried=1" in engine.stats.summary()

    def test_keep_going_records_error_cell(self, arm):
        arm("raise:experiment#1:99")
        engine = ExperimentEngine(jobs=1, keep_going=True)
        results = engine.run(_triple, POINTS)
        assert results[:1] + results[2:] == VALUES[:1] + VALUES[2:]
        assert isinstance(results[1], PointFailure)
        assert results[1].exc_type == "FaultInjected"
        assert "injected fault at experiment#1" in results[1].message
        assert engine.stats.failed == 1

    def test_serial_and_parallel_runs_identical(self, arm):
        arm("raise:experiment#2:99")
        serial = ExperimentEngine(jobs=1, keep_going=True,
                                  retries=1, retry_backoff=0.0)
        serial_results = serial.run(_triple, POINTS)
        arm("raise:experiment#2:99")  # fresh budget, same plan
        with ExperimentEngine(jobs=4, keep_going=True, retries=1,
                              retry_backoff=0.0) as parallel:
            parallel_results = parallel.run(_triple, POINTS)
        norm = lambda rs: [r.to_payload() if isinstance(r, PointFailure)
                           else r for r in rs]
        assert norm(serial_results) == norm(parallel_results)
        assert serial.stats.failed == parallel.stats.failed == 1
        assert serial.stats.retried == parallel.stats.retried == 1

    def test_killed_worker_recovered_by_retry(self, arm):
        arm("kill:experiment#2:1")
        with ExperimentEngine(jobs=4, retries=1,
                              retry_backoff=0.0) as engine:
            assert engine.run(_triple, POINTS) == VALUES
        assert engine.stats.failed == 0

    def test_persistent_kill_yields_exactly_one_error(self, arm):
        arm("kill:experiment#2:99")
        with ExperimentEngine(jobs=4, keep_going=True,
                              retry_backoff=0.0) as engine:
            results = engine.run(_triple, POINTS)
        failures = [r for r in results if isinstance(r, PointFailure)]
        assert len(failures) == 1 and failures[0] is results[2]
        assert failures[0].exc_type == "WorkerCrashed"
        assert results[:2] + results[3:] == VALUES[:2] + VALUES[3:]
        assert engine.stats.failed == 1

    def test_inline_kill_raises_instead_of_exiting(self, arm):
        arm("kill:experiment#0:1")
        engine = ExperimentEngine(jobs=1, keep_going=True)
        results = engine.run(_triple, POINTS[:2])
        assert isinstance(results[0], PointFailure)
        assert results[0].exc_type == "FaultInjected"
        assert "inline mode" in results[0].message
        assert results[1] == 3

    def test_sleep_fault_trips_watchdog_then_retry_succeeds(self, arm):
        arm("sleep:experiment#1:1:20.0")
        with ExperimentEngine(jobs=2, point_timeout=2.0, retries=1,
                              retry_backoff=0.0) as engine:
            assert engine.run(_triple, POINTS[:3]) == VALUES[:3]
        assert engine.stats.failed == 0
        assert engine.stats.retried >= 1


# -- resume and cache healing ------------------------------------------------

class TestResume:
    def test_interrupted_run_resumes_from_cache(self, arm, tmp_path,
                                                monkeypatch):
        arm("raise:experiment#3:99")
        cache = ResultCache(tmp_path / "cache", fingerprint="f")
        keys = [cache.key(p=p) for p, in POINTS]
        first = ExperimentEngine(jobs=1, cache=cache)
        with pytest.raises(ExperimentAborted):
            first.run(_triple, POINTS, keys=keys)
        # points 0-2 completed before the abort and were committed
        # incrementally; 3 failed and 4-5 never ran.
        assert first.stats.cache_stores == 3

        monkeypatch.delenv(FAULT_PLAN_ENV)
        second = ExperimentEngine(jobs=1, cache=cache)
        assert second.run(_triple, POINTS, keys=keys) == VALUES
        assert second.stats.cache_hits == 3
        assert second.stats.executed == 3  # only the unfinished points

    def test_corrupt_cache_entry_heals(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f")
        keys = [cache.key(p=p) for p, in POINTS[:3]]
        ExperimentEngine(jobs=1, cache=cache).run(
            _triple, POINTS[:3], keys=keys)
        corrupt_cache_entry(cache, keys[1])
        engine = ExperimentEngine(jobs=1, cache=cache)
        assert engine.run(_triple, POINTS[:3], keys=keys) == VALUES[:3]
        assert engine.stats.cache_hits == 2
        assert engine.stats.executed == 1  # re-ran the corrupted point
        assert cache.get(keys[1]) == VALUES[1]  # healed on disk


# -- harness and CLI integration ---------------------------------------------

class TestHarnessIntegration:
    def test_sweep_renders_error_cell(self, arm):
        arm("raise:fig7 vecadd#2:99")
        result = run_sweep("vecadd", cores=2, n=512,
                           warp_sizes=(2, 4), thread_sizes=(2, 4),
                           jobs=1, keep_going=True)
        assert set(result.failures) == {(4, 2)}
        assert result.failures[(4, 2)].exc_type == "FaultInjected"
        assert len(result.cycles) == 3
        rendered = result.render()
        assert "1 cell(s) failed" in rendered
        assert "w=4 t=2: ERROR(FaultInjected" in rendered
        assert result.engine_stats.failed == 1

    def test_cli_fig7_keep_going_renders_error_and_exits_1(
            self, arm, capsys):
        from repro.__main__ import main

        arm("raise:fig7 transpose#0:99")
        rc = main(["fig7", "--warp-sizes", "2", "--thread-sizes", "2"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "ERROR(FaultInjected" in out
        assert "failed=1" in out

    def test_cli_fig7_fail_fast_aborts(self, arm, capsys):
        from repro.__main__ import main

        arm("raise:fig7 vecadd#0:99")
        rc = main(["fig7", "--warp-sizes", "2", "--thread-sizes", "2",
                   "--fail-fast"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "aborted" in captured.err
        assert "FaultInjected" in captured.err
